// Package rt represents runtime configurations: the match-action rules
// installed into a program's tables. It supports exact, lpm, ternary,
// range, and valid matches, a bmv2-CLI-like text format
// ("table_add <table> <action> <match>... => <arg>... [priority]"),
// and validation against a compiled program.
package rt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"p2go/internal/ir"
	"p2go/internal/p4"
)

// FieldMatch is one match criterion of a rule, aligned positionally with
// the table's reads entries.
type FieldMatch struct {
	Kind      string // p4.MatchExact etc.
	Value     uint64
	Mask      uint64 // ternary: 1-bits must match
	PrefixLen int    // lpm
	RangeHi   uint64 // range: [Value, RangeHi]
}

// Matches reports whether the criterion accepts v (for valid matches, v is
// the header validity bit 0/1 and the criterion's Value selects it).
func (m FieldMatch) Matches(v uint64, fieldWidth int) bool {
	switch m.Kind {
	case p4.MatchExact, p4.MatchValid:
		return v == m.Value
	case p4.MatchLPM:
		shift := uint(fieldWidth - m.PrefixLen)
		if m.PrefixLen == 0 {
			return true
		}
		return v>>shift == m.Value>>shift
	case p4.MatchTernary:
		return v&m.Mask == m.Value&m.Mask
	case p4.MatchRange:
		return m.Value <= v && v <= m.RangeHi
	}
	return false
}

// Rule is one installed table entry.
type Rule struct {
	Table    string
	Action   string
	Matches  []FieldMatch
	Args     []uint64
	Priority int // higher wins among ternary/range overlaps
}

// DefaultEntry overrides a table's default action at runtime
// (table_set_default).
type DefaultEntry struct {
	Table  string
	Action string
	Args   []uint64
}

// Config is a runtime configuration.
type Config struct {
	Rules    []Rule
	Defaults []DefaultEntry
}

// DefaultFor returns the runtime default override for a table, or nil.
func (c *Config) DefaultFor(table string) *DefaultEntry {
	// Last override wins, like bmv2.
	for i := len(c.Defaults) - 1; i >= 0; i-- {
		if c.Defaults[i].Table == table {
			return &c.Defaults[i]
		}
	}
	return nil
}

// ForTable returns the rules of one table, preserving insertion order.
func (c *Config) ForTable(name string) []Rule {
	var out []Rule
	for _, r := range c.Rules {
		if r.Table == name {
			out = append(out, r)
		}
	}
	return out
}

// Add appends a rule.
func (c *Config) Add(r Rule) { c.Rules = append(c.Rules, r) }

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{Rules: make([]Rule, len(c.Rules))}
	for i, r := range c.Rules {
		cp := r
		cp.Matches = append([]FieldMatch(nil), r.Matches...)
		cp.Args = append([]uint64(nil), r.Args...)
		out.Rules[i] = cp
	}
	for _, d := range c.Defaults {
		cp := d
		cp.Args = append([]uint64(nil), d.Args...)
		out.Defaults = append(out.Defaults, cp)
	}
	return out
}

// Tables lists the tables with at least one rule, sorted.
func (c *Config) Tables() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range c.Rules {
		if !seen[r.Table] {
			seen[r.Table] = true
			out = append(out, r.Table)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks every rule against the compiled program: the table and
// action exist, the action is declared on the table, match arity equals the
// table's reads, argument arity equals the action's parameters, and values
// fit their field widths.
func Validate(cfg *Config, prog *ir.Program) error {
	counts := map[string]int{}
	for i := range cfg.Rules {
		r := &cfg.Rules[i]
		t := prog.Tables[r.Table]
		if t == nil {
			return fmt.Errorf("rt: rule %d: unknown table %q", i, r.Table)
		}
		counts[r.Table]++
		if t.Decl.Size > 0 && counts[r.Table] > t.Decl.Size {
			return fmt.Errorf("rt: table %s: %d rules exceed size %d", r.Table, counts[r.Table], t.Decl.Size)
		}
		var act *ir.Action
		for _, a := range t.Actions {
			if a.Name == r.Action {
				act = a
				break
			}
		}
		if act == nil {
			return fmt.Errorf("rt: rule %d: action %q not declared on table %s", i, r.Action, r.Table)
		}
		if len(r.Matches) != len(t.Decl.Reads) {
			return fmt.Errorf("rt: rule %d: table %s expects %d match fields, got %d",
				i, r.Table, len(t.Decl.Reads), len(r.Matches))
		}
		for j, m := range r.Matches {
			want := t.Decl.Reads[j].Kind
			// The text format has no dedicated validity syntax: a plain
			// 0/1 against a valid read is coerced.
			if want == p4.MatchValid && m.Kind == p4.MatchExact && m.Value <= 1 {
				r.Matches[j].Kind = p4.MatchValid
				m.Kind = p4.MatchValid
			}
			if m.Kind != want {
				return fmt.Errorf("rt: rule %d: match %d kind %s, table read is %s", i, j, m.Kind, want)
			}
			width := readWidth(prog.AST, t.Decl.Reads[j])
			if width < 64 && m.Value >= 1<<uint(width) {
				return fmt.Errorf("rt: rule %d: match %d value %d exceeds %d-bit field", i, j, m.Value, width)
			}
			if m.Kind == p4.MatchLPM && (m.PrefixLen < 0 || m.PrefixLen > width) {
				return fmt.Errorf("rt: rule %d: prefix length %d out of range for %d-bit field", i, m.PrefixLen, width)
			}
		}
		if len(r.Args) != len(act.Decl.Params) {
			return fmt.Errorf("rt: rule %d: action %s expects %d args, got %d",
				i, r.Action, len(act.Decl.Params), len(r.Args))
		}
	}
	for i, d := range cfg.Defaults {
		t := prog.Tables[d.Table]
		if t == nil {
			return fmt.Errorf("rt: default %d: unknown table %q", i, d.Table)
		}
		act := t.ActionByName(d.Action)
		if act == nil {
			return fmt.Errorf("rt: default %d: action %q not declared on table %s", i, d.Action, d.Table)
		}
		if len(d.Args) != len(act.Decl.Params) {
			return fmt.Errorf("rt: default %d: action %s expects %d args, got %d",
				i, d.Action, len(act.Decl.Params), len(d.Args))
		}
	}
	return nil
}

func readWidth(ast *p4.Program, read *p4.ReadEntry) int {
	if read.Kind == p4.MatchValid {
		return 1
	}
	inst := ast.Instance(read.Field.Instance)
	if inst == nil {
		return 64
	}
	ht := ast.HeaderType(inst.TypeName)
	if ht == nil {
		return 64
	}
	f := ht.Field(read.Field.Field)
	if f == nil {
		return 64
	}
	return f.Width
}

// Parse reads a configuration in the text format, one directive per line:
//
//	table_add <table> <action> <match> ... => <arg> ... [priority <n>]
//
// Match syntax per kind: exact "value"; lpm "value/len"; ternary
// "value&&&mask"; range "lo..hi"; valid "1" or "0". Values may be decimal,
// 0x-hex, or dotted IPv4. Lines starting with '#' and blank lines are
// ignored.
func Parse(text string) (*Config, error) {
	cfg := &Config{}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "table_set_default" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("rt: line %d: table_set_default needs a table and an action", lineNo+1)
			}
			d := DefaultEntry{Table: fields[1], Action: fields[2]}
			for _, arg := range fields[3:] {
				v, err := parseValue(arg)
				if err != nil {
					return nil, fmt.Errorf("rt: line %d: bad default arg %q: %v", lineNo+1, arg, err)
				}
				d.Args = append(d.Args, v)
			}
			cfg.Defaults = append(cfg.Defaults, d)
			continue
		}
		if fields[0] != "table_add" {
			return nil, fmt.Errorf("rt: line %d: unknown directive %q", lineNo+1, fields[0])
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("rt: line %d: table_add needs a table and an action", lineNo+1)
		}
		r := Rule{Table: fields[1], Action: fields[2]}
		rest := fields[3:]
		// Split on "=>".
		arrow := -1
		for i, f := range rest {
			if f == "=>" {
				arrow = i
				break
			}
		}
		matchParts := rest
		var argParts []string
		if arrow >= 0 {
			matchParts = rest[:arrow]
			argParts = rest[arrow+1:]
		}
		// Trailing "priority <n>".
		if len(argParts) >= 2 && argParts[len(argParts)-2] == "priority" {
			p, err := parseValue(argParts[len(argParts)-1])
			if err != nil {
				return nil, fmt.Errorf("rt: line %d: bad priority: %v", lineNo+1, err)
			}
			r.Priority = int(p)
			argParts = argParts[:len(argParts)-2]
		}
		for _, mp := range matchParts {
			m, err := parseMatch(mp)
			if err != nil {
				return nil, fmt.Errorf("rt: line %d: %v", lineNo+1, err)
			}
			r.Matches = append(r.Matches, m)
		}
		for _, ap := range argParts {
			v, err := parseValue(ap)
			if err != nil {
				return nil, fmt.Errorf("rt: line %d: bad action arg %q: %v", lineNo+1, ap, err)
			}
			r.Args = append(r.Args, v)
		}
		cfg.Add(r)
	}
	return cfg, nil
}

func parseMatch(s string) (FieldMatch, error) {
	switch {
	case strings.Contains(s, "&&&"):
		parts := strings.SplitN(s, "&&&", 2)
		v, err := parseValue(parts[0])
		if err != nil {
			return FieldMatch{}, err
		}
		m, err := parseValue(parts[1])
		if err != nil {
			return FieldMatch{}, err
		}
		return FieldMatch{Kind: p4.MatchTernary, Value: v, Mask: m}, nil
	case strings.Contains(s, ".."):
		parts := strings.SplitN(s, "..", 2)
		lo, err := parseValue(parts[0])
		if err != nil {
			return FieldMatch{}, err
		}
		hi, err := parseValue(parts[1])
		if err != nil {
			return FieldMatch{}, err
		}
		return FieldMatch{Kind: p4.MatchRange, Value: lo, RangeHi: hi}, nil
	case strings.Contains(s, "/"):
		parts := strings.SplitN(s, "/", 2)
		v, err := parseValue(parts[0])
		if err != nil {
			return FieldMatch{}, err
		}
		plen, err := strconv.Atoi(parts[1])
		if err != nil {
			return FieldMatch{}, fmt.Errorf("bad prefix length %q", parts[1])
		}
		return FieldMatch{Kind: p4.MatchLPM, Value: v, PrefixLen: plen}, nil
	default:
		v, err := parseValue(s)
		if err != nil {
			return FieldMatch{}, err
		}
		return FieldMatch{Kind: p4.MatchExact, Value: v}, nil
	}
}

// parseValue accepts decimal, 0x-hex, and dotted IPv4.
func parseValue(s string) (uint64, error) {
	if strings.Count(s, ".") == 3 {
		var a, b, c, d uint64
		if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err == nil &&
			a < 256 && b < 256 && c < 256 && d < 256 {
			return a<<24 | b<<16 | c<<8 | d, nil
		}
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// Format renders the configuration back to the text format.
func Format(cfg *Config) string {
	var b strings.Builder
	for _, r := range cfg.Rules {
		fmt.Fprintf(&b, "table_add %s %s", r.Table, r.Action)
		for _, m := range r.Matches {
			switch m.Kind {
			case p4.MatchLPM:
				fmt.Fprintf(&b, " %d/%d", m.Value, m.PrefixLen)
			case p4.MatchTernary:
				fmt.Fprintf(&b, " %d&&&%d", m.Value, m.Mask)
			case p4.MatchRange:
				fmt.Fprintf(&b, " %d..%d", m.Value, m.RangeHi)
			default:
				fmt.Fprintf(&b, " %d", m.Value)
			}
		}
		if len(r.Args) > 0 || r.Priority != 0 {
			b.WriteString(" =>")
			for _, a := range r.Args {
				fmt.Fprintf(&b, " %d", a)
			}
			if r.Priority != 0 {
				fmt.Fprintf(&b, " priority %d", r.Priority)
			}
		}
		b.WriteByte('\n')
	}
	for _, d := range cfg.Defaults {
		fmt.Fprintf(&b, "table_set_default %s %s", d.Table, d.Action)
		for _, a := range d.Args {
			fmt.Fprintf(&b, " %d", a)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
