package rt_test

import (
	"p2go/internal/rt"
	"strings"
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/programs"
)

func ex1IR(t *testing.T) *ir.Program {
	t.Helper()
	ast := p4.MustParse(programs.Ex1)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestParseEx1Rules(t *testing.T) {
	cfg, err := rt.Parse(programs.Ex1RulesText)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 6 {
		t.Fatalf("rules = %d, want 6", len(cfg.Rules))
	}
	r := cfg.Rules[0]
	if r.Table != "IPv4" || r.Action != "set_nhop" {
		t.Errorf("rule 0 = %+v", r)
	}
	if r.Matches[0].Kind != p4.MatchLPM || r.Matches[0].Value != 10<<24 || r.Matches[0].PrefixLen != 8 {
		t.Errorf("rule 0 match = %+v", r.Matches[0])
	}
	if len(r.Args) != 1 || r.Args[0] != 3 {
		t.Errorf("rule 0 args = %v", r.Args)
	}
}

func TestParseMatchKinds(t *testing.T) {
	cfg, err := rt.Parse(`
table_add t a 5&&&0xFF => 1 priority 7
table_add t b 10..20
table_add t c 0x1F
table_add t d 192.168.1.1/24
`)
	if err != nil {
		t.Fatal(err)
	}
	if m := cfg.Rules[0].Matches[0]; m.Kind != p4.MatchTernary || m.Value != 5 || m.Mask != 255 {
		t.Errorf("ternary = %+v", m)
	}
	if cfg.Rules[0].Priority != 7 {
		t.Errorf("priority = %d", cfg.Rules[0].Priority)
	}
	if m := cfg.Rules[1].Matches[0]; m.Kind != p4.MatchRange || m.Value != 10 || m.RangeHi != 20 {
		t.Errorf("range = %+v", m)
	}
	if m := cfg.Rules[2].Matches[0]; m.Kind != p4.MatchExact || m.Value != 31 {
		t.Errorf("hex exact = %+v", m)
	}
	if m := cfg.Rules[3].Matches[0]; m.Kind != p4.MatchLPM || m.Value != 0xC0A80101 || m.PrefixLen != 24 {
		t.Errorf("dotted lpm = %+v", m)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate x y",
		"table_add onlytable",
		"table_add t a xyz",
		"table_add t a 1 => zz",
		"table_add t a 1 => 2 priority abc",
	}
	for _, src := range bad {
		if _, err := rt.Parse(src); err == nil {
			t.Errorf("rt.Parse(%q): expected error", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	cfg, err := rt.Parse(programs.Ex1RulesText)
	if err != nil {
		t.Fatal(err)
	}
	text := rt.Format(cfg)
	cfg2, err := rt.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if rt.Format(cfg2) != text {
		t.Errorf("format not a fixed point:\n%s\nvs\n%s", text, rt.Format(cfg2))
	}
	if len(cfg2.Rules) != len(cfg.Rules) {
		t.Errorf("round trip lost rules")
	}
}

func TestValidateEx1(t *testing.T) {
	prog := ex1IR(t)
	if err := rt.Validate(programs.Ex1Config(), prog); err != nil {
		t.Errorf("Ex1 config should validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	prog := ex1IR(t)
	cases := map[string]string{
		"unknown table":     "table_add Ghost set_nhop 1/8 => 1",
		"foreign action":    "table_add ACL_UDP set_nhop 53 => 1",
		"wrong match count": "table_add IPv4 set_nhop 1/8 2/8 => 1",
		"wrong match kind":  "table_add IPv4 set_nhop 17 => 1",
		"wrong arg count":   "table_add IPv4 set_nhop 10.0.0.0/8 => 1 2",
		"value too wide":    "table_add ACL_UDP acl_udp_drop 70000",
		"prefix too long":   "table_add IPv4 set_nhop 10.0.0.0/40 => 1",
	}
	for name, text := range cases {
		cfg, err := rt.Parse(text)
		if err != nil {
			t.Errorf("%s: parse failed: %v", name, err)
			continue
		}
		if err := rt.Validate(cfg, prog); err == nil {
			t.Errorf("%s: rt.Validate(%q) expected error", name, text)
		}
	}
}

func TestValidateTableCapacity(t *testing.T) {
	prog := ex1IR(t)
	var b strings.Builder
	for i := 0; i <= prog.Tables["ACL_UDP"].Decl.Size; i++ {
		b.WriteString("table_add ACL_UDP acl_udp_drop ")
		b.WriteString(itoa(i))
		b.WriteByte('\n')
	}
	cfg, err := rt.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(cfg, prog); err == nil {
		t.Error("overfull table should fail validation")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestFieldMatchSemantics(t *testing.T) {
	lpm := rt.FieldMatch{Kind: p4.MatchLPM, Value: 0x0A000000, PrefixLen: 8}
	if !lpm.Matches(0x0A0B0C0D, 32) {
		t.Error("10.x should match 10/8")
	}
	if lpm.Matches(0x0B000000, 32) {
		t.Error("11.x should not match 10/8")
	}
	zero := rt.FieldMatch{Kind: p4.MatchLPM, Value: 0, PrefixLen: 0}
	if !zero.Matches(12345, 32) {
		t.Error("/0 matches everything")
	}
	tern := rt.FieldMatch{Kind: p4.MatchTernary, Value: 0x50, Mask: 0xF0}
	if !tern.Matches(0x5A, 8) || tern.Matches(0x6A, 8) {
		t.Error("ternary mask semantics broken")
	}
	rng := rt.FieldMatch{Kind: p4.MatchRange, Value: 10, RangeHi: 20}
	if !rng.Matches(10, 16) || !rng.Matches(20, 16) || rng.Matches(21, 16) {
		t.Error("range semantics broken")
	}
	ex := rt.FieldMatch{Kind: p4.MatchExact, Value: 7}
	if !ex.Matches(7, 8) || ex.Matches(8, 8) {
		t.Error("exact semantics broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := programs.Ex1Config()
	cp := cfg.Clone()
	cp.Rules[0].Args[0] = 99
	cp.Rules[0].Matches[0].Value = 1
	if cfg.Rules[0].Args[0] == 99 || cfg.Rules[0].Matches[0].Value == 1 {
		t.Error("Clone is shallow")
	}
}

func TestForTableAndTables(t *testing.T) {
	cfg := programs.Ex1Config()
	if got := len(cfg.ForTable("IPv4")); got != 3 {
		t.Errorf("IPv4 rules = %d, want 3", got)
	}
	tables := cfg.Tables()
	want := "ACL_DHCP,ACL_UDP,IPv4"
	if strings.Join(tables, ",") != want {
		t.Errorf("Tables = %v, want %s", tables, want)
	}
}

func TestTableSetDefault(t *testing.T) {
	cfg, err := rt.Parse(`
table_add routes route 10.0.0.0/8 => 1
table_set_default routes route 9
`)
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.DefaultFor("routes")
	if d == nil || d.Action != "route" || len(d.Args) != 1 || d.Args[0] != 9 {
		t.Fatalf("default = %+v", d)
	}
	if cfg.DefaultFor("ghost") != nil {
		t.Error("unknown table should have no default")
	}
	// Last override wins.
	cfg.Defaults = append(cfg.Defaults, rt.DefaultEntry{Table: "routes", Action: "route", Args: []uint64{5}})
	if got := cfg.DefaultFor("routes").Args[0]; got != 5 {
		t.Errorf("last override args = %d, want 5", got)
	}
	// Format round trip.
	text := rt.Format(cfg)
	if !strings.Contains(text, "table_set_default routes route 9") {
		t.Errorf("Format missing default: %s", text)
	}
	cfg2, err := rt.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg2.Defaults) != 2 {
		t.Errorf("round trip defaults = %d, want 2", len(cfg2.Defaults))
	}
	// Clone copies defaults deeply.
	cp := cfg.Clone()
	cp.Defaults[0].Args[0] = 77
	if cfg.Defaults[0].Args[0] == 77 {
		t.Error("Clone shares default args")
	}
}

func TestValidateDefaults(t *testing.T) {
	prog := ex1IR(t)
	bad := []string{
		"table_set_default Ghost set_nhop 1",
		"table_set_default IPv4 acl_udp_drop",     // foreign action
		"table_set_default IPv4 set_nhop",         // missing arg
		"table_set_default IPv4 ipv4_miss_drop 1", // extra arg
	}
	for _, text := range bad {
		cfg, err := rt.Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		if err := rt.Validate(cfg, prog); err == nil {
			t.Errorf("Validate(%q) expected error", text)
		}
	}
	good, err := rt.Parse("table_set_default IPv4 set_nhop 4")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(good, prog); err != nil {
		t.Errorf("valid default rejected: %v", err)
	}
}
