package cluster

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2go/internal/faults"
)

// fakeClock is a mutable clock shared by the replicas in a test so lease
// expiry is driven deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testNode(t *testing.T, dir, id string, clk *fakeClock, fs *faults.Set) *Node {
	t.Helper()
	n, err := Join(Config{Dir: dir, ID: id, TTL: time.Second, Faults: fs, Now: clk.Now})
	if err != nil {
		t.Fatalf("Join(%s): %v", id, err)
	}
	return n
}

func TestJobLeaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := testNode(t, dir, "a", clk, nil)
	b := testNode(t, dir, "b", clk, nil)

	lease, err := a.AcquireJob("job:abc")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if lease.Epoch != 1 || lease.Holder != "a" {
		t.Fatalf("lease = %+v, want epoch 1 holder a", lease)
	}

	// B cannot take the live lease.
	if _, err := b.AcquireJob("job:abc"); !errors.Is(err, ErrHeld) {
		t.Fatalf("b acquire while held = %v, want ErrHeld", err)
	}

	// Renewal extends expiry; the fence check passes for the holder.
	clk.Advance(500 * time.Millisecond)
	if err := a.RenewJob(lease); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := a.CheckJob(lease); err != nil {
		t.Fatalf("check after renew: %v", err)
	}

	// Past TTL without renewal B steals at epoch 2; A is fenced.
	clk.Advance(1500 * time.Millisecond)
	stolen, err := b.AcquireJob("job:abc")
	if err != nil {
		t.Fatalf("b takeover: %v", err)
	}
	if stolen.Epoch != 2 || stolen.Holder != "b" {
		t.Fatalf("stolen = %+v, want epoch 2 holder b", stolen)
	}
	if err := a.CheckJob(lease); !errors.Is(err, ErrFenced) {
		t.Fatalf("a check after takeover = %v, want ErrFenced", err)
	}
	if err := a.RenewJob(lease); !errors.Is(err, ErrFenced) {
		t.Fatalf("a renew after takeover = %v, want ErrFenced", err)
	}

	// A fenced holder's release is a no-op; the owner's release works.
	if err := a.ReleaseJob(lease); err != nil {
		t.Fatalf("fenced release: %v", err)
	}
	if _, ok, _ := b.JobLeaseState("job:abc"); !ok {
		t.Fatal("owner's lease vanished after fenced release")
	}
	if err := b.ReleaseJob(stolen); err != nil {
		t.Fatalf("owner release: %v", err)
	}
	if _, ok, _ := b.JobLeaseState("job:abc"); ok {
		t.Fatal("lease still present after owner release")
	}
}

func TestAcquireOwnLeaseRenews(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := testNode(t, dir, "a", clk, nil)

	l1, err := a.AcquireJob("job:self")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	clk.Advance(700 * time.Millisecond)
	l2, err := a.AcquireJob("job:self")
	if err != nil {
		t.Fatalf("re-acquire own lease: %v", err)
	}
	if l2.Epoch != l1.Epoch {
		t.Fatalf("re-acquire bumped epoch %d -> %d", l1.Epoch, l2.Epoch)
	}
	if !l2.Expires.After(l1.Expires) {
		t.Fatalf("re-acquire did not extend expiry: %v -> %v", l1.Expires, l2.Expires)
	}
}

func TestConcurrentStealSingleWinner(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	dead := testNode(t, dir, "dead", clk, nil)
	if _, err := dead.AcquireJob("job:contested"); err != nil {
		t.Fatalf("seed lease: %v", err)
	}
	clk.Advance(2 * time.Second) // expire it

	const contenders = 8
	nodes := make([]*Node, contenders)
	for i := range nodes {
		nodes[i] = testNode(t, dir, "n"+string(rune('a'+i)), clk, nil)
	}
	var wins atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, n := range nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			<-start
			lease, err := n.AcquireJob("job:contested")
			if err == nil {
				if lease.Epoch != 2 {
					t.Errorf("%s won at epoch %d, want 2", n.ID(), lease.Epoch)
				}
				wins.Add(1)
			} else if !errors.Is(err, ErrHeld) {
				t.Errorf("%s: unexpected error %v", n.ID(), err)
			}
		}(n)
	}
	close(start)
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d contenders won the steal, want exactly 1", wins.Load())
	}
}

func TestMembership(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := testNode(t, dir, "a", clk, nil)
	b := testNode(t, dir, "b", clk, nil)

	members, err := a.Members()
	if err != nil {
		t.Fatalf("members: %v", err)
	}
	if len(members) != 2 || members[0].ID != "a" || members[1].ID != "b" {
		t.Fatalf("members = %+v, want [a b]", members)
	}
	for _, m := range members {
		if !a.Alive(m) {
			t.Fatalf("member %s should be alive", m.ID)
		}
	}

	// B stops renewing; after TTL it reads as dead, A (renewing) stays
	// alive.
	clk.Advance(800 * time.Millisecond)
	if err := a.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.Advance(400 * time.Millisecond)
	members, _ = a.Members()
	for _, m := range members {
		alive := a.Alive(m)
		if m.ID == "a" && !alive {
			t.Fatal("a renewed but reads dead")
		}
		if m.ID == "b" && alive {
			t.Fatal("b stopped renewing but reads alive")
		}
	}

	// Graceful leave removes the lease entirely.
	if err := b.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	members, _ = a.Members()
	if len(members) != 1 || members[0].ID != "a" {
		t.Fatalf("members after leave = %+v, want [a]", members)
	}
}

func TestLeaseFaultInjection(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	// First two lease operations fail (injected loss), then recover.
	fs := faults.MustSet(faults.Spec{Point: faults.LeaseLost, From: 0, To: 2})
	a := testNode(t, dir, "a", clk, nil)
	a.cfg.Faults = fs

	if err := a.Renew(); !faults.IsInjected(err) {
		t.Fatalf("renew #1 = %v, want injected", err)
	}
	if _, err := a.AcquireJob("job:x"); !faults.IsInjected(err) {
		t.Fatalf("acquire = %v, want injected", err)
	}
	if err := a.Renew(); err != nil {
		t.Fatalf("renew after window: %v", err)
	}
	if _, err := a.AcquireJob("job:x"); err != nil {
		t.Fatalf("acquire after window: %v", err)
	}
}

func TestPartitionFault(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := testNode(t, dir, "a", clk, nil)
	lease, err := a.AcquireJob("job:p")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Partition everything from now on.
	a.cfg.Faults = faults.MustSet(faults.Spec{Point: faults.Partition, Probability: 1})
	if err := a.Renew(); !faults.IsInjected(err) {
		t.Fatalf("partitioned renew = %v, want injected", err)
	}
	if err := a.CheckJob(lease); !faults.IsInjected(err) {
		t.Fatalf("partitioned check = %v, want injected", err)
	}
	if _, err := a.Members(); !faults.IsInjected(err) {
		t.Fatalf("partitioned members = %v, want injected", err)
	}
}

func TestJoinValidation(t *testing.T) {
	clk := newFakeClock()
	if _, err := Join(Config{Dir: "", ID: "a", Now: clk.Now}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Join(Config{Dir: t.TempDir(), ID: "", Now: clk.Now}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := Join(Config{Dir: t.TempDir(), ID: "a/b", Now: clk.Now}); err == nil {
		t.Fatal("ID with slash accepted")
	}
}

func TestJournalPath(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := testNode(t, dir, "r1", clk, nil)
	want := filepath.Join(dir, "journal-r1.jsonl")
	if got := a.JournalPath("r1"); got != want {
		t.Fatalf("JournalPath = %q, want %q", got, want)
	}
}
