// Package cluster coordinates a p2god replica group through the shared
// filesystem the artifact cache already spills to: N daemon processes
// share one directory, announce themselves with fsynced membership
// leases, and claim per-job ownership leases with TTL expiry and epoch
// fencing. There is no network protocol and no elected leader — the only
// shared substrate is the directory, which is exactly the deployment
// shape the disk-spill layer created (replicas on one host or one shared
// volume).
//
// The safety argument is the classic lease + fencing-token one:
//
//   - A lease names a holder and an expiry. Holders renew well before
//     expiry; a holder that stops renewing (kill -9, partition from the
//     directory) loses the lease when it expires.
//   - Every acquisition of a job lease — first claim or takeover — wins a
//     strictly higher epoch. Epochs are decided by an atomic
//     link(2)-based compare-and-swap on the lease file name, so exactly
//     one contender wins each epoch even when several replicas race to
//     reclaim a dead peer's work.
//   - Before committing a result, the worker re-checks its lease: if a
//     higher epoch exists (someone took the job over while the worker
//     was paused or partitioned), the commit is fenced off. A stale
//     replica can therefore compute, but never publish.
//
// Time is injectable (Config.Now) so expiry and fencing are testable
// with a synthetic clock; the file formats are JSON-per-file, written
// with the same write-temp, fsync, rename discipline as the crash-atomic
// artifact spills.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"p2go/internal/faults"
)

// Lease-state errors. ErrHeld and ErrFenced are sentinel-wrapped so
// callers can classify with errors.Is.
var (
	// ErrHeld means another replica holds an unexpired lease on the job.
	ErrHeld = errors.New("cluster: lease held by another replica")
	// ErrFenced means the caller's lease was superseded (a higher epoch
	// exists, or the lease is gone): its writes must be discarded.
	ErrFenced = errors.New("cluster: lease fenced (superseded by a newer epoch)")
)

// DefaultTTL is the lease time-to-live when Config.TTL is zero. Renewal
// should run at a small fraction of this (the daemon uses TTL/3).
const DefaultTTL = 5 * time.Second

// Config describes one replica's membership in the group.
type Config struct {
	// Dir is the shared coordination directory. All replicas of a group
	// must use the same one (typically alongside the shared spill dir).
	Dir string
	// ID names this replica; it must be unique in the group and stable
	// across restarts (it keys the replica's journal file).
	ID string
	// TTL is the lease time-to-live; 0 means DefaultTTL.
	TTL time.Duration
	// Faults injects coordination failures (faults.LeaseLost,
	// faults.Partition, faults.SlowDisk); nil is inert.
	Faults *faults.Set
	// Now is the clock; nil means time.Now. Tests drive expiry with it.
	Now func() time.Time
}

// Node is one replica's handle on the group. All methods are safe for
// concurrent use: the mutable state lives in lease files, and every
// mutation is an atomic rename or link.
type Node struct {
	cfg Config
	now func() time.Time
}

// memberRecord is a membership lease file: "replica ID is alive until
// Expires". Dying simply means ceasing to renew.
type memberRecord struct {
	ID      string `json:"id"`
	Expires int64  `json:"expires_unix_nano"`
	Renewed int64  `json:"renewed_unix_nano"`
}

// Member is one replica's membership lease as read from the group dir.
type Member struct {
	ID      string
	Expires time.Time
	Renewed time.Time
}

// jobRecord is a job-ownership lease file at one epoch.
type jobRecord struct {
	Key     string `json:"key"`
	Holder  string `json:"holder"`
	Epoch   int64  `json:"epoch"`
	Expires int64  `json:"expires_unix_nano"`
}

// JobLease is a held (or observed) job-ownership lease. Holders keep the
// value returned by AcquireJob and pass it to RenewJob/CheckJob; the
// epoch inside is the fencing token.
type JobLease struct {
	Key     string
	Holder  string
	Epoch   int64
	Expires time.Time
}

// Join registers the replica in the group directory and writes its first
// membership lease. The directory layout is created as needed.
func Join(cfg Config) (*Node, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: empty group directory")
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: empty replica ID")
	}
	if strings.ContainsAny(cfg.ID, "/\\ \t\n") {
		return nil, fmt.Errorf("cluster: replica ID %q contains path or space characters", cfg.ID)
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	n := &Node{cfg: cfg, now: cfg.Now}
	if n.now == nil {
		n.now = time.Now
	}
	for _, d := range []string{n.memberDir(), n.jobDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}
	if err := n.Renew(); err != nil {
		return nil, err
	}
	return n, nil
}

// ID returns the replica's identifier.
func (n *Node) ID() string { return n.cfg.ID }

// TTL returns the group's lease time-to-live.
func (n *Node) TTL() time.Duration { return n.cfg.TTL }

// Dir returns the shared coordination directory.
func (n *Node) Dir() string { return n.cfg.Dir }

// JournalPath returns the conventional journal location for a replica in
// this group; replicas journal into the shared directory so survivors
// can read a dead peer's accepted-but-unfinished jobs.
func (n *Node) JournalPath(id string) string {
	return filepath.Join(n.cfg.Dir, "journal-"+id+".jsonl")
}

func (n *Node) memberDir() string { return filepath.Join(n.cfg.Dir, "members") }
func (n *Node) jobDir() string    { return filepath.Join(n.cfg.Dir, "jobs") }

// Renew extends this replica's membership lease to now+TTL. A renewal
// that fails (injected lease loss, partition, disk error) leaves the
// previous lease aging toward expiry — the caller's loop just tries
// again next tick.
func (n *Node) Renew() error {
	if err := n.cfg.Faults.Err(faults.LeaseLost); err != nil {
		return fmt.Errorf("cluster: renew membership: %w", err)
	}
	if err := n.cfg.Faults.Err(faults.Partition); err != nil {
		return fmt.Errorf("cluster: renew membership: %w", err)
	}
	now := n.now()
	rec := memberRecord{
		ID:      n.cfg.ID,
		Expires: now.Add(n.cfg.TTL).UnixNano(),
		Renewed: now.UnixNano(),
	}
	return n.writeAtomic(filepath.Join(n.memberDir(), n.cfg.ID+".lease"), rec)
}

// Leave removes this replica's membership lease (a graceful goodbye;
// peers treat the replica as dead immediately instead of after TTL).
func (n *Node) Leave() error {
	return os.Remove(filepath.Join(n.memberDir(), n.cfg.ID+".lease"))
}

// Members lists every membership lease in the group, including expired
// ones (the caller distinguishes with Alive). Order is by replica ID.
func (n *Node) Members() ([]Member, error) {
	if err := n.cfg.Faults.Err(faults.Partition); err != nil {
		return nil, fmt.Errorf("cluster: list members: %w", err)
	}
	entries, err := os.ReadDir(n.memberDir())
	if err != nil {
		return nil, fmt.Errorf("cluster: list members: %w", err)
	}
	var out []Member
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lease") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(n.memberDir(), e.Name()))
		if err != nil {
			continue // racing with a rename; next scan sees it
		}
		var rec memberRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
			continue
		}
		out = append(out, Member{
			ID:      rec.ID,
			Expires: time.Unix(0, rec.Expires),
			Renewed: time.Unix(0, rec.Renewed),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Alive reports whether a member's lease has not yet expired.
func (n *Node) Alive(m Member) bool {
	return n.now().Before(m.Expires)
}

// AcquireJob claims the job lease for key at the next epoch. It succeeds
// when the job has never been leased, when the current lease expired
// (takeover: the epoch strictly increases, fencing the old holder), or
// when this replica already holds it (the existing lease is returned
// renewed). It fails with ErrHeld while another replica's lease is live,
// and with ErrHeld when it loses the acquisition race.
func (n *Node) AcquireJob(key string) (*JobLease, error) {
	if err := n.cfg.Faults.Err(faults.LeaseLost); err != nil {
		return nil, fmt.Errorf("cluster: acquire %s: %w", key, err)
	}
	if err := n.cfg.Faults.Err(faults.Partition); err != nil {
		return nil, fmt.Errorf("cluster: acquire %s: %w", key, err)
	}
	cur, err := n.readJob(key)
	if err != nil {
		return nil, err
	}
	now := n.now()
	if cur != nil {
		if cur.Holder == n.cfg.ID {
			// Re-acquiring our own lease (e.g. after a restart that kept
			// the ID): renew it in place at the same epoch.
			lease := &JobLease{Key: key, Holder: cur.Holder, Epoch: cur.Epoch, Expires: now.Add(n.cfg.TTL)}
			if err := n.RenewJob(lease); err != nil {
				return nil, err
			}
			return lease, nil
		}
		if now.Before(time.Unix(0, cur.Expires)) {
			return nil, fmt.Errorf("%w: %s holds %s (epoch %d)", ErrHeld, cur.Holder, key, cur.Epoch)
		}
	}
	epoch := int64(1)
	if cur != nil {
		epoch = cur.Epoch + 1
	}
	rec := jobRecord{Key: key, Holder: n.cfg.ID, Epoch: epoch, Expires: now.Add(n.cfg.TTL).UnixNano()}
	target := n.jobPath(key, epoch)
	if err := n.linkAtomic(target, rec); err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w: lost the epoch-%d race for %s", ErrHeld, epoch, key)
		}
		return nil, err
	}
	// We own the new epoch; older epoch files are dead weight now.
	n.removeEpochsBelow(key, epoch)
	return &JobLease{Key: key, Holder: n.cfg.ID, Epoch: epoch, Expires: time.Unix(0, rec.Expires)}, nil
}

// RenewJob extends a held lease to now+TTL. It re-verifies the epoch
// first: renewing a superseded lease fails with ErrFenced rather than
// resurrecting it.
func (n *Node) RenewJob(l *JobLease) error {
	if err := n.cfg.Faults.Err(faults.LeaseLost); err != nil {
		return fmt.Errorf("cluster: renew %s: %w", l.Key, err)
	}
	if err := n.cfg.Faults.Err(faults.Partition); err != nil {
		return fmt.Errorf("cluster: renew %s: %w", l.Key, err)
	}
	cur, err := n.readJob(l.Key)
	if err != nil {
		return err
	}
	if cur == nil || cur.Epoch != l.Epoch || cur.Holder != l.Holder {
		return n.fenceErr(l, cur)
	}
	rec := jobRecord{Key: l.Key, Holder: l.Holder, Epoch: l.Epoch, Expires: n.now().Add(n.cfg.TTL).UnixNano()}
	if err := n.writeAtomic(n.jobPath(l.Key, l.Epoch), rec); err != nil {
		return err
	}
	l.Expires = time.Unix(0, rec.Expires)
	return nil
}

// CheckJob is the commit-time fence: it succeeds only while the caller's
// epoch is still the newest lease on the job. A paused or partitioned
// replica whose work was taken over gets ErrFenced here and must discard
// its result.
func (n *Node) CheckJob(l *JobLease) error {
	if err := n.cfg.Faults.Err(faults.Partition); err != nil {
		return fmt.Errorf("cluster: check %s: %w", l.Key, err)
	}
	cur, err := n.readJob(l.Key)
	if err != nil {
		return err
	}
	if cur == nil || cur.Epoch != l.Epoch || cur.Holder != l.Holder {
		return n.fenceErr(l, cur)
	}
	return nil
}

// ReleaseJob removes the lease after the job's outcome is durable. Only
// the current holder's release takes effect; a fenced holder's release
// is a no-op (the new owner's lease stays).
func (n *Node) ReleaseJob(l *JobLease) error {
	cur, err := n.readJob(l.Key)
	if err != nil {
		return err
	}
	if cur == nil || cur.Epoch != l.Epoch || cur.Holder != l.Holder {
		return nil
	}
	return os.Remove(n.jobPath(l.Key, l.Epoch))
}

// JobLeaseState reads the current (highest-epoch) lease on key; ok is
// false when the job has no lease.
func (n *Node) JobLeaseState(key string) (JobLease, bool, error) {
	cur, err := n.readJob(key)
	if err != nil || cur == nil {
		return JobLease{}, false, err
	}
	return JobLease{Key: key, Holder: cur.Holder, Epoch: cur.Epoch, Expires: time.Unix(0, cur.Expires)}, true, nil
}

// Expired reports whether a lease observed via JobLeaseState is past its
// expiry on this node's clock.
func (n *Node) Expired(l JobLease) bool {
	return !n.now().Before(l.Expires)
}

func (n *Node) fenceErr(l *JobLease, cur *jobRecord) error {
	if cur == nil {
		return fmt.Errorf("%w: lease for %s (epoch %d) no longer exists", ErrFenced, l.Key, l.Epoch)
	}
	return fmt.Errorf("%w: %s epoch %d held by %s supersedes epoch %d",
		ErrFenced, l.Key, cur.Epoch, cur.Holder, l.Epoch)
}

// readJob returns the highest-epoch lease record for key, or nil when
// the job has none. Unparseable files (a reader racing a writer on a
// filesystem without atomic rename semantics would see them; ours has
// them, so in practice only corruption does) are ignored.
func (n *Node) readJob(key string) (*jobRecord, error) {
	if err := n.cfg.Faults.Err(faults.Partition); err != nil {
		return nil, fmt.Errorf("cluster: read lease %s: %w", key, err)
	}
	prefix := sanitize(key) + ".ep"
	entries, err := os.ReadDir(n.jobDir())
	if err != nil {
		return nil, fmt.Errorf("cluster: read lease %s: %w", key, err)
	}
	var best *jobRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		epoch, err := strconv.ParseInt(name[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		if best != nil && epoch <= best.Epoch {
			continue
		}
		data, err := os.ReadFile(filepath.Join(n.jobDir(), name))
		if err != nil {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue
		}
		rec.Epoch = epoch // the file name is authoritative for the CAS
		r := rec
		best = &r
	}
	return best, nil
}

func (n *Node) jobPath(key string, epoch int64) string {
	return filepath.Join(n.jobDir(), fmt.Sprintf("%s.ep%d", sanitize(key), epoch))
}

// removeEpochsBelow garbage-collects superseded epoch files; best effort.
func (n *Node) removeEpochsBelow(key string, epoch int64) {
	prefix := sanitize(key) + ".ep"
	entries, err := os.ReadDir(n.jobDir())
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		old, err := strconv.ParseInt(name[len(prefix):], 10, 64)
		if err == nil && old < epoch {
			_ = os.Remove(filepath.Join(n.jobDir(), name))
		}
	}
}

// writeAtomic writes a lease record with the crash-atomic discipline:
// unique temp file, fsync, rename over the target, fsync the directory.
// A kill -9 at any point leaves either the old record or the new one,
// never a torn file.
func (n *Node) writeAtomic(path string, v any) error {
	if n.cfg.Faults.Fire(faults.SlowDisk) {
		time.Sleep(2 * time.Millisecond)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".lease-*")
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// linkAtomic publishes a fully written, fsynced record at target via
// link(2), which fails with EEXIST if target already exists — the atomic
// compare-and-swap that decides each epoch's single winner.
func (n *Node) linkAtomic(target string, v any) error {
	if n.cfg.Faults.Fire(faults.SlowDisk) {
		time.Sleep(2 * time.Millisecond)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(target), ".lease-*")
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if err := os.Link(name, target); err != nil {
		return err // may wrap os.ErrExist: the CAS lost
	}
	syncDir(filepath.Dir(target))
	return nil
}

// syncDir fsyncs a directory so renames and links within it are durable;
// best effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// sanitize maps a lease key to a safe file-name stem.
func sanitize(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
