// Package deps builds the table dependency graph of a P4 program, the
// artifact Fig. 1 of the paper shows. Dependencies follow the paper's
// definition: two tables are dependent if their actions modify the same
// fields (write-after-write), if one reads a field the other modifies
// (read-after-write, via match key or action input), or if a control
// statement guarding one reads a field the other's actions modify
// (control dependency).
//
// Edges are action-precise: each edge carries the (fromAction, toAction)
// pairs that cause it, so Phase 2 can check whether a dependency manifests
// in a profile ("the actions in both tables that cause the dependency are
// not in any set of non-exclusive actions"). Pairs whose actions provably
// cannot execute on the same packet — mutually exclusive branches, or
// hit-only vs. miss-arm placement — are never added; that static pruning is
// exactly the mechanism Phase 2's rewrite exploits.
package deps

import (
	"fmt"
	"sort"
	"strings"

	"p2go/internal/ir"
	"p2go/internal/p4"
)

// Kind classifies why two tables are dependent.
type Kind int

// Dependency kinds.
const (
	// KindReadAfterWrite: the later table reads (match key or action
	// input) a field an earlier action writes.
	KindReadAfterWrite Kind = iota
	// KindWriteAfterWrite: actions in both tables write the same field.
	KindWriteAfterWrite
	// KindControl: a condition guarding the later table reads a field an
	// earlier action writes.
	KindControl
)

func (k Kind) String() string {
	switch k {
	case KindReadAfterWrite:
		return "read-after-write"
	case KindWriteAfterWrite:
		return "write-after-write"
	case KindControl:
		return "control"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Pair is one action-level conflict underlying an edge. ToAction is empty
// when the conflict is with the later table's match key (read-after-write)
// or with a guarding condition (control).
type Pair struct {
	FromAction string
	ToAction   string
	Kind       Kind
	Fields     []ir.FieldKey
}

func (p Pair) String() string {
	to := p.ToAction
	if to == "" {
		switch p.Kind {
		case KindControl:
			to = "<guard>"
		default:
			to = "<match>"
		}
	}
	fields := make([]string, len(p.Fields))
	for i, f := range p.Fields {
		fields[i] = string(f)
	}
	return fmt.Sprintf("%s/%s on {%s} (%s)", p.FromAction, to, strings.Join(fields, ","), p.Kind)
}

// Edge is a dependency from an earlier table to a later one.
type Edge struct {
	From  string
	To    string
	Pairs []Pair
}

// Kinds returns the distinct kinds present on the edge, sorted.
func (e *Edge) Kinds() []Kind {
	seen := map[Kind]bool{}
	var out []Kind
	for _, p := range e.Pairs {
		if !seen[p.Kind] {
			seen[p.Kind] = true
			out = append(out, p.Kind)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e *Edge) String() string {
	return fmt.Sprintf("%s -> %s", e.From, e.To)
}

// Graph is the dependency graph over the program's applied tables.
type Graph struct {
	Prog  *ir.Program
	Nodes []string // applied tables, control order
	Edges []*Edge  // sorted by (From.Order, To.Order)

	index map[[2]string]*Edge
}

// Build computes the dependency graph for the program.
func Build(prog *ir.Program) *Graph {
	g := &Graph{Prog: prog, index: map[[2]string]*Edge{}}
	for _, t := range prog.Ordered {
		g.Nodes = append(g.Nodes, t.Name)
	}
	for i, from := range prog.Ordered {
		for _, to := range prog.Ordered[i+1:] {
			if from.Pipeline != to.Pipeline {
				// Ingress and egress tables occupy separate physical
				// pipelines: the whole egress pipeline runs after the
				// ingress pipeline, so they never contend for a stage.
				continue
			}
			if prog.MutuallyExclusive(from.Name, to.Name) {
				continue
			}
			pairs := conflicts(prog, from, to)
			if len(pairs) == 0 {
				continue
			}
			e := &Edge{From: from.Name, To: to.Name, Pairs: pairs}
			g.Edges = append(g.Edges, e)
			g.index[[2]string{from.Name, to.Name}] = e
		}
	}
	return g
}

// Edge returns the edge from -> to, or nil.
func (g *Graph) Edge(from, to string) *Edge {
	return g.index[[2]string{from, to}]
}

// Predecessors returns the tables with an edge into the given table, in
// control order. It satisfies the allocator's DependencyEdges interface.
func (g *Graph) Predecessors(table string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.To == table {
			out = append(out, e.From)
		}
	}
	return out
}

// conflicts computes the action-level conflict pairs between from and to.
func conflicts(prog *ir.Program, from, to *ir.Table) []Pair {
	var pairs []Pair
	add := func(fromAction, toAction string, kind Kind, fields []ir.FieldKey) {
		if len(fields) == 0 {
			return
		}
		pairs = append(pairs, Pair{FromAction: fromAction, ToAction: toAction, Kind: kind, Fields: fields})
	}
	for _, a := range from.Actions {
		// Write-after-write between specific actions.
		for _, b := range to.Actions {
			if !canCoOccur(prog, from, a, to, b) {
				continue
			}
			add(a.Name, b.Name, KindWriteAfterWrite, fieldIntersection(a.Writes, b.Writes))
			// Read-after-write into the later action's inputs.
			add(a.Name, b.Name, KindReadAfterWrite, fieldIntersection(a.Writes, b.Reads))
		}
		// Read-after-write into the later table's match key.
		if canCoOccur(prog, from, a, to, nil) {
			add(a.Name, "", KindReadAfterWrite, fieldIntersection(a.Writes, to.MatchReads))
			// Control dependency through the later table's guards.
			add(a.Name, "", KindControl, fieldIntersection(a.Writes, to.GuardReads))
		}
	}
	return pairs
}

func fieldIntersection(a, b ir.FieldSet) []ir.FieldKey {
	return a.Intersection(b)
}

// canCoOccur reports whether action a of table A and action b of table B
// (b == nil meaning "B's match/guard evaluation") can execute on the same
// packet, using structural facts only: mutual exclusion was already checked
// by the caller; here we prune hit/miss-arm placements. A table in the miss
// arm of another runs only when that table missed, i.e. only the default
// action of the outer table executed.
func canCoOccur(prog *ir.Program, ta *ir.Table, a *ir.Action, tb *ir.Table, b *ir.Action) bool {
	if g := findGuard(tb, ta.Name); g != nil {
		// B is inside A's hit or miss arm.
		if g.OnHit {
			// Any action of A may have produced the hit (rules can
			// install any declared action), so no pruning.
			return true
		}
		// Only A's default action runs on a miss.
		return ta.Default != nil && a.Name == ta.Default.Name
	}
	if g := findGuard(ta, tb.Name); g != nil {
		// A is inside B's hit or miss arm (A still runs first in source
		// order only if nested before; order was fixed by caller).
		if b == nil {
			return true // B's match already happened for A to run
		}
		if g.OnHit {
			return true
		}
		return tb.Default != nil && b.Name == tb.Default.Name
	}
	return true
}

func findGuard(t *ir.Table, outer string) *ir.HitMissGuard {
	for i := range t.GuardedByHitMiss {
		if t.GuardedByHitMiss[i].Table == outer {
			return &t.GuardedByHitMiss[i]
		}
	}
	return nil
}

// LongestPaths returns every maximal-length path (by node count) through
// the dependency graph, each as a sequence of table names.
func (g *Graph) LongestPaths() [][]string {
	succ := map[string][]string{}
	for _, e := range g.Edges {
		succ[e.From] = append(succ[e.From], e.To)
	}
	// Nodes are already topologically ordered (edges go forward in
	// control order), so a reverse scan computes longest chains.
	depth := map[string]int{}
	next := map[string][]string{} // successors continuing a longest path
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		best := 0
		for _, s := range succ[n] {
			if depth[s] > best {
				best = depth[s]
			}
		}
		for _, s := range succ[n] {
			if depth[s] == best {
				next[n] = append(next[n], s)
			}
		}
		depth[n] = best + 1
	}
	max := 0
	for _, n := range g.Nodes {
		if depth[n] > max {
			max = depth[n]
		}
	}
	var out [][]string
	var walk func(n string, acc []string)
	walk = func(n string, acc []string) {
		acc = append(acc, n)
		if len(next[n]) == 0 {
			out = append(out, append([]string(nil), acc...))
			return
		}
		for _, s := range next[n] {
			walk(s, acc)
		}
	}
	for _, n := range g.Nodes {
		if depth[n] == max {
			walk(n, nil)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// LongestPathEdges returns the edges that lie on at least one longest path,
// ordered by (from, to) control order. These are Phase 2's removal
// candidates: "only those have the potential to shorten the pipeline".
func (g *Graph) LongestPathEdges() []*Edge {
	seen := map[*Edge]bool{}
	var out []*Edge
	for _, path := range g.LongestPaths() {
		for i := 0; i+1 < len(path); i++ {
			if e := g.Edge(path[i], path[i+1]); e != nil && !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		oa, ob := g.Prog.Tables[a.From].Order, g.Prog.Tables[b.From].Order
		if oa != ob {
			return oa < ob
		}
		return g.Prog.Tables[a.To].Order < g.Prog.Tables[b.To].Order
	})
	return out
}

// Dot renders the dependency graph in Graphviz format, in the style of the
// paper's Fig. 1: solid violet edges for write-after-write (action)
// dependencies, dashed blue edges for read-after-write, and diamond nodes
// for control statements with black edges to the tables they guard.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph deps {\n    rankdir=TB;\n    node [shape=box];\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "    %q;\n", n)
	}
	condID := 0
	condNodes := map[string]string{} // cond text -> node id
	for _, e := range g.Edges {
		kinds := e.Kinds()
		for _, k := range kinds {
			switch k {
			case KindWriteAfterWrite:
				fmt.Fprintf(&b, "    %q -> %q [style=dotted color=violet label=\"action\"];\n", e.From, e.To)
			case KindReadAfterWrite:
				fmt.Fprintf(&b, "    %q -> %q [style=dashed color=blue label=\"match\"];\n", e.From, e.To)
			case KindControl:
				// Render through a diamond condition node.
				cond := guardText(g.Prog, e.From, e.To)
				id, ok := condNodes[cond]
				if !ok {
					id = fmt.Sprintf("cond%d", condID)
					condID++
					condNodes[cond] = id
					fmt.Fprintf(&b, "    %s [shape=diamond label=%q];\n", id, cond)
				}
				fmt.Fprintf(&b, "    %q -> %s [style=dashed color=blue];\n", e.From, id)
				fmt.Fprintf(&b, "    %s -> %q [color=black];\n", id, e.To)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// guardText finds the source text of the condition on `to` that reads a
// field written by `from`, for Fig. 1 rendering.
func guardText(prog *ir.Program, from, to string) string {
	ft := prog.Tables[from]
	writes := ft.ActionWrites()
	var found string
	p4.WalkStmts(prog.Ingress.Body, func(s p4.Stmt) bool {
		ifs, ok := s.(*p4.IfStmt)
		if !ok {
			return true
		}
		reads := CondReads(ifs.Cond)
		if !reads.Intersects(writes) {
			return true
		}
		// Does this if guard `to`?
		guards := false
		p4.WalkStmts(ifs.Then, func(inner p4.Stmt) bool {
			if ap, ok := inner.(*p4.ApplyStmt); ok && ap.Table == to {
				guards = true
				return false
			}
			return true
		})
		if !guards {
			p4.WalkStmts(ifs.Else, func(inner p4.Stmt) bool {
				if ap, ok := inner.(*p4.ApplyStmt); ok && ap.Table == to {
					guards = true
					return false
				}
				return true
			})
		}
		if guards {
			found = p4.BoolExprString(ifs.Cond)
			return false
		}
		return true
	})
	if found == "" {
		return "guard"
	}
	return found
}

// CondReads collects the field keys a boolean expression reads.
func CondReads(e p4.BoolExpr) ir.FieldSet {
	out := ir.FieldSet{}
	var visit func(p4.BoolExpr)
	visit = func(e p4.BoolExpr) {
		switch v := e.(type) {
		case *p4.CompareExpr:
			for _, side := range []p4.Expr{v.Left, v.Right} {
				if ref, ok := side.(p4.FieldRef); ok && ref.Field != "" {
					out.Add(ir.Key(ref))
				}
			}
		case *p4.BinaryBoolExpr:
			visit(v.Left)
			visit(v.Right)
		case *p4.NotExpr:
			visit(v.X)
		}
	}
	visit(e)
	return out
}
