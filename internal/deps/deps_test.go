package deps

import (
	"strings"
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
)

// firewall is a distilled version of the paper's Example 1 control flow:
// an IPv4 forwarding table, two ACLs whose drop actions conflict on the
// egress spec, a two-row Count-Min Sketch, a min table, and a drop table
// guarded by a threshold condition.
const firewall = `
header_type ipv4_t {
    fields { srcAddr : 32; dstAddr : 32; protocol : 8; }
}
header_type udp_t {
    fields { srcPort : 16; dstPort : 16; }
}
header_type meta_t {
    fields { idx1 : 16; idx2 : 16; count1 : 32; count2 : 32; sketch_count : 32; }
}
header ipv4_t ipv4;
header udp_t udp;
metadata meta_t meta;

register cms_r1 { width : 32; instance_count : 1024; }
register cms_r2 { width : 32; instance_count : 1024; }

field_list flow { ipv4.srcAddr; ipv4.dstAddr; }
field_list_calculation cms_h1 {
    input { flow; }
    algorithm : crc16;
    output_width : 16;
}
field_list_calculation cms_h2 {
    input { flow; }
    algorithm : crc32;
    output_width : 16;
}

parser start { extract(ipv4); return ingress; }

action set_nhop(port) { modify_field(standard_metadata.egress_spec, port); }
action ipv4_drop() { drop(); }
action acl_drop() { drop(); }
action dhcp_drop() { drop(); }
action sketch1_count() {
    modify_field_with_hash_based_offset(meta.idx1, 0, cms_h1, 1024);
    register_read(meta.count1, cms_r1, meta.idx1);
    add_to_field(meta.count1, 1);
    register_write(cms_r1, meta.idx1, meta.count1);
}
action sketch2_count() {
    modify_field_with_hash_based_offset(meta.idx2, 0, cms_h2, 1024);
    register_read(meta.count2, cms_r2, meta.idx2);
    add_to_field(meta.count2, 1);
    register_write(cms_r2, meta.idx2, meta.count2);
}
action take_min() { min(meta.sketch_count, meta.count1, meta.count2); }
action dns_dropper() { drop(); }

table IPv4 {
    reads { ipv4.dstAddr : lpm; }
    actions { set_nhop; ipv4_drop; }
    size : 128;
    default_action : ipv4_drop;
}
table ACL_UDP {
    reads { udp.dstPort : exact; }
    actions { acl_drop; }
    size : 16;
}
table ACL_DHCP {
    reads { standard_metadata.ingress_port : exact; }
    actions { dhcp_drop; }
    size : 16;
}
table Sketch_1 { actions { sketch1_count; } default_action : sketch1_count; }
table Sketch_2 { actions { sketch2_count; } default_action : sketch2_count; }
table Sketch_Min { actions { take_min; } default_action : take_min; }
table DNS_Drop { actions { dns_dropper; } default_action : dns_dropper; }

control ingress {
    apply(IPv4);
    if (valid(udp)) {
        apply(ACL_UDP);
    }
    if (udp.dstPort == 67) {
        apply(ACL_DHCP);
    }
    if (udp.dstPort == 53) {
        apply(Sketch_1);
        apply(Sketch_2);
        apply(Sketch_Min);
        if (meta.sketch_count >= 128) {
            apply(DNS_Drop);
        }
    }
}
`

func buildFirewall(t *testing.T) *Graph {
	t.Helper()
	ast := p4.MustParse(firewall)
	if err := p4.Check(ast); err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	return Build(prog)
}

func TestFirewallEdges(t *testing.T) {
	g := buildFirewall(t)
	wantEdges := [][2]string{
		{"IPv4", "ACL_UDP"},     // both write egress_spec
		{"IPv4", "ACL_DHCP"},    // both write egress_spec
		{"ACL_UDP", "ACL_DHCP"}, // both write egress_spec
		{"IPv4", "DNS_Drop"},
		{"Sketch_1", "Sketch_Min"}, // min reads count1
		{"Sketch_2", "Sketch_Min"}, // min reads count2
		{"Sketch_Min", "DNS_Drop"}, // threshold condition reads sketch_count
	}
	for _, w := range wantEdges {
		if g.Edge(w[0], w[1]) == nil {
			t.Errorf("missing edge %s -> %s", w[0], w[1])
		}
	}
	// Sketches are independent of one another and of the ACLs.
	for _, none := range [][2]string{
		{"Sketch_1", "Sketch_2"},
		{"ACL_UDP", "Sketch_1"},
		{"ACL_DHCP", "Sketch_2"},
		{"IPv4", "Sketch_1"},
	} {
		if e := g.Edge(none[0], none[1]); e != nil {
			t.Errorf("unexpected edge %s -> %s: %v", none[0], none[1], e.Pairs)
		}
	}
}

func TestFirewallEdgeKinds(t *testing.T) {
	g := buildFirewall(t)
	e := g.Edge("ACL_UDP", "ACL_DHCP")
	if e == nil {
		t.Fatal("missing ACL edge")
	}
	kinds := e.Kinds()
	if len(kinds) != 1 || kinds[0] != KindWriteAfterWrite {
		t.Errorf("ACL edge kinds = %v, want [write-after-write]", kinds)
	}
	if len(e.Pairs) != 1 || e.Pairs[0].FromAction != "acl_drop" || e.Pairs[0].ToAction != "dhcp_drop" {
		t.Errorf("ACL edge pairs = %v", e.Pairs)
	}
	cd := g.Edge("Sketch_Min", "DNS_Drop")
	if cd == nil {
		t.Fatal("missing control edge")
	}
	found := false
	for _, p := range cd.Pairs {
		if p.Kind == KindControl && p.ToAction == "" {
			found = true
		}
	}
	if !found {
		t.Errorf("Sketch_Min -> DNS_Drop pairs = %v, want a control pair", cd.Pairs)
	}
	raw := g.Edge("Sketch_1", "Sketch_Min")
	if raw == nil {
		t.Fatal("missing RAW edge")
	}
	if ks := raw.Kinds(); len(ks) != 1 || ks[0] != KindReadAfterWrite {
		t.Errorf("Sketch_1 -> Sketch_Min kinds = %v", ks)
	}
}

func TestLongestPath(t *testing.T) {
	g := buildFirewall(t)
	paths := g.LongestPaths()
	if len(paths) == 0 {
		t.Fatal("no longest paths")
	}
	// IPv4 -> ACL_UDP -> ACL_DHCP -> DNS_Drop is length 4; so is
	// IPv4 -> Sketch? No: IPv4 has no edge to the sketches. The sketch
	// chain Sketch_1 -> Sketch_Min -> DNS_Drop is length 3.
	for _, p := range paths {
		if len(p) != 4 {
			t.Errorf("longest path %v has %d nodes, want 4", p, len(p))
		}
	}
	joined := make([]string, len(paths))
	for i, p := range paths {
		joined[i] = strings.Join(p, ">")
	}
	all := strings.Join(joined, " ")
	if !strings.Contains(all, "IPv4>ACL_UDP>ACL_DHCP>DNS_Drop") {
		t.Errorf("longest paths = %v, want to include the ACL chain", joined)
	}
}

func TestLongestPathEdgesAreCandidates(t *testing.T) {
	g := buildFirewall(t)
	edges := g.LongestPathEdges()
	has := func(from, to string) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has("ACL_UDP", "ACL_DHCP") {
		t.Errorf("candidates %v missing ACL_UDP -> ACL_DHCP", edges)
	}
	if has("Sketch_1", "Sketch_Min") {
		t.Errorf("Sketch_1 -> Sketch_Min is not on the longest path, got %v", edges)
	}
	// Candidates must be ordered by control order.
	for i := 1; i < len(edges); i++ {
		a := g.Prog.Tables[edges[i-1].From].Order
		b := g.Prog.Tables[edges[i].From].Order
		if a > b {
			t.Errorf("candidates out of order: %v", edges)
		}
	}
}

func TestHitMissArmPruning(t *testing.T) {
	// After the Phase 2 rewrite, ACL_DHCP lives in ACL_UDP's miss arm, so
	// acl_drop (hit-only) and dhcp_drop cannot co-occur and the edge
	// disappears; this is the static fact the compiler exploits.
	src := `
header_type udp_t { fields { dstPort : 16; } }
header udp_t udp;
action acl_drop() { drop(); }
action dhcp_drop() { drop(); }
table ACL_UDP {
    reads { udp.dstPort : exact; }
    actions { acl_drop; }
    size : 16;
}
table ACL_DHCP {
    reads { standard_metadata.ingress_port : exact; }
    actions { dhcp_drop; }
    size : 16;
}
control ingress {
    apply(ACL_UDP) {
        miss {
            apply(ACL_DHCP);
        }
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog)
	if e := g.Edge("ACL_UDP", "ACL_DHCP"); e != nil {
		t.Errorf("miss-arm placement should remove the dependency, got pairs %v", e.Pairs)
	}
}

func TestMissArmKeepsDefaultConflict(t *testing.T) {
	// If the outer table's *default* action conflicts, the miss arm does
	// not help: the default runs exactly when the inner table runs.
	src := `
header_type udp_t { fields { dstPort : 16; } }
header udp_t udp;
action drop_a() { drop(); }
action drop_b() { drop(); }
table outer {
    reads { udp.dstPort : exact; }
    actions { drop_a; }
    size : 16;
    default_action : drop_a;
}
table inner {
    actions { drop_b; }
    default_action : drop_b;
}
control ingress {
    apply(outer) {
        miss {
            apply(inner);
        }
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog)
	if e := g.Edge("outer", "inner"); e == nil {
		t.Error("conflicting default action in miss arm must keep the dependency")
	}
}

func TestDotOutput(t *testing.T) {
	g := buildFirewall(t)
	dot := g.Dot()
	for _, want := range []string{
		"digraph deps",
		`"ACL_UDP" -> "ACL_DHCP"`,
		"diamond",
		"meta.sketch_count >= 128",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot() missing %q:\n%s", want, dot)
		}
	}
}

func TestMutuallyExclusiveBranchesHaveNoEdge(t *testing.T) {
	src := `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action d1() { drop(); }
action d2() { drop(); }
table t1 { actions { d1; } }
table t2 { actions { d2; } }
control ingress {
    if (m.x == 1) {
        apply(t1);
    } else {
        apply(t2);
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog)
	if len(g.Edges) != 0 {
		t.Errorf("exclusive branches should yield no edges, got %v", g.Edges)
	}
}
