package network

import (
	"errors"
	"strings"
	"testing"

	"p2go/internal/faults"
)

// TestDeviceFailureNamed: a device failing mid-collection surfaces as a
// typed DeviceError naming the device and injection — never as a bare
// simulator error or zero-valued traces.
func TestDeviceFailureNamed(t *testing.T) {
	topo := buildTopology(t)
	injections := enterpriseInjections(t)
	// The second step of every journey runs on the core router; failing
	// event 1 pins the error there.
	topo.SetFaults(faults.MustSet(faults.Spec{Point: faults.SimStep, From: 1, To: 2}))

	traces, err := topo.CollectDeviceTraces(injections[:50])
	if err == nil {
		t.Fatal("injected device failure surfaced no error")
	}
	if traces != nil {
		t.Error("partial traces returned alongside the error")
	}
	var devErr *DeviceError
	if !errors.As(err, &devErr) {
		t.Fatalf("error %v is not a *DeviceError", err)
	}
	if devErr.Device != "corert" {
		t.Errorf("failing device = %q, want corert (the second hop)", devErr.Device)
	}
	if devErr.Injection != 0 {
		t.Errorf("failing injection = %d, want 0", devErr.Injection)
	}
	if !strings.Contains(err.Error(), "corert") {
		t.Errorf("error text %q does not name the device", err)
	}
	if !faults.IsInjected(errors.Unwrap(devErr)) {
		t.Errorf("underlying error %v lost the injection marker", devErr.Err)
	}
}

// TestInjectDeviceFailureNamed: the same guarantee on the single-packet
// Inject path.
func TestInjectDeviceFailureNamed(t *testing.T) {
	topo := buildTopology(t)
	topo.SetFaults(faults.MustSet(faults.Spec{Point: faults.SimStep, From: 0, To: 1}))
	injections := enterpriseInjections(t)

	_, err := topo.Inject(injections[0].At, injections[0].Data)
	var devErr *DeviceError
	if !errors.As(err, &devErr) {
		t.Fatalf("Inject error %v is not a *DeviceError", err)
	}
	if devErr.Device != "edge" {
		t.Errorf("failing device = %q, want edge (the entry hop)", devErr.Device)
	}
	if devErr.Injection != -1 {
		t.Errorf("Injection = %d, want -1 (not trace collection)", devErr.Injection)
	}
}

// TestNoFaultsNoError: an inert (nil) fault set leaves collection intact.
func TestNoFaultsNoError(t *testing.T) {
	topo := buildTopology(t)
	topo.SetFaults(nil)
	traces, err := topo.CollectDeviceTraces(enterpriseInjections(t)[:50])
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["edge"].Packets) != 50 {
		t.Errorf("edge saw %d packets, want 50", len(traces["edge"].Packets))
	}
}
