package network

import (
	"errors"
	"strings"
	"testing"

	"p2go/internal/core"
	"p2go/internal/faults"
)

// TestDeviceFailureNamed: a device failing mid-collection surfaces as a
// typed DeviceError naming the device and injection — never as a bare
// simulator error or zero-valued traces.
func TestDeviceFailureNamed(t *testing.T) {
	topo := buildTopology(t)
	injections := enterpriseInjections(t)
	// The second step of every journey runs on the core router; failing
	// event 1 pins the error there.
	topo.SetFaults(faults.MustSet(faults.Spec{Point: faults.SimStep, From: 1, To: 2}))

	traces, err := topo.CollectDeviceTraces(injections[:50])
	if err == nil {
		t.Fatal("injected device failure surfaced no error")
	}
	if traces != nil {
		t.Error("partial traces returned alongside the error")
	}
	var devErr *DeviceError
	if !errors.As(err, &devErr) {
		t.Fatalf("error %v is not a *DeviceError", err)
	}
	if devErr.Device != "corert" {
		t.Errorf("failing device = %q, want corert (the second hop)", devErr.Device)
	}
	if devErr.Injection != 0 {
		t.Errorf("failing injection = %d, want 0", devErr.Injection)
	}
	if !strings.Contains(err.Error(), "corert") {
		t.Errorf("error text %q does not name the device", err)
	}
	if !faults.IsInjected(errors.Unwrap(devErr)) {
		t.Errorf("underlying error %v lost the injection marker", devErr.Err)
	}
}

// TestInjectDeviceFailureNamed: the same guarantee on the single-packet
// Inject path.
func TestInjectDeviceFailureNamed(t *testing.T) {
	topo := buildTopology(t)
	topo.SetFaults(faults.MustSet(faults.Spec{Point: faults.SimStep, From: 0, To: 1}))
	injections := enterpriseInjections(t)

	_, err := topo.Inject(injections[0].At, injections[0].Data)
	var devErr *DeviceError
	if !errors.As(err, &devErr) {
		t.Fatalf("Inject error %v is not a *DeviceError", err)
	}
	if devErr.Device != "edge" {
		t.Errorf("failing device = %q, want edge (the entry hop)", devErr.Device)
	}
	if devErr.Injection != -1 {
		t.Errorf("Injection = %d, want -1 (not trace collection)", devErr.Injection)
	}
}

// TestOptimizeAllPartialOnDeviceFailure: one failing device no longer
// aborts the fleet. The healthy device's completed result is kept, the
// failing device is attributed via a typed *DeviceError in the report,
// and the joined FleetReport.Err names it.
func TestOptimizeAllPartialOnDeviceFailure(t *testing.T) {
	topo := buildTopology(t)
	injections := enterpriseInjections(t)
	// Event 1 is the core router's first step (the second hop of
	// injection 0): the failure lands on corert, not the edge.
	topo.SetFaults(faults.MustSet(faults.Spec{Point: faults.SimStep, From: 1, To: 2}))

	report, err := topo.OptimizeAll(injections[:50], core.Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("fleet-level error %v; device failures belong in the report", err)
	}
	if len(report.Results) != 1 || report.Results[0].Device != "edge" {
		t.Fatalf("results = %+v, want the edge's completed result kept", report.Results)
	}
	if report.Results[0].Result == nil || report.Results[0].Result.StagesBefore() == 0 {
		t.Error("edge result is empty")
	}
	if len(report.Errors) != 1 {
		t.Fatalf("errors = %+v, want exactly the failing core router", report.Errors)
	}
	devErr := report.Errors[0]
	if devErr.Device != "corert" || devErr.Injection != 0 {
		t.Errorf("attributed to %s (injection %d), want corert (injection 0)", devErr.Device, devErr.Injection)
	}
	if joined := report.Err(); joined == nil || !strings.Contains(joined.Error(), "corert") {
		t.Errorf("FleetReport.Err() = %v, want a joined error naming corert", joined)
	}
	var asDev *DeviceError
	if !errors.As(report.Err(), &asDev) {
		t.Error("joined error lost the *DeviceError type")
	}
}

// TestNoFaultsNoError: an inert (nil) fault set leaves collection intact.
func TestNoFaultsNoError(t *testing.T) {
	topo := buildTopology(t)
	topo.SetFaults(nil)
	traces, err := topo.CollectDeviceTraces(enterpriseInjections(t)[:50])
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["edge"].Packets) != 50 {
		t.Errorf("edge saw %d packets, want 50", len(traces["edge"].Packets))
	}
}
