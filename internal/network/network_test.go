package network

import (
	"testing"

	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// coreRouter is a minimal second device: routes the enterprise prefix
// onward and drops everything else.
const coreRouter = `
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header_type ipv4_t {
    fields {
        version : 4; ihl : 4; diffserv : 8; totalLen : 16;
        identification : 16; flags : 3; fragOffset : 13;
        ttl : 8; protocol : 8; hdrChecksum : 16;
        srcAddr : 32; dstAddr : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 { extract(ipv4); return ingress; }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
action core_drop() { drop(); }
table core_routes {
    reads { ipv4.dstAddr : lpm; }
    actions { fwd; core_drop; }
    size : 64;
    default_action : core_drop;
}
control ingress {
    if (valid(ipv4)) {
        apply(core_routes);
    }
}
`

func buildTopology(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	if err := topo.AddDevice("edge", p4.MustParse(programs.Ex1), programs.Ex1Config()); err != nil {
		t.Fatal(err)
	}
	coreCfg, err := rt.Parse("table_add core_routes fwd 10.0.0.0/8 => 12")
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDevice("corert", p4.MustParse(coreRouter), coreCfg); err != nil {
		t.Fatal(err)
	}
	// The edge firewall forwards to ports 3/4/5 (its routes); all three
	// uplinks land on the core router.
	for _, port := range []uint64{3, 4, 5} {
		if err := topo.Link(Hop{"edge", port}, Hop{"corert", 1}); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func enterpriseInjections(t *testing.T) []Injection {
	t.Helper()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Injection, len(trace.Packets))
	for i, pkt := range trace.Packets {
		out[i] = Injection{At: Hop{"edge", pkt.Port}, Data: pkt.Data}
	}
	return out
}

func TestInjectJourney(t *testing.T) {
	topo := buildTopology(t)
	inj := enterpriseInjections(t)
	// The first packet of the trace is forwarded by the edge and then by
	// the core (all trace destinations are in 10/8).
	j, err := topo.Inject(inj[0].At, inj[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if j.Dropped && len(j.Steps) == 1 {
		// A blocked packet dies at the edge; find a forwarded one.
		for _, x := range inj[:50] {
			j, err = topo.Inject(x.At, x.Data)
			if err != nil {
				t.Fatal(err)
			}
			if !j.Dropped {
				break
			}
		}
	}
	if j.Dropped {
		t.Fatal("expected a forwarded packet in the first 50")
	}
	if len(j.Steps) != 2 {
		t.Fatalf("journey steps = %d, want 2 (edge then core): %+v", len(j.Steps), j.Steps)
	}
	if j.Steps[0].Device != "edge" || j.Steps[1].Device != "corert" {
		t.Errorf("path = %+v", j.Steps)
	}
	if j.Exit == nil || j.Exit.Port != 12 {
		t.Errorf("exit = %+v, want port 12 on the core", j.Exit)
	}
}

func TestCollectDeviceTraces(t *testing.T) {
	topo := buildTopology(t)
	inj := enterpriseInjections(t)
	traces, err := topo.CollectDeviceTraces(inj)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(traces["edge"].Packets); got != len(inj) {
		t.Errorf("edge sees %d packets, want all %d", got, len(inj))
	}
	// The core sees only what the edge forwards: everything except the
	// firewall's drops (8% blocked UDP + 14% rogue DHCP + 1% DNS limit).
	coreN := len(traces["corert"].Packets)
	wantCore := len(inj) - (1600 + 2800 + 200)
	if coreN != wantCore {
		t.Errorf("core sees %d packets, want %d", coreN, wantCore)
	}
}

func TestOptimizeFleet(t *testing.T) {
	topo := buildTopology(t)
	inj := enterpriseInjections(t)
	report, err := topo.OptimizeAll(inj, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("results = %d devices, want 2", len(report.Results))
	}
	// Edge: the full Ex. 1 story (8 -> 3). Core: already minimal (1).
	if report.TotalStagesBefore() != 8+1 {
		t.Errorf("fleet stages before = %d, want 9", report.TotalStagesBefore())
	}
	if report.TotalStagesAfter() != 3+1 {
		t.Errorf("fleet stages after = %d, want 4", report.TotalStagesAfter())
	}
	for _, r := range report.Results {
		if r.Device == "edge" && len(r.Result.OffloadedTables) == 0 {
			t.Error("edge device should offload the DNS branch")
		}
	}
}

// TestOptimizeAllRecordsSkippedDevices: a device no traffic reaches is
// recorded as skipped with a reason instead of silently vanishing from
// the report.
func TestOptimizeAllRecordsSkippedDevices(t *testing.T) {
	topo := buildTopology(t)
	if err := topo.AddDevice("idle", p4.MustParse(programs.Quickstart), programs.QuickstartConfig()); err != nil {
		t.Fatal(err)
	}
	report, err := topo.OptimizeAll(enterpriseInjections(t)[:50], core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Errorf("results = %d devices, want 2 (edge, corert)", len(report.Results))
	}
	if len(report.Skipped) != 1 {
		t.Fatalf("skipped = %+v, want exactly the idle device", report.Skipped)
	}
	if report.Skipped[0].Device != "idle" {
		t.Errorf("skipped device = %q, want idle", report.Skipped[0].Device)
	}
	if report.Skipped[0].Reason == "" {
		t.Error("skip recorded without a reason")
	}
	if report.Err() != nil {
		t.Errorf("skips are not errors, got %v", report.Err())
	}
}

func TestTopologyErrors(t *testing.T) {
	topo := NewTopology()
	if err := topo.AddDevice("a", p4.MustParse(programs.Quickstart), programs.QuickstartConfig()); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDevice("a", p4.MustParse(programs.Quickstart), programs.QuickstartConfig()); err == nil {
		t.Error("duplicate device should fail")
	}
	if err := topo.Link(Hop{"ghost", 1}, Hop{"a", 1}); err == nil {
		t.Error("link from unknown device should fail")
	}
	if err := topo.Link(Hop{"a", 1}, Hop{"ghost", 1}); err == nil {
		t.Error("link to unknown device should fail")
	}
	if _, err := topo.Inject(Hop{"ghost", 1}, []byte{1}); err == nil {
		t.Error("inject at unknown device should fail")
	}
}

func TestForwardingLoopDetected(t *testing.T) {
	topo := NewTopology()
	// A device that forwards everything to port 1, linked to itself.
	src := `
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table t { actions { fwd; } default_action : fwd; }
control ingress { apply(t); }
`
	if err := topo.AddDevice("loop", p4.MustParse(src), nil); err != nil {
		t.Fatal(err)
	}
	if err := topo.Link(Hop{"loop", 1}, Hop{"loop", 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Inject(Hop{"loop", 1}, []byte{1}); err == nil {
		t.Error("forwarding loop should be detected")
	}
}
