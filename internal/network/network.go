// Package network is a demonstrator for the paper's third future-work
// direction (§6, "Network-wide compilation"): several programmable
// switches connected by links, a network-level traffic injection, and
// per-device trace collection feeding per-device P2GO runs.
//
// The paper notes that "for individual devices, these inputs can be
// recorded with relative ease" and poses network-wide optimization as an
// open research question; this package implements the per-device baseline
// that question starts from: replay a network trace through the topology,
// record what each device actually sees, and optimize every device with
// its own representative trace.
package network

import (
	"errors"
	"fmt"
	"sort"

	"p2go/internal/core"
	"p2go/internal/faults"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// DeviceError names the device whose data plane failed mid-replay, so a
// fleet-wide error is attributable instead of surfacing as a bare
// simulator error (or, worse, zero-valued traces).
type DeviceError struct {
	// Device is the failing device's name.
	Device string
	// Injection is the index of the injection being replayed, or -1 when
	// the failure was not tied to one.
	Injection int
	// Err is the underlying simulator error.
	Err error
}

func (e *DeviceError) Error() string {
	if e.Injection >= 0 {
		return fmt.Sprintf("network: device %s (injection %d): %v", e.Device, e.Injection, e.Err)
	}
	return fmt.Sprintf("network: device %s: %v", e.Device, e.Err)
}

func (e *DeviceError) Unwrap() error { return e.Err }

// Hop identifies an attachment point: a device and one of its ports.
type Hop struct {
	Device string
	Port   uint64
}

// Device is one programmable switch.
type Device struct {
	Name    string
	Program *p4.Program
	Config  *rt.Config

	sw *sim.Switch
}

// Topology is a set of devices plus unidirectional links from a device's
// egress port to another device's ingress port. An egress port with no
// link leaves the network.
type Topology struct {
	devices map[string]*Device
	links   map[Hop]Hop
	faults  *faults.Set
}

// SetFaults installs a fault-injection set; firing faults.SimStep fails a
// device step as if its data plane errored. nil (the default) is inert.
func (t *Topology) SetFaults(set *faults.Set) { t.faults = set }

// NewTopology builds an empty topology.
func NewTopology() *Topology {
	return &Topology{devices: map[string]*Device{}, links: map[Hop]Hop{}}
}

// AddDevice boots a device's data plane and registers it.
func (t *Topology) AddDevice(name string, prog *p4.Program, cfg *rt.Config) error {
	if _, ok := t.devices[name]; ok {
		return fmt.Errorf("network: duplicate device %q", name)
	}
	ast := p4.Clone(prog)
	if err := p4.Check(ast); err != nil {
		return fmt.Errorf("network: device %s: %w", name, err)
	}
	built, err := ir.Build(ast)
	if err != nil {
		return fmt.Errorf("network: device %s: %w", name, err)
	}
	sw, err := sim.New(built, cfg, sim.Options{})
	if err != nil {
		return fmt.Errorf("network: device %s: %w", name, err)
	}
	t.devices[name] = &Device{Name: name, Program: prog, Config: cfg, sw: sw}
	return nil
}

// Link wires an egress port of one device to an ingress port of another.
func (t *Topology) Link(from Hop, to Hop) error {
	if _, ok := t.devices[from.Device]; !ok {
		return fmt.Errorf("network: unknown device %q", from.Device)
	}
	if _, ok := t.devices[to.Device]; !ok {
		return fmt.Errorf("network: unknown device %q", to.Device)
	}
	if _, dup := t.links[from]; dup {
		return fmt.Errorf("network: port %d of %s already linked", from.Port, from.Device)
	}
	t.links[from] = to
	return nil
}

// Devices lists the registered device names, sorted.
func (t *Topology) Devices() []string {
	var out []string
	for n := range t.devices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// maxHops bounds forwarding loops.
const maxHops = 16

// Step is one device traversal of a packet's journey.
type Step struct {
	Device  string
	Ingress uint64
	Egress  uint64
	Dropped bool
	ToCPU   bool
}

// Journey is the full path of one injected packet.
type Journey struct {
	Steps []Step
	// Final reports how the packet left the network.
	Dropped bool
	ToCPU   bool
	Exit    *Hop // nil when dropped/redirected; else the egress attachment
}

// Inject sends one packet into the network at the given attachment point
// and follows it across links until it exits, is dropped, or is redirected
// to a controller.
func (t *Topology) Inject(at Hop, data []byte) (*Journey, error) {
	j := &Journey{}
	cur := at
	payload := append([]byte(nil), data...)
	for hop := 0; ; hop++ {
		if hop >= maxHops {
			return nil, fmt.Errorf("network: packet exceeded %d hops (forwarding loop?)", maxHops)
		}
		dev, ok := t.devices[cur.Device]
		if !ok {
			return nil, fmt.Errorf("network: unknown device %q", cur.Device)
		}
		if ferr := t.faults.Err(faults.SimStep); ferr != nil {
			return nil, &DeviceError{Device: cur.Device, Injection: -1, Err: ferr}
		}
		out, err := dev.sw.Process(sim.Input{Port: cur.Port, Data: payload})
		if err != nil {
			return nil, &DeviceError{Device: cur.Device, Injection: -1, Err: err}
		}
		step := Step{Device: cur.Device, Ingress: cur.Port, Egress: out.Port,
			Dropped: out.Dropped, ToCPU: out.ToCPU}
		j.Steps = append(j.Steps, step)
		if out.Dropped {
			j.Dropped = true
			return j, nil
		}
		if out.ToCPU {
			j.ToCPU = true
			return j, nil
		}
		payload = out.Data
		next, linked := t.links[Hop{Device: cur.Device, Port: out.Port}]
		if !linked {
			exit := Hop{Device: cur.Device, Port: out.Port}
			j.Exit = &exit
			return j, nil
		}
		cur = next
	}
}

// Injection is one packet entering the network.
type Injection struct {
	At   Hop
	Data []byte
}

// CollectDeviceTraces replays the injections through the topology and
// records, per device, the traffic it actually saw — the representative
// per-device traces P2GO needs ("the network programmer has access to the
// device of interest"). It fails fast on the first device error; fleet
// runs that want to keep going use CollectDeviceTracesPartial.
func (t *Topology) CollectDeviceTraces(injections []Injection) (map[string]*trafficgen.Trace, error) {
	traces, errs := t.CollectDeviceTracesPartial(injections)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return traces, nil
}

// CollectDeviceTracesPartial replays the injections and keeps going past
// device failures: a step error abandons that injection's remaining path,
// is recorded as a typed *DeviceError naming the device, and collection
// continues with the next injection. The returned traces hold everything
// the healthy part of the network saw; a fleet run attributes the errors
// per device instead of throwing the whole collection away.
func (t *Topology) CollectDeviceTracesPartial(injections []Injection) (map[string]*trafficgen.Trace, []*DeviceError) {
	// Fresh switch state so collection is reproducible.
	for _, d := range t.devices {
		d.sw.Reset()
	}
	traces := map[string]*trafficgen.Trace{}
	for name := range t.devices {
		traces[name] = &trafficgen.Trace{}
	}
	var devErrs []*DeviceError
	for i, inj := range injections {
		cur := inj.At
		payload := append([]byte(nil), inj.Data...)
		for hop := 0; ; hop++ {
			if hop >= maxHops {
				devErrs = append(devErrs, &DeviceError{Device: cur.Device, Injection: i,
					Err: fmt.Errorf("network: injection %d exceeded %d hops (forwarding loop?)", i, maxHops)})
				break
			}
			dev := t.devices[cur.Device]
			if dev == nil {
				devErrs = append(devErrs, &DeviceError{Device: cur.Device, Injection: i,
					Err: fmt.Errorf("network: unknown device %q", cur.Device)})
				break
			}
			traces[cur.Device].Packets = append(traces[cur.Device].Packets,
				trafficgen.Packet{Port: cur.Port, Data: append([]byte(nil), payload...)})
			if ferr := t.faults.Err(faults.SimStep); ferr != nil {
				devErrs = append(devErrs, &DeviceError{Device: cur.Device, Injection: i, Err: ferr})
				break
			}
			out, err := dev.sw.Process(sim.Input{Port: cur.Port, Data: payload})
			if err != nil {
				devErrs = append(devErrs, &DeviceError{Device: cur.Device, Injection: i, Err: err})
				break
			}
			if out.Dropped || out.ToCPU {
				break
			}
			payload = out.Data
			next, linked := t.links[Hop{Device: cur.Device, Port: out.Port}]
			if !linked {
				break
			}
			cur = next
		}
	}
	return traces, devErrs
}

// DeviceResult is one device's optimization outcome.
type DeviceResult struct {
	Device string
	Result *core.Result
}

// SkippedDevice is a device the fleet run deliberately did not optimize,
// with the reason why.
type SkippedDevice struct {
	Device string
	Reason string
}

// FleetReport aggregates per-device optimizations. Every registered
// device lands in exactly one of the three lists: Results (optimized),
// Skipped (not optimizable, with a reason), or Errors (its collection or
// optimization failed, attributed via *DeviceError).
type FleetReport struct {
	Results []DeviceResult
	Skipped []SkippedDevice
	Errors  []*DeviceError
}

// Err joins the per-device errors into one error, nil when every device
// succeeded or was skipped. Callers that want the historical fail-on-any
// behavior check this; callers that want partial results read Errors.
func (f *FleetReport) Err() error {
	if len(f.Errors) == 0 {
		return nil
	}
	errs := make([]error, len(f.Errors))
	for i, e := range f.Errors {
		errs[i] = e
	}
	return errors.Join(errs...)
}

// TotalStagesBefore sums the fleet's initial stage counts.
func (f *FleetReport) TotalStagesBefore() int {
	n := 0
	for _, r := range f.Results {
		n += r.Result.StagesBefore()
	}
	return n
}

// TotalStagesAfter sums the fleet's optimized stage counts.
func (f *FleetReport) TotalStagesAfter() int {
	n := 0
	for _, r := range f.Results {
		n += r.Result.StagesAfter()
	}
	return n
}

// OptimizeAll runs P2GO independently on every device using its collected
// trace — the per-device baseline the paper's network-wide research
// question starts from. It never fails fast on a single device: devices
// whose collection or optimization errored are attributed in
// FleetReport.Errors (typed *DeviceError), devices whose trace is empty
// are recorded in FleetReport.Skipped with the reason (P2GO needs a
// representative trace), and every successfully optimized device keeps
// its result in FleetReport.Results. The error return is reserved for
// fleet-level problems; per-device failures live in the report (join
// them with FleetReport.Err if failure should be fatal).
func (t *Topology) OptimizeAll(injections []Injection, opts core.Options) (*FleetReport, error) {
	traces, devErrs := t.CollectDeviceTracesPartial(injections)
	report := &FleetReport{}
	// A device whose data plane errored mid-collection saw a trace that
	// under-represents its real traffic; attribute the error instead of
	// optimizing against bad evidence.
	failed := map[string]bool{}
	for _, e := range devErrs {
		report.Errors = append(report.Errors, e)
		failed[e.Device] = true
	}
	for _, name := range t.Devices() {
		if failed[name] {
			continue
		}
		dev := t.devices[name]
		trace := traces[name]
		if len(trace.Packets) == 0 {
			report.Skipped = append(report.Skipped, SkippedDevice{
				Device: name,
				Reason: "no packets reached the device (empty trace; P2GO needs a representative trace)",
			})
			continue
		}
		res, err := core.New(opts).Optimize(dev.Program, dev.Config, trace)
		if err != nil {
			report.Errors = append(report.Errors, &DeviceError{Device: name, Injection: -1,
				Err: fmt.Errorf("optimize: %w", err)})
			continue
		}
		report.Results = append(report.Results, DeviceResult{Device: name, Result: res})
	}
	return report, nil
}
