package online

import (
	"math/rand"
	"testing"

	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// optimizedEx1 runs the offline pipeline once, returning the optimized
// program, its config, and the final (baseline) profile.
func optimizedEx1(t *testing.T) *core.Result {
	t.Helper()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// dnsHeavyMix generates traffic whose DNS share is far above the profiled
// 2%: the offloaded branch becomes hot and the baseline profile stale.
func dnsHeavyMix(n int, dnsShare float64, seed int64) []sim.Input {
	rng := rand.New(rand.NewSource(seed))
	var out []sim.Input
	for i := 0; i < n; i++ {
		if rng.Float64() < dnsShare {
			src := packet.IP(10, 9, byte(rng.Intn(250)), byte(1+rng.Intn(250)))
			out = append(out, sim.Input{Port: 1, Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: packet.IP(10, 0, 0, 53)},
				&packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS},
				&packet.DNS{ID: uint16(i), QDCount: 1},
			)})
			continue
		}
		out = append(out, sim.Input{Port: 1, Data: packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(10, 20, 0, byte(1+rng.Intn(250))), Dst: packet.IP(10, 0, 1, byte(1+rng.Intn(250)))},
			&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443, Seq: rng.Uint32(), Flags: packet.TCPAck},
		)})
	}
	return out
}

// TestNoDriftOnRepresentativeTraffic: replaying a same-mix trace through
// the monitor produces no staleness.
func TestNoDriftOnRepresentativeTraffic(t *testing.T) {
	res := optimizedEx1(t)
	mon, err := NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile, Config{WindowSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range fresh.Packets {
		if _, err := mon.Process(sim.Input{Port: pkt.Port, Data: pkt.Data}); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Windows() != 4 {
		t.Errorf("windows = %d, want 4", mon.Windows())
	}
	if mon.Stale() {
		t.Errorf("same-mix traffic flagged stale: %v", mon.Drifts())
	}
}

// TestDriftDetectedWhenTrafficShifts: when DNS jumps from 2% to 30% of
// traffic, the To_Ctl redirect table's hit rate leaves the baseline band.
func TestDriftDetectedWhenTrafficShifts(t *testing.T) {
	res := optimizedEx1(t)
	mon, err := NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile, Config{WindowSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range dnsHeavyMix(4000, 0.30, 3) {
		if _, err := mon.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if !mon.Stale() {
		t.Fatal("30% DNS traffic should mark the 2% baseline stale")
	}
	foundToCtl := false
	for _, d := range mon.Drifts() {
		if d.Table == core.ToCtlTable && d.Observed > d.Baseline {
			foundToCtl = true
		}
	}
	if !foundToCtl {
		t.Errorf("drifts %v should include the redirect table", mon.Drifts())
	}
}

// TestSamplingStillDetectsDrift: at 1-in-10 sampling the drift is still
// caught (the paper's accuracy/overhead trade-off).
func TestSamplingStillDetectsDrift(t *testing.T) {
	res := optimizedEx1(t)
	mon, err := NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile,
		Config{WindowSize: 2000, SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range dnsHeavyMix(4000, 0.30, 4) {
		if _, err := mon.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if !mon.Stale() {
		t.Error("sampled monitoring missed a 15x traffic shift")
	}
}

// TestReoptimizeOnFreshTrace closes the dynamic-compilation loop: the
// recorded window becomes the new trace, and re-running P2GO on the
// ORIGINAL program now refuses to offload the hot DNS branch.
func TestReoptimizeOnFreshTrace(t *testing.T) {
	res := optimizedEx1(t)
	if len(res.OffloadedTables) == 0 {
		t.Fatal("baseline run should have offloaded the DNS branch")
	}
	mon, err := NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile, Config{WindowSize: 2000, RecordLast: 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range dnsHeavyMix(4000, 0.30, 5) {
		if _, err := mon.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if !mon.Stale() {
		t.Fatal("expected staleness")
	}
	fresh := mon.RecentTrace()
	if len(fresh.Packets) != 4000 {
		t.Fatalf("recorded trace = %d packets, want 4000", len(fresh.Packets))
	}
	res2, err := core.New(core.Options{}).Optimize(res.Original, programs.Ex1Config(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	// With 30% of traffic hitting the sketch branch, offloading it would
	// flood the controller: Phase 4 must not fire on it.
	for _, tbl := range res2.OffloadedTables {
		if tbl == "Sketch_1" || tbl == "DNS_Drop" {
			t.Errorf("hot DNS branch offloaded on the fresh trace: %v", res2.OffloadedTables)
		}
	}
	// The dependency removal and IPv4 reduction still apply.
	if res2.StagesAfter() >= res2.StagesBefore() {
		t.Errorf("re-optimization saved nothing: %d -> %d", res2.StagesBefore(), res2.StagesAfter())
	}
}

// TestTrailerStripped: the monitor's outputs are production frames, not
// instrumented ones.
func TestTrailerStripped(t *testing.T) {
	res := optimizedEx1(t)
	mon, err := NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile, Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := dnsHeavyMix(1, 0, 6)[0]
	out, err := mon.Process(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Data) != len(in.Data) {
		t.Errorf("output length %d, want %d (trailer stripped)", len(out.Data), len(in.Data))
	}
}

// TestMonitorReset: Reset clears windows and the recorder.
func TestMonitorReset(t *testing.T) {
	res := optimizedEx1(t)
	mon, err := NewMonitor(res.Optimized, res.OptimizedConfig, res.FinalProfile, Config{WindowSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range dnsHeavyMix(250, 0.5, 7) {
		if _, err := mon.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	mon.Reset()
	if mon.Windows() != 0 || mon.Stale() || len(mon.RecentTrace().Packets) != 0 {
		t.Error("Reset did not clear monitor state")
	}
}

func TestMonitorRequiresBaseline(t *testing.T) {
	res := optimizedEx1(t)
	if _, err := NewMonitor(res.Optimized, res.OptimizedConfig, nil, Config{}); err == nil {
		t.Error("expected error without a baseline")
	}
}
