package online

import (
	"fmt"

	"p2go/internal/faults"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/rt"
	"p2go/internal/sim"
)

// RollbackGuard wires the drift monitor to an automatic safety net: it
// forwards traffic through the monitored optimized program and, the
// moment the live profile drifts from the baseline (or the monitored
// data plane errors), reverts to a standby copy of the original,
// unoptimized program. The optimized program's specializations are only
// valid while the profile holds (§6, "Dynamic compilation"); once it is
// stale the original is the only program known to be correct for the
// new mix, so the guard fails back to it rather than keep serving
// assumptions that no longer hold. Reinstate returns to the optimized
// program after the operator re-runs P2GO on the recorded fresh trace.
type RollbackGuard struct {
	mon      *Monitor
	fallback *sim.Switch
	faults   *faults.Set

	rolledBack bool
	reason     string
	rollbacks  int
	processed  int
}

// GuardOptions tunes the guard.
type GuardOptions struct {
	// Monitor tunes the underlying drift monitor.
	Monitor Config
	// Faults is the fault-injection set; firing faults.SimStep simulates
	// a monitored-data-plane error (which triggers a rollback). nil is
	// inert.
	Faults *faults.Set
}

// NewRollbackGuard builds the guard: the optimized program runs under
// the drift monitor, and a standby switch holds the original program.
func NewRollbackGuard(optimized *p4.Program, optimizedCfg *rt.Config,
	original *p4.Program, originalCfg *rt.Config,
	baseline *profile.Profile, opts GuardOptions) (*RollbackGuard, error) {
	if original == nil {
		return nil, fmt.Errorf("online: the rollback guard needs the original program")
	}
	mon, err := NewMonitor(optimized, optimizedCfg, baseline, opts.Monitor)
	if err != nil {
		return nil, err
	}
	prog, err := ir.Build(original)
	if err != nil {
		return nil, err
	}
	fallback, err := sim.New(prog, originalCfg, sim.Options{})
	if err != nil {
		return nil, err
	}
	return &RollbackGuard{mon: mon, fallback: fallback, faults: opts.Faults}, nil
}

// Process forwards one packet. Before a rollback it runs the monitored
// optimized program; after, the original. A drift detection or a monitor
// error flips to the original for every subsequent packet — the packet
// that exposed the problem is served by the fallback too when the
// monitor failed on it, and by the optimized program when only the
// profile (not the verdict) went stale.
func (g *RollbackGuard) Process(in sim.Input) (sim.Output, error) {
	g.processed++
	if g.rolledBack {
		return g.fallback.Process(in)
	}
	if ferr := g.faults.Err(faults.SimStep); ferr != nil {
		g.trip(fmt.Sprintf("monitor error: %v", ferr))
		return g.fallback.Process(in)
	}
	out, err := g.mon.Process(in)
	if err != nil {
		g.trip(fmt.Sprintf("monitor error: %v", err))
		return g.fallback.Process(in)
	}
	if g.mon.Stale() {
		g.trip(fmt.Sprintf("profile drift: %v", g.mon.Drifts()[0]))
	}
	return out, nil
}

func (g *RollbackGuard) trip(reason string) {
	g.rolledBack = true
	g.reason = reason
	g.rollbacks++
}

// RolledBack reports whether the guard is serving the original program.
func (g *RollbackGuard) RolledBack() bool { return g.rolledBack }

// Reason describes what triggered the most recent rollback.
func (g *RollbackGuard) Reason() string { return g.reason }

// Rollbacks counts how many times the guard has tripped over its life
// (Reinstate re-arms it; a later drift trips it again).
func (g *RollbackGuard) Rollbacks() int { return g.rollbacks }

// Monitor exposes the underlying drift monitor (for RecentTrace — the
// fresh packets to re-run P2GO with — and drift reports).
func (g *RollbackGuard) Monitor() *Monitor { return g.mon }

// Reinstate returns traffic to the (presumably re-optimized) program and
// re-arms drift detection. The caller typically rebuilds the guard with
// the new program; Reinstate covers the false-alarm path where the old
// optimized program is kept.
func (g *RollbackGuard) Reinstate() {
	g.rolledBack = false
	g.reason = ""
	g.mon.Reset()
}
