// Package online implements the paper's first future-work direction (§6,
// "Dynamic compilation"): online profiling. P2GO's offline optimizations
// are only valid while the computed profile stays representative; this
// package instruments the running program with the same per-action markers
// the offline profiler uses, maintains a sliding-window profile at a
// configurable sampling rate (the paper's accuracy-vs-overhead trade-off),
// detects when the live profile drifts from the baseline, and records
// recent traffic so the operator can re-run P2GO with a fresh,
// representative trace.
package online

import (
	"fmt"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/rt"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// Config tunes the monitor.
type Config struct {
	// WindowSize is the number of processed packets per profiling window
	// (default 5000).
	WindowSize int
	// SampleEvery profiles every Nth packet (default 1 = every packet).
	// Larger values model cheaper monitoring at lower accuracy.
	SampleEvery int
	// MaxHitRateDelta is the absolute per-table hit-rate drift that
	// marks the baseline profile stale (default 0.05).
	MaxHitRateDelta float64
	// RecordLast keeps the most recent N packets for re-profiling
	// (default = WindowSize).
	RecordLast int
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 5000
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.MaxHitRateDelta <= 0 {
		c.MaxHitRateDelta = 0.05
	}
	if c.RecordLast <= 0 {
		c.RecordLast = c.WindowSize
	}
	return c
}

// Drift reports one table whose windowed hit rate left the baseline band.
type Drift struct {
	Window   int
	Table    string
	Baseline float64
	Observed float64
}

func (d Drift) String() string {
	return fmt.Sprintf("window %d: table %s hit rate %.3f vs baseline %.3f",
		d.Window, d.Table, d.Observed, d.Baseline)
}

// Monitor is an instrumented data plane with windowed online profiling.
type Monitor struct {
	cfg      Config
	ins      *profile.Instrumented
	sw       *sim.Switch
	baseline *profile.Profile

	processed int
	windowID  int
	winCount  int // packets attributed to the current window
	winSample int // sampled packets in the current window
	winHits   map[string]int

	drifts []Drift
	recent []trafficgen.Packet
	next   int // ring-buffer cursor
	full   bool
}

// NewMonitor instruments the (optimized) program and wires it against the
// baseline profile the offline run produced.
func NewMonitor(ast *p4.Program, rules *rt.Config, baseline *profile.Profile, cfg Config) (*Monitor, error) {
	if baseline == nil {
		return nil, fmt.Errorf("online: a baseline profile is required")
	}
	ins, err := profile.Instrument(ast)
	if err != nil {
		return nil, err
	}
	prog, err := ir.Build(ins.AST)
	if err != nil {
		return nil, err
	}
	// Unlike offline profiling, drops are NOT neutralized: the monitor
	// taps a production data plane. Hit markers still reach us via the
	// simulator's output trailer regardless of the drop verdict.
	sw, err := sim.New(prog, rules, sim.Options{Trailer: profile.TrailerName})
	if err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	return &Monitor{
		cfg:      c,
		ins:      ins,
		sw:       sw,
		baseline: baseline,
		winHits:  map[string]int{},
		recent:   make([]trafficgen.Packet, c.RecordLast),
	}, nil
}

// Process forwards one packet through the monitored data plane. The
// returned output is the production verdict (the profiling trailer is
// stripped from Data).
func (m *Monitor) Process(in sim.Input) (sim.Output, error) {
	out, err := m.sw.Process(in)
	if err != nil {
		return sim.Output{}, err
	}
	m.record(in)
	m.processed++
	m.winCount++
	if m.processed%m.cfg.SampleEvery == 0 {
		executed, err := m.ins.ParseTrailer(out.Data)
		if err != nil {
			return sim.Output{}, err
		}
		m.winSample++
		seen := map[string]bool{}
		for _, info := range executed {
			if info.Miss || m.isDefaultOnReadsTable(info.Table, info.Action) {
				continue
			}
			if !seen[info.Table] {
				seen[info.Table] = true
				m.winHits[info.Table]++
			}
		}
	}
	if n := m.ins.TrailerBytes(); len(out.Data) >= n {
		out.Data = out.Data[:len(out.Data)-n]
	}
	if m.winCount >= m.cfg.WindowSize {
		m.closeWindow()
	}
	return out, nil
}

func (m *Monitor) isDefaultOnReadsTable(table, action string) bool {
	t := m.ins.AST.Table(table)
	return t != nil && len(t.Reads) > 0 && t.DefaultAction == action
}

// closeWindow compares the window's hit rates with the baseline.
func (m *Monitor) closeWindow() {
	if m.winSample > 0 {
		tables := map[string]bool{}
		for tbl := range m.winHits {
			tables[tbl] = true
		}
		for tbl := range m.baseline.Hits {
			tables[tbl] = true
		}
		for tbl := range tables {
			base := m.baseline.HitRate(tbl)
			obs := float64(m.winHits[tbl]) / float64(m.winSample)
			if delta := obs - base; delta > m.cfg.MaxHitRateDelta || -delta > m.cfg.MaxHitRateDelta {
				m.drifts = append(m.drifts, Drift{
					Window: m.windowID, Table: tbl, Baseline: base, Observed: obs,
				})
			}
		}
	}
	m.windowID++
	m.winCount = 0
	m.winSample = 0
	m.winHits = map[string]int{}
}

// record keeps the packet in the ring buffer.
func (m *Monitor) record(in sim.Input) {
	m.recent[m.next] = trafficgen.Packet{Port: in.Port, Data: append([]byte(nil), in.Data...)}
	m.next++
	if m.next == len(m.recent) {
		m.next = 0
		m.full = true
	}
}

// Stale reports whether any window drifted from the baseline.
func (m *Monitor) Stale() bool { return len(m.drifts) > 0 }

// Drifts returns the recorded drift reports.
func (m *Monitor) Drifts() []Drift { return append([]Drift(nil), m.drifts...) }

// Windows returns how many complete windows have been evaluated.
func (m *Monitor) Windows() int { return m.windowID }

// RecentTrace returns the most recent recorded packets, oldest first — the
// fresh trace to re-run P2GO with.
func (m *Monitor) RecentTrace() *trafficgen.Trace {
	out := &trafficgen.Trace{}
	if m.full {
		for i := m.next; i < len(m.recent); i++ {
			out.Packets = append(out.Packets, m.recent[i])
		}
	}
	for i := 0; i < m.next; i++ {
		out.Packets = append(out.Packets, m.recent[i])
	}
	return out
}

// Reset clears windows, drift reports, and the recorder (register state of
// the data plane is preserved; it belongs to the program).
func (m *Monitor) Reset() {
	m.processed = 0
	m.windowID = 0
	m.winCount = 0
	m.winSample = 0
	m.winHits = map[string]int{}
	m.drifts = nil
	m.next = 0
	m.full = false
}
