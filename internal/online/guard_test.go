package online

import (
	"strings"
	"testing"

	"p2go/internal/faults"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

func newGuard(t *testing.T, opts GuardOptions) *RollbackGuard {
	t.Helper()
	res := optimizedEx1(t)
	g, err := NewRollbackGuard(res.Optimized, res.OptimizedConfig,
		res.Original, programs.Ex1Config(), res.FinalProfile, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGuardStaysOnRepresentativeTraffic: same-mix traffic never trips
// the guard; the optimized program keeps serving.
func TestGuardStaysOnRepresentativeTraffic(t *testing.T) {
	g := newGuard(t, GuardOptions{Monitor: Config{WindowSize: 5000}})
	fresh, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range fresh.Packets {
		if _, err := g.Process(sim.Input{Port: pkt.Port, Data: pkt.Data}); err != nil {
			t.Fatal(err)
		}
	}
	if g.RolledBack() || g.Rollbacks() != 0 {
		t.Fatalf("guard tripped on representative traffic: %s", g.Reason())
	}
}

// TestGuardRollsBackOnDrift: a DNS-heavy shift marks the profile stale;
// the guard reverts to the original program automatically and keeps
// forwarding traffic through it.
func TestGuardRollsBackOnDrift(t *testing.T) {
	g := newGuard(t, GuardOptions{Monitor: Config{WindowSize: 2000}})
	for _, in := range dnsHeavyMix(4000, 0.30, 3) {
		if _, err := g.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if !g.RolledBack() {
		t.Fatal("30% DNS traffic should trip the rollback guard")
	}
	if !strings.Contains(g.Reason(), "profile drift") {
		t.Errorf("reason = %q, want a drift report", g.Reason())
	}
	if g.Rollbacks() != 1 {
		t.Errorf("rollbacks = %d, want 1 (the trip latches)", g.Rollbacks())
	}
	// Traffic still flows after the rollback — through the original.
	for _, in := range dnsHeavyMix(100, 0.30, 4) {
		if _, err := g.Process(in); err != nil {
			t.Fatalf("fallback plane errored: %v", err)
		}
	}
	// The monitor recorded the shifted traffic for re-optimization.
	if len(g.Monitor().RecentTrace().Packets) == 0 {
		t.Error("no fresh trace recorded for re-optimization")
	}
}

// TestGuardRollsBackOnMonitorError: an injected data-plane error trips
// the guard even without drift — the packet that exposed it is served by
// the fallback, not dropped.
func TestGuardRollsBackOnMonitorError(t *testing.T) {
	set := faults.MustSet(faults.Spec{Point: faults.SimStep, From: 50, To: 51})
	g := newGuard(t, GuardOptions{Monitor: Config{WindowSize: 2000}, Faults: set})
	fresh, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, pkt := range fresh.Packets[:200] {
		if _, err := g.Process(sim.Input{Port: pkt.Port, Data: pkt.Data}); err != nil {
			t.Fatalf("packet %d dropped: %v", i, err)
		}
	}
	if !g.RolledBack() || !strings.Contains(g.Reason(), "monitor error") {
		t.Fatalf("injected step error should trip the guard (reason %q)", g.Reason())
	}
}

// TestGuardReinstate: after a false alarm the guard re-arms and a real
// drift trips it again, counted separately.
func TestGuardReinstate(t *testing.T) {
	g := newGuard(t, GuardOptions{Monitor: Config{WindowSize: 2000}})
	for _, in := range dnsHeavyMix(4000, 0.30, 3) {
		if _, err := g.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if !g.RolledBack() {
		t.Fatal("setup: guard did not trip")
	}
	g.Reinstate()
	if g.RolledBack() || g.Reason() != "" {
		t.Fatal("Reinstate left the guard tripped")
	}
	for _, in := range dnsHeavyMix(4000, 0.30, 5) {
		if _, err := g.Process(in); err != nil {
			t.Fatal(err)
		}
	}
	if !g.RolledBack() || g.Rollbacks() != 2 {
		t.Fatalf("re-armed guard should trip again: rolledBack=%v rollbacks=%d",
			g.RolledBack(), g.Rollbacks())
	}
}

// TestGuardRequiresOriginal: the guard refuses to build without a
// fallback program.
func TestGuardRequiresOriginal(t *testing.T) {
	res := optimizedEx1(t)
	if _, err := NewRollbackGuard(res.Optimized, res.OptimizedConfig,
		nil, nil, res.FinalProfile, GuardOptions{}); err == nil {
		t.Fatal("nil original should be rejected")
	}
}
