package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestSerializeDecodeRoundTripUDP(t *testing.T) {
	data := Serialize(
		&Ethernet{Dst: MAC(1, 2, 3, 4, 5, 6), Src: MAC(7, 8, 9, 10, 11, 12), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoUDP, Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2), TTL: 17},
		&UDP{SrcPort: 1111, DstPort: 2222},
		Raw("hello"),
	)
	v, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Ethernet.EtherType != EtherTypeIPv4 {
		t.Errorf("etherType = %#x", v.Ethernet.EtherType)
	}
	if v.IPv4 == nil || v.IPv4.Src != IP(10, 0, 0, 1) || v.IPv4.Dst != IP(10, 0, 0, 2) || v.IPv4.TTL != 17 {
		t.Errorf("ipv4 = %+v", v.IPv4)
	}
	if v.UDP == nil || v.UDP.SrcPort != 1111 || v.UDP.DstPort != 2222 {
		t.Errorf("udp = %+v", v.UDP)
	}
	if string(v.Payload) != "hello" {
		t.Errorf("payload = %q", v.Payload)
	}
	// UDP length covers header + payload.
	udpLen := binary.BigEndian.Uint16(data[14+20+4 : 14+20+6])
	if udpLen != 8+5 {
		t.Errorf("udp length = %d, want 13", udpLen)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	data := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoTCP, Src: IP(1, 2, 3, 4), Dst: IP(5, 6, 7, 8)},
		&TCP{SrcPort: 80, DstPort: 81},
	)
	ipHdr := data[14 : 14+20]
	if got := Checksum(ipHdr); got != 0 {
		t.Errorf("ipv4 header checksum over full header = %#x, want 0", got)
	}
	totalLen := binary.BigEndian.Uint16(ipHdr[2:4])
	if int(totalLen) != 20+20 {
		t.Errorf("totalLen = %d, want 40", totalLen)
	}
}

func TestDecodeTCP(t *testing.T) {
	data := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoTCP, Src: 1, Dst: 2},
		&TCP{SrcPort: 443, DstPort: 55555, Seq: 0xDEADBEEF, Flags: TCPSyn | TCPAck},
		Raw("x"),
	)
	v, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.TCP == nil || v.TCP.Seq != 0xDEADBEEF || v.TCP.Flags != TCPSyn|TCPAck {
		t.Errorf("tcp = %+v", v.TCP)
	}
	if string(v.Payload) != "x" {
		t.Errorf("payload = %q", v.Payload)
	}
}

func TestDecodeDHCPAndDNS(t *testing.T) {
	dhcp := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoUDP, Src: 1, Dst: 2},
		&UDP{SrcPort: PortDHCPClient, DstPort: PortDHCPServer},
		&DHCP{Op: 1, HType: 1, HLen: 6, XID: 0xCAFE},
	)
	v, err := Decode(dhcp)
	if err != nil {
		t.Fatal(err)
	}
	if v.DHCP == nil || v.DHCP.XID != 0xCAFE {
		t.Errorf("dhcp = %+v", v.DHCP)
	}
	dns := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoUDP, Src: 1, Dst: 2},
		&UDP{SrcPort: 5353, DstPort: PortDNS},
		&DNS{ID: 99, QDCount: 1},
	)
	v2, err := Decode(dns)
	if err != nil {
		t.Fatal(err)
	}
	if v2.DNS == nil || v2.DNS.ID != 99 || v2.DNS.QDCount != 1 {
		t.Errorf("dns = %+v", v2.DNS)
	}
}

func TestDecodeGREInnerIPv4(t *testing.T) {
	data := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoGRE, Src: IP(192, 168, 0, 1), Dst: IP(192, 168, 0, 2)},
		&GRE{Protocol: EtherTypeIPv4},
		&IPv4{Protocol: ProtoTCP, Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2)},
		&TCP{SrcPort: 1, DstPort: 2},
	)
	v, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.GRE == nil || v.GRE.Protocol != EtherTypeIPv4 {
		t.Errorf("gre = %+v", v.GRE)
	}
	if v.InnerIPv4 == nil || v.InnerIPv4.Src != IP(10, 0, 0, 1) {
		t.Errorf("inner ipv4 = %+v", v.InnerIPv4)
	}
}

func TestDecodeShortFrames(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short frame should fail")
	}
	// Ethernet only: decodes with payload empty.
	v, err := Decode(Serialize(&Ethernet{EtherType: 0x1234}))
	if err != nil {
		t.Fatal(err)
	}
	if v.IPv4 != nil || len(v.Payload) != 0 {
		t.Errorf("view = %+v", v)
	}
}

func TestChecksumProperties(t *testing.T) {
	// Inserting the computed checksum yields a verifying header.
	f := func(raw []byte) bool {
		if len(raw) < 20 {
			return true
		}
		hdr := append([]byte(nil), raw[:20]...)
		hdr[10], hdr[11] = 0, 0
		c := Checksum(hdr)
		binary.BigEndian.PutUint16(hdr[10:12], c)
		return Checksum(hdr) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPHelpers(t *testing.T) {
	ip := IP(10, 1, 2, 3)
	if ip != 0x0A010203 {
		t.Errorf("IP = %#x", ip)
	}
	if IPString(ip) != "10.1.2.3" {
		t.Errorf("IPString = %s", IPString(ip))
	}
}

func TestRawBytesAreCopied(t *testing.T) {
	r := Raw("abc")
	b := r.Bytes()
	b[0] = 'z'
	if r[0] != 'a' {
		t.Error("Raw.Bytes must return a copy")
	}
}

func TestSerializeIsDeterministic(t *testing.T) {
	mk := func() []byte {
		return Serialize(
			&Ethernet{EtherType: EtherTypeIPv4},
			&IPv4{Protocol: ProtoUDP, Src: 1, Dst: 2, ID: 7},
			&UDP{SrcPort: 5, DstPort: 6},
			Raw("zz"),
		)
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("Serialize not deterministic")
	}
}
