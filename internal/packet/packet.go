// Package packet provides serialization and decoding for the protocol
// layers the examples use: Ethernet, IPv4, UDP, TCP, GRE, DHCP, and DNS,
// plus raw payloads. The design follows gopacket: each layer serializes
// itself, and Serialize composes a stack outside-in, fixing up lengths and
// checksums.
package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoGRE  = 47
)

// Well-known UDP ports used by the examples.
const (
	PortDNS        = 53
	PortDHCPServer = 67
	PortDHCPClient = 68
)

// Layer is a protocol layer that can serialize itself. Bytes must return a
// fresh slice; Serialize stitches layers together and lets outer layers fix
// lengths/checksums over their payloads.
type Layer interface {
	// LayerName identifies the layer for diagnostics.
	LayerName() string
	// Bytes returns the wire encoding of the header (without payload).
	Bytes() []byte
	// FixUp is called with the serialized payload that follows this
	// layer, letting the layer patch lengths and checksums into hdr,
	// which is its own previously returned encoding.
	FixUp(hdr, payload []byte)
}

// Serialize encodes a layer stack outside-in (Ethernet first).
func Serialize(layers ...Layer) []byte {
	headers := make([][]byte, len(layers))
	total := 0
	for i, l := range layers {
		headers[i] = l.Bytes()
		total += len(headers[i])
	}
	out := make([]byte, 0, total)
	offsets := make([]int, len(layers))
	for i, h := range headers {
		offsets[i] = len(out)
		out = append(out, h...)
	}
	// Fix up inside-out so outer checksums see final inner bytes.
	for i := len(layers) - 1; i >= 0; i-- {
		hdrStart := offsets[i]
		hdrEnd := hdrStart + len(headers[i])
		layers[i].FixUp(out[hdrStart:hdrEnd], out[hdrEnd:])
	}
	return out
}

// Ethernet is the 14-byte Ethernet II header.
type Ethernet struct {
	Dst       [6]byte
	Src       [6]byte
	EtherType uint16
}

// LayerName implements Layer.
func (e *Ethernet) LayerName() string { return "ethernet" }

// Bytes implements Layer.
func (e *Ethernet) Bytes() []byte {
	b := make([]byte, 14)
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return b
}

// FixUp implements Layer.
func (e *Ethernet) FixUp(hdr, payload []byte) {}

// IPv4 is the 20-byte (no options) IPv4 header.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      uint32
	Dst      uint32
}

// LayerName implements Layer.
func (ip *IPv4) LayerName() string { return "ipv4" }

// Bytes implements Layer.
func (ip *IPv4) Bytes() []byte {
	b := make([]byte, 20)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1FFF)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	b[8] = ttl
	b[9] = ip.Protocol
	binary.BigEndian.PutUint32(b[12:16], ip.Src)
	binary.BigEndian.PutUint32(b[16:20], ip.Dst)
	return b
}

// FixUp implements Layer: totalLen and header checksum.
func (ip *IPv4) FixUp(hdr, payload []byte) {
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(hdr)+len(payload)))
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	binary.BigEndian.PutUint16(hdr[10:12], Checksum(hdr))
}

// Checksum computes the RFC 1071 ones-complement sum over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// UDP is the 8-byte UDP header. Length is filled during FixUp; the checksum
// is left zero (legal for IPv4).
type UDP struct {
	SrcPort uint16
	DstPort uint16
}

// LayerName implements Layer.
func (u *UDP) LayerName() string { return "udp" }

// Bytes implements Layer.
func (u *UDP) Bytes() []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	return b
}

// FixUp implements Layer.
func (u *UDP) FixUp(hdr, payload []byte) {
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(hdr)+len(payload)))
}

// TCP is a 20-byte (no options) TCP header.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8 // FIN=1 SYN=2 RST=4 PSH=8 ACK=16
	Window  uint16
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// LayerName implements Layer.
func (t *TCP) LayerName() string { return "tcp" }

// Bytes implements Layer.
func (t *TCP) Bytes() []byte {
	b := make([]byte, 20)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset
	b[13] = t.Flags
	win := t.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(b[14:16], win)
	return b
}

// FixUp implements Layer (checksum left zero: the simulator ignores it).
func (t *TCP) FixUp(hdr, payload []byte) {}

// GRE is the basic 4-byte GRE header (no optional fields).
type GRE struct {
	Protocol uint16 // EtherType of the encapsulated protocol
}

// LayerName implements Layer.
func (g *GRE) LayerName() string { return "gre" }

// Bytes implements Layer.
func (g *GRE) Bytes() []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[2:4], g.Protocol)
	return b
}

// FixUp implements Layer.
func (g *GRE) FixUp(hdr, payload []byte) {}

// DHCP is the fixed 8-byte prefix of a BOOTP/DHCP message (enough for the
// snooping examples: op, htype, hlen, hops, xid).
type DHCP struct {
	Op    uint8 // 1 request, 2 reply
	HType uint8
	HLen  uint8
	Hops  uint8
	XID   uint32
}

// LayerName implements Layer.
func (d *DHCP) LayerName() string { return "dhcp" }

// Bytes implements Layer.
func (d *DHCP) Bytes() []byte {
	b := make([]byte, 8)
	b[0] = d.Op
	b[1] = d.HType
	b[2] = d.HLen
	b[3] = d.Hops
	binary.BigEndian.PutUint32(b[4:8], d.XID)
	return b
}

// FixUp implements Layer.
func (d *DHCP) FixUp(hdr, payload []byte) {}

// DNS is the 12-byte DNS message header.
type DNS struct {
	ID      uint16
	Flags   uint16
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// LayerName implements Layer.
func (d *DNS) LayerName() string { return "dns" }

// Bytes implements Layer.
func (d *DNS) Bytes() []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[0:2], d.ID)
	binary.BigEndian.PutUint16(b[2:4], d.Flags)
	binary.BigEndian.PutUint16(b[4:6], d.QDCount)
	binary.BigEndian.PutUint16(b[6:8], d.ANCount)
	binary.BigEndian.PutUint16(b[8:10], d.NSCount)
	binary.BigEndian.PutUint16(b[10:12], d.ARCount)
	return b
}

// FixUp implements Layer.
func (d *DNS) FixUp(hdr, payload []byte) {}

// Raw is an opaque payload.
type Raw []byte

// LayerName implements Layer.
func (r Raw) LayerName() string { return "raw" }

// Bytes implements Layer.
func (r Raw) Bytes() []byte { return append([]byte(nil), r...) }

// FixUp implements Layer.
func (r Raw) FixUp(hdr, payload []byte) {}

// MAC builds a MAC address from six bytes.
func MAC(a, b, c, d, e, f byte) [6]byte { return [6]byte{a, b, c, d, e, f} }

// IP builds an IPv4 address from dotted components.
func IP(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// IPString formats an IPv4 address.
func IPString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
