package packet

import (
	"encoding/binary"
	"fmt"
)

// View is a decoded packet: nil layer pointers mean the layer was absent.
// Decoding is tolerant: it stops at the first layer it cannot parse and
// leaves the remainder in Payload.
type View struct {
	Ethernet *Ethernet
	IPv4     *IPv4
	UDP      *UDP
	TCP      *TCP
	GRE      *GRE
	DHCP     *DHCP
	DNS      *DNS
	// InnerIPv4 is set for GRE-encapsulated IPv4-in-IPv4.
	InnerIPv4 *IPv4
	Payload   []byte
}

// Decode parses an Ethernet frame into a View.
func Decode(data []byte) (*View, error) {
	v := &View{}
	if len(data) < 14 {
		return nil, fmt.Errorf("packet: frame too short (%d bytes)", len(data))
	}
	eth := &Ethernet{EtherType: binary.BigEndian.Uint16(data[12:14])}
	copy(eth.Dst[:], data[0:6])
	copy(eth.Src[:], data[6:12])
	v.Ethernet = eth
	rest := data[14:]
	if eth.EtherType != EtherTypeIPv4 {
		v.Payload = rest
		return v, nil
	}
	ip, rest, err := decodeIPv4(rest)
	if err != nil {
		v.Payload = rest
		return v, nil
	}
	v.IPv4 = ip
	switch ip.Protocol {
	case ProtoUDP:
		if len(rest) < 8 {
			v.Payload = rest
			return v, nil
		}
		udp := &UDP{
			SrcPort: binary.BigEndian.Uint16(rest[0:2]),
			DstPort: binary.BigEndian.Uint16(rest[2:4]),
		}
		v.UDP = udp
		rest = rest[8:]
		switch udp.DstPort {
		case PortDHCPServer, PortDHCPClient:
			if len(rest) >= 8 {
				v.DHCP = &DHCP{
					Op: rest[0], HType: rest[1], HLen: rest[2], Hops: rest[3],
					XID: binary.BigEndian.Uint32(rest[4:8]),
				}
				rest = rest[8:]
			}
		case PortDNS:
			if len(rest) >= 12 {
				v.DNS = &DNS{
					ID:      binary.BigEndian.Uint16(rest[0:2]),
					Flags:   binary.BigEndian.Uint16(rest[2:4]),
					QDCount: binary.BigEndian.Uint16(rest[4:6]),
					ANCount: binary.BigEndian.Uint16(rest[6:8]),
					NSCount: binary.BigEndian.Uint16(rest[8:10]),
					ARCount: binary.BigEndian.Uint16(rest[10:12]),
				}
				rest = rest[12:]
			}
		}
		v.Payload = rest
	case ProtoTCP:
		if len(rest) < 20 {
			v.Payload = rest
			return v, nil
		}
		v.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(rest[0:2]),
			DstPort: binary.BigEndian.Uint16(rest[2:4]),
			Seq:     binary.BigEndian.Uint32(rest[4:8]),
			Ack:     binary.BigEndian.Uint32(rest[8:12]),
			Flags:   rest[13],
			Window:  binary.BigEndian.Uint16(rest[14:16]),
		}
		off := int(rest[12]>>4) * 4
		if off < 20 || off > len(rest) {
			off = 20
		}
		v.Payload = rest[off:]
	case ProtoGRE:
		if len(rest) < 4 {
			v.Payload = rest
			return v, nil
		}
		v.GRE = &GRE{Protocol: binary.BigEndian.Uint16(rest[2:4])}
		rest = rest[4:]
		if v.GRE.Protocol == EtherTypeIPv4 {
			if inner, more, err := decodeIPv4(rest); err == nil {
				v.InnerIPv4 = inner
				rest = more
			}
		}
		v.Payload = rest
	default:
		v.Payload = rest
	}
	return v, nil
}

func decodeIPv4(data []byte) (*IPv4, []byte, error) {
	if len(data) < 20 {
		return nil, data, fmt.Errorf("packet: ipv4 header too short")
	}
	if data[0]>>4 != 4 {
		return nil, data, fmt.Errorf("packet: not ipv4")
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < 20 || ihl > len(data) {
		return nil, data, fmt.Errorf("packet: bad ihl")
	}
	ip := &IPv4{
		TOS:      data[1],
		ID:       binary.BigEndian.Uint16(data[4:6]),
		Flags:    data[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(data[6:8]) & 0x1FFF,
		TTL:      data[8],
		Protocol: data[9],
		Src:      binary.BigEndian.Uint32(data[12:16]),
		Dst:      binary.BigEndian.Uint32(data[16:20]),
	}
	return ip, data[ihl:], nil
}
