package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline expires.
func waitState(t *testing.T, m *Manager, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id, true)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// TestConcurrentIdenticalJobsSingleFlight is the satellite requirement: N
// parallel identical jobs must produce one cache fill and N-1 hits.
func TestConcurrentIdenticalJobsSingleFlight(t *testing.T) {
	const n = 6
	var fills atomic.Int64
	release := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: n, QueueDepth: n})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		fills.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(`{"kind":"optimize"}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	spec := JobSpec{Kind: "optimize", Workload: "quickstart"}
	var ids []string
	for i := 0; i < n; i++ {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	// Let every worker pick its job up, then release the single fill.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, running := m.Counts(); running == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never picked all jobs up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)

	cachedCount := 0
	for _, id := range ids {
		st := waitState(t, m, id, StateDone)
		if string(st.Result) != `{"kind":"optimize"}` {
			t.Errorf("job %s result = %s", id, st.Result)
		}
		if st.Cached {
			cachedCount++
		}
	}
	if got := fills.Load(); got != 1 {
		t.Errorf("fills = %d, want 1 (single-flight)", got)
	}
	if cachedCount != n-1 {
		t.Errorf("cached jobs = %d, want %d", cachedCount, n-1)
	}
	if st := m.Cache().Stats(); st.Hits != n-1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want %d hits / 1 miss", st, n-1)
	}
}

// TestCancelReleasesWorkerSlot is the satellite requirement: canceling a
// running job must free its worker for the next job.
func TestCancelReleasesWorkerSlot(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		if job.Spec.Seed == 99 { // the blocked job
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return []byte(`{}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	blocked, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocked.ID, StateRunning)
	if _, err := m.Cancel(blocked.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, blocked.ID, StateCanceled)
	if st.Error == "" {
		t.Error("canceled job should carry an error string")
	}

	// The single worker must now be free to run another job.
	next, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, next.ID, StateDone)
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m.Start()
	defer m.Drain(time.Second)

	first, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	queued, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitState(t, m, first.ID, StateDone)
	st := waitState(t, m, queued.ID, StateCanceled)
	if st.StartedAt != "" {
		t.Error("queued job canceled before start should never have started")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 1})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m.Start()
	defer m.Drain(time.Second)

	running, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning) // queue now empty
	if _, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 2}); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestDrainCancelsAndRejects(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		<-ctx.Done() // only finishes via cancellation
		return nil, ctx.Err()
	}
	m.Start()

	running, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	m.Drain(50 * time.Millisecond)

	if st, _ := m.Get(running.ID, false); st.State != StateCanceled {
		t.Errorf("running job state after drain = %s, want canceled", st.State)
	}
	if st, _ := m.Get(queued.ID, false); st.State != StateCanceled {
		t.Errorf("queued job state after drain = %s, want canceled", st.State)
	}
	if _, err := m.Submit(JobSpec{Workload: "quickstart"}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain err = %v, want ErrDraining", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(ManagerConfig{})
	if _, err := m.Submit(JobSpec{Kind: "bogus"}); err == nil {
		t.Error("bogus kind should fail")
	}
	if _, err := m.Submit(JobSpec{Workload: "no-such-workload"}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m.Start()
	defer m.Drain(time.Second)

	st, err := m.Submit(JobSpec{Workload: "quickstart", TimeoutSeconds: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := m.Get(st.ID, false)
		if got.State.Terminal() {
			if got.State != StateFailed {
				t.Fatalf("timed-out job state = %s, want failed", got.State)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never timed out")
}

func TestJobSpecDigest(t *testing.T) {
	a := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1}
	b := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1, TimeoutSeconds: 30}
	c := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 2}
	if a.digest() != b.digest() {
		t.Error("timeout must not change the artifact digest")
	}
	if a.digest() == c.digest() {
		t.Error("seed must change the artifact digest")
	}
	d := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1, NoMem: true}
	if a.digest() == d.digest() {
		t.Error("phase toggles must change the artifact digest")
	}
	for i, spec := range []*JobSpec{&a, &b, &c, &d} {
		if err := spec.normalize(); err != nil {
			t.Fatalf("normalize %d: %v", i, err)
		}
	}
}

func TestJobSpecPasses(t *testing.T) {
	base := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1}
	reordered := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1,
		Passes: []string{"phase4", "phase2", "phase3"}}
	defaultOrder := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1,
		Passes: []string{"phase2", "phase3", "phase4"}}
	if base.digest() == reordered.digest() {
		t.Error("an explicit pass schedule must change the artifact digest")
	}
	if reordered.digest() == defaultOrder.digest() {
		t.Error("pass order must change the artifact digest")
	}

	// JSON cannot distinguish [] from absent: both normalize to nil and
	// share the no-Passes digest.
	empty := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1, Passes: []string{}}
	if err := empty.normalize(); err != nil {
		t.Fatal(err)
	}
	if empty.Passes != nil {
		t.Errorf("normalize kept empty Passes %v, want nil", empty.Passes)
	}
	if err := base.normalize(); err != nil {
		t.Fatal(err)
	}
	if empty.digest() != base.digest() {
		t.Error("empty pass list must digest like an absent one")
	}

	bad := JobSpec{Kind: "optimize", Workload: "ex1", Seed: 1, Passes: []string{"phase5"}}
	if err := bad.normalize(); err == nil {
		t.Error("normalize accepted unknown pass phase5")
	}
}
