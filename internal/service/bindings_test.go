package service

import (
	"encoding/json"
	"testing"
	"time"

	"p2go/internal/report"
)

// TestBindingsInDigest: the tunable bindings are part of the artifact
// identity — same job at different knob values must not share an artifact,
// while equivalent spellings of the same bindings must.
func TestBindingsInDigest(t *testing.T) {
	mk := func(bindings string) JobSpec {
		s := JobSpec{Kind: "optimize", Workload: "syncookie", Bindings: bindings}
		if err := s.normalize(); err != nil {
			t.Fatalf("normalize(%q): %v", bindings, err)
		}
		return s
	}
	base := mk("")
	small := mk("sc_bf_cells=32768")
	big := mk("sc_bf_cells=262080")
	if base.digest() == small.digest() || small.digest() == big.digest() {
		t.Errorf("bindings not separated in digest: %s / %s / %s",
			base.digest(), small.digest(), big.digest())
	}
	// Normalization canonicalizes spelling, so digests are spelling-proof.
	if spaced := mk(" sc_bf_cells = 32768 "); spaced.digest() != small.digest() {
		t.Errorf("equivalent bindings digests differ: %s vs %s", spaced.digest(), small.digest())
	}
	bad := JobSpec{Kind: "optimize", Workload: "syncookie", Bindings: "sc_bf_cells"}
	if err := bad.normalize(); err == nil {
		t.Error("malformed bindings string passed normalize")
	}
}

// TestTuneJobEndToEnd: an optimize job scheduling the tune pass runs the
// knob search under the service's artifact cache and reports the found
// bindings and the per-knob ranges in the result.
func TestTuneJobEndToEnd(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	m.Start()
	defer m.Drain(5 * time.Second)

	st, err := m.Submit(JobSpec{
		Kind:     "optimize",
		Workload: "syncookie",
		Passes:   []string{"tune"},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	var rep report.JobResult
	if err := json.Unmarshal(done.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bindings == "" {
		t.Error("tune job result carries no bindings")
	}
	if len(rep.Tunables) != 1 || rep.Tunables[0].Name != "sc_bf_cells" {
		t.Fatalf("tunables = %+v, want the sc_bf_cells knob", rep.Tunables)
	}
	k := rep.Tunables[0]
	if k.Value < k.Min || k.Value > k.Max || k.Value >= k.Default {
		t.Errorf("tuned sc_bf_cells = %d (range %d..%d, default %d), want a strict shrink",
			k.Value, k.Min, k.Max, k.Default)
	}
	if rep.StagesAfter >= rep.StagesBefore {
		t.Errorf("tune job stages %d -> %d, want a reduction", rep.StagesBefore, rep.StagesAfter)
	}
}

// TestBindingsJobPinsKnobs: submitting explicit bindings (no tune pass)
// instantiates the program at those values and reports them back.
func TestBindingsJobPinsKnobs(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	m.Start()
	defer m.Drain(5 * time.Second)

	st, err := m.Submit(JobSpec{
		Kind:     "optimize",
		Workload: "syncookie",
		Bindings: "sc_bf_cells=65536",
		Passes:   []string{}, // profile only; [] normalizes to default — use explicit phases
		NoDeps:   true, NoMem: true, NoOffload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	var rep report.JobResult
	if err := json.Unmarshal(done.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bindings != "sc_bf_cells=65536" {
		t.Errorf("bindings = %q, want sc_bf_cells=65536", rep.Bindings)
	}
	if len(rep.Tunables) != 1 || rep.Tunables[0].Value != 65536 {
		t.Errorf("tunables = %+v, want sc_bf_cells pinned at 65536", rep.Tunables)
	}

	// Out-of-range values fail the job rather than silently clamping.
	bad, err := m.Submit(JobSpec{Kind: "optimize", Workload: "syncookie", Bindings: "sc_bf_cells=1"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, ok := m.Get(bad.ID, false)
		if !ok {
			t.Fatal("job disappeared")
		}
		if s.State == StateFailed {
			break
		}
		if s.State.Terminal() {
			t.Fatalf("out-of-range bindings job ended %s, want failed", s.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("out-of-range bindings job never failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
