package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"p2go/internal/cluster"
	"p2go/internal/core"
	"p2go/internal/fleet"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/prof"
	"p2go/internal/workloads"
)

// JobSpec is a submitted unit of work: profile or optimize one workload
// (optionally with an uploaded program and/or rules standing in for the
// workload's own), exactly mirroring the `p2go profile` / `p2go optimize`
// CLI inputs.
type JobSpec struct {
	// Kind is "profile", "optimize", or "fleet". Empty defaults to
	// "optimize".
	Kind string `json:"kind"`
	// Workload names the registered workload supplying the program,
	// rules, and calibrated trace. Empty defaults to "ex1".
	Workload string `json:"workload"`
	// Seed drives the workload's trace generator. Zero defaults to 1.
	Seed int64 `json:"seed"`
	// Program, when set, is inline P4_14 source overriding the
	// workload's program (the trace still comes from the workload).
	Program string `json:"program,omitempty"`
	// Rules, when set, is an inline runtime configuration overriding the
	// workload's rules.
	Rules string `json:"rules,omitempty"`
	// Bindings assigns the program's @tunable symbols before anything
	// runs, in the "name=value,name=value" format (the CLI's -set). It is
	// normalized to the canonical sorted rendering and is part of the
	// artifact digest: different instantiations produce different
	// artifacts. Unknown names and out-of-range values fail the job.
	Bindings string `json:"bindings,omitempty"`
	// Passes selects which optimization passes run and in what order,
	// mirroring the CLI's -passes (IDs from core.Passes(); only used for
	// optimize jobs). Empty means the default schedule filtered by the
	// deprecated phase toggles below. It is part of the artifact digest:
	// different schedules produce different artifacts.
	Passes []string `json:"passes,omitempty"`
	// Phase toggles, mirroring the CLI's -no-deps/-no-mem/-no-offload.
	//
	// Deprecated: set Passes instead; the toggles only apply when Passes
	// is empty.
	NoDeps    bool `json:"no_deps,omitempty"`
	NoMem     bool `json:"no_mem,omitempty"`
	NoOffload bool `json:"no_offload,omitempty"`
	// TimeoutSeconds bounds the job's run; 0 uses the server default.
	// The timeout is not part of the artifact digest: the same inputs
	// produce the same artifact however long they were allowed to take.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Parallelism is the job's worker count for sharded trace replay and
	// the Phase 3/4 candidate fan-out; 0 uses the server default.
	// Like the timeout it is not part of the artifact digest: the result
	// is parallelism-independent.
	Parallelism int `json:"parallelism,omitempty"`
	// Fleet is the network-wide job description for Kind "fleet": the
	// topology, injections, and per-device optimization configuration.
	// The other workload fields above are ignored for fleet jobs — every
	// device carries its own.
	Fleet *fleet.Spec `json:"fleet,omitempty"`
}

// normalize applies defaults and validates cheaply (the expensive parsing
// happens in the worker).
func (s *JobSpec) normalize() error {
	if s.Kind == "" {
		s.Kind = "optimize"
	}
	if s.Kind == "fleet" {
		if s.Fleet == nil {
			return fmt.Errorf("fleet job without a fleet spec")
		}
		if err := s.Fleet.Validate(); err != nil {
			return err
		}
		if s.TimeoutSeconds < 0 {
			return fmt.Errorf("negative timeout_seconds")
		}
		if s.Parallelism < 0 {
			return fmt.Errorf("negative parallelism")
		}
		// The single-workload fields don't apply; Workload doubles as the
		// fleet's display name in job listings.
		s.Workload = s.Fleet.Name
		return nil
	}
	if s.Kind != "profile" && s.Kind != "optimize" {
		return fmt.Errorf("unknown job kind %q (want \"profile\", \"optimize\", or \"fleet\")", s.Kind)
	}
	if s.Fleet != nil {
		return fmt.Errorf("fleet spec on a %s job (set kind \"fleet\")", s.Kind)
	}
	if s.Workload == "" {
		s.Workload = "ex1"
	}
	if _, err := workloads.Get(s.Workload); err != nil {
		return err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TimeoutSeconds < 0 {
		return fmt.Errorf("negative timeout_seconds")
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("negative parallelism")
	}
	if len(s.Passes) == 0 {
		s.Passes = nil // JSON cannot distinguish [] from absent; treat both as default
	}
	if err := core.ValidatePasses(s.Passes); err != nil {
		return err
	}
	if s.Bindings != "" {
		b, err := p4.ParseBindings(s.Bindings)
		if err != nil {
			return err
		}
		s.Bindings = p4.FormatBindings(b)
	}
	return nil
}

// digest content-addresses the job: two specs with the same digest
// produce the same artifact.
func (s JobSpec) digest() string {
	if s.Kind == "fleet" {
		return Digest(s.Kind, s.Fleet.Fingerprint())
	}
	return Digest(s.Kind, s.Workload, fmt.Sprintf("%d", s.Seed), s.Program, s.Rules,
		fmt.Sprintf("%t/%t/%t", s.NoDeps, s.NoMem, s.NoOffload),
		strings.Join(s.Passes, ","), s.Bindings)
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
	// StateRequeued means a drain persisted the still-queued job to the
	// journal; it is terminal for this process and recovered (under a
	// new ID) on the next start.
	StateRequeued JobState = "requeued"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateRequeued
}

// Job is one tracked submission. All fields are guarded by the manager's
// mutex; Spec and Digest are immutable after creation.
type Job struct {
	ID     string
	Spec   JobSpec
	Digest string

	state      JobState
	cached     bool
	errText    string
	result     []byte
	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time
	cancel     context.CancelFunc
	canceled   bool // user requested cancellation
	requeue    bool // drain persisted the job for recovery on restart
	retries    int  // transient-failure re-runs this job consumed
	// lease is the cluster ownership lease the worker holds while the job
	// runs; nil outside replica groups or before the worker acquired it.
	lease *cluster.JobLease
	// replica names the replica that ran (or is running) the job; set in
	// cluster mode only.
	replica string
	// takenOverFrom names the dead replica this job was reclaimed from,
	// when the job entered via TakeoverScan rather than a live submission.
	takenOverFrom string
	// trace collects the job's spans; set when the job starts running.
	// The collector is internally synchronized, so readers only need the
	// manager's mutex to read the pointer.
	trace *obs.Collector
	// meter measures the job's resource consumption while it runs; set
	// together with trace, read only by the worker goroutine running the
	// job (execute samples it mid-flight to embed the resources block in
	// the report).
	meter *prof.Meter
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Kind     string   `json:"kind"`
	Workload string   `json:"workload"`
	Seed     int64    `json:"seed"`
	Digest   string   `json:"digest"`
	// Cached reports that the result was served from the artifact cache
	// rather than computed by this job.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Retries counts transient-failure re-runs this job consumed.
	Retries int `json:"retries,omitempty"`
	// Replica names the replica serving the job (cluster mode only);
	// TakenOverFrom names the dead replica it was reclaimed from, when the
	// job arrived by lease takeover instead of a client submission.
	Replica       string `json:"replica,omitempty"`
	TakenOverFrom string `json:"taken_over_from,omitempty"`
	CreatedAt     string `json:"created_at"`
	StartedAt     string `json:"started_at,omitempty"`
	FinishedAt    string `json:"finished_at,omitempty"`
	// Result is the report.JobResult JSON, present once the job is done
	// and the caller asked for it.
	Result json.RawMessage `json:"result,omitempty"`
}

// statusLocked builds the JSON view; the manager's mutex must be held.
func (j *Job) statusLocked(includeResult bool) JobStatus {
	st := JobStatus{
		ID:            j.ID,
		State:         j.state,
		Kind:          j.Spec.Kind,
		Workload:      j.Spec.Workload,
		Seed:          j.Spec.Seed,
		Digest:        j.Digest,
		Cached:        j.cached,
		Error:         j.errText,
		Retries:       j.retries,
		Replica:       j.replica,
		TakenOverFrom: j.takenOverFrom,
		CreatedAt:     j.createdAt.UTC().Format(time.RFC3339Nano),
	}
	if !j.startedAt.IsZero() {
		st.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
	}
	if includeResult && j.state == StateDone {
		st.Result = json.RawMessage(j.result)
	}
	return st
}
