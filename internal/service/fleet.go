package service

import (
	"context"
	"encoding/json"
	"time"

	"p2go/internal/core"
	"p2go/internal/fleet"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/report"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// executeFleet runs a Kind "fleet" job: the fleet runner collects every
// device's observed trace and fans per-device optimizations across its
// own bounded pool (the job occupies exactly one service worker, so a
// fleet can never deadlock the job queue it was submitted through).
//
// Caching is layered the same way single jobs are, but shared wider:
//   - the daemon-wide AnalysisCache dedups compiles/profiles across all
//     devices of all fleet jobs in this process (the network-wide story:
//     a homogeneous fleet of N devices compiles ~once, not N times);
//   - the compile/profile hooks behind it serve from the LRU + disk
//     spill artifact cache, shared with single jobs and across restarts;
//   - whole device rows spill through the same cache, which is what lets
//     a fleet job killed mid-run (kill -9) recompute only the devices
//     that had not finished when it is recovered from the journal.
func (m *Manager) executeFleet(ctx context.Context, job *Job) ([]byte, error) {
	spec := *job.Spec.Fleet
	parallelism := m.jobParallelism(job)
	start := time.Now()
	res, err := fleet.Run(ctx, spec, fleet.Options{
		Core: core.Options{
			CompileHook: m.compileHook(),
			ProfileHook: m.fleetProfileHook(parallelism),
			Parallelism: parallelism,
		},
		AnalysisCache: m.fleetAnalysis,
		DeviceCache:   deviceCache{m: m},
		OnDevice: func(row report.FleetDevice) {
			m.cfg.Journal.Device(job.ID, row.Device, row.Status)
			m.metrics.FleetDevice(row.Status)
			m.logger.Info("fleet device finished",
				"job_id", job.ID, "digest", job.Digest, "replica_id", job.replica,
				"device", row.Device, "status", row.Status, "packets", row.Packets,
				"cached", row.Cached)
		},
		Faults: m.cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	m.metrics.FleetJobCompleted(res.DeviceCount, time.Since(start).Seconds(),
		res.CompileHits, res.CompileMisses, res.ProfileHits, res.ProfileMisses)
	if job.replica != "" {
		// Attribution only; report.FleetEquivalent ignores it, so the
		// survivor's result after a takeover still compares equal.
		res.Replica = job.replica
	}
	// Resource attribution rides the same rule: FleetEquivalent ignores
	// it, like timings and cache counters.
	if job.meter != nil {
		res.Resources = report.FromUsage(job.meter.Sample())
	}
	return json.Marshal(res)
}

// fleetProfileHook serves trace replays from the artifact cache like
// profileHook, but digests the trace per call: a fleet replays a
// different observed trace per device, so there is no single job-wide
// trace digest to close over.
func (m *Manager) fleetProfileHook(parallelism int) func(context.Context, *p4.Program, *rt.Config, *trafficgen.Trace) (*profile.Profile, error) {
	return func(ctx context.Context, prog *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*profile.Profile, error) {
		return m.cachedProfile(ctx, prog, cfg, trace, TraceDigest(trace), parallelism)
	}
}

// deviceCache adapts the manager's artifact cache to the fleet runner's
// DeviceCache: whole per-device rows stored under a "fleetdev" kind, so
// they ride the same LRU bound and disk spill as every other artifact.
type deviceCache struct{ m *Manager }

func (d deviceCache) Get(key string) ([]byte, bool) {
	data, ok := d.m.cache.GetBytes("fleetdev:" + key)
	d.m.metrics.Cache("fleetdev", ok)
	return data, ok
}

func (d deviceCache) Put(key string, data []byte) {
	d.m.cache.PutBytes("fleetdev:"+key, data)
}
