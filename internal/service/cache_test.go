package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4, "")
	fills := 0
	fill := func() (any, error) { fills++; return 42, nil }

	v, hit, err := c.Do("k", fill)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do = %v hit=%v err=%v, want fill", v, hit, err)
	}
	v, hit, err = c.Do("k", fill)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do = %v hit=%v err=%v, want hit", v, hit, err)
	}
	if fills != 1 {
		t.Fatalf("fills = %d, want 1", fills)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4, "")
	var fills atomic.Int64
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	hits := make([]bool, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do("shared", func() (any, error) {
				fills.Add(1)
				<-release
				return "artifact", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			hits[i], vals[i] = hit, v
		}(i)
	}
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fills = %d, want 1 (single-flight)", got)
	}
	misses := 0
	for i := 0; i < n; i++ {
		if vals[i] != "artifact" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers filled, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Hits != n-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d hits / 1 miss", st, n-1)
	}
}

func TestCacheFillErrorNotStoredAndWaitersRetry(t *testing.T) {
	c := NewCache(4, "")
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call fills again.
	v, hit, err := c.Do("k", func() (any, error) { return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry = %v hit=%v err=%v, want fresh fill", v, hit, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, "")
	fill := func(v int) func() (any, error) { return func() (any, error) { return v, nil } }
	c.Do("a", fill(1))
	c.Do("b", fill(2))
	c.Do("a", fill(1)) // refresh a; b is now oldest
	c.Do("c", fill(3)) // evicts b
	if _, hit, _ := c.Do("a", fill(1)); !hit {
		t.Error("a should have survived eviction")
	}
	if _, hit, _ := c.Do("b", fill(2)); hit {
		t.Error("b should have been evicted")
	}
	if st := c.Stats(); st.Entries > 2 {
		t.Errorf("entries = %d, want <= 2", st.Entries)
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(1, dir)
	c.DoBytes("job:aa", func() ([]byte, error) { return []byte("first"), nil })
	c.DoBytes("job:bb", func() ([]byte, error) { return []byte("second"), nil }) // evicts job:aa from memory

	// The evicted artifact must come back from disk, without refilling.
	v, hit, err := c.DoBytes("job:aa", func() ([]byte, error) {
		return nil, errors.New("must not refill")
	})
	if err != nil || !hit || string(v) != "first" {
		t.Fatalf("spill read = %q hit=%v err=%v", v, hit, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job_bb")); err != nil {
		t.Errorf("spill file for job:bb missing: %v", err)
	}

	// A fresh cache over the same directory sees artifacts from the
	// previous process lifetime.
	c2 := NewCache(4, dir)
	v, hit, err = c2.DoBytes("job:bb", func() ([]byte, error) { return nil, errors.New("must not refill") })
	if err != nil || !hit || string(v) != "second" {
		t.Fatalf("restart read = %q hit=%v err=%v", v, hit, err)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(64, "")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			for j := 0; j < 20; j++ {
				if _, _, err := c.Do(key, func() (any, error) { return i % 8, nil }); err != nil {
					t.Errorf("Do: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestDigestDistinguishesConcatenation(t *testing.T) {
	if Digest("ab", "c") == Digest("a", "bc") {
		t.Fatal("length prefixing failed: ambiguous concatenation collides")
	}
	if Digest("x") != Digest("x") {
		t.Fatal("digest not deterministic")
	}
}
