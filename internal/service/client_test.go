package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testClient builds a client over the given servers with sleeps captured
// instead of slept, so backoff behavior is assertable and instant.
func testClient(t *testing.T, servers ...string) (*Client, *[]time.Duration) {
	t.Helper()
	c := NewClient(servers, 2*time.Second)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	return c, &slept
}

// TestClientFailover: the first replica is down (connection refused), the
// second accepts the job — a submit succeeds transparently.
func TestClientFailover(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // keep the URL, kill the listener
	var hits int32
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-000001","state":"queued"}`)
	}))
	defer live.Close()

	c, slept := testClient(t, dead.URL, live.URL)
	// Pin the ranking so the dead replica is genuinely tried first.
	c.servers = []string{dead.URL, live.URL}
	st, err := c.submit("/jobs", []byte(`{}`), "")
	if err != nil {
		t.Fatalf("submit with one dead replica: %v", err)
	}
	if st.ID != "j-000001" {
		t.Fatalf("got %+v", st)
	}
	if atomic.LoadInt32(&hits) != 1 {
		t.Errorf("live replica hit %d times, want 1", hits)
	}
	if len(*slept) != 1 {
		t.Errorf("failover slept %d time(s), want 1 backoff between attempts", len(*slept))
	}
}

// TestClientHonorsRetryAfter: a 429 with Retry-After: 2 must stretch the
// wait to the server's hint (the computed first backoff would be under
// 100ms), and the request must then be retried to success.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-000002","state":"queued"}`)
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL)
	st, err := c.submit("/jobs", []byte(`{}`), "")
	if err != nil {
		t.Fatalf("submit after backpressure: %v", err)
	}
	if st.ID != "j-000002" {
		t.Fatalf("got %+v", st)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Errorf("slept %v, want exactly the 2s Retry-After hint", *slept)
	}
}

// TestClientRetryAfterCapped: an open circuit breaker's 30s hint is
// capped so an interactive CLI is never wedged for half a minute.
func TestClientRetryAfterCapped(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "30")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"circuit open"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j-000003","state":"queued"}`)
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL)
	if _, err := c.submit("/jobs", []byte(`{}`), ""); err != nil {
		t.Fatalf("submit after circuit-open: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] != c.RetryAfterCap {
		t.Errorf("slept %v, want the %s cap", *slept, c.RetryAfterCap)
	}
}

// TestClientFailsFastOn4xx: a bad job spec (400) must not be retried —
// re-sending garbage N times is just load.
func TestClientFailsFastOn4xx(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad job spec"}`)
	}))
	defer srv.Close()

	c, slept := testClient(t, srv.URL)
	_, err := c.submit("/jobs", []byte(`{"kind":"nope"}`), "")
	if err == nil {
		t.Fatal("400 did not surface as an error")
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusBadRequest {
		t.Fatalf("error %v does not carry the 400", err)
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("400 retried: %d calls, want 1", calls)
	}
	if len(*slept) != 0 {
		t.Errorf("400 slept %v, want no backoff", *slept)
	}
}

// TestClientStableRouting: rendezvous ranking is a pure function of
// (replica set, route key) — every client agrees, repeatedly — and
// different digests actually spread across replicas.
func TestClientStableRouting(t *testing.T) {
	servers := []string{"http://a:1", "http://b:1", "http://c:1"}
	c, _ := testClient(t, servers...)
	first := map[string]string{}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("digest-%d", i)
		ranked := c.ranked(key)
		if len(ranked) != len(servers) {
			t.Fatalf("ranked(%q) lost replicas: %v", key, ranked)
		}
		for rep := 0; rep < 3; rep++ {
			again := c.ranked(key)
			for j := range ranked {
				if again[j] != ranked[j] {
					t.Fatalf("ranking for %q not stable: %v vs %v", key, ranked, again)
				}
			}
		}
		first[ranked[0]] = key
	}
	if len(first) < 2 {
		t.Errorf("32 digests all routed to one replica: %v", first)
	}
	// No route key: the configured order is preserved.
	plain := c.ranked("")
	for i, s := range servers {
		if plain[i] != s {
			t.Fatalf("empty route reordered servers: %v", plain)
		}
	}
}

// TestClientStatusAcrossReplicas: a job known only to the second replica
// is found by ID — 404 on one replica means "ask the next", not failure.
func TestClientStatusAcrossReplicas(t *testing.T) {
	notMine := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown job"}`)
	}))
	defer notMine.Close()
	mine := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs/r2-j-000001" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"unknown job"}`)
			return
		}
		fmt.Fprint(w, `{"id":"r2-j-000001","state":"done"}`)
	}))
	defer mine.Close()

	c, _ := testClient(t, notMine.URL, mine.URL)
	st, err := c.Job("r2-j-000001")
	if err != nil {
		t.Fatalf("cross-replica status: %v", err)
	}
	if st.ID != "r2-j-000001" || st.State != StateDone {
		t.Fatalf("got %+v", st)
	}

	// Unknown everywhere: fail fast with the 404, no retry storm.
	_, err = c.Job("j-nope")
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusNotFound {
		t.Fatalf("all-replicas-404 error = %v, want the 404", err)
	}
}

// TestClientListMerge: jobs lists merge across replicas, deduplicated by
// ID with terminal rows winning, ordered by creation time.
func TestClientListMerge(t *testing.T) {
	r1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"id":"r1-j-000001","state":"running","created_at":"2026-01-01T00:00:02Z"},
		                {"id":"shared","state":"queued","created_at":"2026-01-01T00:00:01Z"}]`)
	}))
	defer r1.Close()
	r2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"id":"shared","state":"done","created_at":"2026-01-01T00:00:01Z"}]`)
	}))
	defer r2.Close()

	c, _ := testClient(t, r1.URL, r2.URL)
	sts, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("merged list has %d row(s), want 2: %+v", len(sts), sts)
	}
	if sts[0].ID != "shared" || sts[0].State != StateDone {
		t.Errorf("row 0 = %+v, want the terminal 'shared' row first (older)", sts[0])
	}
	if sts[1].ID != "r1-j-000001" {
		t.Errorf("row 1 = %+v", sts[1])
	}
}

// TestClientExhaustsAttempts: with every replica down, the error names
// the attempt and replica counts so the operator knows what was tried.
func TestClientExhaustsAttempts(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()
	c, slept := testClient(t, dead.URL)
	_, err := c.do(http.MethodPost, "/jobs", []byte(`{}`), "")
	if err == nil {
		t.Fatal("dead replica set did not error")
	}
	if !strings.Contains(err.Error(), "4 attempt(s)") {
		t.Errorf("error %q does not name the attempt count", err)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d time(s), want 3 (between 4 attempts)", len(*slept))
	}
	// Jittered doubling: each wait lands in [base/2, base), base doubling.
	base := c.Backoff
	for i, d := range *slept {
		if d < base/2 || d > base {
			t.Errorf("backoff %d = %v, want within [%v, %v]", i, d, base/2, base)
		}
		if base *= 2; base > c.MaxBackoff {
			base = c.MaxBackoff
		}
	}
}

// TestJobSpecRouteKey: the route key is the artifact digest — stable
// under spec normalization, distinct across distinct work.
func TestJobSpecRouteKey(t *testing.T) {
	a := JobSpec{Workload: "quickstart", Seed: 7}
	b := JobSpec{Kind: "optimize", Workload: "quickstart", Seed: 7}
	if a.RouteKey() == "" {
		t.Fatal("valid spec has empty route key")
	}
	if a.RouteKey() != b.RouteKey() {
		t.Error("default kind and explicit optimize route differently")
	}
	if a.RouteKey() == (JobSpec{Workload: "quickstart", Seed: 8}).RouteKey() {
		t.Error("different seeds share a route key")
	}
	if (JobSpec{Kind: "bogus"}).RouteKey() != "" {
		t.Error("invalid spec produced a route key")
	}
}
