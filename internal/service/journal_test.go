package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJournalCrashRecovery is the kill -9 scenario: jobs journaled as
// accepted but never finished — the process died with them queued — are
// recovered in acceptance order on the next start and run to completion.
func TestJournalCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Workers never started: submissions stay queued, exactly as if the
	// process were killed before the pool touched them.
	m1 := NewManager(ManagerConfig{Workers: 1, Journal: j1})
	seeds := []int64{11, 12, 13}
	for _, seed := range seeds {
		if _, err := m1.Submit(JobSpec{Workload: "quickstart", Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close() // the "crash"; every accepted record is already fsynced

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending, warnings, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("clean journal produced warnings: %v", warnings)
	}
	if len(pending) != len(seeds) {
		t.Fatalf("recovered %d job(s), want %d", len(pending), len(seeds))
	}
	for i, p := range pending {
		if p.Spec.Seed != seeds[i] {
			t.Errorf("recovered[%d].Spec.Seed = %d, want %d (acceptance order)", i, p.Spec.Seed, seeds[i])
		}
		if p.ID == "" {
			t.Errorf("recovered[%d] lost its original ID", i)
		}
	}

	m2 := NewManager(ManagerConfig{Workers: 2, Journal: j2})
	m2.execFn = func(ctx context.Context, job *Job) ([]byte, error) { return []byte(`{}`), nil }
	accepted, dropped := m2.Requeue(pending)
	if accepted != len(seeds) || dropped != 0 {
		t.Fatalf("requeue = %d accepted, %d dropped", accepted, dropped)
	}
	m2.Start()
	for _, st := range m2.List() {
		if fin := waitTerminal(t, m2, st.ID); fin.State != StateDone {
			t.Errorf("recovered job %s = %s (%q)", st.ID, fin.State, fin.Error)
		}
	}
	m2.Drain(time.Second)

	// Every recovered job finished, so a further recovery finds nothing.
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	left, _, err := j3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("second recovery found %d job(s), want 0", len(left))
	}
}

// TestDrainRequeuesQueuedJobs: a graceful drain persists still-queued jobs
// as requeued (terminal for this process, recoverable by the next) and
// reports them; the running job is canceled at the drain deadline and is
// not recovered.
func TestDrainRequeuesQueuedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{Workers: 1, Journal: j})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m.Start()

	blocker, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	waitState(t, m, blocker.ID, StateRunning)
	q1, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 2})
	q2, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 3})

	rep := m.Drain(50 * time.Millisecond)
	if len(rep.Requeued) != 2 || rep.Requeued[0] != q1.ID || rep.Requeued[1] != q2.ID {
		t.Fatalf("drain requeued %v, want [%s %s]", rep.Requeued, q1.ID, q2.ID)
	}
	if len(rep.Canceled) != 0 {
		t.Errorf("drain canceled %v with a journal configured", rep.Canceled)
	}
	for _, id := range rep.Requeued {
		if st, _ := m.Get(id, false); st.State != StateRequeued {
			t.Errorf("job %s = %s, want requeued", id, st.State)
		}
	}
	if st, _ := m.Get(blocker.ID, false); st.State != StateCanceled {
		t.Errorf("running job = %s, want canceled at drain deadline", st.State)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending, _, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || pending[0].Spec.Seed != 2 || pending[1].Spec.Seed != 3 {
		t.Fatalf("recovered %+v, want the two drained specs (seeds 2, 3)", pending)
	}
	if pending[0].ID != q1.ID || pending[1].ID != q2.ID {
		t.Fatalf("recovered IDs %s, %s, want the originals %s, %s",
			pending[0].ID, pending[1].ID, q1.ID, q2.ID)
	}
}

// TestDrainWithoutJournalCancels preserves the pre-journal behavior.
func TestDrainWithoutJournalCancels(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m.Start()
	blocker, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	waitState(t, m, blocker.ID, StateRunning)
	q, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 2})

	rep := m.Drain(50 * time.Millisecond)
	if len(rep.Canceled) != 1 || rep.Canceled[0] != q.ID || len(rep.Requeued) != 0 {
		t.Fatalf("journal-less drain = %+v, want the queued job canceled", rep)
	}
	if st, _ := m.Get(q.ID, false); st.State != StateCanceled {
		t.Errorf("queued job = %s, want canceled", st.State)
	}
}

// TestJournalTornLineTolerated: a crash mid-append leaves a torn final
// line; recovery skips it and keeps every complete record.
func TestJournalTornLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Accepted("j-000001", JobSpec{Kind: "optimize", Workload: "quickstart", Seed: 9})
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accepted","id":"j-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending, warnings, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Spec.Seed != 9 {
		t.Fatalf("recovered %+v, want the one complete record", pending)
	}
	if len(warnings) != 1 {
		t.Fatalf("torn final line produced %d warning(s), want 1: %v", len(warnings), warnings)
	}
}

// TestJournalTruncationEveryOffset: recovery must be well-defined no
// matter where inside the last record a crash cut the write short. The
// journal is truncated at every byte offset of its final record; at each
// point recovery succeeds, always keeps the earlier record, never
// invents state, and warns exactly when a partial tail was dropped.
func TestJournalTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(master)
	if err != nil {
		t.Fatal(err)
	}
	j.Accepted("j-000001", JobSpec{Kind: "optimize", Workload: "quickstart", Seed: 1})
	j.Accepted("j-000002", JobSpec{Kind: "optimize", Workload: "quickstart", Seed: 2})
	j.Close()
	data, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	// base = end of the first record including its newline; everything
	// past it belongs to the last record.
	base := bytes.IndexByte(data, '\n') + 1
	if base <= 0 || base >= len(data) {
		t.Fatalf("journal layout unexpected: base %d of %d bytes", base, len(data))
	}

	for cut := base; cut <= len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%04d.jsonl", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jr, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		pending, warnings, err := jr.Recover()
		jr.Close()
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// The last record survives only when every byte of its JSON made
		// it to disk (the trailing newline itself is optional).
		wantJobs := 1
		if cut >= len(data)-1 {
			wantJobs = 2
		}
		if len(pending) != wantJobs {
			t.Fatalf("cut %d: recovered %d job(s), want %d", cut, len(pending), wantJobs)
		}
		if pending[0].ID != "j-000001" || pending[0].Spec.Seed != 1 {
			t.Fatalf("cut %d: first record damaged: %+v", cut, pending[0])
		}
		if wantJobs == 2 && (pending[1].ID != "j-000002" || pending[1].Spec.Seed != 2) {
			t.Fatalf("cut %d: intact last record damaged: %+v", cut, pending[1])
		}
		wantWarnings := 0
		if cut > base && wantJobs == 1 {
			wantWarnings = 1 // a non-empty torn tail was dropped, loudly
		}
		if len(warnings) != wantWarnings {
			t.Fatalf("cut %d: %d warning(s) %v, want %d", cut, len(warnings), warnings, wantWarnings)
		}
	}
}

// TestJournalNilSafe: a nil journal is inert at every call site.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Accepted("x", JobSpec{})
	j.Finished("x", StateDone)
	j.Requeued("x")
	if j.Path() != "" {
		t.Error("nil journal has a path")
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
}
