package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p2go/internal/faults"
)

// noBackoff keeps retry delays out of the test clock.
func noBackoff(time.Duration) {}

// TestWorkerPanicRecovered: a panicking job fails alone; the worker (and
// the daemon) survive to run the next job.
func TestWorkerPanicRecovered(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, MaxJobRetries: -1})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		if job.Spec.Seed == 666 {
			panic("boom")
		}
		return []byte(`{}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	bad, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := m.Get(waitTerminal(t, m, bad.ID).ID, false)
	if st.State != StateFailed || !strings.Contains(st.Error, "worker panic") {
		t.Fatalf("panicking job = %s (%q), want failed with panic text", st.State, st.Error)
	}

	good, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, good.ID); st.State != StateDone {
		t.Fatalf("job after panic = %s (%q), want done", st.State, st.Error)
	}
}

// TestInjectedWorkerPanic: the faults.WorkerPanic injector exercises the
// same recovery path without a cooperating execFn.
func TestInjectedWorkerPanic(t *testing.T) {
	set := faults.MustSet(faults.Spec{Point: faults.WorkerPanic, From: 0, To: 1})
	m := NewManager(ManagerConfig{Workers: 1, MaxJobRetries: -1, Faults: set})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) { return []byte(`{}`), nil }
	m.Start()
	defer m.Drain(time.Second)

	first, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	if st := waitTerminal(t, m, first.ID); st.State != StateFailed {
		t.Fatalf("injected panic = %s, want failed", st.State)
	}
	second, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 2})
	if st := waitTerminal(t, m, second.ID); st.State != StateDone {
		t.Fatalf("job after injected panic = %s (%q), want done", st.State, st.Error)
	}
}

// TestTransientRetrySucceeds: transient failures are retried with backoff
// and the retry count is visible in the job status.
func TestTransientRetrySucceeds(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(ManagerConfig{Workers: 1, MaxJobRetries: 2})
	m.sleep = noBackoff
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, MarkTransient(errors.New("flaky"))
		}
		return []byte(`{}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	st, err := m.Submit(JobSpec{Workload: "quickstart"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone {
		t.Fatalf("retried job = %s (%q), want done", fin.State, fin.Error)
	}
	if fin.Retries != 2 || calls.Load() != 3 {
		t.Errorf("retries = %d (calls %d), want 2 retries over 3 calls", fin.Retries, calls.Load())
	}
}

// TestTransientRetryExhausted: a persistently transient failure fails for
// good once the retry budget is spent; non-transient errors never retry.
func TestTransientRetryExhausted(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(ManagerConfig{Workers: 1, MaxJobRetries: 2})
	m.sleep = noBackoff
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		calls.Add(1)
		if job.Spec.Seed == 7 {
			return nil, MarkTransient(errors.New("always flaky"))
		}
		return nil, errors.New("hard failure")
	}
	m.Start()
	defer m.Drain(time.Second)

	flaky, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 7})
	if st := waitTerminal(t, m, flaky.ID); st.State != StateFailed || st.Retries != 2 {
		t.Fatalf("exhausted job = %s retries=%d, want failed after 2 retries", st.State, st.Retries)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}

	calls.Store(0)
	hard, _ := m.Submit(JobSpec{Workload: "quickstart", Seed: 8})
	if st := waitTerminal(t, m, hard.ID); st.State != StateFailed || st.Retries != 0 {
		t.Fatalf("hard-failed job = %s retries=%d, want failed with no retries", st.State, st.Retries)
	}
	if calls.Load() != 1 {
		t.Errorf("non-transient error ran %d times, want 1", calls.Load())
	}
}

// TestInjectedTransient: the faults.JobTransient injector drives the same
// retry loop; a one-event window is absorbed by a single retry.
func TestInjectedTransient(t *testing.T) {
	set := faults.MustSet(faults.Spec{Point: faults.JobTransient, From: 0, To: 1})
	m := NewManager(ManagerConfig{Workers: 1, Faults: set})
	m.sleep = noBackoff
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) { return []byte(`{}`), nil }
	m.Start()
	defer m.Drain(time.Second)

	st, _ := m.Submit(JobSpec{Workload: "quickstart"})
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone || fin.Retries != 1 {
		t.Fatalf("injected transient = %s retries=%d, want done after 1 retry", fin.State, fin.Retries)
	}
}

// TestCircuitBreaker: repeated failures of one spec open its circuit;
// submissions bounce with ErrCircuitOpen until the cooldown elapses, a
// half-open trial success resets it, and a trial failure re-opens it.
func TestCircuitBreaker(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var clock atomic.Int64 // nanoseconds of synthetic offset
	base := time.Now()

	m := NewManager(ManagerConfig{
		Workers: 1, MaxJobRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
	})
	m.now = func() time.Time { return base.Add(time.Duration(clock.Load())) }
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		if fail.Load() {
			return nil, errors.New("broken spec")
		}
		return []byte(`{}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	spec := JobSpec{Workload: "quickstart", Seed: 42}
	for i := 0; i < 2; i++ {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitTerminal(t, m, st.ID)
	}
	if _, err := m.Submit(spec); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third submit after 2 failures: err = %v, want ErrCircuitOpen", err)
	}
	// A different spec is unaffected.
	failover, err := m.Submit(JobSpec{Workload: "quickstart", Seed: 43})
	if err != nil {
		t.Fatalf("other spec bounced by unrelated breaker: %v", err)
	}
	waitTerminal(t, m, failover.ID)

	// Cooldown elapses; the half-open trial fails and re-opens the circuit.
	clock.Store(int64(2 * time.Minute))
	trial, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("half-open trial rejected: %v", err)
	}
	waitTerminal(t, m, trial.ID)
	if _, err := m.Submit(spec); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed trial should re-open the circuit, got err = %v", err)
	}

	// Next cooldown: the trial succeeds and the breaker resets.
	fail.Store(false)
	clock.Store(int64(4 * time.Minute))
	ok, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("second trial rejected: %v", err)
	}
	if st := waitTerminal(t, m, ok.ID); st.State != StateDone {
		t.Fatalf("trial = %s, want done", st.State)
	}
	if _, err := m.Submit(spec); err != nil {
		t.Fatalf("breaker should be closed after success: %v", err)
	}
}

// TestCircuitBreakerEscalation: every failed half-open trial doubles the
// cooldown, so a spec that keeps failing probes ever more slowly instead
// of hammering on a fixed period.
func TestCircuitBreakerEscalation(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var clock atomic.Int64
	base := time.Now()

	m := NewManager(ManagerConfig{
		Workers: 1, MaxJobRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
	})
	m.now = func() time.Time { return base.Add(time.Duration(clock.Load())) }
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		if fail.Load() {
			return nil, errors.New("broken spec")
		}
		return []byte(`{}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	spec := JobSpec{Workload: "quickstart", Seed: 99}
	for i := 0; i < 2; i++ {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitTerminal(t, m, st.ID)
	}
	// Open at cooldown 1m (shift 0). Run the half-open probe at t=2m; its
	// failure re-opens at 2x: openUntil = 2m + 2m.
	clock.Store(int64(2 * time.Minute))
	trial, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	waitTerminal(t, m, trial.ID)
	// At t=3m30s the original 1m cooldown has long passed — only the
	// escalated 2m one explains a bounce.
	clock.Store(int64(3*time.Minute + 30*time.Second))
	if _, err := m.Submit(spec); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("cooldown did not escalate after failed probe: err = %v", err)
	}
	// Second failed probe at t=4m30s: re-opens at 4x → openUntil = 8m30s.
	clock.Store(int64(4*time.Minute + 30*time.Second))
	trial2, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	waitTerminal(t, m, trial2.ID)
	clock.Store(int64(7 * time.Minute))
	if _, err := m.Submit(spec); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("cooldown did not double again: err = %v", err)
	}
	// A probe that finally succeeds closes the breaker and clears the
	// escalation — the next submission sails through.
	fail.Store(false)
	clock.Store(int64(9 * time.Minute))
	ok, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("succeeding probe rejected: %v", err)
	}
	if st := waitTerminal(t, m, ok.ID); st.State != StateDone {
		t.Fatalf("probe = %s, want done", st.State)
	}
	if _, err := m.Submit(spec); err != nil {
		t.Fatalf("breaker still open after successful probe: %v", err)
	}
}

// TestCacheCorruptionDetected: a corrupted cached artifact is detected on
// hit, purged, and recomputed — never served.
func TestCacheCorruptionDetected(t *testing.T) {
	set := faults.MustSet(faults.Spec{Point: faults.CacheCorrupt, From: 0, To: 1})
	var fills atomic.Int64
	m := NewManager(ManagerConfig{Workers: 1, Faults: set})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		fills.Add(1)
		return []byte(`{"kind":"optimize"}`), nil
	}
	m.Start()
	defer m.Drain(time.Second)

	spec := JobSpec{Workload: "quickstart"}
	first, _ := m.Submit(spec)
	if st := waitTerminal(t, m, first.ID); st.State != StateDone {
		t.Fatalf("first job = %s", st.State)
	}
	// Second submission hits the cache; the injector corrupts the hit,
	// which must be detected and recomputed.
	second, _ := m.Submit(spec)
	st := waitTerminal(t, m, second.ID)
	if st.State != StateDone {
		t.Fatalf("recomputed job = %s (%q)", st.State, st.Error)
	}
	if st.Cached {
		t.Error("corrupted hit served as cached")
	}
	if !bytes.Equal(st.Result, []byte(`{"kind":"optimize"}`)) {
		t.Errorf("result = %q, want the recomputed artifact", st.Result)
	}
	if fills.Load() != 2 {
		t.Errorf("fills = %d, want 2 (original + recompute)", fills.Load())
	}

	// Third submission: the injector's one-event window is spent, so the
	// (re-stored) artifact is served clean from cache.
	third, _ := m.Submit(spec)
	if st := waitTerminal(t, m, third.ID); !st.Cached {
		t.Errorf("clean hit not served from cache (state %s)", st.State)
	}
	if fills.Load() != 2 {
		t.Errorf("clean hit refilled: %d fills", fills.Load())
	}
}

// TestResilienceMetricsRendered: every new counter appears in the
// Prometheus exposition.
func TestResilienceMetricsRendered(t *testing.T) {
	met := NewMetrics()
	met.JobRetried()
	met.WorkerPanicked()
	met.CircuitOpened()
	met.CircuitRejected()
	met.JournalRecovered()
	met.JournalRequeued()
	met.CacheCorruptionDetected()
	var buf bytes.Buffer
	met.WritePrometheus(&buf, nil)
	for _, want := range []string{
		"p2god_job_retries_total 1",
		"p2god_worker_panics_total 1",
		"p2god_circuit_opened_total 1",
		"p2god_circuit_rejected_total 1",
		"p2god_journal_recovered_total 1",
		"p2god_journal_requeued_total 1",
		"p2god_cache_corruption_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// waitTerminal polls until the job reaches any terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id, true)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}
