// Package service is the p2god optimization service: a stdlib-only HTTP
// daemon that runs profile/optimize jobs on a bounded worker pool, serves
// repeated work from a content-addressed artifact cache (threaded through
// the pipeline's compile/profile hooks, so even intra-job probe loops hit
// it), and exposes job status, Prometheus metrics, health, queue-full
// backpressure, and graceful drain.
package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"p2go/internal/fleet"
	"p2go/internal/obs"
	"p2go/internal/prof"
	"p2go/internal/workloads"
)

// NewHandler builds the daemon's HTTP API on a manager:
//
//	POST /jobs             submit a JobSpec; 202 + JobStatus, 429 when full
//	GET  /jobs             list jobs (no results)
//	GET  /jobs/{id}        one job; result attached once done
//	GET  /jobs/{id}/trace  the job's span tree as Chrome trace-event JSON
//	POST /jobs/{id}/cancel request cancellation
//	POST /fleets           submit a fleet.Spec (network-wide job); 202 + JobStatus
//	GET  /fleets           list fleet jobs (no results)
//	GET  /fleets/{id}      one fleet job; FleetResult attached once done
//	GET  /workloads        registered workload names and descriptions
//	GET  /cluster          replica-group view: self, peers, member liveness
//	GET  /debug/profiles        list the daemon's stored self-captures
//	GET  /debug/profiles/{id}   one capture's raw pprof bytes
//	POST /debug/profiles/capture  take a CPU+heap capture now
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness + queue occupancy
//
// The /debug/profiles routes answer 404 unless the manager was built
// with a profile store (p2god -profile-dir).
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	submit := func(w http.ResponseWriter, spec JobSpec) {
		st, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrCircuitOpen):
			w.Header().Set("Retry-After", "30")
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	}
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
			return
		}
		submit(w, spec)
	})
	mux.HandleFunc("POST /fleets", func(w http.ResponseWriter, r *http.Request) {
		var spec fleet.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad fleet spec: "+err.Error())
			return
		}
		submit(w, JobSpec{Kind: "fleet", Fleet: &spec})
	})
	mux.HandleFunc("GET /fleets", func(w http.ResponseWriter, r *http.Request) {
		var out []JobStatus
		for _, st := range m.List() {
			if st.Kind == "fleet" {
				out = append(out, st)
			}
		}
		if out == nil {
			out = []JobStatus{}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /fleets/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Get(r.PathValue("id"), true)
		if !ok || st.Kind != "fleet" {
			writeError(w, http.StatusNotFound, "unknown fleet job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Get(r.PathValue("id"), true)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		spans, ok := m.Trace(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no trace for job "+r.PathValue("id")+" (unknown, or not started)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeTrace(w, spans)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /workloads", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			Name        string `json:"name"`
			Description string `json:"description"`
			Paper       string `json:"paper"`
		}
		var out []entry
		for _, name := range workloads.Names() {
			wl, err := workloads.Get(name)
			if err != nil {
				continue
			}
			out = append(out, entry{Name: wl.Name, Description: wl.Description, Paper: wl.Paper})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /debug/profiles", func(w http.ResponseWriter, r *http.Request) {
		store := m.Profiles()
		if store == nil {
			writeError(w, http.StatusNotFound, "profile store disabled (start p2god with -profile-dir)")
			return
		}
		infos, err := store.List()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if infos == nil {
			infos = []prof.Info{}
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /debug/profiles/{id}", func(w http.ResponseWriter, r *http.Request) {
		store := m.Profiles()
		if store == nil {
			writeError(w, http.StatusNotFound, "profile store disabled (start p2god with -profile-dir)")
			return
		}
		data, err := store.Open(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="`+r.PathValue("id")+`"`)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("POST /debug/profiles/capture", func(w http.ResponseWriter, r *http.Request) {
		store := m.Profiles()
		if store == nil {
			writeError(w, http.StatusNotFound, "profile store disabled (start p2god with -profile-dir)")
			return
		}
		infos, err := store.Capture(r.Context())
		if err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, infos)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		queued, running := m.Counts()
		stats := m.Cache().Stats()
		gauges := map[string]float64{
			"p2god_jobs_queued":   float64(queued),
			"p2god_jobs_running":  float64(running),
			"p2god_cache_entries": float64(stats.Entries),
			"p2god_workers":       float64(m.cfg.Workers),
			"p2god_queue_depth":   float64(m.cfg.QueueDepth),
		}
		if store := m.Profiles(); store != nil {
			var stored, bytes float64
			if infos, err := store.List(); err == nil {
				stored = float64(len(infos))
				for _, info := range infos {
					bytes += float64(info.Bytes)
				}
			}
			gauges["p2god_profile_store_captures"] = stored
			gauges["p2god_profile_store_bytes"] = bytes
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.Metrics().WritePrometheus(w, gauges)
	})
	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		node := m.Cluster()
		if node == nil {
			writeJSON(w, http.StatusOK, map[string]any{"clustered": false})
			return
		}
		type memberView struct {
			ID      string `json:"id"`
			Alive   bool   `json:"alive"`
			Expires string `json:"expires"`
		}
		var views []memberView
		if members, err := node.Members(); err == nil {
			for _, mem := range members {
				views = append(views, memberView{
					ID:      mem.ID,
					Alive:   node.Alive(mem),
					Expires: mem.Expires.UTC().Format("2006-01-02T15:04:05.999999999Z07:00"),
				})
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"clustered": true,
			"replica":   node.ID(),
			"lease_ttl": node.TTL().String(),
			"peers":     m.cfg.Peers,
			"members":   views,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		queued, running := m.Counts()
		status := "ok"
		if m.Draining() {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  status,
			"queued":  queued,
			"running": running,
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
