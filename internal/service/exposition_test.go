package service

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line: name, label keys in the order
// they appeared, label values by key, and the sample value.
type promSample struct {
	name      string
	labelKeys []string
	labels    map[string]string
	value     float64
}

// promFamily groups one metric family's declared metadata and samples.
type promFamily struct {
	help    string
	typ     string
	samples []promSample
}

// parseProm parses the Prometheus text exposition format strictly enough
// for the invariants the daemon promises: every sample belongs to a family
// whose HELP and TYPE were declared before it.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f := families[name]
		if f == nil {
			f = &promFamily{}
			families[name] = f
		}
		return f
	}
	// _bucket/_sum/_count samples belong to the histogram family they
	// suffix.
	base := func(name string) string {
		if f := families[strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")]; f != nil && f.typ == "histogram" {
			return strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
		}
		return name
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			family(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			family(name).typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		s := promSample{labels: map[string]string{}}
		nameAndLabels, valueText, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		s.name = nameAndLabels
		if open := strings.IndexByte(nameAndLabels, '{'); open >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			s.name = nameAndLabels[:open]
			for _, pair := range strings.Split(nameAndLabels[open+1:len(nameAndLabels)-1], ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				unq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("line %d: label value %s not quoted: %v", ln+1, v, err)
				}
				s.labelKeys = append(s.labelKeys, k)
				s.labels[k] = unq
			}
		}
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valueText, err)
		}
		s.value = v
		f := families[base(s.name)]
		if f == nil || f.help == "" || f.typ == "" {
			t.Errorf("line %d: sample %s has no preceding HELP+TYPE", ln+1, s.name)
			f = family(base(s.name))
		}
		f.samples = append(f.samples, s)
	}
	return families
}

func fetchMetrics(t *testing.T, base string) map[string]*promFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body))
}

// TestMetricsExposition runs one optimize job and then verifies the
// /metrics output wholesale: every family carries HELP and TYPE, every
// label set is sorted by key, histogram buckets are cumulative with
// consistent _count, and at least three histogram families actually
// observed something.
func TestMetricsExposition(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 4})
	st, _ := postJob(t, srv.URL, JobSpec{Kind: "optimize", Workload: "natgre"})
	if st.ID == "" {
		t.Fatal("submit failed")
	}
	if got := awaitJob(t, srv.URL, st.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s)", got.State, got.Error)
	}

	families := fetchMetrics(t, srv.URL)
	for name, f := range families {
		if f.help == "" {
			t.Errorf("family %s has no HELP", name)
		}
		switch f.typ {
		case "counter", "gauge", "histogram":
		default:
			t.Errorf("family %s has TYPE %q", name, f.typ)
		}
		for _, s := range f.samples {
			if !sort.StringsAreSorted(s.labelKeys) {
				t.Errorf("sample %s labels not sorted: %v", s.name, s.labelKeys)
			}
		}
	}

	// Histogram invariants: cumulative buckets ending at +Inf == _count,
	// per label set.
	nonZero := 0
	for name, f := range families {
		if f.typ != "histogram" {
			continue
		}
		series := func(s promSample) string {
			var parts []string
			for _, k := range s.labelKeys {
				if k != "le" {
					parts = append(parts, k+"="+s.labels[k])
				}
			}
			return strings.Join(parts, ",")
		}
		buckets := map[string][]promSample{}
		counts := map[string]float64{}
		for _, s := range f.samples {
			switch s.name {
			case name + "_bucket":
				buckets[series(s)] = append(buckets[series(s)], s)
			case name + "_count":
				counts[series(s)] = s.value
			}
		}
		if len(buckets) == 0 {
			t.Errorf("histogram %s has no _bucket samples", name)
		}
		for key, bs := range buckets {
			prev := -1.0
			for _, b := range bs {
				if b.value < prev {
					t.Errorf("%s{%s}: bucket counts not cumulative", name, key)
				}
				prev = b.value
			}
			last := bs[len(bs)-1]
			if last.labels["le"] != "+Inf" {
				t.Errorf("%s{%s}: last bucket le=%q, want +Inf", name, key, last.labels["le"])
			}
			if last.value != counts[key] {
				t.Errorf("%s{%s}: +Inf bucket %g != _count %g", name, key, last.value, counts[key])
			}
			if counts[key] > 0 {
				nonZero++
				break // one non-zero series is enough per family
			}
		}
	}
	if nonZero < 3 {
		t.Errorf("only %d histogram families observed samples after an optimize job, want >= 3", nonZero)
	}

	// The pre-histogram counter names survive the migration.
	for _, legacy := range []string{"p2god_phase_seconds_total", "p2god_job_seconds_total"} {
		f := families[legacy]
		if f == nil || f.typ != "counter" || len(f.samples) == 0 {
			t.Errorf("legacy counter %s missing from exposition", legacy)
		}
	}

	// The cluster counters are exposed (zero-valued) even on a standalone
	// daemon, so dashboards keyed on them never see a missing series.
	for _, name := range []string{
		"p2god_cluster_takeover_jobs_total",
		"p2god_cluster_fenced_commits_total",
		"p2god_cluster_lease_renewals_total",
		"p2god_cluster_lease_renew_failures_total",
		"p2god_cluster_lease_acquire_failures_total",
		"p2god_profile_captures_total",
		"p2god_profile_capture_errors_total",
	} {
		f := families[name]
		if f == nil || f.typ != "counter" || len(f.samples) == 0 {
			t.Errorf("counter %s missing from exposition", name)
		}
	}

	// Resource attribution: the optimize job must have deposited real
	// values in the new families.
	for name, want := range map[string]float64{
		"p2god_job_allocs_total":      1,
		"p2god_job_alloc_bytes_total": 1,
		"p2god_job_cpu_seconds_total": 0, // CPU can legitimately round to ~0 on a fast run
	} {
		f := families[name]
		if f == nil || f.typ != "counter" || len(f.samples) != 1 {
			t.Errorf("counter %s missing from exposition", name)
			continue
		}
		if got := f.samples[0].value; got < want {
			t.Errorf("%s = %g, want >= %g after an optimize job", name, got, want)
		}
	}
	for _, name := range []string{"p2god_job_cpu_seconds", "p2god_job_heap_peak_bytes"} {
		f := families[name]
		if f == nil || f.typ != "histogram" {
			t.Errorf("histogram %s missing from exposition", name)
			continue
		}
		count := 0.0
		for _, s := range f.samples {
			if s.name == name+"_count" {
				count += s.value
			}
		}
		if count < 1 {
			t.Errorf("histogram %s observed %g samples, want >= 1", name, count)
		}
	}
	if f := families["p2god_job_cpu_seconds"]; f != nil {
		found := false
		for _, s := range f.samples {
			if s.labels["kind"] == "optimize" {
				found = true
			}
		}
		if !found {
			t.Error(`p2god_job_cpu_seconds lacks the kind="optimize" series`)
		}
	}
}

// TestJobTraceEndpoint submits a job and fetches its execution trace as
// Chrome trace-event JSON: non-empty, complete events only, a "job" root
// lane, and the optimizer pipeline's phase spans present.
func TestJobTraceEndpoint(t *testing.T) {
	traceDir := t.TempDir()
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 4, TraceDir: traceDir})
	st, _ := postJob(t, srv.URL, JobSpec{Kind: "optimize", Workload: "natgre"})
	if got := awaitJob(t, srv.URL, st.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s)", got.State, got.Error)
	}

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	prev := -1.0
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			t.Errorf("event %s has ph=%q, want X", e.Name, e.Phase)
		}
		if e.TS < prev {
			t.Errorf("event %s ts=%g not monotonic (prev %g)", e.Name, e.TS, prev)
		}
		prev = e.TS
		names[e.Name] = true
	}
	for _, want := range []string{"job", "job.queue-wait", "optimize",
		"phase2.remove-dependencies", "phase3.reduce-memory", "phase4.offload"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %d distinct names)", want, len(names))
		}
	}

	if resp, err := http.Get(srv.URL + "/jobs/j-does-not-exist/trace"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job trace: %s, want 404", resp.Status)
		}
		resp.Body.Close()
	}

	// -trace-dir persisted the same trace to disk.
	data, err := os.ReadFile(filepath.Join(traceDir, st.ID+".trace.json"))
	if err != nil {
		t.Fatalf("persisted trace: %v", err)
	}
	if !json.Valid(data) {
		t.Error("persisted trace is not valid JSON")
	}
}
