package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p2go/internal/faults"
	"p2go/internal/fleet"
	"p2go/internal/report"
)

func postFleet(t *testing.T, base string, spec fleet.Spec) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/fleets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp
}

func awaitFleet(t *testing.T, m *Manager, id string) *report.FleetResult {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id, true)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			if st.State != StateDone {
				t.Fatalf("fleet job ended %s: %s", st.State, st.Error)
			}
			var res report.FleetResult
			if err := json.Unmarshal(st.Result, &res); err != nil {
				t.Fatalf("fleet result JSON: %v", err)
			}
			return &res
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fleet job %s never finished", id)
	return nil
}

// TestServeFleetEndToEnd is the fleet acceptance criterion: POST /fleets
// with a topology where one device gets traffic and one does not returns
// an aggregated fleet report carrying per-device optimized and skipped
// rows, visible through GET /fleets and counted in the fleet metric
// families.
func TestServeFleetEndToEnd(t *testing.T) {
	srv, m := newTestServer(t, ManagerConfig{Workers: 2, QueueDepth: 8})

	spec := fleet.Synthetic("quickstart", 2, 1, 30)
	spec.Devices = append(spec.Devices, fleet.DeviceSpec{Name: "idle", Workload: "quickstart"})
	st, resp := postFleet(t, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st.Kind != "fleet" || st.Workload != spec.Name {
		t.Fatalf("submit status = %+v, want kind fleet named %q", st, spec.Name)
	}

	res := awaitFleet(t, m, st.ID)
	if res.Kind != "fleet" || res.DeviceCount != 3 {
		t.Fatalf("result = kind %q, %d devices; want a 3-device fleet", res.Kind, res.DeviceCount)
	}
	if res.Optimized != 2 || res.Skipped != 1 || res.Failed != 0 {
		t.Fatalf("counts = %d/%d/%d, want 2 optimized + 1 skipped", res.Optimized, res.Skipped, res.Failed)
	}
	for _, row := range res.Devices {
		switch row.Device {
		case "idle":
			if row.Status != report.FleetSkipped || row.Reason == "" {
				t.Errorf("idle row = %+v, want skipped with a reason", row)
			}
		default:
			if row.Status != report.FleetOptimized || row.Result == nil || row.Packets != 30 {
				t.Errorf("row %s = status %q, packets %d", row.Device, row.Status, row.Packets)
			}
		}
	}
	if res.StagesBefore != 4 || res.StagesAfter != 4 {
		t.Errorf("fleet stages = %d -> %d, want 4 -> 4 (two 2-stage quickstarts)", res.StagesBefore, res.StagesAfter)
	}
	if res.CompileHits == 0 {
		t.Error("homogeneous fleet reports zero cross-device compile cache hits")
	}

	// The fleet listing shows the job; the generic job listing does too.
	body := getBody(t, srv.URL+"/fleets")
	if !strings.Contains(body, st.ID) {
		t.Errorf("GET /fleets lacks %s: %s", st.ID, body)
	}
	fleetBody := getBody(t, srv.URL+"/fleets/"+st.ID)
	if !strings.Contains(fleetBody, `"kind": "fleet"`) {
		t.Errorf("GET /fleets/%s lacks the fleet result", st.ID)
	}

	metrics := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		"p2god_fleet_jobs_total 1",
		`p2god_fleet_devices_total{status="optimized"} 2`,
		`p2god_fleet_devices_total{status="skipped"} 1`,
		`p2god_fleet_cross_device_cache_hits_total{kind="compile"}`,
		"p2god_fleet_device_fanout",
		"p2god_fleet_job_duration_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lack %q:\n%s", want, grepLines(metrics, "p2god_fleet"))
		}
	}

	// An identical resubmission completes via the job artifact cache.
	st2, _ := postFleet(t, srv.URL, spec)
	final2, _ := m.Get(st2.ID, true)
	deadline := time.Now().Add(30 * time.Second)
	for !final2.State.Terminal() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		final2, _ = m.Get(st2.ID, true)
	}
	if final2.State != StateDone || !final2.Cached {
		t.Errorf("identical fleet resubmission: state %s cached %v, want done from cache", final2.State, final2.Cached)
	}
}

func TestServeFleetBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 2})

	_, resp := postFleet(t, srv.URL, fleet.Spec{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty fleet spec: %s, want 400", resp.Status)
	}
	// A fleet payload on the plain job endpoint must name its kind.
	spec := fleet.Synthetic("quickstart", 1, 1, 10)
	st, resp := postJob(t, srv.URL, JobSpec{Kind: "optimize", Fleet: &spec})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fleet spec on an optimize job: %s (%+v), want 400", resp.Status, st)
	}
	r, err := http.Get(srv.URL + "/fleets/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fleet job: %s, want 404", r.Status)
	}
}

// TestServeFleetDeviceFaultAttribution: a data-plane fault during trace
// collection fails exactly the affected device's row; the fleet job
// itself still completes with the healthy devices optimized.
func TestServeFleetDeviceFaultAttribution(t *testing.T) {
	set := faults.MustSet(faults.Spec{Point: faults.SimStep, From: 0, To: 20})
	srv, m := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 4, Faults: set})

	spec := fleet.Synthetic("quickstart", 3, 1, 20)
	st, _ := postFleet(t, srv.URL, spec)
	res := awaitFleet(t, m, st.ID)
	if res.Failed != 1 || res.Optimized != 2 {
		t.Fatalf("counts = %d failed / %d optimized, want 1/2", res.Failed, res.Optimized)
	}
	if row := res.Devices[0]; row.Device != "sw-0000" || row.Status != report.FleetFailed || !strings.Contains(row.Error, "sw-0000") {
		t.Errorf("row 0 = %+v, want sw-0000 failed with an attributed error", row)
	}
	metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, `p2god_fleet_devices_total{status="failed"} 1`) {
		t.Errorf("metrics lack the failed device row:\n%s", grepLines(metrics, "p2god_fleet_devices"))
	}
}

// TestFleetCrossJobAnalysisCache: the daemon-wide analysis cache carries
// compiles across separate fleet jobs — a second fleet of the same
// program (different traffic, so a different job digest) recompiles
// nothing.
func TestFleetCrossJobAnalysisCache(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	m.Start()
	t.Cleanup(func() { m.Drain(5 * time.Second) })

	first, err := m.Submit(JobSpec{Kind: "fleet", Fleet: specPtr(fleet.Synthetic("quickstart", 2, 1, 30))})
	if err != nil {
		t.Fatal(err)
	}
	res1 := awaitFleet(t, m, first.ID)
	if res1.CompileMisses == 0 {
		t.Fatal("first fleet compiled nothing; cache counters broken")
	}

	second, err := m.Submit(JobSpec{Kind: "fleet", Fleet: specPtr(fleet.Synthetic("quickstart", 2, 77, 30))})
	if err != nil {
		t.Fatal(err)
	}
	res2 := awaitFleet(t, m, second.ID)
	if res2.CompileMisses != 0 {
		t.Errorf("second fleet of the same program recompiled %d times, want 0 (daemon-wide analysis cache)", res2.CompileMisses)
	}
	if res2.CompileHits == 0 {
		t.Error("second fleet reports no compile hits")
	}
	// Different seeds mean different traces: profiles are new work.
	if res2.ProfileMisses == 0 {
		t.Error("second fleet with different traffic should re-profile")
	}
}

func specPtr(s fleet.Spec) *fleet.Spec { return &s }

// deviceRowKey extracts the fields of a device row that are deterministic
// across runs (timings and cache provenance are not).
type deviceRowKey struct {
	Device, Status, Reason, Error string
	Packets                       int
	StagesBefore, StagesAfter     int
	OptimizedP4                   string
}

func rowKeys(t *testing.T, res *report.FleetResult) []deviceRowKey {
	t.Helper()
	out := make([]deviceRowKey, 0, len(res.Devices))
	for _, d := range res.Devices {
		k := deviceRowKey{Device: d.Device, Status: d.Status, Reason: d.Reason,
			Error: d.Error, Packets: d.Packets}
		if d.Result != nil {
			k.StagesBefore = d.Result.StagesBefore
			k.StagesAfter = d.Result.StagesAfter
			k.OptimizedP4 = d.Result.OptimizedP4
		}
		out = append(out, k)
	}
	return out
}

// TestFleetJournalRecovery is the crash-recovery satellite: a fleet job
// accepted but unfinished when the process dies (kill -9 leaves an
// accepted record with no terminal record) is recovered on restart, and
// — because finished device rows spilled through the artifact cache —
// only the devices that had not finished are recomputed. The recovered
// result equals an uninterrupted run.
func TestFleetJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journalPath := filepath.Join(dir, "journal.jsonl")
	fullSpec := fleet.Synthetic("quickstart", 3, 1, 30)

	// Baseline: the uninterrupted run on a fresh manager.
	base := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4})
	base.Start()
	baseSt, err := base.Submit(JobSpec{Kind: "fleet", Fleet: specPtr(fullSpec)})
	if err != nil {
		t.Fatal(err)
	}
	baseline := awaitFleet(t, base, baseSt.ID)
	base.Drain(5 * time.Second)

	// "First boot": the daemon finishes two of the three devices before
	// dying. A partial fleet over the same device inputs produces exactly
	// the spilled device rows a killed 3-device fleet would have left —
	// device keys depend on program, rules, trace, passes, and target,
	// not on the enclosing fleet.
	m1 := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4, Cache: NewCache(0, cacheDir)})
	m1.Start()
	partSt, err := m1.Submit(JobSpec{Kind: "fleet", Fleet: specPtr(fleet.Synthetic("quickstart", 2, 1, 30))})
	if err != nil {
		t.Fatal(err)
	}
	awaitFleet(t, m1, partSt.ID)
	m1.Drain(5 * time.Second)

	// The kill -9 journal: the full fleet was accepted (and two device
	// rows recorded mid-flight) but never finished.
	j1, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	j1.Accepted("j-000042", JobSpec{Kind: "fleet", Fleet: specPtr(fullSpec)})
	j1.Device("j-000042", "sw-0000", report.FleetOptimized)
	j1.Device("j-000042", "sw-0001", report.FleetOptimized)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recover the journal, requeue, and finish the fleet from
	// the same spill directory.
	j2, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending, _, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Spec.Kind != "fleet" || pending[0].Spec.Fleet == nil {
		t.Fatalf("recovered %d specs (%+v), want the one unfinished fleet", len(pending), pending)
	}
	if pending[0].ID != "j-000042" {
		t.Fatalf("recovered ID %q, want the original j-000042", pending[0].ID)
	}
	m2 := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4, Cache: NewCache(0, cacheDir), Journal: j2})
	accepted, dropped := m2.Requeue(pending)
	if accepted != 1 || dropped != 0 {
		t.Fatalf("requeue accepted %d dropped %d", accepted, dropped)
	}
	m2.Start()
	t.Cleanup(func() { m2.Drain(5 * time.Second) })
	recovered := awaitFleet(t, m2, m2.List()[0].ID)

	// Only the unfinished device recomputed: the two finished before the
	// crash come back from the spilled device cache.
	cachedByDevice := map[string]bool{}
	for _, row := range recovered.Devices {
		cachedByDevice[row.Device] = row.Cached
	}
	if !cachedByDevice["sw-0000"] || !cachedByDevice["sw-0001"] {
		t.Errorf("finished devices recomputed after recovery: %+v", cachedByDevice)
	}
	if cachedByDevice["sw-0002"] {
		t.Error("unfinished device claimed a cache hit; nothing should have stored it")
	}

	// The recovered result equals the uninterrupted run (timings and
	// cache provenance aside).
	got, want := rowKeys(t, recovered), rowKeys(t, baseline)
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("recovered fleet diverged from the uninterrupted run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if recovered.Optimized != baseline.Optimized || recovered.StagesAfter != baseline.StagesAfter {
		t.Errorf("aggregates diverged: %d/%d vs %d/%d",
			recovered.Optimized, recovered.StagesAfter, baseline.Optimized, baseline.StagesAfter)
	}

	// The journal is clean again: the recovered job finished, so a second
	// recovery finds nothing pending.
	pending2, _, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending2) != 0 {
		t.Errorf("journal still pending after recovery: %+v", pending2)
	}
}
