package service

import (
	"container/list"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"p2go/internal/faults"
)

// Cache is the content-addressed artifact cache: a bounded in-memory LRU
// with single-flight fills and an optional on-disk spill for byte-valued
// artifacts. Keys are "<kind>:<digest>" strings; values are treated as
// immutable once stored (compile results, profiles, and serialized job
// results are never modified after creation).
//
// Single-flight: concurrent Do calls for the same key run the fill once;
// the others block and receive the filled value as a hit. If the fill
// fails (including per-job cancellation), nothing is stored and each
// waiter retries the fill itself, so one canceled job cannot poison an
// identical job that is still live.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recent
	inflight map[string]*flight
	max      int
	dir      string

	// faults injects disk degradation (faults.SlowDisk) into spill reads
	// and writes; nil is inert. Set via SetFaults.
	faults *faults.Set

	hits, misses int64
}

type cacheEntry struct {
	key string
	val any
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache creates a cache bounded to maxEntries (<=0 means a default of
// 512). dir, when non-empty, enables the on-disk spill for byte-valued
// artifacts: they are written through on fill and survive both eviction
// and process restarts.
func NewCache(maxEntries int, dir string) *Cache {
	if maxEntries <= 0 {
		maxEntries = 512
	}
	if dir != "" {
		_ = os.MkdirAll(dir, 0o755)
	}
	return &Cache{
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
		max:      maxEntries,
		dir:      dir,
	}
}

// SetFaults wires a fault-injection set into the spill layer: SlowDisk
// events delay spill reads and writes, modeling a degraded shared disk.
// Call before the cache sees traffic.
func (c *Cache) SetFaults(fs *faults.Set) { c.faults = fs }

// slowDisk pays the injected latency of one degraded disk operation.
func (c *Cache) slowDisk() {
	if c.faults.Fire(faults.SlowDisk) {
		time.Sleep(2 * time.Millisecond)
	}
}

// Do returns the cached value for key, or runs fill once (single-flight)
// and stores the result. The second return reports whether the value was
// served without running this caller's fill.
func (c *Cache) Do(key string, fill func() (any, error)) (any, bool, error) {
	return c.do(key, fill, false)
}

// DoBytes is Do for byte-valued artifacts, which additionally spill to
// disk when the cache has a directory.
func (c *Cache) DoBytes(key string, fill func() ([]byte, error)) ([]byte, bool, error) {
	v, hit, err := c.do(key, func() (any, error) { return fill() }, true)
	if err != nil {
		return nil, hit, err
	}
	return v.([]byte), hit, nil
}

func (c *Cache) do(key string, fill func() (any, error), spill bool) (any, bool, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.lru.MoveToFront(e)
			c.hits++
			v := e.Value.(*cacheEntry).val
			c.mu.Unlock()
			return v, true, nil
		}
		if spill && c.dir != "" {
			c.slowDisk()
			if data, err := os.ReadFile(c.spillPath(key)); err == nil {
				c.hits++
				c.storeLocked(key, data)
				c.mu.Unlock()
				return data, true, nil
			}
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				continue // leader failed; retry as the new leader
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return f.val, true, nil
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.misses++
		c.mu.Unlock()

		v, err := fill()
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.storeLocked(key, v)
		}
		c.mu.Unlock()
		if err == nil && spill && c.dir != "" {
			// Outside the mutex: the fsync in the crash-atomic spill write
			// must not stall every other cache operation.
			c.writeSpill(key, v.([]byte))
		}
		f.val, f.err = v, err
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		return v, false, nil
	}
}

func (c *Cache) storeLocked(key string, v any) {
	if e, ok := c.entries[key]; ok {
		e.Value.(*cacheEntry).val = v
		c.lru.MoveToFront(e)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: v})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// writeSpill persists a byte artifact crash-atomically: a uniquely named
// temp file is written and fsynced, then renamed over the target, and
// the directory is fsynced so the rename itself is durable. kill -9 at
// any point leaves either no entry or the complete entry — never a torn
// file (the read-side detect-and-purge stays as a second line of defense
// for media corruption). The unique temp name also makes concurrent
// writers safe — including two replica processes spilling the same
// content-addressed key into a shared directory; whichever rename lands
// last wins with identical bytes. Failures are deliberately ignored: the
// spill is an optimization, not a durability guarantee.
func (c *Cache) writeSpill(key string, data []byte) {
	c.slowDisk()
	path := c.spillPath(key)
	tmp, err := os.CreateTemp(c.dir, ".spill-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	defer os.Remove(name) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(name, path); err != nil {
		return
	}
	if d, err := os.Open(c.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(key, ":", "_"))
}

// GetBytes returns a byte artifact when present, checking the in-memory
// LRU first and the on-disk spill second (a spill hit is promoted back
// into memory). Unlike Do it never fills: a miss just reports false.
// This is the lookup path for artifacts whose fill is owned elsewhere,
// like fleet device rows computed inside a running fleet job.
func (c *Cache) GetBytes(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if data, isBytes := e.Value.(*cacheEntry).val.([]byte); isBytes {
			c.lru.MoveToFront(e)
			c.hits++
			return data, true
		}
	}
	if c.dir != "" {
		c.slowDisk()
		if data, err := os.ReadFile(c.spillPath(key)); err == nil {
			c.hits++
			c.storeLocked(key, data)
			return data, true
		}
	}
	c.misses++
	return nil, false
}

// PutBytes stores a byte artifact, writing through to the spill when one
// is configured — the companion to GetBytes for externally-filled
// artifacts.
func (c *Cache) PutBytes(key string, data []byte) {
	c.mu.Lock()
	c.storeLocked(key, data)
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		c.writeSpill(key, data)
	}
}

// Delete purges an entry from both the in-memory LRU and the on-disk
// spill. Used when a cached artifact is detected to be corrupted so the
// next lookup recomputes it.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.Remove(e)
		delete(c.entries, key)
	}
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		_ = os.Remove(c.spillPath(key))
	}
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Stats returns the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}
