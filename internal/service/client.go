package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"p2go/internal/fleet"
	"p2go/internal/prof"
)

// Client is the replica-set-aware p2god HTTP client behind every
// `p2go submit|status|jobs|fleet *` verb. It holds the full replica set:
// submissions are routed by the job's digest (rendezvous hashing, so the
// same program+trace lands on the replica most likely to have warm
// caches), reads fan out across replicas until one answers, and every
// request retries through the shared jittered-backoff helper — honoring
// Retry-After from queue backpressure and the circuit breaker — failing
// over to the next replica instead of giving up. With one server it
// degrades to exactly the old single-endpoint behavior plus retries.
type Client struct {
	servers []string
	http    *http.Client

	// MaxAttempts bounds request attempts across the replica set
	// (default 4). Backoff starts at Backoff (default 100ms), doubles per
	// attempt with jitter, and is capped at MaxBackoff (default 2s); a
	// server-sent Retry-After overrides the computed wait, capped at
	// RetryAfterCap (default 5s) so an open circuit's 30s hint cannot
	// wedge an interactive CLI.
	MaxAttempts   int
	Backoff       time.Duration
	MaxBackoff    time.Duration
	RetryAfterCap time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand
	sleep func(time.Duration) // replaced in tests
}

// NewClient builds a client over the replica set (one or more base URLs,
// e.g. "http://127.0.0.1:9095") with the given per-request timeout.
func NewClient(servers []string, timeout time.Duration) *Client {
	cleaned := make([]string, 0, len(servers))
	for _, s := range servers {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
			cleaned = append(cleaned, s)
		}
	}
	if len(cleaned) == 0 {
		cleaned = []string{"http://127.0.0.1:9095"}
	}
	return &Client{
		servers:       cleaned,
		http:          &http.Client{Timeout: timeout},
		MaxAttempts:   4,
		Backoff:       100 * time.Millisecond,
		MaxBackoff:    2 * time.Second,
		RetryAfterCap: 5 * time.Second,
		rng:           rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:         time.Sleep,
	}
}

// Servers returns the configured replica set.
func (c *Client) Servers() []string { return append([]string(nil), c.servers...) }

// HTTPError is a non-2xx response, carrying the status code and any
// Retry-After hint so the retry helper can classify and pace.
type HTTPError struct {
	StatusCode int
	RetryAfter time.Duration
	Message    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("%d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Retryable reports whether the failure is worth another attempt:
// backpressure (429), server-side trouble (5xx) — including 503 from a
// draining replica or an open circuit breaker — but not client errors.
func (e *HTTPError) Retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
}

// RouteKey returns the spec's artifact digest for replica routing, or ""
// (no affinity) when the spec does not normalize.
func (s JobSpec) RouteKey() string {
	copySpec := s
	if err := copySpec.normalize(); err != nil {
		return ""
	}
	return copySpec.digest()
}

// SubmitJob posts a job, routed by its digest.
func (c *Client) SubmitJob(spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	return c.submit("/jobs", body, spec.RouteKey())
}

// SubmitFleet posts a network-wide job, routed by the fleet fingerprint.
func (c *Client) SubmitFleet(spec fleet.Spec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	route := JobSpec{Kind: "fleet", Fleet: &spec}.RouteKey()
	return c.submit("/fleets", body, route)
}

func (c *Client) submit(path string, body []byte, route string) (JobStatus, error) {
	data, err := c.do(http.MethodPost, path, body, route)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("bad response: %w", err)
	}
	return st, nil
}

// Job fetches one job's status (result attached once done) from
// whichever replica knows the ID.
func (c *Client) Job(id string) (JobStatus, error) {
	return c.getStatus("/jobs/" + id)
}

// Fleet fetches one fleet job's status from whichever replica knows it.
func (c *Client) Fleet(id string) (JobStatus, error) {
	return c.getStatus("/fleets/" + id)
}

func (c *Client) getStatus(path string) (JobStatus, error) {
	data, err := c.getAny(path)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("bad response: %w", err)
	}
	return st, nil
}

// Jobs lists jobs merged across the replica set, deduplicated by ID
// (a taken-over job can briefly appear on two replicas; the terminal
// row wins) and ordered by creation time.
func (c *Client) Jobs() ([]JobStatus, error) { return c.list("/jobs") }

// Fleets lists fleet jobs merged across the replica set.
func (c *Client) Fleets() ([]JobStatus, error) { return c.list("/fleets") }

func (c *Client) list(path string) ([]JobStatus, error) {
	byID := map[string]JobStatus{}
	var lastErr error
	reached := 0
	for _, srv := range c.servers {
		data, err := c.once(http.MethodGet, srv+path, nil)
		if err != nil {
			lastErr = err
			continue
		}
		var sts []JobStatus
		if err := json.Unmarshal(data, &sts); err != nil {
			lastErr = fmt.Errorf("bad response from %s: %w", srv, err)
			continue
		}
		reached++
		for _, st := range sts {
			if prev, ok := byID[st.ID]; ok && prev.State.Terminal() && !st.State.Terminal() {
				continue
			}
			byID[st.ID] = st
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("no replica reachable: %w", lastErr)
	}
	out := make([]JobStatus, 0, len(byID))
	for _, st := range byID {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CreatedAt != out[j].CreatedAt {
			return out[i].CreatedAt < out[j].CreatedAt
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Profiles lists the daemon's stored self-captures from the first
// replica that answers (captures are per-replica, not replicated).
func (c *Client) Profiles() ([]prof.Info, error) {
	data, err := c.getAny("/debug/profiles")
	if err != nil {
		return nil, err
	}
	var infos []prof.Info
	if err := json.Unmarshal(data, &infos); err != nil {
		return nil, fmt.Errorf("bad response: %w", err)
	}
	return infos, nil
}

// ProfileBytes fetches one stored capture's raw pprof bytes by ID from
// whichever replica holds it.
func (c *Client) ProfileBytes(id string) ([]byte, error) {
	return c.getAny("/debug/profiles/" + id)
}

// CaptureProfiles asks a replica to take a CPU+heap self-capture now
// and returns what was stored.
func (c *Client) CaptureProfiles() ([]prof.Info, error) {
	data, err := c.do(http.MethodPost, "/debug/profiles/capture", nil, "")
	if err != nil {
		return nil, err
	}
	var infos []prof.Info
	if err := json.Unmarshal(data, &infos); err != nil {
		return nil, fmt.Errorf("bad response: %w", err)
	}
	return infos, nil
}

// AwaitJob polls until the job is terminal. Polling is failover-tolerant
// by construction (each poll asks the whole replica set), and a job that
// is momentarily unknown everywhere — mid-takeover, between a replica
// dying and a survivor re-submitting — is retried until the deadline
// rather than failed.
func (c *Client) AwaitJob(id string, poll, timeout time.Duration) (JobStatus, error) {
	return c.await("/jobs/"+id, poll, timeout)
}

// AwaitFleet is AwaitJob for fleet jobs.
func (c *Client) AwaitFleet(id string, poll, timeout time.Duration) (JobStatus, error) {
	return c.await("/fleets/"+id, poll, timeout)
}

func (c *Client) await(path string, poll, timeout time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		st, err := c.getStatus(path)
		if err == nil {
			if st.State.Terminal() {
				return st, nil
			}
			lastErr = nil
		} else {
			lastErr = err
		}
		if timeout > 0 && time.Now().After(deadline) {
			if lastErr != nil {
				return JobStatus{}, fmt.Errorf("await %s: %w", path, lastErr)
			}
			return JobStatus{}, fmt.Errorf("await %s: job not terminal after %s", path, timeout)
		}
		c.sleep(poll)
	}
}

// do is the shared retry helper: rank the replica set for the route,
// then attempt the request with jittered exponential backoff, advancing
// to the next replica on every retryable failure (connection error,
// 429, 5xx) and honoring Retry-After. Non-retryable statuses fail fast.
func (c *Client) do(method, path string, body []byte, route string) ([]byte, error) {
	servers := c.ranked(route)
	backoff := c.Backoff
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		srv := servers[attempt%len(servers)]
		data, err := c.once(method, srv+path, body)
		if err == nil {
			return data, nil
		}
		lastErr = fmt.Errorf("%s%s: %w", srv, path, err)
		var he *HTTPError
		if errors.As(err, &he) && !he.Retryable() {
			return nil, lastErr
		}
		if attempt == c.MaxAttempts-1 {
			break
		}
		wait := c.jitter(backoff)
		if errors.As(err, &he) && he.RetryAfter > 0 {
			ra := he.RetryAfter
			if ra > c.RetryAfterCap {
				ra = c.RetryAfterCap
			}
			if ra > wait {
				wait = ra
			}
		}
		c.sleep(wait)
		if backoff *= 2; backoff > c.MaxBackoff {
			backoff = c.MaxBackoff
		}
	}
	return nil, fmt.Errorf("%s %s failed after %d attempt(s) across %d replica(s): %w",
		method, path, c.MaxAttempts, len(servers), lastErr)
}

// getAny fetches path from the first replica that answers 2xx, trying
// the whole set per attempt round — a 404 on one replica just means the
// job lives elsewhere. All-replicas-404 fails fast (retrying will not
// conjure the job); connection errors and 5xx retry with backoff.
func (c *Client) getAny(path string) ([]byte, error) {
	backoff := c.Backoff
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		notFound := 0
		for _, srv := range c.servers {
			data, err := c.once(http.MethodGet, srv+path, nil)
			if err == nil {
				return data, nil
			}
			lastErr = fmt.Errorf("%s%s: %w", srv, path, err)
			var he *HTTPError
			if errors.As(err, &he) {
				if he.StatusCode == http.StatusNotFound {
					notFound++
					continue
				}
				if !he.Retryable() {
					return nil, lastErr
				}
			}
		}
		if notFound == len(c.servers) {
			return nil, lastErr
		}
		if attempt == c.MaxAttempts-1 {
			break
		}
		c.sleep(c.jitter(backoff))
		if backoff *= 2; backoff > c.MaxBackoff {
			backoff = c.MaxBackoff
		}
	}
	return nil, fmt.Errorf("GET %s failed after %d attempt(s) across %d replica(s): %w",
		path, c.MaxAttempts, len(c.servers), lastErr)
}

// once performs a single HTTP request, mapping non-2xx to *HTTPError.
func (c *Client) once(method, url string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		he := &HTTPError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, he
	}
	return data, nil
}

// ranked orders the replica set for a route key by rendezvous
// (highest-random-weight) hashing: every client ranks the replicas for a
// given digest identically, with no coordination and no reshuffling when
// the set changes by one — so the same program+trace consistently lands
// where its artifacts are already cached, and failover (attempt k takes
// the k-th ranked replica) is deterministic too.
func (c *Client) ranked(route string) []string {
	out := append([]string(nil), c.servers...)
	if route == "" || len(out) < 2 {
		return out
	}
	sort.SliceStable(out, func(i, j int) bool {
		return rendezvousWeight(out[i], route) > rendezvousWeight(out[j], route)
	})
	return out
}

func rendezvousWeight(server, key string) uint64 {
	sum := sha256.Sum256([]byte(server + "\x00" + key))
	return binary.BigEndian.Uint64(sum[:8])
}

// jitter spreads a backoff over [d/2, d) so synchronized clients do not
// hammer a recovering replica in lockstep.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}
