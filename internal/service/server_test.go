package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p2go/internal/report"
)

// newTestServer boots a real manager (no stubs) behind httptest.
func newTestServer(t *testing.T, cfg ManagerConfig) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	m.Start()
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Drain(5 * time.Second)
	})
	return srv, m
}

func postJob(t *testing.T, base string, spec JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &st)
	return st, resp
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %s", id, resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func awaitJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, base, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// TestServeOptimizeEx1EndToEnd is the acceptance criterion: an ex1
// optimize job served over HTTP (submit -> poll -> observations with the
// paper's 8 -> 7 -> 6 -> 3 stage history), then an identical resubmission
// completing via a cache hit that shows up in /metrics.
func TestServeOptimizeEx1EndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 2, QueueDepth: 8})

	st, resp := postJob(t, srv.URL, JobSpec{Kind: "optimize", Workload: "ex1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit status = %+v", st)
	}

	final := awaitJob(t, srv.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Cached {
		t.Error("first run must not be served from cache")
	}
	var res report.JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	var stages []int
	for _, h := range res.History {
		stages = append(stages, h.Stages)
	}
	if want := []int{8, 7, 6, 3}; fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Errorf("stage history = %v, want %v (Table 2)", stages, want)
	}
	if len(res.Observations) == 0 {
		t.Error("no observations in the result")
	}
	if res.OptimizedP4 == "" {
		t.Error("result lacks the emitted P4")
	}
	if res.Profile == nil || res.Profile.TotalPackets == 0 {
		t.Error("result lacks the Phase 1 profile")
	}

	// Identical resubmission: must complete via a job-cache hit.
	st2, _ := postJob(t, srv.URL, JobSpec{Kind: "optimize", Workload: "ex1"})
	final2 := awaitJob(t, srv.URL, st2.ID)
	if final2.State != StateDone {
		t.Fatalf("resubmission ended %s: %s", final2.State, final2.Error)
	}
	if !final2.Cached {
		t.Error("identical resubmission was not served from the cache")
	}
	if !bytes.Equal(final.Result, final2.Result) {
		t.Error("cached result differs from the original")
	}

	// The hit must be observable in /metrics.
	metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, `p2god_cache_hits_total{kind="job"} 1`) {
		t.Errorf("metrics lack the job cache hit:\n%s", grepLines(metrics, "p2god_cache"))
	}
	for _, want := range []string{
		"p2god_jobs_submitted_total 2",
		`p2god_jobs_finished_total{outcome="done"} 2`,
		`p2god_phase_seconds_total{phase="removing-dependencies"}`,
		"p2god_replayed_packets_total",
		"p2god_replay_packets_per_second",
		"p2god_cache_hit_ratio",
		"p2god_jobs_queued 0",
		"p2god_jobs_running 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lack %q", want)
		}
	}
}

// TestServeProfileJob exercises the profile kind and the intra-service
// profile artifact cache.
func TestServeProfileJob(t *testing.T) {
	srv, m := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 8})

	st, _ := postJob(t, srv.URL, JobSpec{Kind: "profile", Workload: "quickstart"})
	final := awaitJob(t, srv.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	var res report.JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "profile" || res.Profile == nil || res.Profile.TotalPackets == 0 {
		t.Fatalf("bad profile result: %+v", res)
	}
	if st := m.Cache().Stats(); st.Misses == 0 {
		t.Error("profile run should have filled the cache")
	}
}

func TestServeBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 2})

	_, resp := postJob(t, srv.URL, JobSpec{Kind: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus kind: %s, want 400", resp.Status)
	}
	_, resp = postJob(t, srv.URL, JobSpec{Workload: "no-such"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: %s, want 400", resp.Status)
	}
	r, err := http.Get(srv.URL + "/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s, want 404", r.Status)
	}
}

func TestServeQueueFull429(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 1})
	m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m.Start()
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Drain(5 * time.Second)
	})

	first, _ := postJob(t, srv.URL, JobSpec{Workload: "quickstart", Seed: 1})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := getJob(t, srv.URL, first.ID); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, resp := postJob(t, srv.URL, JobSpec{Workload: "quickstart", Seed: 2}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %s, want 202", resp.Status)
	}
	_, resp := postJob(t, srv.URL, JobSpec{Workload: "quickstart", Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("third submit: %s, want 429", resp.Status)
	}
	close(release)
}

func TestServeHealthAndWorkloads(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 2})

	body := getBody(t, srv.URL+"/healthz")
	if !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz = %s", body)
	}
	body = getBody(t, srv.URL+"/workloads")
	if !strings.Contains(body, "ex1") || !strings.Contains(body, "quickstart") {
		t.Errorf("workloads = %s", body)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func grepLines(s, needle string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
