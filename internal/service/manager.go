package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"p2go/internal/cluster"
	"p2go/internal/core"
	"p2go/internal/faults"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/prof"
	"p2go/internal/profile"
	"p2go/internal/report"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
	"p2go/internal/workloads"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull means the bounded queue has no room (429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining means the manager is shutting down (503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrCircuitOpen means the spec's digest has failed persistently and
	// its circuit breaker is rejecting re-submissions until the cooldown
	// elapses (503 with Retry-After).
	ErrCircuitOpen = errors.New("service: circuit open for this job spec")
)

// transientError marks a failure worth retrying with backoff.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so the manager's per-job retry loop re-runs
// the job instead of failing it outright.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// maxFinishedJobs bounds how many terminal jobs are retained for status
// queries; the oldest are pruned first. Results stay available through
// the artifact cache regardless.
const maxFinishedJobs = 256

// ManagerConfig sizes the job manager.
type ManagerConfig struct {
	// Workers is the worker-pool size; <=0 means 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; <=0 means 16.
	QueueDepth int
	// JobTimeout bounds each job's run; 0 means no server-side default
	// (a job may still request its own).
	JobTimeout time.Duration
	// Cache is the artifact cache; nil means a fresh memory-only cache.
	Cache *Cache
	// Metrics is the registry; nil means a fresh one.
	Metrics *Metrics
	// Journal, when set, records accepted and finished jobs so that
	// queued/running work survives a crash or drain. nil disables it.
	Journal *Journal
	// MaxJobRetries bounds how many times a transiently-failing job is
	// re-run before failing for good; 0 means 2, negative disables retry.
	MaxJobRetries int
	// RetryBackoff is the first retry's delay (doubling per attempt);
	// <=0 means 10ms.
	RetryBackoff time.Duration
	// BreakerThreshold opens a spec's circuit after this many consecutive
	// failures; 0 means 3, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects re-submissions
	// before allowing one trial job; <=0 means 30s.
	BreakerCooldown time.Duration
	// Faults is the fault-injection set for chaos tests; nil is inert.
	Faults *faults.Set
	// TraceDir, when set, persists each job's span tree as
	// <dir>/<job-id>.trace.json in Chrome trace-event format at job
	// finish. Traces are also always kept in memory (bounded) and served
	// by GET /jobs/{id}/trace regardless of this setting.
	TraceDir string
	// Parallelism is the default per-job worker count for sharded trace
	// replay and the Phase 3/4 candidate fan-out (core.Options
	// .Parallelism). 0 means one worker per CPU; 1 forces sequential.
	// A job may override it with JobSpec.Parallelism. Results are
	// parallelism-independent, so this does not enter cache keys or job
	// digests.
	Parallelism int
	// Cluster, when set, joins this manager to a replica group: job
	// ownership is guarded by per-digest leases with epoch fencing, job
	// IDs are replica-prefixed, and the manager reclaims
	// accepted-but-unfinished work from dead peers' journals. nil means
	// standalone (all lease machinery is skipped).
	Cluster *cluster.Node
	// ClusterRenewEvery is the period of the background cluster loop
	// (membership + job-lease renewal, then a takeover scan). 0 means
	// TTL/3. Negative disables the loop so tests can drive renewal and
	// takeover manually with RenewJobLeases/TakeoverScan.
	ClusterRenewEvery time.Duration
	// Peers is the replica set's advertised HTTP addresses, served at
	// GET /cluster so clients can discover the set for digest routing and
	// failover. Informational only — coordination runs over the shared
	// directory, not these addresses.
	Peers []string
	// Profiles, when set, is the daemon's self-profile store: its
	// captures are counted in the metrics and served at
	// GET /debug/profiles[/{id}]. nil disables the endpoints.
	Profiles *prof.Store
	// Logger receives structured job-lifecycle logs (accepted, started,
	// finished, fleet device rows), every line carrying job_id, digest,
	// and replica_id so logs correlate with traces and metrics. nil
	// discards them.
	Logger *slog.Logger
}

// jobTraceSpanCap bounds the spans retained per job; past it the
// collector counts drops instead of growing. A full optimize run on the
// seed workloads emits a few hundred spans.
const jobTraceSpanCap = 8192

// breakerState tracks one digest's consecutive failures.
type breakerState struct {
	fails     int
	openUntil time.Time
}

// Manager owns the job table, the bounded queue, and the worker pool.
type Manager struct {
	cfg     ManagerConfig
	cache   *Cache
	metrics *Metrics
	logger  *slog.Logger

	// fleetAnalysis is the daemon-wide analysis cache shared by every
	// fleet job's devices: content-addressed compiles and profiles, so
	// homogeneous fleets dedup across devices and across jobs. Entries
	// live for the process lifetime; the byte-artifact LRU + spill behind
	// the hooks provides the bounded, restart-surviving layer.
	fleetAnalysis *core.AnalysisCache

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	queue    chan *Job
	queued   int
	running  int
	draining bool
	killed   bool // Kill() simulated kill -9; suppress journal/lease writes
	seq      int
	breakers map[string]*breakerState // by job digest

	wg sync.WaitGroup
	// clusterWG tracks the background cluster loop; it is separate from wg
	// because Drain waits on the workers before canceling baseCtx, and the
	// cluster loop only exits on that cancel.
	clusterWG sync.WaitGroup

	// execFn computes a job's result bytes; replaced in tests to make
	// job behavior controllable. Production value is (*Manager).execute.
	execFn func(ctx context.Context, job *Job) ([]byte, error)
	// sleep is the retry-backoff clock; replaced in tests.
	sleep func(time.Duration)
	// now is the breaker clock; replaced in tests.
	now func() time.Time
}

// NewManager creates a manager; call Start to launch the workers.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Cache == nil {
		cfg.Cache = NewCache(0, "")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	switch {
	case cfg.MaxJobRetries == 0:
		cfg.MaxJobRetries = 2
	case cfg.MaxJobRetries < 0:
		cfg.MaxJobRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 3
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:           cfg,
		cache:         cfg.Cache,
		metrics:       cfg.Metrics,
		logger:        cfg.Logger,
		fleetAnalysis: core.NewAnalysisCache(),
		baseCtx:       ctx,
		baseCancel:    cancel,
		jobs:          map[string]*Job{},
		queue:         make(chan *Job, cfg.QueueDepth),
		breakers:      map[string]*breakerState{},
	}
	if cfg.Profiles != nil {
		// The store predates the manager; route its capture outcomes into
		// this registry now that both exist.
		cfg.Profiles.SetOnCapture(m.metrics.ProfileCaptured)
	}
	m.execFn = m.execute
	m.sleep = time.Sleep
	m.now = time.Now
	return m
}

// replicaID names this replica within its group; "" standalone. Logged
// on every lifecycle line so multi-replica logs stay attributable.
func (m *Manager) replicaID() string {
	if m.cfg.Cluster != nil {
		return m.cfg.Cluster.ID()
	}
	return ""
}

// Profiles returns the self-profile store (nil when disabled).
func (m *Manager) Profiles() *prof.Store { return m.cfg.Profiles }

// Metrics returns the registry (for the HTTP layer).
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Cache returns the artifact cache.
func (m *Manager) Cache() *Cache { return m.cache }

// Start launches the worker pool, and — in cluster mode — the background
// lease loop (membership + job-lease renewal, then a takeover scan).
func (m *Manager) Start() {
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if m.cfg.Cluster != nil && m.cfg.ClusterRenewEvery >= 0 {
		every := m.cfg.ClusterRenewEvery
		if every == 0 {
			every = m.cfg.Cluster.TTL() / 3
		}
		m.clusterWG.Add(1)
		go m.clusterLoop(every)
	}
}

// Submit validates, registers, and enqueues a job. It returns ErrQueueFull
// when the bounded queue has no room and ErrDraining during shutdown.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	return m.submit(spec, "", "", nil)
}

// submit is the shared admission path. presetID keeps a recovered or
// taken-over job's original ID; takenOverFrom and lease are set when the
// job was reclaimed from a dead replica (the lease was acquired by the
// takeover scan and is handed to the worker).
func (m *Manager) submit(spec JobSpec, presetID, takenOverFrom string, lease *cluster.JobLease) (JobStatus, error) {
	if err := spec.normalize(); err != nil {
		return JobStatus{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return JobStatus{}, ErrDraining
	}
	digest := spec.digest()
	if b, ok := m.breakers[digest]; ok && b.fails >= m.cfg.BreakerThreshold {
		if m.now().Before(b.openUntil) {
			m.metrics.CircuitRejected()
			return JobStatus{}, ErrCircuitOpen
		}
		// Half-open: admit one trial and push the window out so a
		// burst of re-submissions cannot stampede a failing spec.
		b.openUntil = m.now().Add(m.cfg.BreakerCooldown)
	}
	id := presetID
	if id == "" {
		id = m.nextIDLocked()
	} else if _, taken := m.jobs[id]; taken {
		return JobStatus{}, fmt.Errorf("service: job %q already tracked", id)
	}
	job := &Job{
		ID:            id,
		Spec:          spec,
		Digest:        digest,
		state:         StateQueued,
		createdAt:     time.Now(),
		lease:         lease,
		takenOverFrom: takenOverFrom,
	}
	if m.cfg.Cluster != nil {
		job.replica = m.cfg.Cluster.ID()
	}
	select {
	case m.queue <- job:
	default:
		if presetID == "" {
			m.seq-- // not admitted; reuse the ID
		}
		m.metrics.QueueRejected()
		return JobStatus{}, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.queued++
	m.pruneLocked()
	m.metrics.JobSubmitted()
	// Journal while still holding the lock: a worker that pops this job
	// cannot record "finished" before "accepted" is durable.
	m.cfg.Journal.Accepted(job.ID, job.Spec)
	if takenOverFrom != "" {
		m.logger.Info("job accepted",
			"job_id", job.ID, "kind", spec.Kind, "workload", spec.Workload,
			"digest", digest, "replica_id", job.replica, "taken_over_from", takenOverFrom)
	} else {
		m.logger.Info("job accepted",
			"job_id", job.ID, "kind", spec.Kind, "workload", spec.Workload,
			"digest", digest, "replica_id", job.replica)
	}
	return job.statusLocked(false), nil
}

// nextIDLocked mints the next job ID: replica-prefixed in cluster mode
// so IDs are unique across the group, and skipping IDs already tracked
// (a recovered job re-submitted under its original ID can occupy a slot
// the sequence would otherwise mint).
func (m *Manager) nextIDLocked() string {
	for {
		m.seq++
		id := fmt.Sprintf("j-%06d", m.seq)
		if m.cfg.Cluster != nil {
			id = m.cfg.Cluster.ID() + "-" + id
		}
		if _, taken := m.jobs[id]; !taken {
			return id
		}
	}
}

// Requeue re-submits jobs recovered from the journal, before Start,
// preserving their original IDs so clients polling a pre-crash ID get
// the result. It returns how many were accepted; jobs bounced by a full
// queue (or an open breaker) are dropped with a count.
func (m *Manager) Requeue(pending []PendingJob) (accepted, dropped int) {
	for _, p := range pending {
		if _, err := m.submit(p.Spec, p.ID, "", nil); err != nil {
			dropped++
			continue
		}
		accepted++
		m.metrics.JournalRecovered()
	}
	return accepted, dropped
}

// Get returns a job's status; includeResult attaches the result JSON.
func (m *Manager) Get(id string, includeResult bool) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return job.statusLocked(includeResult), true
}

// List returns every tracked job in submission order, without results.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		if job, ok := m.jobs[id]; ok {
			out = append(out, job.statusLocked(false))
		}
	}
	return out
}

// Cancel requests cancellation: a queued job is skipped when a worker
// pops it; a running job has its context canceled and its worker slot
// released as soon as the pipeline notices.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("unknown job %q", id)
	}
	if job.state.Terminal() {
		return job.statusLocked(false), nil
	}
	job.canceled = true
	if job.cancel != nil {
		job.cancel()
	}
	return job.statusLocked(false), nil
}

// Counts reports the queue and pool occupancy.
func (m *Manager) Counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// DrainReport says what happened to each non-terminal job at shutdown.
type DrainReport struct {
	// Requeued lists queued jobs persisted to the journal for recovery
	// on the next start (only when a journal is configured).
	Requeued []string
	// Canceled lists queued jobs dropped because there is no journal.
	Canceled []string
}

// Drain shuts the pool down gracefully: stop accepting submissions,
// persist still-queued jobs to the journal as requeued (or cancel them
// when there is no journal), let running jobs finish within the timeout,
// then cancel whatever is left and wait for the workers to exit.
func (m *Manager) Drain(timeout time.Duration) DrainReport {
	var rep DrainReport
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return rep
	}
	m.draining = true
	for _, id := range m.order {
		job, ok := m.jobs[id]
		if !ok || job.state != StateQueued {
			continue
		}
		job.canceled = true
		if m.cfg.Journal != nil {
			// The accepted record is already durable; the requeued
			// record documents the drain, and runJob will mark the
			// job requeued (not finished) when the worker pops it.
			job.requeue = true
			m.cfg.Journal.Requeued(job.ID)
			m.metrics.JournalRequeued()
			rep.Requeued = append(rep.Requeued, job.ID)
		} else {
			rep.Canceled = append(rep.Canceled, job.ID)
		}
	}
	m.mu.Unlock()
	close(m.queue)

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		m.baseCancel() // cancel running jobs' contexts
		<-done
	}
	m.baseCancel()
	m.clusterWG.Wait()
	if m.cfg.Cluster != nil {
		// Graceful goodbye: drop the membership lease so peers treat this
		// replica as gone immediately instead of after TTL.
		_ = m.cfg.Cluster.Leave()
	}
	return rep
}

// worker pops jobs until the queue is closed and drained. After Kill, a
// "dead" worker discards whatever is still queued without running it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.mu.Lock()
		killed := m.killed
		m.mu.Unlock()
		if killed {
			continue
		}
		m.runJob(job)
	}
}

func (m *Manager) runJob(job *Job) {
	m.mu.Lock()
	m.queued--
	if job.canceled {
		if job.requeue {
			// Drained with a journal: the accepted record stays
			// pending, so the job is recovered on the next start.
			job.state = StateRequeued
			job.errText = "requeued at drain; recovered on next start"
		} else {
			job.state = StateCanceled
			job.errText = "canceled before start"
		}
		job.finishedAt = time.Now()
		outcome := job.state
		m.mu.Unlock()
		if outcome == StateCanceled {
			m.cfg.Journal.Finished(job.ID, StateCanceled)
		}
		m.metrics.JobFinished(string(outcome), 0)
		m.logger.Info("job finished",
			"job_id", job.ID, "kind", job.Spec.Kind, "digest", job.Digest,
			"replica_id", job.replica, "outcome", string(outcome))
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	if t := m.jobTimeout(job); t > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, t)
	}
	collector := obs.NewCollector(jobTraceSpanCap)
	tracer := obs.NewTracer(collector)
	job.cancel = cancel
	job.trace = collector
	// Meter the job's resource consumption from here to terminal state;
	// execute samples it mid-flight to embed the resources block in the
	// report, runJob takes the final reading for span attrs and metrics.
	job.meter = prof.Begin(0)
	job.state = StateRunning
	job.startedAt = time.Now()
	queueWait := job.startedAt.Sub(job.createdAt)
	m.running++
	m.mu.Unlock()
	defer cancel()
	m.metrics.QueueWaited(queueWait.Seconds())
	m.logger.Info("job started",
		"job_id", job.ID, "kind", job.Spec.Kind, "workload", job.Spec.Workload,
		"digest", job.Digest, "replica_id", job.replica,
		"queue_wait_seconds", queueWait.Seconds())

	ctx = obs.WithTracer(ctx, tracer)
	ctx, root := obs.Start(ctx, "job",
		obs.String("id", job.ID),
		obs.String("kind", job.Spec.Kind),
		obs.String("workload", job.Spec.Workload),
		obs.Int64("seed", job.Spec.Seed),
		obs.String("digest", job.Digest))
	if job.replica != "" {
		root.SetAttr(obs.String("replica", job.replica))
	}
	if job.takenOverFrom != "" {
		// The job arrived by lease takeover; record the provenance in the
		// trace so a reclaimed job is distinguishable from a fresh one.
		tracer.Emit(root, "cluster.takeover", job.createdAt, 0,
			obs.String("from", job.takenOverFrom),
			obs.String("by", job.replica))
		root.SetAttr(obs.String("taken_over_from", job.takenOverFrom))
	}
	// The queue wait happened before the root span started; emit it as an
	// already-measured child so the trace shows wait vs. run time.
	tracer.Emit(root, "job.queue-wait", job.createdAt, queueWait,
		obs.Float("seconds", queueWait.Seconds()))

	key := "job:" + job.Digest
	var (
		out    []byte
		hit    bool
		err    error
		served bool
	)
	// In cluster mode the worker owns the job's digest lease before
	// computing. A takeover job arrives with the lease pre-acquired by the
	// scan; everything else acquires here. Losing the acquisition means a
	// peer is computing the same digest: serve its result from the shared
	// cache if it already landed, otherwise fail — the client's failover
	// retry will find it.
	if m.cfg.Cluster != nil && job.lease == nil {
		lease, lerr := m.cfg.Cluster.AcquireJob(key)
		switch {
		case lerr == nil:
			m.mu.Lock()
			job.lease = lease
			m.mu.Unlock()
		default:
			m.metrics.LeaseAcquireFailed()
			if b, ok := m.cache.GetBytes(key); ok && json.Valid(b) {
				out, hit, served = b, true, true
			} else {
				err, served = lerr, true
			}
		}
	}
	if !served {
		out, hit, err = m.lookupJob(ctx, key, job)
	}
	if err == nil && hit {
		// Job results are JSON by construction; a cached artifact that
		// no longer parses was corrupted (bit rot, torn spill write, or
		// an injected fault). Purge and recompute instead of serving it.
		if m.cfg.Faults.Fire(faults.CacheCorrupt) {
			out = append([]byte{0xff}, out...)
		}
		if !json.Valid(out) {
			m.metrics.CacheCorruptionDetected()
			m.cache.Delete(key)
			out, hit, err = m.lookupJob(ctx, key, job)
		}
	}
	m.metrics.Cache("job", hit)

	m.mu.Lock()
	m.running--
	job.finishedAt = time.Now()
	seconds := job.finishedAt.Sub(job.startedAt).Seconds()
	switch {
	case err == nil:
		job.state = StateDone
		job.cached = hit
		job.result = out
	case job.canceled || errors.Is(err, context.Canceled):
		job.state = StateCanceled
		job.errText = err.Error()
	default:
		job.state = StateFailed
		job.errText = err.Error()
	}
	outcome := job.state
	lease := job.lease
	killed := m.killed
	m.breakerUpdateLocked(job.Digest, outcome)
	m.mu.Unlock()
	// Final resource reading: stop the sampler (even when "killed" — the
	// goroutine must not leak), attribute the consumption to the root
	// span and the per-kind metrics.
	usage := job.meter.End()
	root.SetAttr(obs.String("outcome", string(outcome)), obs.Bool("cache_hit", hit),
		obs.Float("cpu_seconds", usage.CPUSeconds),
		obs.Int64("alloc_bytes", usage.AllocBytes),
		obs.Int64("alloc_objects", usage.AllocObjects),
		obs.Int64("gc_cycles", usage.GCCycles),
		obs.Int64("heap_peak_bytes", usage.HeapPeakBytes),
		obs.Int64("goroutine_peak", int64(usage.GoroutinePeak)))
	root.End()
	if killed {
		// The process is "dead": no terminal journal record, no trace
		// file, and the lease is left to age out — exactly the debris a
		// real kill -9 leaves for the survivors to reclaim.
		return
	}
	m.persistTrace(job.ID, collector)
	m.cfg.Journal.Finished(job.ID, outcome)
	if lease != nil && m.cfg.Cluster != nil {
		// The outcome is durable; drop the lease. For a fenced job this is
		// a no-op (the superseding epoch survives).
		_ = m.cfg.Cluster.ReleaseJob(lease)
	}
	m.metrics.JobFinished(string(outcome), seconds)
	m.metrics.JobResources(job.Spec.Kind, usage)
	m.logger.Info("job finished",
		"job_id", job.ID, "kind", job.Spec.Kind, "digest", job.Digest,
		"replica_id", job.replica, "outcome", string(outcome),
		"cached", hit, "seconds", seconds, "cpu_seconds", usage.CPUSeconds)
}

// lookupJob serves the job artifact through the cache under a
// "cache.lookup" span; a miss runs the pipeline inside the span.
func (m *Manager) lookupJob(ctx context.Context, key string, job *Job) ([]byte, bool, error) {
	ctx, sp := obs.Start(ctx, "cache.lookup",
		obs.String("kind", "job"), obs.String("key", key))
	defer sp.End()
	out, hit, err := m.cache.DoBytes(key, func() ([]byte, error) {
		b, ferr := m.runExec(ctx, job)
		if ferr != nil {
			return nil, ferr
		}
		// Commit-time fence: a worker whose lease was superseded while it
		// computed (paused, partitioned, presumed dead) must not publish
		// into the shared cache — the error aborts the fill, so nothing is
		// stored in memory or spilled to disk.
		if cerr := m.fenceCheck(job); cerr != nil {
			return nil, cerr
		}
		return b, nil
	})
	sp.SetAttr(obs.Bool("hit", hit))
	return out, hit, err
}

// fenceCheck re-verifies the job's lease epoch against the group state.
func (m *Manager) fenceCheck(job *Job) error {
	if m.cfg.Cluster == nil {
		return nil
	}
	m.mu.Lock()
	lease := job.lease
	m.mu.Unlock()
	if lease == nil {
		return nil
	}
	if err := m.cfg.Cluster.CheckJob(lease); err != nil {
		if errors.Is(err, cluster.ErrFenced) {
			m.metrics.FencedCommit()
		}
		return err
	}
	return nil
}

// persistTrace writes the job's Chrome trace to TraceDir, when set.
// Failures are counted, not fatal: the trace stays readable in memory.
func (m *Manager) persistTrace(jobID string, col *obs.Collector) {
	if m.cfg.TraceDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(m.cfg.TraceDir, jobID+".trace.json"))
	if err != nil {
		m.metrics.TraceWriteFailed()
		return
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, col.Spans()); err != nil {
		m.metrics.TraceWriteFailed()
	}
}

// Trace returns a snapshot of a job's collected spans. ok is false when
// the job is unknown or has not started running yet; a running job
// returns the spans ended so far.
func (m *Manager) Trace(id string) ([]obs.SpanData, bool) {
	m.mu.Lock()
	var col *obs.Collector
	if job, ok := m.jobs[id]; ok {
		col = job.trace
	}
	m.mu.Unlock()
	if col == nil {
		return nil, false
	}
	return col.Spans(), true
}

// breakerUpdateLocked feeds one terminal outcome into the digest's
// circuit breaker. Cancellations are neutral: they say nothing about
// whether the spec can succeed.
func (m *Manager) breakerUpdateLocked(digest string, outcome JobState) {
	if m.cfg.BreakerThreshold <= 0 {
		return
	}
	switch outcome {
	case StateDone:
		delete(m.breakers, digest)
	case StateFailed:
		b := m.breakers[digest]
		if b == nil {
			b = &breakerState{}
			m.breakers[digest] = b
		}
		b.fails++
		if b.fails >= m.cfg.BreakerThreshold {
			if b.fails == m.cfg.BreakerThreshold {
				m.metrics.CircuitOpened()
			}
			// Escalating backoff: each failure past the threshold — i.e.
			// each half-open probe that fails again — doubles the cooldown,
			// capped at 64x, so a persistently broken spec is probed ever
			// more rarely instead of once per fixed cooldown forever.
			shift := b.fails - m.cfg.BreakerThreshold
			if shift > 6 {
				shift = 6
			}
			b.openUntil = m.now().Add(m.cfg.BreakerCooldown << shift)
		}
	}
}

// runExec runs the job's pipeline with panic recovery and bounded retry
// for transient errors. It is invoked inside the cache's single-flight
// fill, so a recovered panic surfaces as a plain fill error and cannot
// leak an inflight entry.
func (m *Manager) runExec(ctx context.Context, job *Job) ([]byte, error) {
	backoff := m.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		out, err := m.execOnce(ctx, job)
		if err == nil || ctx.Err() != nil {
			return out, err
		}
		if !IsTransient(err) || attempt >= m.cfg.MaxJobRetries {
			return nil, err
		}
		m.metrics.JobRetried()
		m.mu.Lock()
		job.retries++
		m.mu.Unlock()
		m.sleep(backoff)
		backoff *= 2
	}
}

// execOnce runs the pipeline once, converting a worker panic into an
// error so a crashing job fails alone instead of taking the daemon down.
func (m *Manager) execOnce(ctx context.Context, job *Job) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.metrics.WorkerPanicked()
			out, err = nil, fmt.Errorf("service: worker panic: %v", r)
		}
	}()
	if m.cfg.Faults.Fire(faults.WorkerPanic) {
		panic("injected worker panic")
	}
	if ferr := m.cfg.Faults.Err(faults.JobTransient); ferr != nil {
		return nil, MarkTransient(ferr)
	}
	return m.execFn(ctx, job)
}

func (m *Manager) jobTimeout(job *Job) time.Duration {
	if job.Spec.TimeoutSeconds > 0 {
		return time.Duration(job.Spec.TimeoutSeconds * float64(time.Second))
	}
	return m.cfg.JobTimeout
}

// pruneLocked caps the terminal-job backlog.
func (m *Manager) pruneLocked() {
	finished := 0
	for _, id := range m.order {
		if job, ok := m.jobs[id]; ok && job.state.Terminal() {
			finished++
		}
	}
	if finished <= maxFinishedJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		job, ok := m.jobs[id]
		if ok && job.state.Terminal() && finished > maxFinishedJobs {
			delete(m.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// execute runs one job for real: resolve the inputs, thread the artifact
// cache through the pipeline's compile/profile hooks, and serialize the
// shared report schema.
func (m *Manager) execute(ctx context.Context, job *Job) ([]byte, error) {
	spec := job.Spec
	if spec.Kind == "fleet" {
		return m.executeFleet(ctx, job)
	}
	w, err := workloads.Get(spec.Workload)
	if err != nil {
		return nil, err
	}
	src := w.Source
	if spec.Program != "" {
		src = spec.Program
	}
	prog, err := p4.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse program: %w", err)
	}
	if err := p4.Check(prog); err != nil {
		return nil, fmt.Errorf("check program: %w", err)
	}
	cfg := w.Config()
	if spec.Rules != "" {
		cfg, err = rt.Parse(spec.Rules)
		if err != nil {
			return nil, fmt.Errorf("parse rules: %w", err)
		}
	}
	trace, err := w.Trace(spec.Seed)
	if err != nil {
		return nil, err
	}
	var bindings map[string]int
	if spec.Bindings != "" {
		if bindings, err = p4.ParseBindings(spec.Bindings); err != nil {
			return nil, err
		}
	}
	traceDigest := TraceDigest(trace)
	parallelism := m.jobParallelism(job)

	if spec.Kind == "profile" {
		// Profiling runs on the concrete program: bind the @tunable
		// symbols (submitted values, declared defaults for the rest).
		concrete, err := p4.Instantiate(prog, bindings)
		if err != nil {
			return nil, err
		}
		pf, err := m.cachedProfile(ctx, concrete, cfg, trace, traceDigest, parallelism)
		if err != nil {
			return nil, err
		}
		rep := report.FromProfile(spec.Workload, spec.Seed, pf)
		rep.Resources = m.jobResources(job)
		return json.Marshal(rep)
	}

	opts := core.Options{
		Context:       ctx,
		Passes:        spec.Passes, // nil = default schedule via the toggles below
		DisablePhase2: spec.NoDeps,
		DisablePhase3: spec.NoMem,
		DisablePhase4: spec.NoOffload,
		CompileHook:   m.compileHook(),
		ProfileHook:   m.profileHook(traceDigest, parallelism),
		Parallelism:   parallelism,
		Bindings:      bindings,
	}
	if w.Tune != nil {
		// The workload's tune spec configures the pass if the job's
		// schedule includes "tune"; harmless otherwise.
		opts.Tune = &core.TuneOptions{
			AccuracyTable:   w.Tune.AccuracyTable,
			MaxAccuracyLoss: w.Tune.MaxAccuracyLoss,
		}
	}
	res, err := core.New(opts).Optimize(prog, cfg, trace)
	if err != nil {
		return nil, err
	}
	for _, h := range res.History {
		m.metrics.PhaseObserved(h.Label, h.Duration.Seconds())
	}
	rep := report.FromResult(spec.Workload, spec.Seed, res)
	rep.Resources = m.jobResources(job)
	return json.Marshal(rep)
}

// jobResources samples the job's meter mid-flight so the serialized
// report carries the resources consumed up to the moment the result was
// produced. A cached artifact keeps the block from its original
// compute — the attribution describes the work, not the lookup. Only
// the worker goroutine running the job reads the meter here, the same
// goroutine that set it in runJob.
func (m *Manager) jobResources(job *Job) *report.Resources {
	if job.meter == nil {
		return nil
	}
	return report.FromUsage(job.meter.Sample())
}

// compileHook serves the pipeline's compiles from the artifact cache,
// keyed on the printed program and the hardware model. This is what makes
// Phase 3's binary search and Phase 4's enumeration cheap on repeats —
// within a job and across concurrent jobs alike. The lookup runs under a
// "cache.lookup" span, so the trace shows which probes hit and which
// compiled for real.
func (m *Manager) compileHook() func(context.Context, *p4.Program, tofino.Target) (*tofino.Result, error) {
	return func(ctx context.Context, prog *p4.Program, tgt tofino.Target) (*tofino.Result, error) {
		key := "compile:" + Digest(p4.Print(prog), targetKey(tgt))
		_, sp := obs.Start(ctx, "cache.lookup", obs.String("kind", "compile"))
		defer sp.End()
		v, hit, err := m.cache.Do(key, func() (any, error) {
			return tofino.Compile(prog, tgt)
		})
		sp.SetAttr(obs.Bool("hit", hit))
		m.metrics.Cache("compile", hit)
		if err != nil {
			return nil, err
		}
		return v.(*tofino.Result), nil
	}
}

// jobParallelism resolves a job's worker count: the spec's override when
// set, the manager default otherwise.
func (m *Manager) jobParallelism(job *Job) int {
	if job.Spec.Parallelism > 0 {
		return job.Spec.Parallelism
	}
	return m.cfg.Parallelism
}

// profileHook serves trace replays from the artifact cache, keyed on the
// printed program, the rules, and the trace digest. The parallelism is
// deliberately not part of the key: sharded and sequential replays
// produce equal profiles.
func (m *Manager) profileHook(traceDigest string, parallelism int) func(context.Context, *p4.Program, *rt.Config, *trafficgen.Trace) (*profile.Profile, error) {
	return func(ctx context.Context, prog *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*profile.Profile, error) {
		return m.cachedProfile(ctx, prog, cfg, trace, traceDigest, parallelism)
	}
}

func (m *Manager) cachedProfile(ctx context.Context, prog *p4.Program, cfg *rt.Config, trace *trafficgen.Trace, traceDigest string, parallelism int) (*profile.Profile, error) {
	key := "profile:" + Digest(p4.Print(prog), rt.Format(cfg), traceDigest)
	ctx, sp := obs.Start(ctx, "cache.lookup", obs.String("kind", "profile"))
	defer sp.End()
	v, hit, err := m.cache.Do(key, func() (any, error) {
		start := time.Now()
		pf, err := profile.RunParallelContext(ctx, prog, cfg, trace, parallelism)
		if err == nil {
			m.metrics.Replayed(pf.TotalPackets, time.Since(start).Seconds())
		}
		return pf, err
	})
	sp.SetAttr(obs.Bool("hit", hit))
	m.metrics.Cache("profile", hit)
	if err != nil {
		return nil, err
	}
	return v.(*profile.Profile), nil
}
