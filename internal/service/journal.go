package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Journal is p2god's crash-safe, append-only job journal. Every accepted
// job is recorded before the submitter gets its 202; every terminal
// outcome is recorded when the job finishes. On restart, Recover replays
// the log: jobs with an accepted record but no terminal record — queued
// or running when the process died, whether by graceful drain or kill
// -9 — are returned for re-submission under their original IDs.
//
// In a replica group the journal is also the takeover substrate: each
// replica journals into the shared cluster directory, and a survivor
// that claims a dead peer's lease reads the peer's journal (ReadPending)
// to learn which jobs to reclaim, then appends a "takeover" record to it
// so a second scan — or the dead replica restarting — sees the job as
// already re-owned.
//
// The format is one JSON object per line, fsynced per append. A torn
// final line (the crash happened mid-write) is tolerated and reported as
// a warning; corruption anywhere before the final record is an error,
// because a journal that lies in the middle cannot be trusted at all.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// journalEntry is one journal line.
type journalEntry struct {
	// Op is "accepted", "finished", "requeued", "device", or "takeover".
	Op string `json:"op"`
	// ID is the job ID the entry refers to.
	ID string `json:"id"`
	// Spec is present on accepted entries.
	Spec *JobSpec `json:"spec,omitempty"`
	// State is the terminal state on finished entries, or the device row
	// status on device entries.
	State string `json:"state,omitempty"`
	// Device is the device name on device entries (fleet job progress).
	Device string `json:"device,omitempty"`
	// By is the reclaiming replica on takeover entries.
	By string `json:"by,omitempty"`
	// Time is RFC3339Nano, informational only.
	Time string `json:"time"`
}

// PendingJob is one accepted-but-unfinished job recovered from a
// journal, keyed by the ID it was originally accepted under — recovery
// and takeover both re-serve results under that ID.
type PendingJob struct {
	ID   string
	Spec JobSpec
}

// OpenJournal opens (creating if needed) the journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Recover replays the journal and returns every job that was accepted
// but never finished, in acceptance order, plus warnings for tolerated
// damage (a torn final record). It then compacts the journal to empty:
// the caller re-submits the pending jobs, and each re-submission appends
// a fresh accepted record, so the log never grows across restarts.
func (j *Journal) Recover() ([]PendingJob, []string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Seek(0, 0); err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, nil, fmt.Errorf("service: read journal: %w", err)
	}
	pending, warnings, err := replayJournal(data, j.path)
	if err != nil {
		return nil, warnings, err
	}
	if err := j.f.Truncate(0); err != nil {
		return nil, warnings, err
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return nil, warnings, err
	}
	return pending, warnings, nil
}

// ReadPending replays a journal file read-only — no truncation, no open
// handle kept — and returns its accepted-but-unfinished jobs. This is
// how a surviving replica inspects a dead peer's journal before taking
// its work over; tolerated damage comes back as warnings.
func ReadPending(path string) ([]PendingJob, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil // peer never journaled anything
		}
		return nil, nil, fmt.Errorf("service: read journal: %w", err)
	}
	return replayJournal(data, path)
}

// replayJournal folds journal bytes into the pending set. A final line
// that fails to parse is a torn tail from a crash mid-append: it is
// skipped with a warning, because the fsync discipline guarantees every
// earlier record was durable before it was written. An unparseable line
// anywhere else is corruption and fails the replay.
func replayJournal(data []byte, path string) ([]PendingJob, []string, error) {
	type pendingAt struct {
		job PendingJob
		seq int
	}
	pending := map[string]pendingAt{}
	var warnings []string
	seq := 0
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends with '\n', leaving one empty trailing
	// element; drop empties at the end but not in the middle.
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	for i, line := range lines {
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-1 {
				warnings = append(warnings, fmt.Sprintf(
					"journal %s: dropping torn final record (%d bytes): %v", path, len(line), err))
				continue
			}
			return nil, warnings, fmt.Errorf(
				"service: journal %s corrupt at line %d (not a torn tail): %v", path, i+1, err)
		}
		switch e.Op {
		case "accepted":
			if e.Spec != nil {
				pending[e.ID] = pendingAt{job: PendingJob{ID: e.ID, Spec: *e.Spec}, seq: seq}
				seq++
			}
		case "finished":
			delete(pending, e.ID)
		case "takeover":
			// Another replica reclaimed the job; it is no longer this
			// journal's responsibility.
			delete(pending, e.ID)
		case "requeued":
			// still pending; the entry only documents the drain
		case "device":
			// mid-fleet progress; the fleet job itself is re-run on
			// recovery and its finished device rows come back from the
			// spilled device cache, so the entry is informational
		}
	}
	order := make([]pendingAt, 0, len(pending))
	for _, p := range pending {
		order = append(order, p)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].seq < order[b].seq })
	out := make([]PendingJob, 0, len(order))
	for _, p := range order {
		out = append(out, p.job)
	}
	return out, warnings, nil
}

// Accepted records an admitted job before its submitter is answered.
func (j *Journal) Accepted(id string, spec JobSpec) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "accepted", ID: id, Spec: &spec})
}

// Finished records a terminal outcome; the job will not be recovered.
func (j *Journal) Finished(id string, state JobState) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "finished", ID: id, State: string(state)})
}

// Device records one finished device row of a running fleet job, so an
// operator reading the journal after a crash can see how far the fleet
// got. Recovery does not replay these — the re-run fleet job recovers
// finished rows from the spilled device cache instead.
func (j *Journal) Device(id, device, status string) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "device", ID: id, Device: device, State: status})
}

// Requeued documents that a drain left the job pending on purpose; it
// stays recoverable.
func (j *Journal) Requeued(id string) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "requeued", ID: id})
}

// AppendTakeover appends a takeover record to the journal at path (a
// dead peer's journal, not the caller's own): the named job is now owned
// by replica `by`. The append is direct — open, write one fsynced line,
// close — because the dead peer's journal has no live *Journal handle.
func AppendTakeover(path, jobID, by string) error {
	e := journalEntry{
		Op:   "takeover",
		ID:   jobID,
		By:   by,
		Time: time.Now().UTC().Format(time.RFC3339Nano),
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: append takeover: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("service: append takeover: %w", err)
	}
	return f.Sync()
}

// append writes one line and fsyncs. Errors are swallowed after marking
// nothing: the journal is a recovery aid; a full disk must not take the
// daemon down with it.
func (j *Journal) append(e journalEntry) {
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if _, err := j.f.Write(append(data, '\n')); err == nil {
		_ = j.f.Sync()
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close closes the underlying file. Further appends are silent no-ops —
// which is exactly what Manager.Kill leans on to simulate kill -9.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
