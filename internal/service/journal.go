package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Journal is p2god's crash-safe, append-only job journal. Every accepted
// job is recorded before the submitter gets its 202; every terminal
// outcome is recorded when the job finishes. On restart, Recover replays
// the log: jobs with an accepted record but no terminal record — queued
// or running when the process died, whether by graceful drain or kill
// -9 — are returned for re-submission.
//
// The format is one JSON object per line, fsynced per append. A torn
// final line (the crash happened mid-write) is tolerated and skipped.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// journalEntry is one journal line.
type journalEntry struct {
	// Op is "accepted", "finished", "requeued", or "device".
	Op string `json:"op"`
	// ID is the job ID the entry refers to.
	ID string `json:"id"`
	// Spec is present on accepted entries.
	Spec *JobSpec `json:"spec,omitempty"`
	// State is the terminal state on finished entries, or the device row
	// status on device entries.
	State string `json:"state,omitempty"`
	// Device is the device name on device entries (fleet job progress).
	Device string `json:"device,omitempty"`
	// Time is RFC3339Nano, informational only.
	Time string `json:"time"`
}

// OpenJournal opens (creating if needed) the journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Recover replays the journal and returns the specs of every job that
// was accepted but never finished, in acceptance order. It then compacts
// the journal to empty: the caller re-submits the pending specs, and
// each re-submission appends a fresh accepted record (under a new job
// ID), so the log never grows across restarts.
func (j *Journal) Recover() ([]JobSpec, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Seek(0, 0); err != nil {
		return nil, err
	}
	type pendingJob struct {
		spec JobSpec
		seq  int
	}
	pending := map[string]pendingJob{}
	seq := 0
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn write from a crash; skip
		}
		switch e.Op {
		case "accepted":
			if e.Spec != nil {
				pending[e.ID] = pendingJob{spec: *e.Spec, seq: seq}
				seq++
			}
		case "finished":
			delete(pending, e.ID)
		case "requeued":
			// still pending; the entry only documents the drain
		case "device":
			// mid-fleet progress; the fleet job itself is re-run on
			// recovery and its finished device rows come back from the
			// spilled device cache, so the entry is informational
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: read journal: %w", err)
	}
	out := make([]JobSpec, 0, len(pending))
	order := make([]pendingJob, 0, len(pending))
	for _, p := range pending {
		order = append(order, p)
	}
	for i := range order { // insertion sort by acceptance order; n is tiny
		for k := i; k > 0 && order[k-1].seq > order[k].seq; k-- {
			order[k-1], order[k] = order[k], order[k-1]
		}
	}
	for _, p := range order {
		out = append(out, p.spec)
	}
	if err := j.f.Truncate(0); err != nil {
		return nil, err
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Accepted records an admitted job before its submitter is answered.
func (j *Journal) Accepted(id string, spec JobSpec) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "accepted", ID: id, Spec: &spec})
}

// Finished records a terminal outcome; the job will not be recovered.
func (j *Journal) Finished(id string, state JobState) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "finished", ID: id, State: string(state)})
}

// Device records one finished device row of a running fleet job, so an
// operator reading the journal after a crash can see how far the fleet
// got. Recovery does not replay these — the re-run fleet job recovers
// finished rows from the spilled device cache instead.
func (j *Journal) Device(id, device, status string) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "device", ID: id, Device: device, State: status})
}

// Requeued documents that a drain left the job pending on purpose; it
// stays recoverable.
func (j *Journal) Requeued(id string) {
	if j == nil {
		return
	}
	j.append(journalEntry{Op: "requeued", ID: id})
}

// append writes one line and fsyncs. Errors are swallowed after marking
// nothing: the journal is a recovery aid; a full disk must not take the
// daemon down with it.
func (j *Journal) append(e journalEntry) {
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if _, err := j.f.Write(append(data, '\n')); err == nil {
		_ = j.f.Sync()
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
