package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// Digest returns the hex SHA-256 over the parts. Each part is
// length-prefixed so concatenation ambiguity cannot collide keys
// ("ab","c" vs "a","bc").
func Digest(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TraceDigest hashes a trace's packets (port + frame bytes) so cache keys
// distinguish traces even when they come from the same generator spec.
func TraceDigest(t *trafficgen.Trace) string {
	h := sha256.New()
	var n [8]byte
	for _, pkt := range t.Packets {
		binary.BigEndian.PutUint64(n[:], pkt.Port)
		h.Write(n[:])
		binary.BigEndian.PutUint64(n[:], uint64(len(pkt.Data)))
		h.Write(n[:])
		h.Write(pkt.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// targetKey canonicalizes the hardware model for cache keys.
func targetKey(t tofino.Target) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d",
		t.Stages, t.StageSRAMBytes, t.StageTCAMBytes, t.MaxTablesPerStage, t.StageALUs)
}
