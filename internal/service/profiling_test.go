package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"p2go/internal/obs"
	"p2go/internal/prof"
	"p2go/internal/report"
)

// TestJobReportResourcesBlock is the attribution acceptance criterion:
// every completed job report carries a populated resources block, served
// over the same HTTP surface clients poll.
func TestJobReportResourcesBlock(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 4})
	st, _ := postJob(t, srv.URL, JobSpec{Kind: "optimize", Workload: "quickstart"})
	final := awaitJob(t, srv.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	var res report.JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	r := res.Resources
	if r == nil {
		t.Fatal("completed report lacks the resources block")
	}
	if r.WallSeconds <= 0 {
		t.Errorf("resources.wall_seconds = %g, want > 0", r.WallSeconds)
	}
	if r.AllocBytes <= 0 || r.AllocObjects <= 0 {
		t.Errorf("resources allocs = %d bytes / %d objects, want > 0", r.AllocBytes, r.AllocObjects)
	}
	if r.HeapPeakBytes <= 0 {
		t.Errorf("resources.heap_peak_bytes = %d, want > 0", r.HeapPeakBytes)
	}
	if r.GoroutinePeak < 1 {
		t.Errorf("resources.goroutine_peak = %d, want >= 1", r.GoroutinePeak)
	}
	if r.CPUSeconds < 0 {
		t.Errorf("resources.cpu_seconds = %g, want >= 0", r.CPUSeconds)
	}

	// The cached rerun serves the original report: attribution describes
	// the work, not the lookup.
	st2, _ := postJob(t, srv.URL, JobSpec{Kind: "optimize", Workload: "quickstart"})
	final2 := awaitJob(t, srv.URL, st2.ID)
	if !final2.Cached {
		t.Fatal("resubmission was not a cache hit")
	}
	var res2 report.JobResult
	if err := json.Unmarshal(final2.Result, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Resources == nil || res2.Resources.WallSeconds != r.WallSeconds {
		t.Errorf("cached report's resources block differs from the original: %+v", res2.Resources)
	}
}

// TestServeProfileStore is the profile-plane acceptance criterion: with a
// store configured, an on-demand capture lands and GET /debug/profiles
// serves at least one capture, whose raw bytes are a valid gzipped pprof.
func TestServeProfileStore(t *testing.T) {
	store, err := prof.NewStore(prof.StoreConfig{
		Dir:         t.TempDir(),
		CPUDuration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 4, Profiles: store})

	resp, err := http.Post(srv.URL+"/debug/profiles/capture", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var captured []prof.Info
	if err := json.NewDecoder(resp.Body).Decode(&captured); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("capture: %s", resp.Status)
	}
	if len(captured) != 2 {
		t.Fatalf("capture returned %d infos, want 2 (cpu+heap)", len(captured))
	}

	var infos []prof.Info
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/debug/profiles")), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) < 1 {
		t.Fatal("GET /debug/profiles served no captures")
	}
	kinds := map[string]bool{}
	for _, in := range infos {
		kinds[in.Kind] = true
		if in.ID == "" || in.Bytes <= 0 || in.CapturedAt == "" {
			t.Errorf("malformed info: %+v", in)
		}
	}
	if !kinds[prof.KindCPU] || !kinds[prof.KindHeap] {
		t.Errorf("capture kinds = %v, want both cpu and heap", kinds)
	}

	resp, err = http.Get(srv.URL + "/debug/profiles/" + infos[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET capture: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("capture Content-Type = %q", ct)
	}
	if len(data) < 2 || !bytes.HasPrefix(data, []byte{0x1f, 0x8b}) {
		t.Errorf("capture bytes are not a gzipped pprof (prefix % x)", data[:min(4, len(data))])
	}

	if r, err := http.Get(srv.URL + "/debug/profiles/not-a-capture"); err == nil {
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("bogus capture ID: %s, want 404", r.Status)
		}
		r.Body.Close()
	}

	// The captures show up in both the counter family and the store gauges.
	metrics := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		`p2god_profile_captures_total{kind="cpu"} 1`,
		`p2god_profile_captures_total{kind="heap"} 1`,
		"p2god_profile_store_captures 2",
		"p2god_profile_store_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lack %q:\n%s", want, grepLines(metrics, "p2god_profile"))
		}
	}
}

// TestServeProfilesDisabled: without a store the endpoints refuse with a
// hint instead of panicking on a nil store.
func TestServeProfilesDisabled(t *testing.T) {
	srv, _ := newTestServer(t, ManagerConfig{Workers: 1, QueueDepth: 2})
	r, err := http.Get(srv.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("GET /debug/profiles without a store: %s, want 404", r.Status)
	}
	body, _ := io.ReadAll(r.Body)
	if !strings.Contains(string(body), "-profile-dir") {
		t.Errorf("disabled response should hint at -profile-dir: %s", body)
	}
}

// TestTakeoverTraceProvenance: a job reclaimed from a dead replica keeps
// its provenance in the execution trace — the root span carries the
// surviving replica's ID and the dead peer it was taken over from, and a
// cluster.takeover event records the handoff.
func TestTakeoverTraceProvenance(t *testing.T) {
	dir := t.TempDir()
	clk := newHAClock()

	r1 := newHAReplica(t, dir, "r1", clk, 1)
	r1.m.Start()
	st, err := r1.m.Submit(JobSpec{Kind: "optimize", Workload: "quickstart", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r1.m.Kill()

	r2 := newHAReplica(t, dir, "r2", clk, 1)
	r2.m.Start()
	defer r2.m.Drain(5 * time.Second)
	clk.Advance(2 * time.Second)
	if n := r2.m.TakeoverScan(); n != 1 {
		t.Fatalf("takeover scan reclaimed %d job(s), want 1", n)
	}
	if fin := waitTerminal(t, r2.m, st.ID); fin.State != StateDone {
		t.Fatalf("reclaimed job = %s (%q)", fin.State, fin.Error)
	}

	// Terminal state and root-span finalization are not atomic (Trace
	// documents that a running job returns the spans ended so far), so
	// poll briefly for the root span to land.
	var spans []obs.SpanData
	attrs := func(name string) map[string]string {
		for _, s := range spans {
			if s.Name == name {
				got := map[string]string{}
				for _, a := range s.Attrs {
					got[a.Key] = a.Value
				}
				return got
			}
		}
		return nil
	}
	var root map[string]string
	deadline := time.Now().Add(5 * time.Second)
	for root == nil && time.Now().Before(deadline) {
		var ok bool
		if spans, ok = r2.m.Trace(st.ID); !ok {
			t.Fatal("no trace for the reclaimed job")
		}
		root = attrs("job")
		if root == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if root == nil {
		t.Fatal("trace lacks the job root span")
	}
	if root["replica"] != "r2" || root["taken_over_from"] != "r1" {
		t.Errorf("root span attribution = replica %q taken_over_from %q, want r2/r1",
			root["replica"], root["taken_over_from"])
	}
	handoff := attrs("cluster.takeover")
	if handoff == nil {
		t.Fatal("trace lacks the cluster.takeover event")
	}
	if handoff["from"] != "r1" || handoff["by"] != "r2" {
		t.Errorf("takeover event = from %q by %q, want r1/r2", handoff["from"], handoff["by"])
	}
	// Resource attribution rides the same root span.
	for _, key := range []string{"cpu_seconds", "alloc_bytes", "heap_peak_bytes", "goroutine_peak"} {
		if _, present := root[key]; !present {
			t.Errorf("root span lacks resource attr %q (have %v)", key, root)
		}
	}
}
