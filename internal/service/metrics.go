package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"p2go/internal/obs"
	"p2go/internal/prof"
)

// Metrics is the daemon's metric registry. It is deliberately tiny — a
// handful of counters and fixed-bucket histograms rendered in the
// Prometheus text exposition format — so the service stays stdlib-only.
//
// Latency-shaped quantities (phase wall time, job wall time, queue wait,
// replay throughput) are histograms; the pre-histogram `_seconds_total`
// counters are still emitted, derived from the histogram sums, so
// existing dashboards keep working.
type Metrics struct {
	mu sync.Mutex

	jobsSubmitted int64
	jobsFinished  map[string]int64 // by outcome: done, failed, canceled
	rejected      int64

	cacheHits   map[string]int64 // by artifact kind: job, compile, profile
	cacheMisses map[string]int64

	phaseDuration map[string]*obs.Histogram // by stage-history label
	jobDuration   map[string]*obs.Histogram // by outcome
	queueWait     *obs.Histogram
	replayRate    *obs.Histogram // packets/sec per replay

	packetsReplayed int64
	replaySeconds   float64

	// Fleet counters: network-wide jobs, their per-device fan-out by row
	// status, and the cross-device analysis-cache traffic that measures
	// how much a homogeneous fleet deduped.
	fleetJobs         int64
	fleetDevices      map[string]int64 // by row status: optimized, skipped, failed
	fleetCrossHits    map[string]int64 // by analysis kind: compile, profile
	fleetCrossMisses  map[string]int64
	fleetDeviceFanout *obs.Histogram // devices per fleet job
	fleetJobDuration  *obs.Histogram

	// Resilience counters: every degradation path the daemon takes is
	// counted here, so failures are observable rather than silent.
	jobRetries       int64
	workerPanics     int64
	circuitOpened    int64
	circuitRejected  int64
	journalRecovered int64
	journalRequeued  int64
	cacheCorruptions int64
	traceWriteErrors int64

	// Cluster counters: replica-group lease traffic and failover events.
	// Takeovers and fenced commits are the two that matter on a dashboard —
	// the first says a replica died and its work moved, the second says
	// fencing did its job on a stale replica.
	takeoverJobs         int64
	fencedCommits        int64
	leaseRenewals        int64
	leaseRenewFailures   int64
	leaseAcquireFailures int64

	// Resource attribution: what jobs cost the daemon itself. CPU time is
	// a histogram by job kind (plus a derived legacy-style _total); allocs,
	// alloc bytes, and GC cycles are plain counters; peak heap per job is
	// a bytes histogram.
	jobCPU          map[string]*obs.Histogram // by job kind
	jobHeapPeak     *obs.Histogram
	jobAllocObjects int64
	jobAllocBytes   int64
	jobGCCycles     int64

	// Profile-store counters: self-captures taken (by kind) and failed.
	profileCaptures      map[string]int64 // by capture kind: cpu, heap
	profileCaptureErrors int64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobsFinished:     map[string]int64{},
		cacheHits:        map[string]int64{},
		cacheMisses:      map[string]int64{},
		phaseDuration:    map[string]*obs.Histogram{},
		jobDuration:      map[string]*obs.Histogram{},
		queueWait:        obs.NewHistogram(obs.DurationBuckets()...),
		replayRate:       obs.NewHistogram(obs.ThroughputBuckets()...),
		fleetDevices:     map[string]int64{},
		fleetCrossHits:   map[string]int64{},
		fleetCrossMisses: map[string]int64{},
		fleetDeviceFanout: obs.NewHistogram(
			1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
		fleetJobDuration: obs.NewHistogram(obs.DurationBuckets()...),
		jobCPU:           map[string]*obs.Histogram{},
		jobHeapPeak:      obs.NewHistogram(obs.BytesBuckets()...),
		// Pre-seeded with the two known kinds so the family exposes
		// zero-valued series before the first capture — dashboards keyed
		// on it never see a missing series.
		profileCaptures: map[string]int64{prof.KindCPU: 0, prof.KindHeap: 0},
	}
}

// JobSubmitted counts an accepted submission.
func (m *Metrics) JobSubmitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted++
}

// QueueRejected counts a submission bounced on a full queue.
func (m *Metrics) QueueRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// JobFinished counts a terminal job and observes its wall time in the
// per-outcome job-duration histogram.
func (m *Metrics) JobFinished(outcome string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsFinished[outcome]++
	h := m.jobDuration[outcome]
	if h == nil {
		h = obs.NewHistogram(obs.DurationBuckets()...)
		m.jobDuration[outcome] = h
	}
	h.Observe(seconds)
}

// QueueWaited observes how long a job sat in the queue before a worker
// picked it up.
func (m *Metrics) QueueWaited(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueWait.Observe(seconds)
}

// Cache counts one artifact-cache lookup.
func (m *Metrics) Cache(kind string, hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.cacheHits[kind]++
	} else {
		m.cacheMisses[kind]++
	}
}

// PhaseObserved observes wall time for one pipeline phase.
func (m *Metrics) PhaseObserved(phase string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.phaseDuration[phase]
	if h == nil {
		h = obs.NewHistogram(obs.DurationBuckets()...)
		m.phaseDuration[phase] = h
	}
	h.Observe(seconds)
}

// Replayed accumulates simulator replay volume and time, and observes the
// replay's throughput.
func (m *Metrics) Replayed(packets int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.packetsReplayed += int64(packets)
	m.replaySeconds += seconds
	if seconds > 0 {
		m.replayRate.Observe(float64(packets) / seconds)
	}
}

// FleetDevice counts one finished device row of a fleet job by status.
func (m *Metrics) FleetDevice(status string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleetDevices[status]++
}

// FleetJobCompleted records one finished fleet job: its device fan-out,
// wall time, and the cross-device analysis-cache traffic its shared
// cache saw (hits grow with fleet homogeneity).
func (m *Metrics) FleetJobCompleted(devices int, seconds float64, compileHits, compileMisses, profileHits, profileMisses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleetJobs++
	m.fleetDeviceFanout.Observe(float64(devices))
	m.fleetJobDuration.Observe(seconds)
	m.fleetCrossHits["compile"] += int64(compileHits)
	m.fleetCrossMisses["compile"] += int64(compileMisses)
	m.fleetCrossHits["profile"] += int64(profileHits)
	m.fleetCrossMisses["profile"] += int64(profileMisses)
}

// JobRetried counts one transient-failure retry of a job.
func (m *Metrics) JobRetried() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobRetries++
}

// WorkerPanicked counts a worker panic converted into a failed job.
func (m *Metrics) WorkerPanicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workerPanics++
}

// CircuitOpened counts a per-digest circuit breaker opening.
func (m *Metrics) CircuitOpened() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.circuitOpened++
}

// CircuitRejected counts a submission bounced off an open circuit.
func (m *Metrics) CircuitRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.circuitRejected++
}

// JournalRecovered counts a job re-submitted from the journal on start.
func (m *Metrics) JournalRecovered() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalRecovered++
}

// JournalRequeued counts a queued job persisted for recovery at drain.
func (m *Metrics) JournalRequeued() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalRequeued++
}

// CacheCorruptionDetected counts a corrupted cached artifact that was
// detected, purged, and recomputed.
func (m *Metrics) CacheCorruptionDetected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheCorruptions++
}

// TraceWriteFailed counts a per-job trace file that could not be written
// (the job itself is unaffected).
func (m *Metrics) TraceWriteFailed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traceWriteErrors++
}

// TakeoverJob counts a job reclaimed from a dead replica's journal.
func (m *Metrics) TakeoverJob() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.takeoverJobs++
}

// FencedCommit counts a result commit rejected because the job's lease
// was superseded (the stale-replica write that fencing exists to stop).
func (m *Metrics) FencedCommit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fencedCommits++
}

// LeaseRenewed counts one membership/job lease renewal attempt.
func (m *Metrics) LeaseRenewed(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.leaseRenewals++
	} else {
		m.leaseRenewFailures++
	}
}

// LeaseAcquireFailed counts a job-lease acquisition that lost to another
// replica (held or raced).
func (m *Metrics) LeaseAcquireFailed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.leaseAcquireFailures++
}

// JobResources records one finished job's measured resource consumption:
// CPU seconds into the per-kind histogram, peak heap into the bytes
// histogram, allocation and GC deltas into the counters.
func (m *Metrics) JobResources(kind string, u prof.Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.jobCPU[kind]
	if h == nil {
		h = obs.NewHistogram(obs.DurationBuckets()...)
		m.jobCPU[kind] = h
	}
	h.Observe(u.CPUSeconds)
	m.jobHeapPeak.Observe(float64(u.HeapPeakBytes))
	m.jobAllocObjects += u.AllocObjects
	m.jobAllocBytes += u.AllocBytes
	m.jobGCCycles += u.GCCycles
}

// ProfileCaptured counts one self-capture attempt of the given kind;
// a non-nil err counts it as failed instead.
func (m *Metrics) ProfileCaptured(kind string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.profileCaptureErrors++
		return
	}
	m.profileCaptures[kind]++
}

// WritePrometheus renders every metric, plus the caller-supplied gauges
// (queue depth, running jobs, cache entries — values owned by the
// manager), in the Prometheus text exposition format. Every family gets
// HELP and TYPE lines, and label sets are rendered in sorted key order,
// so the output is deterministic for a given registry state.
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, rows map[string]string, values map[string]float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		var keys []string
		for k := range values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if rows == nil {
				fmt.Fprintf(w, "%s %g\n", name, values[k])
			} else {
				fmt.Fprintf(w, "%s{%s=%q} %g\n", name, rows["label"], k, values[k])
			}
		}
	}
	histogram := func(name, help, labelKey string, hists map[string]*obs.Histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var keys []string
		for k := range hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if labelKey == "" {
				hists[k].WriteProm(w, name)
			} else {
				hists[k].WriteProm(w, name, obs.String(labelKey, k))
			}
		}
	}
	toF := func(in map[string]int64) map[string]float64 {
		out := make(map[string]float64, len(in))
		for k, v := range in {
			out[k] = float64(v)
		}
		return out
	}

	counter("p2god_jobs_submitted_total", "Jobs accepted into the queue.",
		nil, map[string]float64{"": float64(m.jobsSubmitted)})
	counter("p2god_jobs_finished_total", "Jobs reaching a terminal state, by outcome.",
		map[string]string{"label": "outcome"}, toF(m.jobsFinished))
	counter("p2god_queue_rejected_total", "Submissions bounced with 429 (queue full).",
		nil, map[string]float64{"": float64(m.rejected)})
	counter("p2god_cache_hits_total", "Artifact cache hits, by artifact kind.",
		map[string]string{"label": "kind"}, toF(m.cacheHits))
	counter("p2god_cache_misses_total", "Artifact cache misses (fills), by artifact kind.",
		map[string]string{"label": "kind"}, toF(m.cacheMisses))

	// Legacy sum counters, derived from the histograms so the metric
	// names pre-dating histogram support keep reporting the same values.
	phaseSums := map[string]float64{}
	for k, h := range m.phaseDuration {
		phaseSums[k] = h.Sum()
	}
	counter("p2god_phase_seconds_total", "Pipeline wall time, by phase.",
		map[string]string{"label": "phase"}, phaseSums)
	jobSeconds := 0.0
	for _, h := range m.jobDuration {
		jobSeconds += h.Sum()
	}
	counter("p2god_job_seconds_total", "Total job wall time.",
		nil, map[string]float64{"": jobSeconds})
	counter("p2god_replayed_packets_total", "Packets replayed through the behavioral simulator.",
		nil, map[string]float64{"": float64(m.packetsReplayed)})
	counter("p2god_fleet_jobs_total", "Fleet (network-wide) jobs completed.",
		nil, map[string]float64{"": float64(m.fleetJobs)})
	counter("p2god_fleet_devices_total", "Fleet device rows finished, by row status.",
		map[string]string{"label": "status"}, toF(m.fleetDevices))
	counter("p2god_fleet_cross_device_cache_hits_total", "Shared analysis-cache hits across a fleet's devices, by analysis kind.",
		map[string]string{"label": "kind"}, toF(m.fleetCrossHits))
	counter("p2god_fleet_cross_device_cache_misses_total", "Shared analysis-cache misses across a fleet's devices, by analysis kind.",
		map[string]string{"label": "kind"}, toF(m.fleetCrossMisses))
	counter("p2god_job_retries_total", "Transient job failures retried with backoff.",
		nil, map[string]float64{"": float64(m.jobRetries)})
	counter("p2god_worker_panics_total", "Worker panics recovered into failed jobs.",
		nil, map[string]float64{"": float64(m.workerPanics)})
	counter("p2god_circuit_opened_total", "Per-digest circuit breakers opened after repeated failures.",
		nil, map[string]float64{"": float64(m.circuitOpened)})
	counter("p2god_circuit_rejected_total", "Submissions rejected by an open circuit breaker.",
		nil, map[string]float64{"": float64(m.circuitRejected)})
	counter("p2god_journal_recovered_total", "Jobs recovered from the journal on restart.",
		nil, map[string]float64{"": float64(m.journalRecovered)})
	counter("p2god_journal_requeued_total", "Queued jobs persisted to the journal at drain.",
		nil, map[string]float64{"": float64(m.journalRequeued)})
	counter("p2god_cache_corruption_total", "Corrupted cached artifacts detected and recomputed.",
		nil, map[string]float64{"": float64(m.cacheCorruptions)})
	counter("p2god_trace_write_errors_total", "Per-job trace files that failed to persist.",
		nil, map[string]float64{"": float64(m.traceWriteErrors)})
	counter("p2god_cluster_takeover_jobs_total", "Jobs reclaimed from dead replicas' journals.",
		nil, map[string]float64{"": float64(m.takeoverJobs)})
	counter("p2god_cluster_fenced_commits_total", "Result commits rejected by stale-lease fencing.",
		nil, map[string]float64{"": float64(m.fencedCommits)})
	counter("p2god_cluster_lease_renewals_total", "Successful lease renewals.",
		nil, map[string]float64{"": float64(m.leaseRenewals)})
	counter("p2god_cluster_lease_renew_failures_total", "Failed lease renewal attempts.",
		nil, map[string]float64{"": float64(m.leaseRenewFailures)})
	counter("p2god_cluster_lease_acquire_failures_total", "Job-lease acquisitions lost to another replica.",
		nil, map[string]float64{"": float64(m.leaseAcquireFailures)})

	// Resource attribution. The _total counter is derived from the
	// per-kind CPU histogram sums, mirroring the phase/job legacy counters.
	cpuSeconds := 0.0
	for _, h := range m.jobCPU {
		cpuSeconds += h.Sum()
	}
	counter("p2god_job_cpu_seconds_total", "Total process CPU time attributed to jobs.",
		nil, map[string]float64{"": cpuSeconds})
	counter("p2god_job_allocs_total", "Heap objects allocated while jobs ran.",
		nil, map[string]float64{"": float64(m.jobAllocObjects)})
	counter("p2god_job_alloc_bytes_total", "Heap bytes allocated while jobs ran.",
		nil, map[string]float64{"": float64(m.jobAllocBytes)})
	counter("p2god_job_gc_cycles_total", "GC cycles completed while jobs ran.",
		nil, map[string]float64{"": float64(m.jobGCCycles)})
	counter("p2god_profile_captures_total", "Self-profile captures stored, by capture kind.",
		map[string]string{"label": "kind"}, toF(m.profileCaptures))
	counter("p2god_profile_capture_errors_total", "Self-profile captures that failed.",
		nil, map[string]float64{"": float64(m.profileCaptureErrors)})

	histogram("p2god_phase_duration_seconds", "Pipeline phase wall time distribution, by phase.",
		"phase", m.phaseDuration)
	histogram("p2god_job_duration_seconds", "Job wall time distribution, by outcome.",
		"outcome", m.jobDuration)
	histogram("p2god_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.",
		"", map[string]*obs.Histogram{"": m.queueWait})
	histogram("p2god_fleet_device_fanout", "Devices per fleet job.",
		"", map[string]*obs.Histogram{"": m.fleetDeviceFanout})
	histogram("p2god_fleet_job_duration_seconds", "Fleet job wall time distribution.",
		"", map[string]*obs.Histogram{"": m.fleetJobDuration})
	histogram("p2god_replay_rate_packets_per_second", "Per-replay simulator throughput distribution.",
		"", map[string]*obs.Histogram{"": m.replayRate})
	histogram("p2god_job_cpu_seconds", "Per-job process CPU time distribution, by job kind.",
		"kind", m.jobCPU)
	histogram("p2god_job_heap_peak_bytes", "Per-job peak in-use heap distribution.",
		"", map[string]*obs.Histogram{"": m.jobHeapPeak})

	var hits, misses int64
	for _, v := range m.cacheHits {
		hits += v
	}
	for _, v := range m.cacheMisses {
		misses += v
	}
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# HELP p2god_cache_hit_ratio Overall artifact cache hit ratio.\n# TYPE p2god_cache_hit_ratio gauge\np2god_cache_hit_ratio %g\n", ratio)

	rate := 0.0
	if m.replaySeconds > 0 {
		rate = float64(m.packetsReplayed) / m.replaySeconds
	}
	fmt.Fprintf(w, "# HELP p2god_replay_packets_per_second Average simulator replay throughput.\n# TYPE p2god_replay_packets_per_second gauge\np2god_replay_packets_per_second %g\n", rate)

	var names []string
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# HELP %s Manager-owned gauge.\n# TYPE %s gauge\n%s %g\n", n, n, n, gauges[n])
	}
}
