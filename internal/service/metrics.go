package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics is the daemon's metric registry. It is deliberately tiny — a
// handful of counters rendered in the Prometheus text exposition format —
// so the service stays stdlib-only.
type Metrics struct {
	mu sync.Mutex

	jobsSubmitted int64
	jobsFinished  map[string]int64 // by outcome: done, failed, canceled
	rejected      int64

	cacheHits   map[string]int64 // by artifact kind: job, compile, profile
	cacheMisses map[string]int64

	phaseSeconds map[string]float64 // by stage-history label
	jobSeconds   float64

	packetsReplayed int64
	replaySeconds   float64

	// Resilience counters: every degradation path the daemon takes is
	// counted here, so failures are observable rather than silent.
	jobRetries       int64
	workerPanics     int64
	circuitOpened    int64
	circuitRejected  int64
	journalRecovered int64
	journalRequeued  int64
	cacheCorruptions int64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobsFinished: map[string]int64{},
		cacheHits:    map[string]int64{},
		cacheMisses:  map[string]int64{},
		phaseSeconds: map[string]float64{},
	}
}

// JobSubmitted counts an accepted submission.
func (m *Metrics) JobSubmitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted++
}

// QueueRejected counts a submission bounced on a full queue.
func (m *Metrics) QueueRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// JobFinished counts a terminal job and its wall time.
func (m *Metrics) JobFinished(outcome string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsFinished[outcome]++
	m.jobSeconds += seconds
}

// Cache counts one artifact-cache lookup.
func (m *Metrics) Cache(kind string, hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.cacheHits[kind]++
	} else {
		m.cacheMisses[kind]++
	}
}

// PhaseObserved accumulates wall time for one pipeline phase.
func (m *Metrics) PhaseObserved(phase string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.phaseSeconds[phase] += seconds
}

// Replayed accumulates simulator replay volume and time.
func (m *Metrics) Replayed(packets int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.packetsReplayed += int64(packets)
	m.replaySeconds += seconds
}

// JobRetried counts one transient-failure retry of a job.
func (m *Metrics) JobRetried() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobRetries++
}

// WorkerPanicked counts a worker panic converted into a failed job.
func (m *Metrics) WorkerPanicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workerPanics++
}

// CircuitOpened counts a per-digest circuit breaker opening.
func (m *Metrics) CircuitOpened() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.circuitOpened++
}

// CircuitRejected counts a submission bounced off an open circuit.
func (m *Metrics) CircuitRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.circuitRejected++
}

// JournalRecovered counts a job re-submitted from the journal on start.
func (m *Metrics) JournalRecovered() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalRecovered++
}

// JournalRequeued counts a queued job persisted for recovery at drain.
func (m *Metrics) JournalRequeued() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalRequeued++
}

// CacheCorruptionDetected counts a corrupted cached artifact that was
// detected, purged, and recomputed.
func (m *Metrics) CacheCorruptionDetected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheCorruptions++
}

// WritePrometheus renders every metric, plus the caller-supplied gauges
// (queue depth, running jobs, cache entries — values owned by the
// manager), in the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, rows map[string]string, values map[string]float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		var keys []string
		for k := range values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if rows == nil {
				fmt.Fprintf(w, "%s %g\n", name, values[k])
			} else {
				fmt.Fprintf(w, "%s{%s=%q} %g\n", name, rows["label"], k, values[k])
			}
		}
	}
	toF := func(in map[string]int64) map[string]float64 {
		out := make(map[string]float64, len(in))
		for k, v := range in {
			out[k] = float64(v)
		}
		return out
	}

	counter("p2god_jobs_submitted_total", "Jobs accepted into the queue.",
		nil, map[string]float64{"": float64(m.jobsSubmitted)})
	counter("p2god_jobs_finished_total", "Jobs reaching a terminal state, by outcome.",
		map[string]string{"label": "outcome"}, toF(m.jobsFinished))
	counter("p2god_queue_rejected_total", "Submissions bounced with 429 (queue full).",
		nil, map[string]float64{"": float64(m.rejected)})
	counter("p2god_cache_hits_total", "Artifact cache hits, by artifact kind.",
		map[string]string{"label": "kind"}, toF(m.cacheHits))
	counter("p2god_cache_misses_total", "Artifact cache misses (fills), by artifact kind.",
		map[string]string{"label": "kind"}, toF(m.cacheMisses))
	counter("p2god_phase_seconds_total", "Pipeline wall time, by phase.",
		map[string]string{"label": "phase"}, m.phaseSeconds)
	counter("p2god_job_seconds_total", "Total job wall time.",
		nil, map[string]float64{"": m.jobSeconds})
	counter("p2god_replayed_packets_total", "Packets replayed through the behavioral simulator.",
		nil, map[string]float64{"": float64(m.packetsReplayed)})
	counter("p2god_job_retries_total", "Transient job failures retried with backoff.",
		nil, map[string]float64{"": float64(m.jobRetries)})
	counter("p2god_worker_panics_total", "Worker panics recovered into failed jobs.",
		nil, map[string]float64{"": float64(m.workerPanics)})
	counter("p2god_circuit_opened_total", "Per-digest circuit breakers opened after repeated failures.",
		nil, map[string]float64{"": float64(m.circuitOpened)})
	counter("p2god_circuit_rejected_total", "Submissions rejected by an open circuit breaker.",
		nil, map[string]float64{"": float64(m.circuitRejected)})
	counter("p2god_journal_recovered_total", "Jobs recovered from the journal on restart.",
		nil, map[string]float64{"": float64(m.journalRecovered)})
	counter("p2god_journal_requeued_total", "Queued jobs persisted to the journal at drain.",
		nil, map[string]float64{"": float64(m.journalRequeued)})
	counter("p2god_cache_corruption_total", "Corrupted cached artifacts detected and recomputed.",
		nil, map[string]float64{"": float64(m.cacheCorruptions)})

	var hits, misses int64
	for _, v := range m.cacheHits {
		hits += v
	}
	for _, v := range m.cacheMisses {
		misses += v
	}
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# HELP p2god_cache_hit_ratio Overall artifact cache hit ratio.\n# TYPE p2god_cache_hit_ratio gauge\np2god_cache_hit_ratio %g\n", ratio)

	rate := 0.0
	if m.replaySeconds > 0 {
		rate = float64(m.packetsReplayed) / m.replaySeconds
	}
	fmt.Fprintf(w, "# HELP p2god_replay_packets_per_second Average simulator replay throughput.\n# TYPE p2god_replay_packets_per_second gauge\np2god_replay_packets_per_second %g\n", rate)

	var names []string
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, gauges[n])
	}
}
