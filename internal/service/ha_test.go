package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"p2go/internal/cluster"
)

// haClock is a shared synthetic clock for every node in a test replica
// group, so membership and lease TTLs expire exactly when the test says.
type haClock struct {
	mu  sync.Mutex
	now time.Time
}

func newHAClock() *haClock {
	return &haClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *haClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *haClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// haReplica is one in-process replica: a manager joined to the shared
// group directory, with its own journal and its own in-memory cache over
// the shared spill directory — the same sharing shape as N real p2god
// processes pointed at one -cluster-dir.
type haReplica struct {
	node *cluster.Node
	jrnl *Journal
	m    *Manager
}

func newHAReplica(t *testing.T, dir, id string, clk *haClock, workers int) *haReplica {
	t.Helper()
	node, err := cluster.Join(cluster.Config{Dir: dir, ID: id, TTL: time.Second, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	jrnl, err := OpenJournal(node.JournalPath(id))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{
		Workers: workers,
		Journal: jrnl,
		Cache:   NewCache(0, filepath.Join(dir, "spill")),
		Cluster: node,
		// Negative: no background loop; the test drives renewal and
		// takeover deterministically under the synthetic clock.
		ClusterRenewEvery: -1,
	})
	return &haReplica{node: node, jrnl: jrnl, m: m}
}

// TestClusterKillTakeover is the headline chaos proof in miniature:
// replica r1 accepts jobs and is kill -9'd with one running and one
// queued; after its leases age out, r2's takeover scan reclaims both from
// r1's journal and completes them under their original IDs, with the
// takeover attributed in the job status.
func TestClusterKillTakeover(t *testing.T) {
	dir := t.TempDir()
	clk := newHAClock()

	r1 := newHAReplica(t, dir, "r1", clk, 1)
	r1.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		<-ctx.Done() // wedged until the kill
		return nil, ctx.Err()
	}
	r1.m.Start()
	first, err := r1.m.Submit(JobSpec{Workload: "quickstart", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r1.m, first.ID, StateRunning)
	second, err := r1.m.Submit(JobSpec{Workload: "quickstart", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(first.ID, "r1-") {
		t.Fatalf("cluster-mode job ID %q is not replica-prefixed", first.ID)
	}
	r1.m.Kill()

	r2 := newHAReplica(t, dir, "r2", clk, 2)
	r2.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		return []byte(fmt.Sprintf(`{"seed":%d}`, job.Spec.Seed)), nil
	}
	r2.m.Start()
	defer r2.m.Drain(time.Second)

	// r1 is dead but its membership lease has not expired yet: nothing to
	// reclaim, and the scan must not jump the gun.
	if n := r2.m.TakeoverScan(); n != 0 {
		t.Fatalf("scan before lease expiry reclaimed %d job(s)", n)
	}
	clk.Advance(2 * time.Second) // past the 1s TTL: r1 is now provably dead
	if n := r2.m.TakeoverScan(); n != 2 {
		t.Fatalf("takeover scan reclaimed %d job(s), want 2", n)
	}
	// Idempotent: a second scan (or another survivor) finds the jobs
	// already claimed.
	if n := r2.m.TakeoverScan(); n != 0 {
		t.Fatalf("second scan re-reclaimed %d job(s)", n)
	}

	for _, id := range []string{first.ID, second.ID} {
		st := waitTerminal(t, r2.m, id)
		if st.State != StateDone {
			t.Fatalf("reclaimed job %s = %s (%q), want done", id, st.State, st.Error)
		}
		if st.TakenOverFrom != "r1" || st.Replica != "r2" {
			t.Errorf("job %s attribution = replica %q taken_over_from %q, want r2/r1",
				id, st.Replica, st.TakenOverFrom)
		}
	}

	// The takeover markers in r1's journal make its pending set empty: a
	// restarted r1 (or a third replica) recovers nothing.
	left, _, err := ReadPending(r1.node.JournalPath("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("dead peer's journal still lists %d pending job(s) after takeover", len(left))
	}

	var buf bytes.Buffer
	r2.m.Metrics().WritePrometheus(&buf, nil)
	if !strings.Contains(buf.String(), "p2god_cluster_takeover_jobs_total 2") {
		t.Errorf("takeover metric not counted:\n%s", buf.String())
	}
}

// TestStaleLeaseFencing: a paused replica whose lease expired must not
// commit after it resumes. r1 starts a job and stalls mid-compute; its
// lease ages out; r2 reclaims the job at a higher epoch and completes it.
// When r1 wakes up and tries to commit, the epoch check rejects the
// write: its job fails fenced, and the shared cache holds only r2's
// result.
func TestStaleLeaseFencing(t *testing.T) {
	dir := t.TempDir()
	clk := newHAClock()

	started := make(chan struct{})
	gate := make(chan struct{})
	r1 := newHAReplica(t, dir, "r1", clk, 1)
	r1.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		close(started)
		<-gate // "paused": a GC stall, a VM freeze, a partition
		return []byte(`{"who":"r1"}`), nil
	}
	r1.m.Start()
	defer r1.m.Drain(time.Second)

	st, err := r1.m.Submit(JobSpec{Workload: "quickstart", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	<-started // r1's worker holds the epoch-1 lease and is now stalled

	clk.Advance(2 * time.Second) // r1's membership and job lease both expire

	r2 := newHAReplica(t, dir, "r2", clk, 1)
	r2.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		return []byte(`{"who":"r2"}`), nil
	}
	r2.m.Start()
	defer r2.m.Drain(time.Second)
	if n := r2.m.TakeoverScan(); n != 1 {
		t.Fatalf("takeover scan reclaimed %d job(s), want 1", n)
	}
	if fin := waitTerminal(t, r2.m, st.ID); fin.State != StateDone {
		t.Fatalf("reclaimed job on r2 = %s (%q)", fin.State, fin.Error)
	}

	// r1 resumes and tries to publish its stale result.
	close(gate)
	fin := waitTerminal(t, r1.m, st.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Error, "fenced") {
		t.Fatalf("resumed stale job = %s (%q), want failed fenced", fin.State, fin.Error)
	}

	// The shared spill holds r2's result — the fenced write never landed.
	key := "job:" + JobSpec{Workload: "quickstart", Seed: 7}.RouteKey()
	data, err := os.ReadFile(filepath.Join(dir, "spill", strings.ReplaceAll(key, ":", "_")))
	if err != nil {
		t.Fatalf("shared spill missing the job artifact: %v", err)
	}
	if string(data) != `{"who":"r2"}` {
		t.Errorf("shared spill holds %q, want r2's result only", data)
	}

	var buf bytes.Buffer
	r1.m.Metrics().WritePrometheus(&buf, nil)
	if !strings.Contains(buf.String(), "p2god_cluster_fenced_commits_total 1") {
		t.Errorf("fenced commit not counted on r1:\n%s", buf.String())
	}
}

// TestClusterLeaseRenewalKeepsOwnership: a live replica that renews on
// time never loses jobs to a scan, even long after the original TTL.
func TestClusterLeaseRenewalKeepsOwnership(t *testing.T) {
	dir := t.TempDir()
	clk := newHAClock()

	gate := make(chan struct{})
	r1 := newHAReplica(t, dir, "r1", clk, 1)
	r1.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		<-gate
		return []byte(`{}`), nil
	}
	r1.m.Start()
	defer r1.m.Drain(time.Second)
	st, err := r1.m.Submit(JobSpec{Workload: "quickstart", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r1.m, st.ID, StateRunning)

	r2 := newHAReplica(t, dir, "r2", clk, 1)
	r2.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) { return []byte(`{}`), nil }
	r2.m.Start()
	defer r2.m.Drain(time.Second)

	// Three TTLs pass, but r1 keeps renewing (the ticks a live replica's
	// cluster loop would deliver).
	for i := 0; i < 6; i++ {
		clk.Advance(500 * time.Millisecond)
		r1.m.ClusterTick()
		if n := r2.m.TakeoverScan(); n != 0 {
			t.Fatalf("scan stole %d job(s) from a live, renewing replica", n)
		}
	}
	close(gate)
	if fin := waitTerminal(t, r1.m, st.ID); fin.State != StateDone {
		t.Fatalf("job on renewing replica = %s (%q)", fin.State, fin.Error)
	}
	if fin := waitTerminal(t, r1.m, st.ID); fin.TakenOverFrom != "" {
		t.Error("job on live replica marked as taken over")
	}
}

// TestDuplicateDigestServedFromPeerCache: when a replica cannot acquire a
// job's lease because a peer holds it, and the peer's result is already
// in the shared cache, the job is served from there instead of failing.
func TestDuplicateDigestServedFromPeerCache(t *testing.T) {
	dir := t.TempDir()
	clk := newHAClock()

	r1 := newHAReplica(t, dir, "r1", clk, 1)
	spec := JobSpec{Workload: "quickstart", Seed: 5}
	// The "peer" r2 holds the digest lease and has already published its
	// result into the shared cache namespace.
	r2 := newHAReplica(t, dir, "r2", clk, 1)
	key := "job:" + spec.RouteKey()
	if _, err := r2.node.AcquireJob(key); err != nil {
		t.Fatal(err)
	}
	r2.m.Cache().PutBytes(key, []byte(`{"who":"r2"}`))

	r1.m.execFn = func(ctx context.Context, job *Job) ([]byte, error) {
		t.Error("execFn ran despite a held lease and a cached peer result")
		return nil, errors.New("unreachable")
	}
	r1.m.Start()
	defer r1.m.Drain(time.Second)
	st, err := r1.m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, r1.m, st.ID)
	if fin.State != StateDone || !fin.Cached {
		t.Fatalf("job = %s cached=%v (%q), want done from the shared cache", fin.State, fin.Cached, fin.Error)
	}
	if !bytes.Equal(fin.Result, []byte(`{"who":"r2"}`)) {
		t.Errorf("result = %q, want the peer's cached artifact", fin.Result)
	}
}
