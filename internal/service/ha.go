package service

import (
	"time"

	"p2go/internal/cluster"
)

// This file is the manager's replica-group side: the background lease
// loop, reclaiming work from dead peers' journals, and the in-process
// kill -9 used by the chaos harness. The lease mechanics themselves live
// in internal/cluster; here they are wired to the job table.

// Cluster returns the replica-group node, or nil when standalone.
func (m *Manager) Cluster() *cluster.Node { return m.cfg.Cluster }

// clusterLoop renews leases and scans for dead peers until baseCtx is
// canceled. It is the production driver for RenewJobLeases/TakeoverScan;
// chaos tests call those directly under a synthetic clock instead.
func (m *Manager) clusterLoop(every time.Duration) {
	defer m.clusterWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-t.C:
			m.ClusterTick()
		}
	}
}

// ClusterTick runs one iteration of the replica-group maintenance work:
// renew the membership lease, renew every held job lease, then scan for
// dead peers and reclaim their pending jobs.
func (m *Manager) ClusterTick() {
	node := m.cfg.Cluster
	if node == nil {
		return
	}
	m.mu.Lock()
	dead := m.killed
	m.mu.Unlock()
	if dead {
		return
	}
	m.metrics.LeaseRenewed(node.Renew() == nil)
	m.RenewJobLeases()
	m.TakeoverScan()
}

// RenewJobLeases extends the lease of every non-terminal job this
// replica owns. A renewal that fails (injected loss, partition) is
// counted and left for the next tick — the lease keeps aging, and if the
// failures persist past TTL a peer will legitimately take the job over.
func (m *Manager) RenewJobLeases() {
	node := m.cfg.Cluster
	if node == nil {
		return
	}
	m.mu.Lock()
	leases := make([]*cluster.JobLease, 0, len(m.jobs))
	for _, job := range m.jobs {
		if job.lease != nil && !job.state.Terminal() {
			leases = append(leases, job.lease)
		}
	}
	m.mu.Unlock()
	for _, l := range leases {
		m.metrics.LeaseRenewed(node.RenewJob(l) == nil)
	}
}

// TakeoverScan looks for group members whose membership lease has
// expired, reads each dead peer's journal for accepted-but-unfinished
// jobs, and reclaims them: acquire the job's digest lease at a higher
// epoch (fencing the dead holder in case it is merely paused), re-submit
// under the original job ID so clients polling that ID get the result,
// and append a takeover record to the peer's journal so a second scan —
// or the peer restarting — does not reclaim it again.
//
// Re-running a reclaimed job is cheap in proportion to how far the dead
// replica got: single jobs re-serve straight from the shared artifact
// cache if the result landed, and fleet jobs recompute only the device
// rows that never spilled.
//
// It returns how many jobs were reclaimed.
func (m *Manager) TakeoverScan() int {
	node := m.cfg.Cluster
	if node == nil {
		return 0
	}
	members, err := node.Members()
	if err != nil {
		return 0 // partitioned from the group dir; next tick retries
	}
	reclaimed := 0
	for _, mem := range members {
		if mem.ID == node.ID() || node.Alive(mem) {
			continue
		}
		peerJournal := node.JournalPath(mem.ID)
		pending, _, err := ReadPending(peerJournal)
		if err != nil || len(pending) == 0 {
			continue
		}
		for _, p := range pending {
			m.mu.Lock()
			_, known := m.jobs[p.ID]
			m.mu.Unlock()
			if known {
				continue // already ours (e.g. reclaimed on a prior scan)
			}
			spec := p.Spec
			if err := spec.normalize(); err != nil {
				continue
			}
			lease, err := node.AcquireJob("job:" + spec.digest())
			if err != nil {
				// Held: either the peer is alive after all (membership
				// lease lagging) or another survivor beat us to it.
				m.metrics.LeaseAcquireFailed()
				continue
			}
			if _, err := m.submit(spec, p.ID, mem.ID, lease); err != nil {
				// Queue full or draining; give the lease back so another
				// replica (or a later scan) can claim the job.
				_ = node.ReleaseJob(lease)
				continue
			}
			// Mark the peer's journal only after the job is durably ours
			// (accepted record in our journal): a crash between the two
			// leaves the job claimable, never lost.
			_ = AppendTakeover(peerJournal, p.ID, node.ID())
			m.metrics.TakeoverJob()
			reclaimed++
		}
	}
	return reclaimed
}

// Kill simulates kill -9 for in-process chaos tests: the journal file is
// closed (subsequent appends vanish, like writes from a dead process),
// every running job's context is canceled, the queue is discarded, and —
// critically — no leases are released and no terminal journal records
// are written. Peers see the replica's membership lease expire and
// reclaim its pending jobs, exactly as with a real dead process.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.killed || m.draining {
		m.mu.Unlock()
		return
	}
	m.killed = true
	m.draining = true // reject submissions, guard double queue-close
	m.mu.Unlock()
	// Order matters: close the journal before canceling contexts, so the
	// cancellation fallout (failed/canceled outcomes) cannot reach disk.
	_ = m.cfg.Journal.Close()
	m.baseCancel()
	close(m.queue)
	m.clusterWG.Wait()
	m.wg.Wait()
}
