package programs_test

import (
	"testing"

	"p2go/internal/hashes"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/tofino"
)

func compile(t *testing.T, src string) *tofino.Result {
	t.Helper()
	res, err := tofino.CompileSource(src, tofino.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInitialStageCounts pins the calibrated initial mappings that anchor
// every experiment.
func TestInitialStageCounts(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		stages int
	}{
		{"ex1", programs.Ex1, 8},
		{"natgre", programs.NATGRE, 4},
		{"sourceguard", programs.Sourceguard, 5},
		{"failure", programs.FailureDetection, 4},
		{"stress", programs.Stress(), programs.StressChainLength},
		{"quickstart", programs.Quickstart, 2},
	}
	for _, c := range cases {
		res := compile(t, c.src)
		if res.Mapping.StagesUsed != c.stages {
			t.Errorf("%s: %d stages, want %d\n%s", c.name, res.Mapping.StagesUsed, c.stages, res.Mapping.Render())
		}
	}
}

// TestSourceguardCalibration verifies the arithmetic behind the 8.4%
// figure against the memory model, so a model change cannot silently
// invalidate the experiment.
func TestSourceguardCalibration(t *testing.T) {
	res := compile(t, programs.Sourceguard)
	tgt := tofino.DefaultTarget()
	acl := tofino.TableCost(res.IR, res.IR.Tables["ingress_acl"])
	bf1 := tofino.TableCost(res.IR, res.IR.Tables["sg_bf1"])
	// bf_r1 fills a stage exactly.
	if bf1.SRAMBytes != tgt.StageSRAMBytes {
		t.Errorf("sg_bf1 SRAM = %d, want exactly %d", bf1.SRAMBytes, tgt.StageSRAMBytes)
	}
	// The reduced size is the largest that shares a stage with the ACL.
	maxCells := tgt.StageSRAMBytes - acl.SRAMBytes - (bf1.SRAMBytes - programs.SourceguardBFCells)
	if maxCells != programs.SourceguardBFReducedCells {
		t.Errorf("max co-located cells = %d, want %d", maxCells, programs.SourceguardBFReducedCells)
	}
	reduction := float64(programs.SourceguardBFCells-programs.SourceguardBFReducedCells) /
		float64(programs.SourceguardBFCells)
	if reduction < 0.0835 || reduction > 0.0845 {
		t.Errorf("reduction = %.4f, want ~0.084", reduction)
	}
}

// TestEx1ReducedSketchCalibration verifies the Phase 3 binary-search
// landing spot for Sketch_1.
func TestEx1ReducedSketchCalibration(t *testing.T) {
	res := compile(t, programs.Ex1)
	tgt := tofino.DefaultTarget()
	au := tofino.TableCost(res.IR, res.IR.Tables["ACL_UDP"])
	ad := tofino.TableCost(res.IR, res.IR.Tables["ACL_DHCP"])
	s1 := tofino.TableCost(res.IR, res.IR.Tables["Sketch_1"])
	overhead := s1.SRAMBytes - s1.RegisterBytes
	free := tgt.StageSRAMBytes - au.SRAMBytes - ad.SRAMBytes - overhead
	if free/4 != programs.Ex1ReducedSketchCells {
		t.Errorf("max co-located sketch cells = %d, want %d", free/4, programs.Ex1ReducedSketchCells)
	}
}

// TestEngineeredCollisionArithmetic: the identity-hash wraparound that
// makes the reduced Sketch_1 collide.
func TestEngineeredCollisionArithmetic(t *testing.T) {
	heavyLow := uint64(1000)
	engLow := heavyLow + uint64(programs.Ex1ReducedSketchCells)
	if engLow >= 1<<16 {
		t.Fatal("engineered low-16 bits exceed the hash space")
	}
	if heavyLow%uint64(programs.Ex1SketchCells) == engLow%uint64(programs.Ex1SketchCells) {
		t.Error("flows must NOT collide at the original row size")
	}
	if heavyLow%uint64(programs.Ex1ReducedSketchCells) != engLow%uint64(programs.Ex1ReducedSketchCells) {
		t.Error("flows must collide at the reduced row size")
	}
}

// TestAllProgramsRoundTrip: print -> parse -> print is a fixed point for
// every example program.
func TestAllProgramsRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"ex1":         programs.Ex1,
		"natgre":      programs.NATGRE,
		"sourceguard": programs.Sourceguard,
		"failure":     programs.FailureDetection,
		"stress":      programs.Stress(),
		"quickstart":  programs.Quickstart,
	} {
		ast, err := p4.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		printed := p4.Print(ast)
		ast2, err := p4.Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if p4.Print(ast2) != printed {
			t.Errorf("%s: print is not a fixed point", name)
		}
	}
}

// TestEx1SketchHashesDiffer: the two CMS rows must use different hash
// functions (identity over src vs crc16 over the flow).
func TestEx1SketchHashesDiffer(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	h1 := ast.Calculation("cms_h1")
	h2 := ast.Calculation("cms_h2")
	if h1.Algorithm == h2.Algorithm {
		t.Error("CMS rows share a hash algorithm")
	}
	if _, err := hashes.FromName(h1.Algorithm); err != nil {
		t.Error(err)
	}
}

// TestRegistersOwnedBySingleTables: the RMT constraint holds in every
// example program.
func TestRegistersOwnedBySingleTables(t *testing.T) {
	for name, src := range map[string]string{
		"ex1":         programs.Ex1,
		"sourceguard": programs.Sourceguard,
		"failure":     programs.FailureDetection,
	} {
		ast := p4.MustParse(src)
		if err := p4.Check(ast); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := ir.Build(ast); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
