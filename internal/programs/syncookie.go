package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// SYN-cookie calibration constants. With the default target (256 KiB SRAM
// per stage, 1 byte per Bloom cell):
//
//   - at the default 262080 cells the proven-clients filter fills a stage
//     on its own (262080 + 64 = 262144 bytes);
//   - at 131072 cells or below it co-locates with the port ACL and the
//     SYN responder in stage 1, saving a stage — the point the tune pass
//     finds, bounded by the cookie_check false-positive floor.
const (
	// SynCookieBFCells is the default proven-clients Bloom filter size.
	SynCookieBFCells = 262080
)

// SynCookie is a SYN-cookie DDoS mitigation front end: TCP SYNs are
// answered by a cookie responder (modeled as a redirect to port 254)
// without consuming server state, and non-SYN packets consult a
// proven-clients Bloom filter. Sources not yet in the filter go through
// cookie validation (cookie_check) before being learned; sources already
// present take the fast path straight to forwarding.
//
// The filter is the memory/accuracy knob: fewer cells mean more false
// positives — unvalidated sources that skip cookie_check — so shrinking
// it trades admission accuracy for a pipeline stage. cookie_check hits
// are the accuracy signal for the tune pass.
const SynCookie = `
// SYN-cookie DDoS mitigation with a tunable proven-clients filter.
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}
header_type sc_meta_t {
    fields {
        idx : 32;
        proven : 8;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
metadata sc_meta_t sc_meta;

// Knob for the tune pass: the proven-clients Bloom filter size.
@tunable(sc_bf_cells, 16384, 262080, 262080);

register proven_bf {
    width : 8;
    instance_count : sc_bf_cells;
}

field_list sc_src_fl {
    ipv4.srcAddr;
}
field_list_calculation sc_hash {
    input { sc_src_fl; }
    algorithm : crc32;
    output_width : 32;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        6 : parse_tcp;
        default : ingress;
    }
}
parser parse_tcp {
    extract(tcp);
    return ingress;
}

action port_drop() {
    drop();
}
action cookie_reply() {
    modify_field(standard_metadata.egress_spec, 254);
}
action proven_check_set() {
    modify_field_with_hash_based_offset(sc_meta.idx, 0, sc_hash, sc_bf_cells);
    register_read(sc_meta.proven, proven_bf, sc_meta.idx);
    register_write(proven_bf, sc_meta.idx, 1);
}
action cookie_validate() {
    modify_field(standard_metadata.egress_spec, 254);
}
action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action fwd_miss_drop() {
    drop();
}

table port_acl {
    reads {
        standard_metadata.ingress_port : exact;
    }
    actions {
        port_drop;
    }
    size : 32;
}
table syn_cookie_reply {
    actions {
        cookie_reply;
    }
    default_action : cookie_reply;
}
table sc_check {
    actions {
        proven_check_set;
    }
    default_action : proven_check_set;
}
table cookie_check {
    actions {
        cookie_validate;
    }
    default_action : cookie_validate;
}
table ipv4_fwd {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        fwd_miss_drop;
    }
    size : 512;
    default_action : fwd_miss_drop;
}

control ingress {
    if (valid(ipv4)) {
        apply(port_acl);
        if (valid(tcp)) {
            if (tcp.flags == 2) {
                apply(syn_cookie_reply);
            } else {
                apply(sc_check);
                if (sc_meta.proven == 1) {
                    apply(ipv4_fwd);
                } else {
                    apply(cookie_check);
                }
            }
        }
    }
}
`

// SynCookieRulesText: quarantined ingress ports and the protected route.
const SynCookieRulesText = `
# Drop traffic arriving on the quarantined port.
table_add port_acl port_drop 31

# Protected service route.
table_add ipv4_fwd set_nhop 10.0.0.0/8 => 2
`

// SynCookieConfig parses the SYN-cookie runtime configuration.
func SynCookieConfig() *rt.Config {
	cfg, err := rt.Parse(SynCookieRulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: SynCookieRulesText does not parse: %v", err))
	}
	return cfg
}
