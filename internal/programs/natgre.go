package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// NATGRE models the paper's first evaluation example: the NAT and GRE
// (tunneling) features of switch.p4, made standalone. The features are
// dependent — both rewrite the IPv4 addresses (tunneled packets might need
// address translation after reaching their destination) — but the traffic
// trace contains no packet using both features simultaneously, so P2GO
// removes the dependency and the compiler places both features in the same
// stage: 4 stages -> 3 (Table 3, row 1).
//
// GRE encapsulation is modeled as an in-place rewrite (protocol 47 + outer
// addresses): our header model cannot insert headers mid-packet, and only
// the field-write footprint matters to the dependency analysis.
const NATGRE = `
// NAT & GRE: standalone switch.p4 features (Table 3, row 1).
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;

field_list ipv4_checksum_list {
    ipv4.version;
    ipv4.ihl;
    ipv4.diffserv;
    ipv4.totalLen;
    ipv4.identification;
    ipv4.flags;
    ipv4.fragOffset;
    ipv4.ttl;
    ipv4.protocol;
    ipv4.srcAddr;
    ipv4.dstAddr;
}
field_list_calculation ipv4_checksum {
    input { ipv4_checksum_list; }
    algorithm : csum16;
    output_width : 16;
}
calculated_field ipv4.hdrChecksum {
    update ipv4_checksum;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}

action nat_translate(src, dst) {
    modify_field(ipv4.srcAddr, src);
    modify_field(ipv4.dstAddr, dst);
}
action gre_encap(outer_src, outer_dst) {
    modify_field(ipv4.protocol, 47);
    modify_field(ipv4.srcAddr, outer_src);
    modify_field(ipv4.dstAddr, outer_dst);
}
action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action fwd_miss_drop() {
    drop();
}
action egress_drop() {
    drop();
}

table nat {
    reads {
        ipv4.dstAddr : exact;
    }
    actions {
        nat_translate;
    }
    size : 1024;
}
table gre {
    reads {
        ipv4.dstAddr : exact;
    }
    actions {
        gre_encap;
    }
    size : 1024;
}
table ipv4_fwd {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        fwd_miss_drop;
    }
    size : 2048;
    default_action : fwd_miss_drop;
}
table egress_acl {
    reads {
        standard_metadata.egress_spec : exact;
    }
    actions {
        egress_drop;
    }
    size : 64;
}

control ingress {
    if (valid(ipv4)) {
        apply(nat);
        apply(gre);
        apply(ipv4_fwd);
        apply(egress_acl);
    }
}
`

// NATGRERulesText configures the NAT & GRE example: two NATted services,
// two GRE tunnel endpoints, routes, and an egress port quarantine.
const NATGRERulesText = `
# DNAT: public service addresses rewritten to internal servers.
table_add nat nat_translate 198.51.100.10 => 10.3.0.10 10.3.1.10
table_add nat nat_translate 198.51.100.11 => 10.3.0.11 10.3.1.11

# GRE: remote branch prefixes tunneled to the branch gateway.
table_add gre gre_encap 10.5.0.1 => 10.0.0.1 192.0.2.1
table_add gre gre_encap 10.5.0.2 => 10.0.0.1 192.0.2.2

# Routes.
table_add ipv4_fwd set_nhop 10.0.0.0/8 => 2
table_add ipv4_fwd set_nhop 192.0.2.0/24 => 7

# Quarantined egress port.
table_add egress_acl egress_drop 9
`

// NATGREConfig parses the NAT & GRE runtime configuration.
func NATGREConfig() *rt.Config {
	cfg, err := rt.Parse(NATGRERulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: NATGRERulesText does not parse: %v", err))
	}
	return cfg
}
