package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// Failure-detection calibration constants (Table 3, row 3).
const (
	// FailureBFCells sizes the retransmission Bloom filter so it shares
	// stage 1 with the forwarding table (240000 + 64 + fwd's 8 KiB fits
	// the 256 KiB stage).
	FailureBFCells = 240000
	// FailureCMSCells sizes each Count-Min Sketch row at 250 KiB: a row
	// fills a stage on its own.
	FailureCMSCells = 64000
	// FailureAlarmThreshold is the per-prefix retransmission count that
	// triggers a controller notification.
	FailureAlarmThreshold = 32
)

// FailureDetection is the paper's third evaluation example, inspired by
// Blink: the switch notifies the controller when prefixes see more TCP
// retransmissions than a threshold. A Bloom filter over the 5-tuple+seq
// detects retransmitted packets, a two-row Count-Min Sketch counts
// retransmissions per destination, and FailureAlarm pushes notifications
// to the controller (modeled as a redirect to the CPU port).
//
// Profiling shows only a few packets use the CMS and even fewer match the
// alarm, so P2GO offloads the CMS branch to the controller, freeing two
// stages: 4 -> 2 (Table 3, row 3).
//
// The sketch sizes are declared @tunable: the tune pass shrinks cms_cells
// until the two CMS rows co-locate in one stage (4 -> 3 without
// offloading), with FailureAlarm hits as the accuracy signal.
const FailureDetection = `
// Failure detection (Blink-inspired; Table 3, row 3).
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}
header_type fd_meta_t {
    fields {
        bf_idx : 32;
        seen : 8;
        idx1 : 16;
        idx2 : 16;
        count1 : 32;
        count2 : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
metadata fd_meta_t fd_meta;

// Knobs for the tune pass: the Bloom filter and each CMS row default to
// the paper's calibration; smaller bindings trade hash collisions (false
// retransmissions, over-counted prefixes) for pipeline stages.
@tunable(bf_cells, 30000, 240000, 240000);
@tunable(cms_cells, 8000, 64000, 64000);

register retrans_bf {
    width : 8;
    instance_count : bf_cells;
}
register retrans_cms1 {
    width : 32;
    instance_count : cms_cells;
}
register retrans_cms2 {
    width : 32;
    instance_count : cms_cells;
}

field_list flow_sig_fl {
    ipv4.srcAddr;
    ipv4.dstAddr;
    tcp.srcPort;
    tcp.dstPort;
    tcp.seqNo;
}
field_list dst_fl {
    ipv4.dstAddr;
}
field_list_calculation bf_hash {
    input { flow_sig_fl; }
    algorithm : crc32;
    output_width : 32;
}
field_list_calculation cms_hash1 {
    input { dst_fl; }
    algorithm : crc16;
    output_width : 16;
}
field_list_calculation cms_hash2 {
    input { dst_fl; }
    algorithm : crc32;
    output_width : 16;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        6 : parse_tcp;
        default : ingress;
    }
}
parser parse_tcp {
    extract(tcp);
    return ingress;
}

action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action fwd_miss_drop() {
    drop();
}
action bf_check_set() {
    modify_field_with_hash_based_offset(fd_meta.bf_idx, 0, bf_hash, bf_cells);
    register_read(fd_meta.seen, retrans_bf, fd_meta.bf_idx);
    register_write(retrans_bf, fd_meta.bf_idx, 1);
}
action cms1_count() {
    modify_field_with_hash_based_offset(fd_meta.idx1, 0, cms_hash1, cms_cells);
    register_read(fd_meta.count1, retrans_cms1, fd_meta.idx1);
    add_to_field(fd_meta.count1, 1);
    register_write(retrans_cms1, fd_meta.idx1, fd_meta.count1);
}
action cms2_count() {
    modify_field_with_hash_based_offset(fd_meta.idx2, 0, cms_hash2, cms_cells);
    register_read(fd_meta.count2, retrans_cms2, fd_meta.idx2);
    add_to_field(fd_meta.count2, 1);
    register_write(retrans_cms2, fd_meta.idx2, fd_meta.count2);
}
action notify_controller() {
    modify_field(standard_metadata.egress_spec, 255);
}

table fd_fwd {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        fwd_miss_drop;
    }
    size : 512;
    default_action : fwd_miss_drop;
}
table retrans_detect {
    actions {
        bf_check_set;
    }
    default_action : bf_check_set;
}
table retrans_cms_1 {
    actions {
        cms1_count;
    }
    default_action : cms1_count;
}
table retrans_cms_2 {
    actions {
        cms2_count;
    }
    default_action : cms2_count;
}
table FailureAlarm {
    actions {
        notify_controller;
    }
    default_action : notify_controller;
}

control ingress {
    if (valid(ipv4)) {
        apply(fd_fwd);
        if (valid(tcp)) {
            apply(retrans_detect);
            if (fd_meta.seen == 1) {
                apply(retrans_cms_1);
                apply(retrans_cms_2);
                if (fd_meta.count1 >= 32 and fd_meta.count2 >= 32) {
                    apply(FailureAlarm);
                }
            }
        }
    }
}
`

// FailureRulesText: routes only — the detection tables are default-action
// driven.
const FailureRulesText = `
table_add fd_fwd set_nhop 10.0.0.0/8 => 2
table_add fd_fwd set_nhop 198.51.100.0/24 => 6
`

// FailureConfig parses the failure-detection runtime configuration.
func FailureConfig() *rt.Config {
	cfg, err := rt.Parse(FailureRulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: FailureRulesText does not parse: %v", err))
	}
	return cfg
}
