package programs

// L2L3ACL calibration constants (tofino memory model; see DESIGN.md §3).
const (
	// L2L3ACLL2Size is the small L2 port table (64 x 10 B = 640 B).
	L2L3ACLL2Size = 64
	// L2L3ACLL3Size keeps the LPM routes within one TCAM stage: 1024
	// entries x 4 key bytes x 2 (key+mask) = 8 KiB of the 64 KiB budget.
	L2L3ACLL3Size = 1024
	// L2L3ACLACLSize sizes each port ACL at 20480 entries x 6 B = 120 KiB,
	// so the two ACLs together fill most of a 256 KiB stage: they can
	// co-locate with each other (240 KiB) but with nothing else.
	L2L3ACLACLSize = 20480
	// L2L3ACLFlowSize sizes the accounting table at 24576 entries x 10 B =
	// 240 KiB: it shares a stage with the 64-byte To_Ctl table but not
	// with either ACL, so its placement is what the phase ordering fights
	// over.
	L2L3ACLFlowSize = 24576
	// L2L3ACLBlockedDstPort and L2L3ACLBlockedSrcPort are the two ACL
	// rules; the example traces never put both on one packet, which is
	// the non-manifesting dependency Phase 2 exploits.
	L2L3ACLBlockedDstPort = 6666
	L2L3ACLBlockedSrcPort = 7777
)

// L2L3ACL is the §2.2 phase-ordering workload: an L2 port table, an L3
// LPM router, two independent port ACLs, and a per-nexthop accounting
// table that reads metadata the router writes. Every table except the
// ACLs is hot, and the monotone stage allocator has to place the
// accounting table after both ACLs, so the pipeline initially spans five
// stages. Offloading first moves both ACLs out in one step (two stages
// saved); removing the ACL1→ACL2 dependency first claims one of those
// stages, leaving the offload only one.
const L2L3ACL = `
// L2/L3 router with two port ACLs and flow accounting (phase-ordering ablation).
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}
header_type l2l3_meta_t {
    fields {
        nhop : 16;
        flow_class : 16;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header udp_t udp;
metadata l2l3_meta_t l2l3_meta;

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        17 : parse_udp;
        default : ingress;
    }
}
parser parse_udp {
    extract(udp);
    return ingress;
}

action set_l2(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action set_nhop(nhop, port) {
    modify_field(l2l3_meta.nhop, nhop);
    modify_field(standard_metadata.egress_spec, port);
}
action acl1_drop() {
    drop();
}
action acl2_drop() {
    drop();
}
action count_flow(class) {
    modify_field(l2l3_meta.flow_class, class);
}

table L2 {
    reads {
        standard_metadata.ingress_port : exact;
    }
    actions {
        set_l2;
    }
    size : 64;
}
table L3 {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
    }
    size : 1024;
}
table ACL1 {
    reads {
        udp.dstPort : exact;
    }
    actions {
        acl1_drop;
    }
    size : 20480;
}
table ACL2 {
    reads {
        udp.srcPort : exact;
    }
    actions {
        acl2_drop;
    }
    size : 20480;
}
table Flow_Count {
    reads {
        l2l3_meta.nhop : exact;
    }
    actions {
        count_flow;
    }
    size : 24576;
}

control ingress {
    apply(L2);
    if (valid(ipv4)) {
        apply(L3);
    }
    if (valid(udp)) {
        apply(ACL1);
        apply(ACL2);
    }
    apply(Flow_Count);
}
`
