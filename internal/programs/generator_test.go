package programs

import (
	"bytes"
	"testing"
)

// TestGeneratorDeterminism: the generator is a pure function of its seed —
// same seed, same source, rules, and packet bytes — so a failing sweep
// seed is a complete reproducer on any machine.
func TestGeneratorDeterminism(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if a.Source != b.Source {
		t.Fatal("same seed produced different source")
	}
	if a.Rules != b.Rules {
		t.Fatal("same seed produced different rules")
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("same seed produced %d vs %d packets", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i].Port != b.Packets[i].Port || !bytes.Equal(a.Packets[i].Data, b.Packets[i].Data) {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
	if c := Generate(8); c.Source == a.Source && len(c.Packets) == len(a.Packets) {
		t.Error("distinct seeds produced identical programs and trace sizes")
	}
}

// TestGeneratorShapeCoverage: across a modest seed range the generator
// exercises every structural dimension — ACL chains, the sketch, and the
// @tunable variant — so the differential sweep actually covers the
// optimizer surface it claims to.
func TestGeneratorShapeCoverage(t *testing.T) {
	var sawACL, sawSketch, sawTunable, sawPlain bool
	for seed := int64(0); seed < 32; seed++ {
		g := Generate(seed)
		hasSketch := contains(g.Source, "gen_sketch")
		hasACL := contains(g.Source, "gen_acl_0")
		hasTunable := contains(g.Source, "@tunable")
		sawACL = sawACL || hasACL
		sawSketch = sawSketch || hasSketch
		sawTunable = sawTunable || hasTunable
		sawPlain = sawPlain || (!hasSketch && !hasACL)
		if len(g.Packets) < 2000 {
			t.Fatalf("seed %d: only %d packets", seed, len(g.Packets))
		}
	}
	if !sawACL || !sawSketch || !sawTunable {
		t.Errorf("32 seeds missed a dimension: acl=%v sketch=%v tunable=%v", sawACL, sawSketch, sawTunable)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
