// Package programs embeds the P4_14 programs, runtime configurations, and
// traffic calibration constants for every example in the paper: the
// Example 1 enterprise firewall, NAT & GRE, Sourceguard, and Failure
// Detection, plus a quickstart router and an oversized stress program.
//
// Table and register sizes are calibrated against the tofino.DefaultTarget
// memory model so that each program's initial stage mapping matches the
// paper (DESIGN.md §3): Example 1 occupies 8 stages with IPv4 spanning two.
package programs

// Ex1 calibration constants (see DESIGN.md §3 and the tofino memory model).
const (
	// Ex1IPv4Size makes the IPv4 LPM table span two stages: 10240 entries
	// x 4 key bytes x 2 (key+mask) = 80 KiB of TCAM > the 64 KiB stage
	// budget.
	Ex1IPv4Size = 10240
	// Ex1IPv4ReducedSize is the largest IPv4 size that fits one stage
	// (64 KiB / 8 B per entry); Phase 3's binary search must land here.
	Ex1IPv4ReducedSize = 8192
	// Ex1SketchCells sizes each Count-Min Sketch row: 64000 cells x 4 B =
	// 250 KiB, which fits a 256 KiB stage alone but not together with
	// anything else.
	Ex1SketchCells = 64000
	// Ex1ReducedSketchCells is the largest Sketch_1 row that co-locates
	// with the two ACLs after Phase 2 (237568 free bytes, minus the
	// 64-byte table minimum, over 4 bytes per cell); Phase 3's binary
	// search must land here.
	Ex1ReducedSketchCells = 59376
	// Ex1ACLSize sizes each ACL at 2048 entries x 6 B = 12 KiB so that a
	// full sketch row cannot share a stage with an ACL.
	Ex1ACLSize = 2048
	// Ex1DNSThreshold is the query-count threshold of the DNS limiter.
	Ex1DNSThreshold = 128
	// CPUPort is the egress port that redirects a packet to the
	// controller (To_Ctl's target and the failure-detection alarms').
	CPUPort = 255
	// DropPort is the egress_spec value the drop() primitive installs.
	DropPort = 511
)

// Ex1 is the paper's Example 1: an enterprise IP router turned stateful
// firewall, with an IPv4 LPM table, a UDP port ACL, a DHCP snooping ACL,
// and a DNS query limiter built from a two-row Count-Min Sketch.
const Ex1 = `
// Example 1: enterprise firewall (paper Ex. 1).
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}
header_type dhcp_t {
    fields {
        op : 8;
        htype : 8;
        hlen : 8;
        hops : 8;
        xid : 32;
    }
}
header_type dns_t {
    fields {
        id : 16;
        flags : 16;
        qdcount : 16;
        ancount : 16;
        nscount : 16;
        arcount : 16;
    }
}
header_type fw_meta_t {
    fields {
        idx1 : 16;
        idx2 : 16;
        count1 : 32;
        count2 : 32;
        sketch_count : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header udp_t udp;
header dhcp_t dhcp;
header dns_t dns;
metadata fw_meta_t fw_meta;

register cms_r1 {
    width : 32;
    instance_count : 64000;
}
register cms_r2 {
    width : 32;
    instance_count : 64000;
}

field_list cms_src_fl {
    ipv4.srcAddr;
}
field_list cms_flow_fl {
    ipv4.srcAddr;
    ipv4.dstAddr;
}
field_list_calculation cms_h1 {
    input { cms_src_fl; }
    algorithm : identity;
    output_width : 16;
}
field_list_calculation cms_h2 {
    input { cms_flow_fl; }
    algorithm : crc16;
    output_width : 16;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        17 : parse_udp;
        default : ingress;
    }
}
parser parse_udp {
    extract(udp);
    return select(udp.dstPort) {
        67 : parse_dhcp;
        68 : parse_dhcp;
        53 : parse_dns;
        default : ingress;
    }
}
parser parse_dhcp {
    extract(dhcp);
    return ingress;
}
parser parse_dns {
    extract(dns);
    return ingress;
}

action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action ipv4_miss_drop() {
    drop();
}
action acl_udp_drop() {
    drop();
}
action acl_dhcp_drop() {
    drop();
}
action sketch1_count() {
    modify_field_with_hash_based_offset(fw_meta.idx1, 0, cms_h1, 64000);
    register_read(fw_meta.count1, cms_r1, fw_meta.idx1);
    add_to_field(fw_meta.count1, 1);
    register_write(cms_r1, fw_meta.idx1, fw_meta.count1);
}
action sketch2_count() {
    modify_field_with_hash_based_offset(fw_meta.idx2, 0, cms_h2, 64000);
    register_read(fw_meta.count2, cms_r2, fw_meta.idx2);
    add_to_field(fw_meta.count2, 1);
    register_write(cms_r2, fw_meta.idx2, fw_meta.count2);
}
action sketch_take_min() {
    min(fw_meta.sketch_count, fw_meta.count1, fw_meta.count2);
}
action dns_limit_drop() {
    drop();
}

table IPv4 {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        ipv4_miss_drop;
    }
    size : 10240;
    default_action : ipv4_miss_drop;
}
table ACL_UDP {
    reads {
        udp.dstPort : exact;
    }
    actions {
        acl_udp_drop;
    }
    size : 2048;
}
table ACL_DHCP {
    reads {
        standard_metadata.ingress_port : exact;
    }
    actions {
        acl_dhcp_drop;
    }
    size : 2048;
}
table Sketch_1 {
    actions {
        sketch1_count;
    }
    default_action : sketch1_count;
}
table Sketch_2 {
    actions {
        sketch2_count;
    }
    default_action : sketch2_count;
}
table Sketch_Min {
    actions {
        sketch_take_min;
    }
    default_action : sketch_take_min;
}
table DNS_Drop {
    actions {
        dns_limit_drop;
    }
    default_action : dns_limit_drop;
}

control ingress {
    if (valid(ipv4)) {
        apply(IPv4);
        if (valid(udp)) {
            apply(ACL_UDP);
        }
        if (valid(dhcp)) {
            apply(ACL_DHCP);
        }
        if (valid(dns)) {
            apply(Sketch_1);
            apply(Sketch_2);
            apply(Sketch_Min);
            if (fw_meta.sketch_count >= 128) {
                apply(DNS_Drop);
            }
        }
    }
}
`
