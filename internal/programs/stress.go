package programs

import (
	"fmt"
	"strings"

	"p2go/internal/rt"
)

// StressChainLength is the number of chained ACL tables in the
// does-not-fit stress program: longer than the 12-stage target.
const StressChainLength = 14

// Stress returns a program that does NOT fit the default 12-stage target:
// a chain of StressChainLength ACL tables whose drop actions all write the
// egress spec, creating a full write-after-write dependency chain (one
// table per stage). Profiling shows every packet matches at most one ACL,
// so P2GO's Phase 2 folds the chain into nested miss arms until the whole
// program occupies a single stage — demonstrating §2.2's "what if the
// program does not fit?": the compiler produces the dependency graph and a
// simulated mapping regardless of the resource overrun, so Phase 2 runs
// before the program ever fits.
func Stress() string {
	var b strings.Builder
	b.WriteString(`
// Does-not-fit stress program: a 14-deep ACL chain.
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header udp_t udp;

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        17 : parse_udp;
        default : ingress;
    }
}
parser parse_udp {
    extract(udp);
    return ingress;
}
`)
	for i := 1; i <= StressChainLength; i++ {
		fmt.Fprintf(&b, `
action drop_%d() {
    drop();
}
table acl_%d {
    reads {
        udp.dstPort : exact;
    }
    actions {
        drop_%d;
    }
    size : 64;
}
`, i, i, i)
	}
	b.WriteString("\ncontrol ingress {\n    if (valid(udp)) {\n")
	for i := 1; i <= StressChainLength; i++ {
		fmt.Fprintf(&b, "        apply(acl_%d);\n", i)
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

// StressConfig blocks one UDP port per ACL table: port 7000+i in acl_i.
func StressConfig() *rt.Config {
	var b strings.Builder
	for i := 1; i <= StressChainLength; i++ {
		fmt.Fprintf(&b, "table_add acl_%d drop_%d %d\n", i, i, 7000+i)
	}
	cfg, err := rt.Parse(b.String())
	if err != nil {
		panic(fmt.Sprintf("programs: stress rules do not parse: %v", err))
	}
	return cfg
}

// Quickstart is a minimal L3 router used by the quickstart example and the
// documentation: an LPM route table plus a small port ACL.
const Quickstart = `
// Quickstart: a minimal L3 router.
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;

counter route_stats {
    type : packets;
    instance_count : 16;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}

action route(port) {
    modify_field(standard_metadata.egress_spec, port);
    subtract_from_field(ipv4.ttl, 1);
    count(route_stats, port);
}
action no_route() {
    drop();
}
action blocked() {
    drop();
}

table routes {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        route;
        no_route;
    }
    size : 256;
    default_action : no_route;
}
table port_acl {
    reads {
        standard_metadata.ingress_port : exact;
    }
    actions {
        blocked;
    }
    size : 16;
}

control ingress {
    if (valid(ipv4)) {
        apply(port_acl);
        apply(routes);
    }
}
`

// QuickstartRulesText routes two prefixes and blocks one ingress port.
const QuickstartRulesText = `
table_add routes route 10.0.0.0/8 => 1
table_add routes route 192.168.0.0/16 => 2
table_add port_acl blocked 4
`

// QuickstartConfig parses the quickstart runtime configuration.
func QuickstartConfig() *rt.Config {
	cfg, err := rt.Parse(QuickstartRulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: QuickstartRulesText does not parse: %v", err))
	}
	return cfg
}
