package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// Maglev calibration constants. With the default target (256 KiB SRAM per
// stage), the two connection-table registers cost 3 bytes per cell
// (16-bit signature + 8-bit backend), so:
//
//   - at the default 98304 cells the signature register (192 KiB) and the
//     backend register (96 KiB) cannot share a stage: 5-stage pipeline;
//   - at 65536 cells or below they co-locate (3 x 65536 = 192 KiB),
//     saving a stage — the tune pass finds this point, bounded by the
//     rehash-rate accuracy floor.
const (
	// MaglevConnCells is the default connection-table size (cells).
	MaglevConnCells = 98304
	// MaglevBackends is the number of load-balanced backends; backend
	// egress ports are 2..2+MaglevBackends-1.
	MaglevBackends = 8
)

// MaglevVIPText is the virtual IP the trace targets, in the dotted form
// the rules file uses.
const MaglevVIPText = "203.0.113.100"

// Maglev is a Maglev-style L4 load balancer: a consistent ring hash picks
// a backend for new connections, and a per-connection table (flow
// signature + chosen backend, indexed by a hash of the 4-tuple) keeps
// established connections on their backend across backend-pool changes.
// The connection table is the classic memory/accuracy knob: fewer cells
// mean more 4-tuple index collisions, each of which evicts another
// connection's slot and shows up as a maglev_rehash table hit (the
// connection falls back to the ring hash). The tune pass shrinks
// conn_cells until the signature and backend registers co-locate in one
// stage, with maglev_rehash hits as the accuracy signal.
const Maglev = `
// Maglev-style L4 load balancer with a tunable connection table.
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}
header_type lb_meta_t {
    fields {
        is_vip : 8;
        idx : 32;
        sig : 16;
        stored_sig : 16;
        stored_backend : 8;
        ring_backend : 8;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
metadata lb_meta_t lb_meta;

// Knob for the tune pass: the connection table's cell count. The
// signature register costs 2 bytes per cell and the backend register 1,
// so 65536 cells is the largest power of two where both share a stage.
@tunable(conn_cells, 8192, 131040, 98304);

register conn_sig {
    width : 16;
    instance_count : conn_cells;
}
register conn_backend {
    width : 8;
    instance_count : conn_cells;
}

field_list lb_flow_fl {
    ipv4.srcAddr;
    ipv4.dstAddr;
    tcp.srcPort;
    tcp.dstPort;
}
field_list_calculation lb_idx_hash {
    input { lb_flow_fl; }
    algorithm : crc32;
    output_width : 32;
}
field_list_calculation lb_sig_hash {
    input { lb_flow_fl; }
    algorithm : crc16;
    output_width : 16;
}
field_list_calculation lb_ring_hash {
    input { lb_flow_fl; }
    algorithm : csum16;
    output_width : 16;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        6 : parse_tcp;
        default : ingress;
    }
}
parser parse_tcp {
    extract(tcp);
    return ingress;
}

action set_vip() {
    modify_field(lb_meta.is_vip, 1);
}
action set_normal() {
    modify_field(lb_meta.is_vip, 0);
}
action lb_compute() {
    modify_field_with_hash_based_offset(lb_meta.idx, 0, lb_idx_hash, conn_cells);
    modify_field_with_hash_based_offset(lb_meta.sig, 1, lb_sig_hash, 65535);
    modify_field_with_hash_based_offset(lb_meta.ring_backend, 2, lb_ring_hash, 8);
}
action sig_update() {
    register_read(lb_meta.stored_sig, conn_sig, lb_meta.idx);
    register_write(conn_sig, lb_meta.idx, lb_meta.sig);
}
action backend_update() {
    register_read(lb_meta.stored_backend, conn_backend, lb_meta.idx);
    register_write(conn_backend, lb_meta.idx, lb_meta.ring_backend);
}
action use_stored() {
    modify_field(standard_metadata.egress_spec, lb_meta.stored_backend);
}
action use_ring() {
    modify_field(standard_metadata.egress_spec, lb_meta.ring_backend);
}
action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action fwd_miss_drop() {
    drop();
}

table vip_route {
    reads {
        ipv4.dstAddr : exact;
    }
    actions {
        set_vip;
        set_normal;
    }
    size : 64;
    default_action : set_normal;
}
table lb_hash {
    actions {
        lb_compute;
    }
    default_action : lb_compute;
}
table lb_sig {
    actions {
        sig_update;
    }
    default_action : sig_update;
}
table lb_backend {
    actions {
        backend_update;
    }
    default_action : backend_update;
}
table lb_forward {
    actions {
        use_stored;
    }
    default_action : use_stored;
}
table lb_install {
    actions {
        use_ring;
    }
    default_action : use_ring;
}
table maglev_rehash {
    actions {
        use_ring;
    }
    default_action : use_ring;
}
table ipv4_fwd {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        fwd_miss_drop;
    }
    size : 512;
    default_action : fwd_miss_drop;
}

control ingress {
    if (valid(ipv4)) {
        apply(vip_route);
        if (lb_meta.is_vip == 1) {
            if (valid(tcp)) {
                apply(lb_hash);
                apply(lb_sig);
                apply(lb_backend);
                if (lb_meta.stored_sig == lb_meta.sig) {
                    apply(lb_forward);
                } else {
                    if (lb_meta.stored_sig == 0) {
                        apply(lb_install);
                    } else {
                        apply(maglev_rehash);
                    }
                }
            }
        } else {
            apply(ipv4_fwd);
        }
    }
}
`

// MaglevRulesText: the VIP plus a route for the non-VIP background.
const MaglevRulesText = `
table_add vip_route set_vip ` + MaglevVIPText + `
table_add ipv4_fwd set_nhop 10.0.0.0/8 => 1
`

// MaglevConfig parses the Maglev runtime configuration.
func MaglevConfig() *rt.Config {
	cfg, err := rt.Parse(MaglevRulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: MaglevRulesText does not parse: %v", err))
	}
	return cfg
}
