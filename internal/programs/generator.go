package programs

import (
	"fmt"
	"math/rand"
	"strings"

	"p2go/internal/packet"
)

// Generated is one seeded random program with a matched runtime
// configuration and traffic trace. The packets use a neutral shape (port +
// bytes) rather than trafficgen.Trace because trafficgen imports this
// package; callers convert with one loop.
type Generated struct {
	Seed   int64
	Source string
	Rules  string
	// Packets is the matched trace: every generated feature (routes,
	// ACL ports, the heavy sketch flow) is exercised by some packets and
	// missed by others.
	Packets []GenPacket
}

// GenPacket is one generated trace entry.
type GenPacket struct {
	Port uint64
	Data []byte
}

// genHeaders is the fixed prologue every generated program shares: the
// protocol stack the trace generator knows how to build.
const genHeaders = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}
header_type gen_meta_t {
    fields {
        idx : 32;
        count : 32;
        mark : 8;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
header udp_t udp;
metadata gen_meta_t gen_meta;
`

const genParser = `
parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        6 : parse_tcp;
        17 : parse_udp;
        default : ingress;
    }
}
parser parse_tcp {
    extract(tcp);
    return ingress;
}
parser parse_udp {
    extract(udp);
    return ingress;
}
`

// sketch hash algorithms the generator rotates through.
var genHashAlgos = []string{"crc16", "crc32", "identity"}

// Generate builds one random program over the supported P4_14 subset with
// a matched rules file and trace. The same seed always yields the same
// bytes (source, rules, and packets), so a failing seed is a complete
// reproducer. The sampled space covers the optimizer's whole surface:
// LPM forwarding, rarely-hit UDP ACL chains (dependency removal and
// offload fodder), an optional counting sketch with a threshold branch
// (memory reduction fodder), and an optional @tunable sketch size (the
// tune pass's search space).
func Generate(seed int64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	g := &Generated{Seed: seed}

	nRoutes := 1 + rng.Intn(3)
	nACLs := rng.Intn(3)
	withSketch := rng.Intn(4) > 0 // 3 in 4 programs carry the sketch
	withTunable := withSketch && rng.Intn(2) == 0
	sketchAlgo := genHashAlgos[rng.Intn(len(genHashAlgos))]
	sketchCells := 4096 << rng.Intn(3) // 4096, 8192, 16384
	threshold := 16 << rng.Intn(3)     // 16, 32, 64
	wideFlow := rng.Intn(2) == 0       // hash over (src, dst) vs src only

	var src, rules strings.Builder
	src.WriteString(fmt.Sprintf("// generated program (seed %d)\n", seed))
	src.WriteString(genHeaders)

	if withSketch {
		if withTunable {
			fmt.Fprintf(&src, "\n@tunable(gen_cells, 1024, %d, %d);\n", sketchCells, sketchCells)
		}
		cells := fmt.Sprint(sketchCells)
		if withTunable {
			cells = "gen_cells"
		}
		fmt.Fprintf(&src, `
register gen_cms {
    width : 32;
    instance_count : %s;
}
field_list gen_flow_fl {
    ipv4.srcAddr;%s
}
field_list_calculation gen_hash {
    input { gen_flow_fl; }
    algorithm : %s;
    output_width : %d;
}
`, cells, map[bool]string{true: "\n    ipv4.dstAddr;", false: ""}[wideFlow],
			sketchAlgo, map[string]int{"crc16": 16, "crc32": 32, "identity": 16}[sketchAlgo])
	}
	src.WriteString(genParser)

	// Actions.
	src.WriteString(`
action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action gen_miss_drop() {
    drop();
}
`)
	for i := 0; i < nACLs; i++ {
		fmt.Fprintf(&src, "action acl_drop_%d() {\n    drop();\n}\n", i)
	}
	if withSketch {
		cells := fmt.Sprint(sketchCells)
		if withTunable {
			cells = "gen_cells"
		}
		fmt.Fprintf(&src, `action sketch_count() {
    modify_field_with_hash_based_offset(gen_meta.idx, 0, gen_hash, %s);
    register_read(gen_meta.count, gen_cms, gen_meta.idx);
    add_to_field(gen_meta.count, 1);
    register_write(gen_cms, gen_meta.idx, gen_meta.count);
}
action limit_notify() {
    modify_field(standard_metadata.egress_spec, 254);
}
`, cells)
	}

	// Tables.
	fmt.Fprintf(&src, `
table gen_fwd {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        gen_miss_drop;
    }
    size : %d;
    default_action : gen_miss_drop;
}
`, 128<<rng.Intn(3))
	for i := 0; i < nACLs; i++ {
		fmt.Fprintf(&src, `table gen_acl_%d {
    reads {
        udp.dstPort : exact;
    }
    actions {
        acl_drop_%d;
    }
    size : %d;
}
`, i, i, 16<<rng.Intn(3))
	}
	if withSketch {
		src.WriteString(`table gen_sketch {
    actions {
        sketch_count;
    }
    default_action : sketch_count;
}
table gen_limit {
    actions {
        limit_notify;
    }
    default_action : limit_notify;
}
`)
	}

	// Control: forwarding always, ACLs on the UDP slice, the sketch and
	// its threshold branch on the TCP slice.
	src.WriteString("\ncontrol ingress {\n    if (valid(ipv4)) {\n        apply(gen_fwd);\n")
	if nACLs > 0 {
		src.WriteString("        if (valid(udp)) {\n")
		for i := 0; i < nACLs; i++ {
			fmt.Fprintf(&src, "            apply(gen_acl_%d);\n", i)
		}
		src.WriteString("        }\n")
	}
	if withSketch {
		fmt.Fprintf(&src, `        if (valid(tcp)) {
            apply(gen_sketch);
            if (gen_meta.count >= %d) {
                apply(gen_limit);
            }
        }
`, threshold)
	}
	src.WriteString("    }\n}\n")
	g.Source = src.String()

	// Rules: routes (distinct /16 prefixes, distinct next hops) and one
	// blocked port per ACL.
	routePrefix := make([]int, nRoutes)
	for i := 0; i < nRoutes; i++ {
		routePrefix[i] = 1 + i
		fmt.Fprintf(&rules, "table_add gen_fwd set_nhop 10.%d.0.0/16 => %d\n", routePrefix[i], 2+i)
	}
	aclPorts := make([]int, nACLs)
	for i := 0; i < nACLs; i++ {
		aclPorts[i] = 7001 + i
		fmt.Fprintf(&rules, "table_add gen_acl_%d acl_drop_%d %d\n", i, i, aclPorts[i])
	}
	g.Rules = rules.String()

	// Trace: routed and unrouted TCP (hits and misses on gen_fwd), a thin
	// UDP slice where each ACL's blocked port appears on its own packets
	// (never two violations at once, so the ACL chain's dependencies never
	// manifest), and a heavy TCP flow that pushes one sketch cell past the
	// threshold while light flows stay below it.
	total := 2000 + rng.Intn(2000)
	heavySrc := packet.IP(10, 90, byte(rng.Intn(256)), byte(1+rng.Intn(254)))
	heavyDst := packet.IP(10, byte(routePrefix[0]), 0, 1)
	for i := 0; i < total; i++ {
		dst := packet.IP(10, byte(routePrefix[rng.Intn(nRoutes)]), byte(rng.Intn(256)), byte(1+rng.Intn(254)))
		if rng.Float64() < 0.05 {
			dst = packet.IP(192, 0, 2, byte(1+rng.Intn(254))) // unrouted
		}
		tcpSrc := packet.IP(10, 80, byte(rng.Intn(64)), byte(1+rng.Intn(254)))
		if i%7 == 3 {
			// The heavy flow: ~14% of the trace, one (src, dst) pair so a
			// single sketch cell crosses the threshold under either flow
			// definition.
			tcpSrc, dst = heavySrc, heavyDst
		}
		if nACLs > 0 && i%11 == 5 {
			dport := uint16(9000 + rng.Intn(1000))
			if k := (i / 11) % (2 * (nACLs + 1)); k < nACLs {
				dport = uint16(aclPorts[k]) // one specific ACL's violation
			}
			g.Packets = append(g.Packets, GenPacket{Port: 1, Data: packet.Serialize(
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{Protocol: packet.ProtoUDP, Src: tcpSrc, Dst: dst},
				&packet.UDP{SrcPort: uint16(20000 + rng.Intn(10000)), DstPort: dport},
			)})
			continue
		}
		g.Packets = append(g.Packets, GenPacket{Port: 1, Data: packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoTCP, Src: tcpSrc, Dst: dst},
			&packet.TCP{SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 443, Seq: rng.Uint32(), Flags: packet.TCPAck},
		)})
	}
	return g
}
