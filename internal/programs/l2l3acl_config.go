package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// L2L3ACLRulesText is the runtime configuration of the phase-ordering
// workload: the trusted L2 port, two routes classed 1 and 2, one rule per
// ACL, and the per-nexthop accounting entries.
const L2L3ACLRulesText = `
# L2 forwarding for the trusted ingress port.
table_add L2 set_l2 1 => 2

# L3 routes: the enterprise default plus one pod, next hops 1 and 2.
table_add L3 set_nhop 10.0.0.0/8 => 1 3
table_add L3 set_nhop 10.2.0.0/16 => 2 4

# The two port ACLs; the traces never trigger both on one packet.
table_add ACL1 acl1_drop 6666
table_add ACL2 acl2_drop 7777

# Per-nexthop flow accounting.
table_add Flow_Count count_flow 1 => 1
table_add Flow_Count count_flow 2 => 2
`

// L2L3ACLConfig parses the phase-ordering workload's configuration.
func L2L3ACLConfig() *rt.Config {
	cfg, err := rt.Parse(L2L3ACLRulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: L2L3ACLRulesText does not parse: %v", err))
	}
	return cfg
}
