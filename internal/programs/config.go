package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// Ingress ports used by the example traces.
const (
	// TrustedPort is where ordinary enterprise traffic arrives.
	TrustedPort = 1
	// UntrustedPort carries the rogue DHCP traffic Ex. 1's ACL drops.
	UntrustedPort = 2
	// ForwardPort is the next hop set_nhop installs for forwarded
	// packets.
	ForwardPort = 3
)

// UDP ports the Ex. 1 ACL blocks.
var Ex1BlockedUDPPorts = []uint64{6666, 4444}

// Ex1RulesText is the runtime configuration of the Example 1 firewall in
// the text format: a default /8 route plus two more-specific prefixes, the
// blocked UDP ports, and the untrusted ingress port for DHCP snooping.
const Ex1RulesText = `
# IPv4 forwarding: the whole enterprise range plus two more-specific pods.
table_add IPv4 set_nhop 10.0.0.0/8 => 3
table_add IPv4 set_nhop 10.1.0.0/16 => 4
table_add IPv4 set_nhop 10.2.0.0/16 => 5

# Drop UDP traffic to blocked ports.
table_add ACL_UDP acl_udp_drop 6666
table_add ACL_UDP acl_udp_drop 4444

# Drop DHCP arriving on the untrusted ingress port.
table_add ACL_DHCP acl_dhcp_drop 2
`

// Ex1Config parses the Example 1 runtime configuration.
func Ex1Config() *rt.Config {
	cfg, err := rt.Parse(Ex1RulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: Ex1RulesText does not parse: %v", err))
	}
	return cfg
}
