package programs

import (
	"fmt"

	"p2go/internal/rt"
)

// Sourceguard calibration constants (Table 3, row 2). With the default
// target (256 KiB SRAM per stage, 64-byte table minimum, 6 bytes per
// ingress-ACL entry):
//
//   - bf_r1 initially fills a stage exactly: 262080 cells x 1 byte + 64 =
//     262144 bytes;
//   - the ingress ACL occupies 3669 x 6 = 22014 bytes, so the largest
//     bf_r1 that co-locates with it is 262144-64-22014 = 240066 cells;
//   - the minimum reduction Phase 3's binary search finds is therefore
//     (262080-240066)/262080 = 8.4% — the figure the paper reports.
const (
	SourceguardBFCells        = 262080
	SourceguardBFReducedCells = 240066
	SourceguardACLSize        = 3669
)

// Sourceguard is the paper's second evaluation example: the switch.p4
// Sourceguard feature made standalone, with the DHCP snooping database
// implemented as a Bloom filter with two hash functions over register
// arrays. Clients may only use source addresses that appear in the
// database; the database is populated from observed DHCP traffic (each BF
// row table selects a learn or check action by DHCP-header validity).
//
// P2GO observes that slightly decreasing one BF register array lets it
// share a stage with the ingress ACL, saving a stage: 5 -> 4, with the
// register shrunk by just 8.4%.
const Sourceguard = `
// Sourceguard: DHCP snooping source guard (Table 3, row 2).
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}
header_type dhcp_t {
    fields {
        op : 8;
        htype : 8;
        hlen : 8;
        hops : 8;
        xid : 32;
    }
}
header_type sg_meta_t {
    fields {
        idx1 : 32;
        idx2 : 32;
        bf1 : 8;
        bf2 : 8;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
header udp_t udp;
header dhcp_t dhcp;
metadata sg_meta_t sg_meta;

// Knob for the tune pass: both Bloom filter rows share one size. Smaller
// bindings raise the false-positive rate (spoofed sources slipping past
// sg_drop) but let the rows co-locate with the ACL and forwarding tables.
@tunable(sg_bf_cells, 4096, 262080, 262080);

register bf_r1 {
    width : 8;
    instance_count : sg_bf_cells;
}
register bf_r2 {
    width : 8;
    instance_count : sg_bf_cells;
}

field_list sg_src_fl {
    ipv4.srcAddr;
}
field_list_calculation sg_h1 {
    input { sg_src_fl; }
    algorithm : crc16;
    output_width : 16;
}
field_list_calculation sg_h2 {
    input { sg_src_fl; }
    algorithm : crc32;
    output_width : 32;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        17 : parse_udp;
        default : ingress;
    }
}
parser parse_udp {
    extract(udp);
    return select(udp.dstPort) {
        67 : parse_dhcp;
        68 : parse_dhcp;
        default : ingress;
    }
}
parser parse_dhcp {
    extract(dhcp);
    return ingress;
}

action port_drop() {
    drop();
}
action bf1_learn() {
    modify_field_with_hash_based_offset(sg_meta.idx1, 0, sg_h1, sg_bf_cells);
    register_write(bf_r1, sg_meta.idx1, 1);
}
action bf1_check() {
    modify_field_with_hash_based_offset(sg_meta.idx1, 0, sg_h1, sg_bf_cells);
    register_read(sg_meta.bf1, bf_r1, sg_meta.idx1);
}
action bf2_learn() {
    modify_field_with_hash_based_offset(sg_meta.idx2, 0, sg_h2, sg_bf_cells);
    register_write(bf_r2, sg_meta.idx2, 1);
}
action bf2_check() {
    modify_field_with_hash_based_offset(sg_meta.idx2, 0, sg_h2, sg_bf_cells);
    register_read(sg_meta.bf2, bf_r2, sg_meta.idx2);
}
action set_nhop(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action fwd_miss_drop() {
    drop();
}
action sg_violation_drop() {
    drop();
}
action count_egress() {
    modify_field(sg_meta.idx1, standard_metadata.egress_spec);
}

table ingress_acl {
    reads {
        standard_metadata.ingress_port : exact;
    }
    actions {
        port_drop;
    }
    size : 3669;
}
table sg_bf1 {
    reads {
        dhcp : valid;
    }
    actions {
        bf1_learn;
        bf1_check;
    }
    size : 2;
}
table sg_bf2 {
    reads {
        dhcp : valid;
    }
    actions {
        bf2_learn;
        bf2_check;
    }
    size : 2;
}
table ipv4_fwd {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        fwd_miss_drop;
    }
    size : 512;
    default_action : fwd_miss_drop;
}
table sg_drop {
    actions {
        sg_violation_drop;
    }
    default_action : sg_violation_drop;
}
table egress_monitor {
    reads {
        standard_metadata.egress_spec : exact;
    }
    actions {
        count_egress;
    }
    size : 64;
}

control ingress {
    if (valid(ipv4)) {
        apply(ingress_acl);
        apply(sg_bf1);
        apply(sg_bf2);
        if (not valid(dhcp)) {
            if (sg_meta.bf1 == 1 and sg_meta.bf2 == 1) {
                apply(ipv4_fwd);
            } else {
                apply(sg_drop);
            }
        }
        apply(egress_monitor);
    }
}
`

// SourceguardRulesText: untrusted ingress ports, BF learn/check selection
// by DHCP validity, routes, and monitored egress ports.
const SourceguardRulesText = `
# Drop traffic arriving on the two quarantined ports.
table_add ingress_acl port_drop 30
table_add ingress_acl port_drop 31

# Bloom filter rows: learn on DHCP packets, check otherwise.
table_add sg_bf1 bf1_learn 1
table_add sg_bf1 bf1_check 0
table_add sg_bf2 bf2_learn 1
table_add sg_bf2 bf2_check 0

# Routes.
table_add ipv4_fwd set_nhop 10.0.0.0/8 => 2
table_add ipv4_fwd set_nhop 172.16.0.0/12 => 3

# Monitored egress ports.
table_add egress_monitor count_egress 2
table_add egress_monitor count_egress 3
`

// SourceguardConfig parses the Sourceguard runtime configuration.
func SourceguardConfig() *rt.Config {
	cfg, err := rt.Parse(SourceguardRulesText)
	if err != nil {
		panic(fmt.Sprintf("programs: SourceguardRulesText does not parse: %v", err))
	}
	return cfg
}
