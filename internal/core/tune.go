package core

import (
	"context"
	"fmt"
	"sort"

	"p2go/internal/obs"
	"p2go/internal/p4"
)

// TuneOptions configures the tune pass: the objective is "minimize
// pipeline stages subject to a profile-measured accuracy floor", searched
// by coordinate descent over each tunable's geometric lattice.
type TuneOptions struct {
	// AccuracyTable names the table whose hit count is the accuracy
	// signal — for sketch programs, the table applied when the sketch
	// fires (alarms, rehash fixups, cookie checks), whose hits move when
	// hash collisions or false positives change. "" disables the
	// accuracy constraint: the search minimizes stages alone.
	AccuracyTable string
	// MaxAccuracyLoss is the largest tolerated |hits(candidate) -
	// hits(reference)| / total_packets, where the reference point binds
	// every tunable to its maximum (the most accurate configuration).
	// Candidates may never be less accurate than the starting bindings,
	// so an infeasible starting point does not wedge the search. 0 means
	// the default of 1%.
	MaxAccuracyLoss float64
	// MaxRounds bounds full coordinate-descent sweeps; the search also
	// stops at the first sweep that improves nothing. 0 means 4.
	MaxRounds int
}

const (
	defaultTuneMaxLoss = 0.01
	defaultTuneRounds  = 4
)

func (o Options) tune() TuneOptions {
	t := TuneOptions{}
	if o.Tune != nil {
		t = *o.Tune
	}
	if t.MaxAccuracyLoss == 0 {
		t.MaxAccuracyLoss = defaultTuneMaxLoss
	}
	if t.MaxRounds == 0 {
		t.MaxRounds = defaultTuneRounds
	}
	return t
}

// tuneEval is one measured candidate instantiation.
type tuneEval struct {
	bindings map[string]int
	stages   int
	fits     bool
	hits     int     // accuracy-table hits
	loss     float64 // |hits - reference hits| / total packets
}

// memCost is the tie-breaker: total bound cells across knobs.
func (e *tuneEval) memCost() int {
	n := 0
	for _, v := range e.bindings {
		n += v
	}
	return n
}

// tunePass searches the program's @tunable knobs. It instantiates every
// candidate from the pristine source AST, so it is meant to run before
// the rewriting passes (the -tune schedule puts it first); each candidate
// flows through the manager's compile/profile funnels and therefore the
// analysis cache — a repeat search over the same lattice replays from
// cache instead of recompiling.
func (r *run) tunePass(ctx context.Context) error {
	startStages := totalStages(r.compile.Mapping)
	if len(r.src.Tunables) == 0 {
		r.obs = append(r.obs, Observation{
			Phase:        PhaseTune,
			Kind:         "tune-noop",
			Summary:      "no tunable symbols declared",
			Evidence:     "program declares no @tunable knobs; nothing to search",
			StagesBefore: startStages,
			StagesAfter:  startStages,
		})
		return nil
	}
	topts := r.opts.tune()

	// Reference point: every knob at its maximum — the most accurate
	// configuration, against which candidate accuracy loss is measured.
	var refHits int
	if topts.AccuracyTable != "" {
		refBindings := map[string]int{}
		for _, t := range r.src.Tunables {
			refBindings[t.Name] = t.Max
		}
		ref, err := r.tuneEval(ctx, refBindings, 0)
		if err != nil {
			return err
		}
		refHits = ref.hits
	}

	start, err := r.tuneEval(ctx, r.bindings, refHits)
	if err != nil {
		return err
	}
	// The floor never demands more accuracy than the starting bindings
	// deliver, so a search from an already-lossy default can still move.
	floor := topts.MaxAccuracyLoss
	if start.loss > floor {
		floor = start.loss
	}
	best := start

	knobs := make([]*p4.Tunable, len(r.src.Tunables))
	copy(knobs, r.src.Tunables)
	sort.Slice(knobs, func(i, j int) bool { return knobs[i].Name < knobs[j].Name })

	candidates := 0
	for round := 0; round < topts.MaxRounds; round++ {
		improved := false
		for _, knob := range knobs {
			for _, v := range knobLadder(knob) {
				if v == best.bindings[knob.Name] {
					continue
				}
				b := cloneBindings(best.bindings)
				b[knob.Name] = v
				cand, err := r.tuneEval(ctx, b, refHits)
				if err != nil {
					return err
				}
				candidates++
				adopt := tuneBetter(cand, best, floor, topts.AccuracyTable != "")
				r.obs = append(r.obs, Observation{
					Phase:    PhaseTune,
					Kind:     "tune-candidate",
					Accepted: adopt,
					Summary:  fmt.Sprintf("bindings %s", p4.FormatBindings(cand.bindings)),
					Evidence: fmt.Sprintf("stages %d (fits %v), accuracy loss %.4f vs floor %.4f on table %q",
						cand.stages, cand.fits, cand.loss, floor, topts.AccuracyTable),
					Tables:       accuracyTables(topts),
					StagesBefore: best.stages,
					StagesAfter:  cand.stages,
					Details: map[string]string{
						"bindings": p4.FormatBindings(cand.bindings),
						"stages":   fmt.Sprintf("%d", cand.stages),
						"loss":     fmt.Sprintf("%.6f", cand.loss),
						"hits":     fmt.Sprintf("%d", cand.hits),
					},
				})
				if adopt {
					best = cand
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	changed := p4.FormatBindings(best.bindings) != p4.FormatBindings(r.bindings)
	r.obs = append(r.obs, Observation{
		Phase:    PhaseTune,
		Kind:     "tune-result",
		Accepted: changed,
		Summary: fmt.Sprintf("tuned bindings %s (default %s)",
			p4.FormatBindings(best.bindings), p4.FormatBindings(r.bindings)),
		Evidence: fmt.Sprintf("%d candidates searched; stages %d -> %d, accuracy loss %.4f (floor %.4f)",
			candidates, start.stages, best.stages, best.loss, floor),
		Tables:       accuracyTables(topts),
		StagesBefore: start.stages,
		StagesAfter:  best.stages,
		Details: map[string]string{
			"bindings":   p4.FormatBindings(best.bindings),
			"candidates": fmt.Sprintf("%d", candidates),
			"loss":       fmt.Sprintf("%.6f", best.loss),
		},
	})
	if !changed {
		return nil
	}

	// Adopt the winner: the run continues from the pristine program
	// instantiated at the tuned bindings (recompile and reprofile are
	// cache hits — the search already measured this point).
	r.bindings = best.bindings
	inst, err := p4.Instantiate(r.src, best.bindings)
	if err != nil {
		return fmt.Errorf("core: tune adopt: %w", err)
	}
	r.cur = inst
	if err := r.recompile(ctx); err != nil {
		return err
	}
	return r.reprofile(ctx)
}

// tuneEval instantiates, compiles, and (when an accuracy table is
// configured) profiles one candidate binding through the cached funnels.
func (r *run) tuneEval(ctx context.Context, bindings map[string]int, refHits int) (*tuneEval, error) {
	inst, err := p4.Instantiate(r.src, bindings)
	if err != nil {
		return nil, fmt.Errorf("core: tune candidate: %w", err)
	}
	ctx, sp := obs.Start(ctx, "tune.candidate", obs.String("bindings", p4.FormatBindings(bindings)))
	defer sp.End()
	comp, err := r.compileCandidate(ctx, inst)
	if err != nil {
		return nil, err
	}
	ev := &tuneEval{
		bindings: cloneBindings(bindings),
		stages:   totalStages(comp.Mapping),
		fits:     comp.Mapping.Fits,
	}
	if t := r.opts.tune(); t.AccuracyTable != "" {
		prof, err := r.profileCandidate(ctx, inst)
		if err != nil {
			return nil, err
		}
		ev.hits = prof.Hits[t.AccuracyTable]
		if prof.TotalPackets > 0 {
			diff := ev.hits - refHits
			if diff < 0 {
				diff = -diff
			}
			ev.loss = float64(diff) / float64(prof.TotalPackets)
		}
	}
	sp.SetAttr(obs.Int("stages", ev.stages))
	return ev, nil
}

// tuneBetter reports whether cand beats best under the objective:
// feasibility first (accuracy within the floor, and a fitting pipeline
// never traded for a non-fitting one), then fewer stages, then lower
// loss, then less memory, then the canonical binding string for
// determinism.
func tuneBetter(cand, best *tuneEval, floor float64, haveAccuracy bool) bool {
	if haveAccuracy && cand.loss > floor {
		return false
	}
	if best.fits && !cand.fits {
		return false
	}
	if cand.fits && !best.fits {
		return true
	}
	if cand.stages != best.stages {
		return cand.stages < best.stages
	}
	if cand.loss != best.loss {
		return cand.loss < best.loss
	}
	if cand.memCost() != best.memCost() {
		return cand.memCost() < best.memCost()
	}
	return p4.FormatBindings(cand.bindings) < p4.FormatBindings(best.bindings)
}

// knobLadder is the candidate lattice for one knob: geometric doubling
// from min to max, plus the default and max themselves.
func knobLadder(t *p4.Tunable) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if v >= t.Min && v <= t.Max && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for v := t.Min; v > 0 && v < t.Max && len(out) < 24; v *= 2 {
		add(v)
	}
	add(t.Max)
	add(t.Default)
	sort.Ints(out)
	return out
}

func cloneBindings(b map[string]int) map[string]int {
	out := make(map[string]int, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

func accuracyTables(t TuneOptions) []string {
	if t.AccuracyTable == "" {
		return nil
	}
	return []string{t.AccuracyTable}
}
