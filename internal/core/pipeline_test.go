package core

import (
	"strings"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func enterpriseTrace(t testing.TB) *trafficgen.Trace {
	t.Helper()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return trace
}

func optimizeEx1(t testing.TB, opts Options) *Result {
	t.Helper()
	res, err := New(opts).Optimize(p4.MustParse(programs.Ex1), programs.Ex1Config(), enterpriseTrace(t))
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return res
}

// TestEx1FullPipeline reproduces the paper's Table 2: the Example 1
// firewall shrinks from 8 stages to 7 (dependency removal), 6 (memory
// reduction), and finally 3 (offloading the DNS branch).
func TestEx1FullPipeline(t *testing.T) {
	res := optimizeEx1(t, Options{})
	var stages []int
	var labels []string
	for _, h := range res.History {
		stages = append(stages, h.Stages)
		labels = append(labels, h.Label)
	}
	want := []int{8, 7, 6, 3}
	if len(stages) != 4 {
		t.Fatalf("history = %v %v, want 4 snapshots", labels, stages)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("Table 2 mismatch: %v %v, want %v\n%s", labels, stages, want, RenderHistory(res.History))
		}
	}
	if res.StagesBefore() != 8 || res.StagesAfter() != 3 {
		t.Errorf("before/after = %d/%d, want 8/3", res.StagesBefore(), res.StagesAfter())
	}
}

// TestEx1Phase2Observation pins §3.2's narrative: the ACL_UDP -> ACL_DHCP
// dependency is removed because the drop actions never co-occur.
func TestEx1Phase2Observation(t *testing.T) {
	res := optimizeEx1(t, Options{})
	var dep *Observation
	for i := range res.Observations {
		o := &res.Observations[i]
		if o.Phase == PhaseDependencies && o.Accepted {
			dep = o
			break
		}
	}
	if dep == nil {
		t.Fatal("no accepted dependency-removal observation")
	}
	if dep.Tables[0] != "ACL_UDP" || dep.Tables[1] != "ACL_DHCP" {
		t.Errorf("removed dependency %v, want ACL_UDP -> ACL_DHCP", dep.Tables)
	}
	if dep.StagesBefore != 8 || dep.StagesAfter != 7 {
		t.Errorf("stages %d -> %d, want 8 -> 7", dep.StagesBefore, dep.StagesAfter)
	}
	// The rewritten control flow applies ACL_DHCP in ACL_UDP's miss arm.
	src := p4.Print(res.Optimized)
	if !strings.Contains(src, "miss") {
		t.Errorf("optimized program has no miss arm:\n%s", src)
	}
}

// TestEx1Phase3Narrative pins §3.3: Sketch_1 is tried first (lowest hit
// rate), discarded because the CMS over-counts, then IPv4 is reduced and
// applied.
func TestEx1Phase3Narrative(t *testing.T) {
	res := optimizeEx1(t, Options{})
	var memObs []Observation
	for _, o := range res.Observations {
		if o.Phase == PhaseMemory {
			memObs = append(memObs, o)
		}
	}
	if len(memObs) < 2 {
		t.Fatalf("memory observations = %d, want >= 2 (Sketch_1 rejected + IPv4 applied): %v", len(memObs), memObs)
	}
	first := memObs[0]
	if first.Accepted || first.Tables[0] != "Sketch_1" {
		t.Errorf("first memory candidate = %+v, want rejected Sketch_1", first)
	}
	if !strings.Contains(first.Evidence, "DNS_Drop") {
		t.Errorf("Sketch_1 rejection evidence should cite the DNS_Drop change: %s", first.Evidence)
	}
	var accepted *Observation
	for i := range memObs {
		if memObs[i].Accepted {
			accepted = &memObs[i]
		}
	}
	if accepted == nil {
		t.Fatal("no accepted memory reduction")
	}
	if accepted.Tables[0] != "IPv4" {
		t.Errorf("accepted memory reduction on %v, want IPv4", accepted.Tables)
	}
	if accepted.Details["reduced"] != "8192" {
		t.Errorf("binary search landed at %s entries, want 8192", accepted.Details["reduced"])
	}
	// The optimized program carries the reduced size.
	if got := res.Optimized.Table("IPv4").Size; got != programs.Ex1IPv4ReducedSize {
		t.Errorf("optimized IPv4 size = %d, want %d", got, programs.Ex1IPv4ReducedSize)
	}
}

// TestEx1Phase4Offload pins §3.4 and footnote 3: the whole DNS branch
// (both sketch rows, the min, and the limiter) is offloaded, redirecting
// only the 2% of DNS traffic.
func TestEx1Phase4Offload(t *testing.T) {
	res := optimizeEx1(t, Options{})
	want := map[string]bool{"Sketch_1": true, "Sketch_2": true, "Sketch_Min": true, "DNS_Drop": true}
	if len(res.OffloadedTables) != len(want) {
		t.Fatalf("offloaded = %v, want the DNS branch", res.OffloadedTables)
	}
	for _, tbl := range res.OffloadedTables {
		if !want[tbl] {
			t.Errorf("unexpected offloaded table %s", tbl)
		}
	}
	if res.RedirectedFraction < 0.019 || res.RedirectedFraction > 0.021 {
		t.Errorf("redirected fraction = %.4f, want ~0.02", res.RedirectedFraction)
	}
	// The optimized program contains To_Ctl and none of the DNS tables.
	if res.Optimized.Table(ToCtlTable) == nil {
		t.Error("optimized program lacks To_Ctl")
	}
	for tbl := range want {
		if res.Optimized.Table(tbl) != nil {
			t.Errorf("offloaded table %s still declared", tbl)
		}
	}
	if res.Optimized.Register("cms_r1") != nil {
		t.Error("offloaded register cms_r1 still declared")
	}
	// Rules for offloaded tables are gone from the optimized config.
	for _, rule := range res.OptimizedConfig.Rules {
		if want[rule.Table] {
			t.Errorf("rule for offloaded table %s still present", rule.Table)
		}
	}
}

// TestEx1FinalProfileConsistent: the data-plane behavior of the surviving
// tables is unchanged, and DNS traffic goes to the CPU.
func TestEx1FinalProfileConsistent(t *testing.T) {
	res := optimizeEx1(t, Options{})
	for _, tbl := range []string{"IPv4", "ACL_UDP", "ACL_DHCP"} {
		if res.Profile.Hits[tbl] != res.FinalProfile.Hits[tbl] {
			t.Errorf("%s hits changed: %d -> %d", tbl, res.Profile.Hits[tbl], res.FinalProfile.Hits[tbl])
		}
	}
	if res.FinalProfile.Hits[ToCtlTable] != res.Profile.Hits["Sketch_1"] {
		t.Errorf("To_Ctl hits = %d, want the DNS share %d",
			res.FinalProfile.Hits[ToCtlTable], res.Profile.Hits["Sketch_1"])
	}
	if res.FinalProfile.ToCPU != res.FinalProfile.Hits[ToCtlTable] {
		t.Errorf("ToCPU = %d, want %d", res.FinalProfile.ToCPU, res.FinalProfile.Hits[ToCtlTable])
	}
}

// TestEx1OptimizedPrintsAndReparses: the optimized program is valid source.
func TestEx1OptimizedPrintsAndReparses(t *testing.T) {
	res := optimizeEx1(t, Options{})
	src := p4.Print(res.Optimized)
	reparsed, err := p4.Parse(src)
	if err != nil {
		t.Fatalf("optimized program does not reparse: %v\n%s", err, src)
	}
	if err := p4.Check(reparsed); err != nil {
		t.Fatalf("optimized program does not recheck: %v", err)
	}
}

// TestPhaseDisabling: each phase can be turned off independently (§2.2's
// re-run loop).
func TestPhaseDisabling(t *testing.T) {
	onlyP2 := optimizeEx1(t, Options{DisablePhase3: true, DisablePhase4: true})
	if onlyP2.StagesAfter() != 7 {
		t.Errorf("phase 2 only: %d stages, want 7", onlyP2.StagesAfter())
	}
	onlyP3 := optimizeEx1(t, Options{DisablePhase2: true, DisablePhase4: true})
	// Without the dependency removal, shrinking Sketch_1 cannot co-locate
	// it with the ACLs... it can still co-locate with ACL_DHCP's stage.
	// IPv4's reduction alone saves a stage: 8 -> 7.
	if onlyP3.StagesAfter() >= 8 {
		t.Errorf("phase 3 only: %d stages, want < 8", onlyP3.StagesAfter())
	}
	onlyP4 := optimizeEx1(t, Options{DisablePhase2: true, DisablePhase3: true})
	if onlyP4.StagesAfter() >= 8 {
		t.Errorf("phase 4 only: %d stages, want < 8", onlyP4.StagesAfter())
	}
	nothing := optimizeEx1(t, Options{DisablePhase2: true, DisablePhase3: true, DisablePhase4: true})
	if nothing.StagesAfter() != 8 {
		t.Errorf("all phases off: %d stages, want 8", nothing.StagesAfter())
	}
	if len(nothing.Observations) != 0 {
		t.Errorf("all phases off: observations = %v", nothing.Observations)
	}
}

// TestMaxPhase2Removals: the strict one-change-at-a-time mode.
func TestMaxPhase2Removals(t *testing.T) {
	res := optimizeEx1(t, Options{MaxPhase2Removals: 1, DisablePhase3: true, DisablePhase4: true})
	accepted := 0
	for _, o := range res.Observations {
		if o.Phase == PhaseDependencies && o.Accepted {
			accepted++
		}
	}
	if accepted != 1 {
		t.Errorf("accepted removals = %d, want 1", accepted)
	}
}

// TestOffloadFirstAblation reproduces §2.2's phase-ordering argument:
// before dependency removal, offloading the two ACLs saves two stages;
// after Phases 2+3 they share one stage and offloading them saves at most
// one — while the DNS branch stays the minimum-redirect winner throughout.
func TestOffloadFirstAblation(t *testing.T) {
	trace := enterpriseTrace(t)
	opt := New(Options{})
	before, err := opt.OffloadCandidates(p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	aclSavings := func(reports []CandidateReport) int {
		best := 0
		for _, rep := range reports {
			if len(rep.Segment.Tables) == 2 &&
				contains(rep.Segment.Tables, "ACL_UDP") && contains(rep.Segment.Tables, "ACL_DHCP") {
				if rep.StagesSaved > best {
					best = rep.StagesSaved
				}
			}
		}
		return best
	}
	savingsBefore := aclSavings(before)
	if savingsBefore < 2 {
		t.Errorf("offloading both ACLs before phase 2 saves %d stages, want >= 2", savingsBefore)
	}

	// Run phases 2+3, then measure again.
	res := optimizeEx1(t, Options{DisablePhase4: true})
	after, err := opt.OffloadCandidates(res.Optimized, res.OptimizedConfig, trace)
	if err != nil {
		t.Fatal(err)
	}
	savingsAfter := aclSavings(after)
	if savingsAfter >= savingsBefore {
		t.Errorf("ACL offload savings: before=%d after=%d, want a decrease", savingsBefore, savingsAfter)
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// TestObservationStrings: observations render with their evidence.
func TestObservationStrings(t *testing.T) {
	res := optimizeEx1(t, Options{})
	for _, o := range res.Observations {
		s := o.String()
		if !strings.Contains(s, "evidence:") {
			t.Errorf("observation without evidence: %s", s)
		}
	}
	if len(res.Observations) < 3 {
		t.Errorf("observations = %d, want at least one per phase", len(res.Observations))
	}
}

func TestOptimizeRequiresTrace(t *testing.T) {
	_, err := New(Options{}).Optimize(p4.MustParse(programs.Ex1), programs.Ex1Config(), nil)
	if err == nil {
		t.Error("expected error without a trace")
	}
}
