package core

import (
	"context"
	"fmt"
	"sort"

	"p2go/internal/obs"
	"p2go/internal/p4"
)

// phase3 reduces table/register memory (§3.3). For each table it probes a
// halving of its memory; tables whose halving saves a stage are candidates.
// The candidate with the lowest hit rate is tried first (least risk of
// changing behavior). Binary search finds the minimum reduction that still
// saves a stage — without needing the target's memory description — and
// the reduced program is re-profiled: if the profile changed (e.g. a
// shrunken Count-Min Sketch over-counts), the candidate is discarded and
// the next one is tried.
func (r *run) phase3(ctx context.Context) error {
	rejected := map[string]bool{}
	for iter := 1; ; iter++ {
		ictx, sp := obs.Start(ctx, "phase3.iteration", obs.Int("iteration", iter))
		applied, err := r.phase3Once(ictx, rejected)
		sp.SetAttr(obs.Bool("improved", applied))
		sp.End()
		if err != nil {
			return err
		}
		if !applied {
			return nil
		}
	}
}

func (r *run) phase3Once(ctx context.Context, rejected map[string]bool) (bool, error) {
	baseStages := totalStages(r.compile.Mapping)

	// Probe: halve each table's memory knob and recompile. Each probe is
	// an independent compile of its own clone, so they fan out over the
	// worker pool; results land in probe order, keeping the candidate
	// list (and everything downstream) identical to a sequential run.
	type candidate struct {
		knob    memoryKnob
		hitRate float64
		order   int
	}
	type probe struct {
		knob  memoryKnob
		order int
		saves bool
	}
	var probes []probe
	for _, t := range r.compile.IR.Ordered {
		if rejected[t.Name] {
			continue
		}
		knob, ok := knobFor(r.cur, t.Name)
		if !ok {
			continue
		}
		probes = append(probes, probe{knob: knob, order: t.Order})
	}
	err := forEachIndexed(ctx, len(probes), r.opts.parallelism(), func(i int) error {
		// Probe failures are swallowed (not a candidate); cancellation
		// must not be.
		if err := r.interrupted(); err != nil {
			return err
		}
		knob := probes[i].knob
		stages, _, err := r.stagesWithKnob(ctx, knob, knob.full/2)
		if err != nil {
			return nil // halving made the program infeasible; not a candidate
		}
		probes[i].saves = stages < baseStages
		return nil
	})
	if err != nil {
		return false, err
	}
	var candidates []candidate
	for _, p := range probes {
		if p.saves {
			candidates = append(candidates, candidate{
				knob:    p.knob,
				hitRate: r.prof.HitRate(p.knob.table),
				order:   p.order,
			})
		}
	}
	if len(candidates) == 0 {
		return false, nil
	}
	// Lowest hit rate first: least risk of impacting behavior.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].hitRate != candidates[j].hitRate {
			return candidates[i].hitRate < candidates[j].hitRate
		}
		return candidates[i].order < candidates[j].order
	})

	for _, c := range candidates {
		// Binary search the largest knob value that still saves a stage
		// (i.e. the minimum memory reduction).
		bctx, bsp := obs.Start(ctx, "phase3.binary-search",
			obs.String("table", c.knob.table), obs.Int("full", c.knob.full))
		iterations := 0
		lo, hi := c.knob.full/2, c.knob.full // stages(lo) < base, stages(hi) == base
		for lo+1 < hi {
			if err := r.interrupted(); err != nil {
				bsp.End()
				return false, err
			}
			iterations++
			mid := (lo + hi) / 2
			stages, _, err := r.stagesWithKnob(bctx, c.knob, mid)
			if err != nil {
				hi = mid
				continue
			}
			if stages < baseStages {
				lo = mid
			} else {
				hi = mid
			}
		}
		minValue := lo
		stages, reducedProg, err := r.stagesWithKnob(bctx, c.knob, minValue)
		bsp.SetAttr(obs.Int("iterations", iterations), obs.Int("min_value", minValue))
		bsp.End()
		if err != nil {
			rejected[c.knob.table] = true
			continue
		}
		reduction := 100 * float64(c.knob.full-minValue) / float64(c.knob.full)
		what := fmt.Sprintf("table %s size %d -> %d", c.knob.table, c.knob.full, minValue)
		kind := "reduce-table"
		if c.knob.register != "" {
			what = fmt.Sprintf("register %s of table %s: %d -> %d cells", c.knob.register, c.knob.table, c.knob.full, minValue)
			kind = "reduce-register"
		}

		// Verify: the reduction must not change the profile on the trace.
		// A profiling failure (e.g. the installed rules no longer fit the
		// shrunken table) also rejects the candidate.
		vctx, vsp := obs.Start(ctx, "phase3.verify",
			obs.String("table", c.knob.table), obs.Int("value", minValue))
		newProf, err := r.profileCandidate(vctx, reducedProg)
		if err != nil {
			vsp.SetAttr(obs.String("rejected", "config-infeasible"))
			vsp.End()
			rejected[c.knob.table] = true
			r.obs = append(r.obs, Observation{
				Phase:        PhaseMemory,
				Kind:         kind,
				Accepted:     false,
				Summary:      what + fmt.Sprintf(" (-%.1f%%)", reduction),
				Evidence:     "reduced program cannot run the provided configuration: " + err.Error(),
				Tables:       []string{c.knob.table},
				StagesBefore: baseStages,
				StagesAfter:  baseStages,
			})
			continue
		}
		if diff := r.prof.Diff(newProf); diff != "" {
			vsp.SetAttr(obs.String("rejected", "behavior-changed"))
			vsp.End()
			rejected[c.knob.table] = true
			r.obs = append(r.obs, Observation{
				Phase:        PhaseMemory,
				Kind:         kind,
				Accepted:     false,
				Summary:      what + fmt.Sprintf(" (-%.1f%%)", reduction),
				Evidence:     "reduction changed the program's behavior on the trace: " + diff,
				Tables:       []string{c.knob.table},
				StagesBefore: baseStages,
				StagesAfter:  baseStages,
				Details: map[string]string{
					"diff": diff,
				},
			})
			continue
		}

		vsp.SetAttr(obs.Bool("accepted", true))
		vsp.End()
		compiled, err := r.compileCandidate(ctx, reducedProg)
		if err != nil {
			return false, err
		}
		r.cur = reducedProg
		r.compile = compiled
		r.prof = newProf
		r.obs = append(r.obs, Observation{
			Phase:        PhaseMemory,
			Kind:         kind,
			Accepted:     true,
			Summary:      what + fmt.Sprintf(" (-%.1f%%, minimum reduction found by binary search)", reduction),
			Evidence:     "profile unchanged on the trace after the reduction",
			Tables:       []string{c.knob.table},
			StagesBefore: baseStages,
			StagesAfter:  stages,
			Details: map[string]string{
				"full":      fmt.Sprintf("%d", c.knob.full),
				"reduced":   fmt.Sprintf("%d", minValue),
				"reduction": fmt.Sprintf("%.4f", reduction/100),
			},
		})
		return true, nil
	}
	return false, nil
}

// stagesWithKnob compiles the current program with the knob set to value
// and returns the required stages together with the rewritten program.
// Every call is one memory probe, so it carries its own span — the
// halving probes and each binary-search iteration show up individually.
func (r *run) stagesWithKnob(ctx context.Context, knob memoryKnob, value int) (int, *p4.Program, error) {
	ctx, sp := obs.Start(ctx, "phase3.probe",
		obs.String("table", knob.table), obs.Int("value", value))
	defer sp.End()
	candidate := p4.Clone(r.cur)
	if err := applyKnob(candidate, knob, value); err != nil {
		sp.SetAttr(obs.String("error", "infeasible"))
		return 0, nil, err
	}
	compiled, err := r.compileCandidate(ctx, candidate)
	if err != nil {
		sp.SetAttr(obs.String("error", "compile-failed"))
		return 0, nil, err
	}
	sp.SetAttr(obs.Int("stages", totalStages(compiled.Mapping)))
	return totalStages(compiled.Mapping), candidate, nil
}
