package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/workloads"
)

func TestForEachIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		const n = 100
		var hits [n]atomic.Int32
		err := forEachIndexed(context.Background(), n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

// TestForEachIndexedLowestIndexErrorWins checks the determinism contract:
// whichever worker fails first in wall-clock time, the reported error is
// the one a sequential loop would have stopped on.
func TestForEachIndexedLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := forEachIndexed(context.Background(), 50, workers, func(i int) error {
			if i == 3 || i == 40 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: err = %v, want fail at 3", workers, err)
		}
	}
}

func TestForEachIndexedStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := forEachIndexed(ctx, 1000, 4, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("all %d indices ran despite cancellation", got)
	}
}

func TestForEachIndexedZeroItems(t *testing.T) {
	if err := forEachIndexed(context.Background(), 0, 8, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

// TestOptimizeParallelismInvariant is the end-to-end determinism check
// behind the golden span-tree tests pinning Parallelism to 1: the
// optimization outcome — rewritten program, observations, stage history —
// must be identical whatever the worker count, because probe results are
// collected by index and sharded profiles merge to the sequential profile.
func TestOptimizeParallelismInvariant(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			trace, err := w.Trace(1)
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			optimize := func(parallelism int) *Result {
				res, err := New(Options{Parallelism: parallelism}).Optimize(
					p4.MustParse(w.Source), w.Config(), trace)
				if err != nil {
					t.Fatalf("optimize (parallelism %d): %v", parallelism, err)
				}
				return res
			}
			seq := optimize(1)
			par := optimize(4)
			if a, b := p4.Print(seq.Optimized), p4.Print(par.Optimized); a != b {
				t.Errorf("optimized program differs:\n--- sequential ---\n%s--- parallel ---\n%s", a, b)
			}
			if !reflect.DeepEqual(seq.Observations, par.Observations) {
				t.Errorf("observations differ:\nsequential: %+v\nparallel: %+v", seq.Observations, par.Observations)
			}
			var sa, sb []int
			for _, h := range seq.History {
				sa = append(sa, h.Stages)
			}
			for _, h := range par.History {
				sb = append(sb, h.Stages)
			}
			if !reflect.DeepEqual(sa, sb) {
				t.Errorf("stage history differs: %v vs %v", sa, sb)
			}
			if d := seq.FinalProfile.Diff(par.FinalProfile); d != "" {
				t.Errorf("final profiles differ: %s", d)
			}
		})
	}
}
