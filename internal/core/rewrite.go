// Package core implements P2GO itself: the profile-guided optimizer that
// works alongside the compiler. Phase 2 removes dependencies that do not
// manifest in the profile, Phase 3 shrinks table/register memory with
// binary search and verifies the profile is unchanged, and Phase 4 offloads
// rarely used self-contained code segments to the controller. Every change
// is reported as an Observation carrying the profile evidence that guided
// it, so the programmer can accept or reject it (§2.2).
package core

import (
	"fmt"

	"p2go/internal/p4"
)

// enclosure records one level of the control-tree path to a statement: the
// block, the index of the statement the path continues through, and how
// the block was entered from the statement above (zero-valued entry for
// the root block).
type enclosure struct {
	block *p4.BlockStmt
	idx   int
	// Entry descriptor: at most one of ifCond / viaApply is set.
	ifCond   p4.BoolExpr // entered through an if arm
	negated  bool        // ... the else arm
	viaApply string      // entered through a hit/miss arm of this table
	onHit    bool
}

// findApplyPath locates the apply statement of a table: the returned chain
// runs from the root block to the block holding the statement, and the last
// element's (block, idx) addresses the apply statement itself. Returns nil
// when the table is not applied.
func findApplyPath(root *p4.BlockStmt, table string) []enclosure {
	var search func(b *p4.BlockStmt, entry enclosure, chain []enclosure) []enclosure
	search = func(b *p4.BlockStmt, entry enclosure, chain []enclosure) []enclosure {
		if b == nil {
			return nil
		}
		for i, s := range b.Stmts {
			cur := entry
			cur.block = b
			cur.idx = i
			here := append(append([]enclosure(nil), chain...), cur)
			switch v := s.(type) {
			case *p4.ApplyStmt:
				if v.Table == table {
					return here
				}
				if f := search(v.Hit, enclosure{viaApply: v.Table, onHit: true}, here); f != nil {
					return f
				}
				if f := search(v.Miss, enclosure{viaApply: v.Table, onHit: false}, here); f != nil {
					return f
				}
			case *p4.IfStmt:
				if f := search(v.Then, enclosure{ifCond: v.Cond}, here); f != nil {
					return f
				}
				if f := search(v.Else, enclosure{ifCond: v.Cond, negated: true}, here); f != nil {
					return f
				}
			case *p4.BlockStmt:
				if f := search(v, entry, chain); f != nil {
					return f
				}
			}
		}
		return nil
	}
	return search(root, enclosure{}, nil)
}

// commonPrefixLen returns how many leading enclosures the two paths share
// (same block pointer and same statement index).
func commonPrefixLen(a, b []enclosure) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].block != b[i].block || a[i].idx != b[i].idx {
			return i
		}
	}
	return n
}

// DependencyGuard describes the runtime violation detector optionally
// inserted by Phase 2 (§3.2's "alternative approach to deal with
// inaccurate observations"): a table in `from`'s hit arm that matches on
// the same fields as `to` and counts packets for which the removed
// dependency manifests at runtime.
type DependencyGuard struct {
	Table    string
	Action   string
	Register string
	// From and To are the tables whose removed dependency it watches.
	From string
	To   string
}

// Names of the synthesized guard entities.
func guardNames(to string) (table, action, register, metaField string) {
	return "p2go_guard_" + to, "p2go_report_" + to, "p2go_viol_" + to, "g_" + to
}

// guardMetaType/guardMetaName declare the shared metadata carrying guard
// counters in flight.
const (
	guardMetaType = "p2go_guard_meta_t"
	guardMetaName = "p2go_guard_meta"
)

// moveIntoMissArm performs Phase 2's rewrite: the apply statement of table
// `to` is moved into the miss arm of table `from`'s apply statement,
// wrapped in whatever extra guards protected it at its original location.
// This expresses to the compiler that the two tables are mutually
// exclusive, removing their dependency.
//
// When withGuard is set, a violation detector is additionally inserted in
// `from`'s hit arm (under the same extra guards): a table reading `to`'s
// match fields whose single action increments a violation register. Its
// rules mirror `to`'s, so it hits exactly when the removed dependency
// manifests at runtime — the observation the programmer was asked to
// verify turned out wrong — without altering the packet's fate.
//
// The rewrite mutates ast in place (callers pass a clone).
func moveIntoMissArm(ast *p4.Program, from, to string, withGuard bool) (*DependencyGuard, error) {
	// Both tables live in the same control (dependencies never cross
	// pipelines); find it.
	var pathFrom, pathTo []enclosure
	for _, name := range []string{p4.IngressControl, p4.EgressControl} {
		c := ast.Control(name)
		if c == nil {
			continue
		}
		pf := findApplyPath(c.Body, from)
		pt := findApplyPath(c.Body, to)
		if pf != nil && pt != nil {
			pathFrom, pathTo = pf, pt
			break
		}
	}
	if pathFrom == nil || pathTo == nil {
		return nil, fmt.Errorf("core: tables %s and %s are not applied in the same control", from, to)
	}
	shared := commonPrefixLen(pathFrom, pathTo)
	if shared == len(pathFrom) || shared == len(pathTo) {
		return nil, fmt.Errorf("core: %s and %s are nested; cannot rewrite", from, to)
	}
	// Collect `to`'s extra guards below the divergence: every deeper
	// block must have been entered through an if arm (hit/miss arms are
	// not expressible as conditions at the new location). When the
	// divergence is two different statements of the same block, the
	// element at `shared` describes entry into the shared block and is
	// not a guard; when the paths diverge into different arms of the
	// same statement, it is one.
	extrasStart := shared + 1
	if pathTo[shared].block != pathFrom[shared].block {
		extrasStart = shared
	}
	var guards []enclosure
	for _, enc := range pathTo[extrasStart:] {
		if enc.viaApply != "" {
			return nil, fmt.Errorf("core: %s sits in a hit/miss arm of %s; cannot rewrite", to, enc.viaApply)
		}
		if enc.ifCond != nil {
			guards = append(guards, enc)
		}
	}

	// Detach `to`'s apply statement.
	last := pathTo[len(pathTo)-1]
	moved, ok := last.block.Stmts[last.idx].(*p4.ApplyStmt)
	if !ok || moved.Table != to {
		return nil, fmt.Errorf("core: internal: path to %s does not end at its apply", to)
	}
	last.block.Stmts = append(last.block.Stmts[:last.idx], last.block.Stmts[last.idx+1:]...)

	// Wrap it in its guards, innermost last.
	var stmt p4.Stmt = moved
	for i := len(guards) - 1; i >= 0; i-- {
		cond := guards[i].ifCond
		if guards[i].negated {
			cond = &p4.NotExpr{X: cond}
		}
		stmt = &p4.IfStmt{Cond: cond, Then: &p4.BlockStmt{Stmts: []p4.Stmt{stmt}}}
	}

	// Append to `from`'s miss arm.
	lastFrom := pathFrom[len(pathFrom)-1]
	fromApply, ok := lastFrom.block.Stmts[lastFrom.idx].(*p4.ApplyStmt)
	if !ok || fromApply.Table != from {
		return nil, fmt.Errorf("core: internal: path to %s does not end at its apply", from)
	}
	if fromApply.Miss == nil {
		fromApply.Miss = &p4.BlockStmt{}
	}
	fromApply.Miss.Stmts = append(fromApply.Miss.Stmts, stmt)

	if !withGuard {
		return nil, nil
	}
	guard, guardStmt, err := buildDependencyGuard(ast, from, to)
	if err != nil {
		return nil, err
	}
	// The detector runs when `from` HITS and `to` would have applied:
	// same extra guards, inside the hit arm.
	var wrapped p4.Stmt = guardStmt
	for i := len(guards) - 1; i >= 0; i-- {
		cond := cloneCond(guards[i].ifCond)
		if guards[i].negated {
			cond = &p4.NotExpr{X: cond}
		}
		wrapped = &p4.IfStmt{Cond: cond, Then: &p4.BlockStmt{Stmts: []p4.Stmt{wrapped}}}
	}
	if fromApply.Hit == nil {
		fromApply.Hit = &p4.BlockStmt{}
	}
	fromApply.Hit.Stmts = append(fromApply.Hit.Stmts, wrapped)
	return guard, nil
}

// cloneCond deep-copies a condition by printing and reusing the statement
// cloner (conditions are small).
func cloneCond(cond p4.BoolExpr) p4.BoolExpr {
	ifs := p4.CloneStmt(&p4.IfStmt{Cond: cond, Then: &p4.BlockStmt{}}).(*p4.IfStmt)
	return ifs.Cond
}

// buildDependencyGuard declares the violation register, metadata, action,
// and table for the runtime detector, returning the apply statement to
// insert.
func buildDependencyGuard(ast *p4.Program, from, to string) (*DependencyGuard, *p4.ApplyStmt, error) {
	toDecl := ast.Table(to)
	if toDecl == nil {
		return nil, nil, fmt.Errorf("core: guard target %s missing", to)
	}
	tableName, actionName, regName, metaField := guardNames(to)
	if ast.Table(tableName) != nil {
		return nil, nil, fmt.Errorf("core: guard %s already present", tableName)
	}
	// Shared guard metadata header (one 32-bit field per guard).
	ht := ast.HeaderType(guardMetaType)
	if ht == nil {
		ht = &p4.HeaderType{Name: guardMetaType}
		inst := &p4.Instance{TypeName: guardMetaType, Name: guardMetaName, Metadata: true}
		ast.HeaderTypes = append(ast.HeaderTypes, ht)
		ast.Instances = append(ast.Instances, inst)
		ast.Decls = append(ast.Decls, ht, inst)
	}
	ht.Fields = append(ht.Fields, &p4.FieldDecl{Name: metaField, Width: 32})

	reg := &p4.Register{Name: regName, Width: 32, InstanceCount: 1}
	metaRef := p4.FieldRef{Instance: guardMetaName, Field: metaField}
	regRef := p4.FieldRef{Instance: regName}
	act := &p4.ActionDecl{
		Name: actionName,
		Body: []*p4.PrimitiveCall{
			{Name: p4.PrimRegisterRead, Args: []p4.Expr{metaRef, regRef, p4.IntLit{Value: 0}}},
			{Name: p4.PrimAddToField, Args: []p4.Expr{metaRef, p4.IntLit{Value: 1}}},
			{Name: p4.PrimRegisterWrite, Args: []p4.Expr{regRef, p4.IntLit{Value: 0}, metaRef}},
		},
	}
	tbl := &p4.TableDecl{
		Name:        tableName,
		ActionNames: []string{actionName},
		Size:        toDecl.Size,
	}
	for _, r := range toDecl.Reads {
		cp := *r
		tbl.Reads = append(tbl.Reads, &cp)
	}
	ast.Registers = append(ast.Registers, reg)
	ast.Actions = append(ast.Actions, act)
	ast.Tables = append(ast.Tables, tbl)
	ast.Decls = append(ast.Decls, reg, act, tbl)
	return &DependencyGuard{
		Table: tableName, Action: actionName, Register: regName,
		From: from, To: to,
	}, &p4.ApplyStmt{Table: tableName}, nil
}

// tableRegisters lists the registers accessed by a table's actions, by
// scanning primitive calls in the AST (the IR equivalent without needing a
// build).
func tableRegisters(ast *p4.Program, table string) []string {
	t := ast.Table(table)
	if t == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, an := range t.ActionNames {
		act := ast.Action(an)
		if act == nil {
			continue
		}
		for _, call := range act.Body {
			var reg string
			switch call.Name {
			case p4.PrimRegisterRead:
				reg = call.Args[1].(p4.FieldRef).Instance
			case p4.PrimRegisterWrite:
				reg = call.Args[0].(p4.FieldRef).Instance
			default:
				continue
			}
			if !seen[reg] {
				seen[reg] = true
				out = append(out, reg)
			}
		}
	}
	return out
}

// memoryKnob abstracts "the memory allocated to a table": match entries for
// ordinary tables, register cells for tables built on register arrays.
type memoryKnob struct {
	table string
	// register is the primary register (largest cell count), empty for
	// match-entry knobs.
	register string
	// full is the current knob value (entries or cells).
	full int
}

// knobFor derives the memory knob of a table.
func knobFor(ast *p4.Program, table string) (memoryKnob, bool) {
	regs := tableRegisters(ast, table)
	if len(regs) > 0 {
		primary := regs[0]
		max := 0
		for _, r := range regs {
			if reg := ast.Register(r); reg != nil && reg.InstanceCount > max {
				max = reg.InstanceCount
				primary = r
			}
		}
		if max <= 1 {
			return memoryKnob{}, false
		}
		return memoryKnob{table: table, register: primary, full: max}, true
	}
	t := ast.Table(table)
	if t == nil || t.Size <= 1 || len(t.Reads) == 0 {
		return memoryKnob{}, false
	}
	return memoryKnob{table: table, full: t.Size}, true
}

// applyKnob rewrites ast (in place) so the table's memory knob takes the
// new value. For register knobs, every register of the table is scaled
// proportionally and the hash-modulus arguments indexing them are updated,
// exactly as P2GO's resize rewrite must do to keep the program well-formed.
func applyKnob(ast *p4.Program, knob memoryKnob, value int) error {
	if value < 1 {
		return fmt.Errorf("core: knob value %d out of range", value)
	}
	if knob.register == "" {
		t := ast.Table(knob.table)
		if t == nil {
			return fmt.Errorf("core: table %s not found", knob.table)
		}
		t.Size = value
		return nil
	}
	regs := tableRegisters(ast, knob.table)
	scaleNum, scaleDen := value, knob.full
	for _, rName := range regs {
		reg := ast.Register(rName)
		oldCells := reg.InstanceCount
		newCells := oldCells * scaleNum / scaleDen
		if newCells < 1 {
			newCells = 1
		}
		reg.InstanceCount = newCells
		if err := fixHashModulus(ast, knob.table, rName, oldCells, newCells); err != nil {
			return err
		}
	}
	return nil
}

// fixHashModulus updates the size argument of hash computations that index
// the given register within the table's actions: it finds register
// read/write primitives on the register, identifies the index field, and
// rewrites the matching modify_field_with_hash_based_offset size argument.
func fixHashModulus(ast *p4.Program, table, register string, oldCells, newCells int) error {
	t := ast.Table(table)
	for _, an := range t.ActionNames {
		act := ast.Action(an)
		if act == nil {
			continue
		}
		// Index fields used to access the register in this action.
		idxFields := map[string]bool{}
		for _, call := range act.Body {
			switch call.Name {
			case p4.PrimRegisterRead:
				if call.Args[1].(p4.FieldRef).Instance == register {
					if ref, ok := call.Args[2].(p4.FieldRef); ok {
						idxFields[ref.String()] = true
					}
				}
			case p4.PrimRegisterWrite:
				if call.Args[0].(p4.FieldRef).Instance == register {
					if ref, ok := call.Args[1].(p4.FieldRef); ok {
						idxFields[ref.String()] = true
					}
				}
			}
		}
		if len(idxFields) == 0 {
			continue
		}
		for _, call := range act.Body {
			if call.Name != p4.PrimHashOffset {
				continue
			}
			dst, ok := call.Args[0].(p4.FieldRef)
			if !ok || !idxFields[dst.String()] {
				continue
			}
			lit, ok := call.Args[3].(p4.IntLit)
			if !ok {
				return fmt.Errorf("core: hash modulus of %s in action %s is not a literal", register, an)
			}
			if int(lit.Value) != oldCells {
				return fmt.Errorf("core: hash modulus %d of %s does not match register size %d",
					lit.Value, register, oldCells)
			}
			call.Args[3] = p4.IntLit{Value: uint64(newCells)}
		}
	}
	return nil
}

// pruneUnused removes declarations that are no longer reachable from the
// control flow: unapplied tables, unreferenced actions, registers, field
// lists, and calculations. Header types and instances stay (the parser
// still references them). Used to tidy the optimized program Phase 4
// produces.
func pruneUnused(ast *p4.Program) {
	applied := map[string]bool{}
	for _, c := range ast.Controls {
		for _, t := range p4.TablesInBlock(c.Body) {
			applied[t] = true
		}
	}
	usedActions := map[string]bool{}
	usedRegisters := map[string]bool{}
	usedCounters := map[string]bool{}
	usedCalcs := map[string]bool{}
	usedFieldLists := map[string]bool{}
	for _, t := range ast.Tables {
		if !applied[t.Name] {
			continue
		}
		for _, an := range t.ActionNames {
			usedActions[an] = true
		}
	}
	for _, a := range ast.Actions {
		if !usedActions[a.Name] {
			continue
		}
		for _, call := range a.Body {
			switch call.Name {
			case p4.PrimRegisterRead:
				usedRegisters[call.Args[1].(p4.FieldRef).Instance] = true
			case p4.PrimRegisterWrite:
				usedRegisters[call.Args[0].(p4.FieldRef).Instance] = true
			case p4.PrimCount:
				usedCounters[call.Args[0].(p4.FieldRef).Instance] = true
			case p4.PrimHashOffset:
				usedCalcs[call.Args[2].(p4.FieldRef).Instance] = true
			}
		}
	}
	for _, c := range ast.Calculations {
		if usedCalcs[c.Name] {
			usedFieldLists[c.Input] = true
		}
	}
	keep := func(d p4.Decl) bool {
		switch v := d.(type) {
		case *p4.TableDecl:
			return applied[v.Name]
		case *p4.ActionDecl:
			return usedActions[v.Name]
		case *p4.Register:
			return usedRegisters[v.Name]
		case *p4.Counter:
			return usedCounters[v.Name]
		case *p4.FieldListCalc:
			return usedCalcs[v.Name]
		case *p4.FieldList:
			return usedFieldLists[v.Name]
		}
		return true
	}
	var decls []p4.Decl
	for _, d := range ast.Decls {
		if keep(d) {
			decls = append(decls, d)
		}
	}
	ast.Decls = decls
	filterTables := ast.Tables[:0]
	for _, t := range ast.Tables {
		if applied[t.Name] {
			filterTables = append(filterTables, t)
		}
	}
	ast.Tables = filterTables
	filterActions := ast.Actions[:0]
	for _, a := range ast.Actions {
		if usedActions[a.Name] {
			filterActions = append(filterActions, a)
		}
	}
	ast.Actions = filterActions
	filterRegs := ast.Registers[:0]
	for _, r := range ast.Registers {
		if usedRegisters[r.Name] {
			filterRegs = append(filterRegs, r)
		}
	}
	ast.Registers = filterRegs
	filterCtrs := ast.Counters[:0]
	for _, c := range ast.Counters {
		if usedCounters[c.Name] {
			filterCtrs = append(filterCtrs, c)
		}
	}
	ast.Counters = filterCtrs
	filterCalcs := ast.Calculations[:0]
	for _, c := range ast.Calculations {
		if usedCalcs[c.Name] {
			filterCalcs = append(filterCalcs, c)
		}
	}
	ast.Calculations = filterCalcs
	filterFLs := ast.FieldLists[:0]
	for _, f := range ast.FieldLists {
		if usedFieldLists[f.Name] {
			filterFLs = append(filterFLs, f)
		}
	}
	ast.FieldLists = filterFLs
}
