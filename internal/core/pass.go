package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// passDef is one registered optimization pass. The registry is the single
// source of truth for what the pipeline can run: IDs are stable API
// (Options.Passes, service.JobSpec.Passes, report rows), span names and
// history labels are pinned by the golden span-tree tests, and the
// declared analysis needs document which cached artifacts the pass
// consumes from the manager's funnels.
type passDef struct {
	id       string
	doc      string
	span     string   // obs span wrapping the whole pass
	label    string   // stage-history snapshot label recorded after the pass ("" = none)
	needs    []string // analyses consumed through the manager: "compile", "profile", "deps"
	readOnly bool     // reports candidates without mutating the program; not selectable via Options.Passes
	implicit bool     // always runs first (profiling); not selectable via Options.Passes
	optIn    bool     // selectable via Options.Passes but not part of the default schedule
	run      func(*run, context.Context) error
}

// passRegistry lists every pass in default execution order. phase1 is
// implicit (profiling is the precondition of every other pass), and
// offload-report is the read-only pass behind OffloadCandidates.
var passRegistry = []*passDef{
	{
		id:       "phase1",
		doc:      "Profile the program on the trace: per-table hit counts, action frequencies, co-occurrence evidence.",
		span:     "phase1.profile",
		needs:    []string{"compile", "profile"},
		implicit: true,
	},
	{
		id: "tune",
		doc: "Search the program's @tunable knobs (coordinate descent over a geometric lattice): minimize stages subject to a " +
			"profile-measured accuracy floor; every candidate instantiation flows through the analysis cache. Opt-in; schedule it " +
			"first — it restarts from the pristine program at the winning bindings.",
		span:  "tune.search",
		label: "tuning-parameters",
		needs: []string{"compile", "profile"},
		optIn: true,
		run:   (*run).tunePass,
	},
	{
		id:    "phase2",
		doc:   "Remove table dependencies the profile shows never manifest, so the allocator can co-locate tables (§3 dependency removal).",
		span:  "phase2.remove-dependencies",
		label: "removing-dependencies",
		needs: []string{"compile", "profile", "deps"},
		run:   (*run).phase2,
	},
	{
		id:    "phase3",
		doc:   "Binary-search the smallest table and register sizes that still cover the observed working set and save stages (§3 memory reduction).",
		span:  "phase3.reduce-memory",
		label: "reducing-memory",
		needs: []string{"compile", "profile"},
		run:   (*run).phase3,
	},
	{
		id:    "phase4",
		doc:   "Offload the best rarely-hit self-contained segment to the controller behind a To_Ctl redirect (§3 controller offload).",
		span:  "phase4.offload",
		label: "offloading-code",
		needs: []string{"compile", "profile", "deps"},
		run:   (*run).phase4,
	},
	{
		id:       "offload-report",
		doc:      "Measure every self-contained offload segment (stages saved, redirect fraction) without applying any; backs OffloadCandidates.",
		span:     "phase4.offload-report",
		needs:    []string{"compile", "profile", "deps"},
		readOnly: true,
		run: func(r *run, ctx context.Context) error {
			reps, err := r.offloadCandidates(ctx)
			if err != nil {
				return err
			}
			r.reports = reps
			return nil
		},
	},
}

// passByID indexes the registry; built once at init.
var passByID = func() map[string]*passDef {
	m := make(map[string]*passDef, len(passRegistry))
	for _, p := range passRegistry {
		m[p.id] = p
	}
	return m
}()

// PassInfo describes one registered pass for callers (CLI listing, facade,
// docs). It mirrors the registry without exposing the run function.
type PassInfo struct {
	ID       string   `json:"id"`
	Doc      string   `json:"doc"`
	Needs    []string `json:"needs"`
	Default  bool     `json:"default"`   // runs when Options.Passes is unset
	ReadOnly bool     `json:"read_only"` // reports only; never mutates the program
	Implicit bool     `json:"implicit"`  // always runs first; not selectable
	OptIn    bool     `json:"opt_in"`    // selectable, but only runs when scheduled explicitly
}

// Passes lists every registered pass in default execution order.
func Passes() []PassInfo {
	out := make([]PassInfo, 0, len(passRegistry))
	for _, p := range passRegistry {
		out = append(out, PassInfo{
			ID:       p.id,
			Doc:      p.doc,
			Needs:    append([]string(nil), p.needs...),
			Default:  !p.readOnly && !p.implicit && !p.optIn,
			ReadOnly: p.readOnly,
			Implicit: p.implicit,
			OptIn:    p.optIn,
		})
	}
	return out
}

// DefaultPassIDs is the order run when Options.Passes is unset: every
// selectable, non-opt-in pass in registry order (the paper's phase
// 2 → 3 → 4; "tune" only runs when scheduled explicitly).
func DefaultPassIDs() []string {
	var out []string
	for _, p := range passRegistry {
		if !p.readOnly && !p.implicit && !p.optIn {
			out = append(out, p.id)
		}
	}
	return out
}

// ValidatePasses rejects unknown or non-selectable pass IDs. It is the
// shared gate for Options.Passes, the -passes CLI flag, and
// service.JobSpec.Passes, so every layer reports the same error.
// Duplicates are allowed: re-running a pass is a legitimate schedule.
func ValidatePasses(ids []string) error {
	for _, id := range ids {
		p, ok := passByID[id]
		if !ok || p.readOnly || p.implicit {
			return fmt.Errorf("core: unknown pass %q (selectable passes: %s)", id, strings.Join(selectablePassIDs(), ", "))
		}
	}
	return nil
}

// selectablePassIDs lists every pass Options.Passes may name, in registry
// order: the default schedule plus the opt-in passes.
func selectablePassIDs() []string {
	var out []string
	for _, p := range passRegistry {
		if !p.readOnly && !p.implicit {
			out = append(out, p.id)
		}
	}
	return out
}

// PassStat records one executed pass: how long it ran, how many of its
// compiles/profiles were answered from the analysis cache, and how many
// observations it produced. Exposed on Result.PassStats in execution
// order (phase1 first) and surfaced as report rows and span attrs.
type PassStat struct {
	ID            string
	Duration      time.Duration
	CompileHits   int
	CompileMisses int
	ProfileHits   int
	ProfileMisses int
	Observations  int
}

// Int returns a pointer to v, for the Options fields that distinguish
// unset (nil → default) from an explicit zero.
func Int(v int) *int { return &v }

// Float returns a pointer to v, for the Options fields that distinguish
// unset (nil → default) from an explicit zero.
func Float(v float64) *float64 { return &v }

// sortedPassIDs returns every registered ID sorted; used by tests and
// error messages that want a stable full listing.
func sortedPassIDs() []string {
	out := make([]string, 0, len(passByID))
	for id := range passByID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
