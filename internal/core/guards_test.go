package core

import (
	"strings"
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/programs"
	"p2go/internal/rt"
	"p2go/internal/sim"
)

// optimizeEx1WithGuards runs the pipeline with runtime violation detectors.
func optimizeEx1WithGuards(t *testing.T) *Result {
	t.Helper()
	return optimizeEx1(t, Options{InsertDependencyGuards: true, DisablePhase3: true, DisablePhase4: true})
}

// TestGuardInsertedWithRewrite: the removed ACL dependency gets a detector
// table in ACL_UDP's hit arm, mirroring ACL_DHCP's reads and rules.
func TestGuardInsertedWithRewrite(t *testing.T) {
	res := optimizeEx1WithGuards(t)
	if len(res.Guards) != 1 {
		t.Fatalf("guards = %v, want one for the removed ACL dependency", res.Guards)
	}
	g := res.Guards[0]
	if g.From != "ACL_UDP" || g.To != "ACL_DHCP" {
		t.Errorf("guard watches %s -> %s, want ACL_UDP -> ACL_DHCP", g.From, g.To)
	}
	tbl := res.Optimized.Table(g.Table)
	if tbl == nil {
		t.Fatalf("guard table %s not declared", g.Table)
	}
	// Same reads as the guarded table.
	want := res.Optimized.Table("ACL_DHCP").Reads[0].Field.String()
	if got := tbl.Reads[0].Field.String(); got != want {
		t.Errorf("guard reads %s, want %s", got, want)
	}
	if res.Optimized.Register(g.Register) == nil {
		t.Error("violation register not declared")
	}
	// Guard rules mirror ACL_DHCP's.
	guardRules := res.OptimizedConfig.ForTable(g.Table)
	dhcpRules := res.OptimizedConfig.ForTable("ACL_DHCP")
	if len(guardRules) != len(dhcpRules) || len(guardRules) == 0 {
		t.Errorf("guard rules = %d, want %d", len(guardRules), len(dhcpRules))
	}
	// The rewritten program still parses and checks.
	if _, err := p4.Parse(p4.Print(res.Optimized)); err != nil {
		t.Fatalf("guarded program does not reparse: %v", err)
	}
	// The guard does not cost the saved stage.
	if res.StagesAfter() != 7 {
		t.Errorf("stages after = %d, want 7 (guard must be free)", res.StagesAfter())
	}
}

// TestGuardDetectsRuntimeViolation is the §3.2 scenario: the operator later
// installs a rule that makes the removed dependency manifest (blocking the
// DHCP port in ACL_UDP); the detector counts the violating packets while
// the normal trace leaves it at zero.
func TestGuardDetectsRuntimeViolation(t *testing.T) {
	res := optimizeEx1WithGuards(t)
	g := res.Guards[0]

	ast := p4.Clone(res.Optimized)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New(prog, res.OptimizedConfig, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	violations := func() uint64 { return sw.Register(g.Register)[0] }

	// Normal traffic: a rogue DHCP packet is dropped by ACL_DHCP (now in
	// the miss arm); no violation.
	dhcpPkt := packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: packet.IP(10, 9, 0, 1), Dst: packet.IP(10, 0, 0, 2)},
		&packet.UDP{SrcPort: 68, DstPort: packet.PortDHCPServer},
		&packet.DHCP{Op: 1, HType: 1, HLen: 6, XID: 7},
	)
	out, err := sw.Process(sim.Input{Port: programs.UntrustedPort, Data: dhcpPkt})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped {
		t.Fatal("rogue DHCP should still be dropped after the rewrite")
	}
	if violations() != 0 {
		t.Fatalf("violations = %d before any conflicting rule", violations())
	}

	// The operator blocks the DHCP server port in ACL_UDP — now a rogue
	// DHCP packet hits ACL_UDP, so ACL_DHCP is skipped; the detector
	// fires instead.
	if err := sw.InstallRule(rt.Rule{
		Table:   "ACL_UDP",
		Action:  "acl_udp_drop",
		Matches: []rt.FieldMatch{{Kind: p4.MatchExact, Value: packet.PortDHCPServer}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, err := sw.Process(sim.Input{Port: programs.UntrustedPort, Data: dhcpPkt})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Dropped {
			t.Fatal("packet should be dropped by ACL_UDP")
		}
	}
	if violations() != 3 {
		t.Errorf("violations = %d, want 3 (dependency manifested at runtime)", violations())
	}
	// A trusted-port DHCP packet also hits ACL_UDP but would MISS
	// ACL_DHCP: no violation counted.
	if _, err := sw.Process(sim.Input{Port: programs.TrustedPort, Data: dhcpPkt}); err != nil {
		t.Fatal(err)
	}
	if violations() != 3 {
		t.Errorf("violations = %d after non-matching packet, want 3", violations())
	}
}

// TestGuardObservationUnchanged: the pipeline's observations and stage
// history match the guard-less run.
func TestGuardKeepsPipelineResults(t *testing.T) {
	guarded := optimizeEx1WithGuards(t)
	plain := optimizeEx1(t, Options{DisablePhase3: true, DisablePhase4: true})
	if guarded.StagesBefore() != plain.StagesBefore() || guarded.StagesAfter() != plain.StagesAfter() {
		t.Errorf("guarded stages %d->%d vs plain %d->%d",
			guarded.StagesBefore(), guarded.StagesAfter(), plain.StagesBefore(), plain.StagesAfter())
	}
	// The profile with guards installed shows the detector never fired.
	if hits := guarded.FinalProfile.Hits[guarded.Guards[0].Table]; hits != 0 {
		t.Errorf("guard hit %d times on the profiling trace, want 0", hits)
	}
}

// TestGuardsOnFullPipeline: guards survive Phases 3 and 4 (the guard table
// is not an offload candidate — its register is data-plane state the
// detector needs).
func TestGuardsOnFullPipeline(t *testing.T) {
	res := optimizeEx1(t, Options{InsertDependencyGuards: true})
	if res.StagesAfter() != 3 {
		t.Errorf("full pipeline with guards: %d stages, want 3\n%s",
			res.StagesAfter(), RenderHistory(res.History))
	}
	if len(res.Guards) == 0 {
		t.Fatal("no guards recorded")
	}
	if res.Optimized.Table(res.Guards[0].Table) == nil {
		t.Error("guard table missing from the final program")
	}
	for _, o := range res.Observations {
		if o.Phase == PhaseOffload && o.Accepted {
			for _, tbl := range o.Tables {
				if strings.HasPrefix(tbl, "p2go_guard_") {
					t.Error("guard table must not be offloaded")
				}
			}
		}
	}
}
