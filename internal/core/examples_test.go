package core

// End-to-end reproduction of the paper's Table 3: each evaluation example
// is shortened by (at least) one stage by the phase the paper names.

import (
	"strings"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

// TestTable3NATGRE: Removing Dependencies, 4 -> 3 stages.
func TestTable3NATGRE(t *testing.T) {
	trace := trafficgen.NATGRETrace(trafficgen.NATGRESpec{Seed: 1})
	res, err := New(Options{}).Optimize(p4.MustParse(programs.NATGRE), programs.NATGREConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != 4 || res.StagesAfter() != 3 {
		t.Fatalf("NAT & GRE stages %d -> %d, want 4 -> 3\n%s",
			res.StagesBefore(), res.StagesAfter(), RenderHistory(res.History))
	}
	var accepted []Observation
	for _, o := range res.Observations {
		if o.Accepted {
			accepted = append(accepted, o)
		}
	}
	if len(accepted) != 1 || accepted[0].Phase != PhaseDependencies {
		t.Fatalf("observations = %v, want exactly one dependency removal", accepted)
	}
	if accepted[0].Tables[0] != "nat" || accepted[0].Tables[1] != "gre" {
		t.Errorf("removed dependency %v, want nat -> gre", accepted[0].Tables)
	}
	if len(res.OffloadedTables) != 0 {
		t.Errorf("NAT & GRE should not offload anything, got %v", res.OffloadedTables)
	}
}

// TestTable3Sourceguard: Reducing Memory, 5 -> 4 stages, one register array
// shrunk by 8.4%.
func TestTable3Sourceguard(t *testing.T) {
	trace := trafficgen.SourceguardTrace(trafficgen.SourceguardSpec{Seed: 1})
	res, err := New(Options{}).Optimize(p4.MustParse(programs.Sourceguard), programs.SourceguardConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != 5 || res.StagesAfter() != 4 {
		t.Fatalf("Sourceguard stages %d -> %d, want 5 -> 4\n%s",
			res.StagesBefore(), res.StagesAfter(), RenderHistory(res.History))
	}
	var mem *Observation
	for i := range res.Observations {
		if res.Observations[i].Phase == PhaseMemory && res.Observations[i].Accepted {
			mem = &res.Observations[i]
		}
	}
	if mem == nil {
		t.Fatal("no accepted memory reduction")
	}
	if mem.Kind != "reduce-register" {
		t.Errorf("kind = %s, want reduce-register", mem.Kind)
	}
	if !strings.Contains(mem.Summary, "bf_r1") {
		t.Errorf("summary should name bf_r1: %s", mem.Summary)
	}
	// The paper's headline: a single register array reduced by ~8.4%.
	if !strings.Contains(mem.Summary, "-8.4%") {
		t.Errorf("summary should report the 8.4%% reduction: %s", mem.Summary)
	}
	if got := res.Optimized.Register("bf_r1").InstanceCount; got != programs.SourceguardBFReducedCells {
		t.Errorf("bf_r1 reduced to %d cells, want %d", got, programs.SourceguardBFReducedCells)
	}
	if got := res.Optimized.Register("bf_r2").InstanceCount; got != programs.SourceguardBFCells {
		t.Errorf("bf_r2 changed to %d cells, want untouched %d", got, programs.SourceguardBFCells)
	}
	if len(res.OffloadedTables) != 0 {
		t.Errorf("Sourceguard should not offload anything, got %v", res.OffloadedTables)
	}
}

// TestTable3FailureDetection: Offloading Code, 4 -> 2 stages (the CMS
// branch moves to the controller).
func TestTable3FailureDetection(t *testing.T) {
	trace := trafficgen.FailureTrace(trafficgen.FailureSpec{Seed: 1})
	res, err := New(Options{}).Optimize(p4.MustParse(programs.FailureDetection), programs.FailureConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != 4 || res.StagesAfter() != 2 {
		t.Fatalf("Failure Detection stages %d -> %d, want 4 -> 2\n%s",
			res.StagesBefore(), res.StagesAfter(), RenderHistory(res.History))
	}
	want := map[string]bool{"retrans_cms_1": true, "retrans_cms_2": true, "FailureAlarm": true}
	if len(res.OffloadedTables) != len(want) {
		t.Fatalf("offloaded = %v, want the CMS branch", res.OffloadedTables)
	}
	for _, tbl := range res.OffloadedTables {
		if !want[tbl] {
			t.Errorf("unexpected offloaded table %s", tbl)
		}
	}
	// "Only a few packets use the CMS": the redirect is a small fraction.
	if res.RedirectedFraction <= 0 || res.RedirectedFraction > 0.05 {
		t.Errorf("redirected fraction = %.4f, want (0, 0.05]", res.RedirectedFraction)
	}
	// The alarm fired during profiling (there was a failure in the trace).
	if res.Profile.Hits["FailureAlarm"] == 0 {
		t.Error("trace should trigger the failure alarm")
	}
	if res.Profile.Hits["FailureAlarm"] >= res.Profile.Hits["retrans_cms_1"] {
		t.Error("alarm should match less often than the CMS is used")
	}
}

// TestDoesNotFitStress: §2.2's "what if the program does not fit?" — the
// 14-deep ACL chain exceeds the 12-stage target; Phase 2 folds it into
// nested miss arms until it fits in a single stage.
func TestDoesNotFitStress(t *testing.T) {
	trace := trafficgen.StressTrace(3000, 1)
	res, err := New(Options{}).Optimize(p4.MustParse(programs.Stress()), programs.StressConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != programs.StressChainLength {
		t.Fatalf("initial stages = %d, want %d", res.StagesBefore(), programs.StressChainLength)
	}
	if res.History[0].Fits {
		t.Error("stress program must not fit the 12-stage target initially")
	}
	if res.StagesAfter() != 1 {
		t.Errorf("final stages = %d, want 1\n%s", res.StagesAfter(), RenderHistory(res.History))
	}
	last := res.History[len(res.History)-1]
	if !last.Fits {
		t.Error("optimized stress program should fit")
	}
	removals := 0
	for _, o := range res.Observations {
		if o.Phase == PhaseDependencies && o.Accepted {
			removals++
		}
	}
	if removals != programs.StressChainLength-1 {
		t.Errorf("dependency removals = %d, want %d", removals, programs.StressChainLength-1)
	}
}

// TestQuickstartNoOpportunities: a tight two-stage router has nothing for
// P2GO to optimize — the pipeline reports no accepted observations.
func TestQuickstartNoOpportunities(t *testing.T) {
	trace := trafficgen.QuickstartTrace(1000, 1)
	res, err := New(Options{}).Optimize(p4.MustParse(programs.Quickstart), programs.QuickstartConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != 2 || res.StagesAfter() != 2 {
		t.Errorf("quickstart stages %d -> %d, want 2 -> 2", res.StagesBefore(), res.StagesAfter())
	}
	for _, o := range res.Observations {
		if o.Accepted {
			t.Errorf("unexpected accepted observation: %s", o)
		}
	}
}
