package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndexed runs fn(0..n-1) on up to workers goroutines and waits for
// completion. It is the shared fan-out primitive for Phase 3's halving
// probes and Phase 4's segment measurements: callers pre-size a results
// slice and have fn store into results[i], so observation order is the
// index order regardless of which worker finished first.
//
// Error handling is deterministic too: when several fn calls fail, the
// error with the lowest index wins — the same error a sequential loop
// would have stopped on. A failure (or ctx cancellation) stops workers
// from claiming further indices, but already-running calls finish.
// workers <= 1 (or n <= 1) runs inline on the calling goroutine with no
// goroutines at all, which keeps span creation order — and therefore the
// exporter's span trees — identical to the historical sequential code.
func forEachIndexed(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx int
		failed   atomic.Bool
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					record(int(next.Load()), err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
