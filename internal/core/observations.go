package core

import (
	"fmt"
	"strings"
	"time"

	"p2go/internal/p4"
)

// Phase identifies a P2GO phase.
type Phase int

// P2GO phases (§2.2).
const (
	PhaseProfiling Phase = iota + 1
	PhaseDependencies
	PhaseMemory
	PhaseOffload
	PhaseTune
)

func (p Phase) String() string {
	switch p {
	case PhaseProfiling:
		return "profiling"
	case PhaseDependencies:
		return "removing-dependencies"
	case PhaseMemory:
		return "reducing-memory"
	case PhaseOffload:
		return "offloading-code"
	case PhaseTune:
		return "tuning-parameters"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Observation is one profile-guided finding, always reported to the
// programmer together with the evidence that produced it — accepted
// optimizations and rejected candidates alike ("P2GO reports the
// adaptations it made ... together with the profile-based observations
// that guided each individual change").
type Observation struct {
	Phase    Phase
	Kind     string // "remove-dependency", "reduce-table", "reduce-register", "offload-segment"
	Accepted bool
	// Summary is the one-line human-readable statement of the change.
	Summary string
	// Evidence states the profile facts that justify (or reject) it.
	Evidence string
	// Tables involved in the change.
	Tables []string
	// StagesBefore/After bracket the pipeline length around the change
	// (equal when the candidate was rejected).
	StagesBefore int
	StagesAfter  int
	// Details carries kind-specific values (sizes, fractions) for
	// programmatic consumers.
	Details map[string]string
}

func (o Observation) String() string {
	verdict := "applied"
	if !o.Accepted {
		verdict = "rejected"
	}
	return fmt.Sprintf("[%s/%s] %s (%s) — evidence: %s; stages %d -> %d",
		o.Phase, verdict, o.Summary, strings.Join(o.Tables, ","), o.Evidence,
		o.StagesBefore, o.StagesAfter)
}

// StageSnapshot records the pipeline length after one phase, reproducing
// the rows of the paper's Table 2.
type StageSnapshot struct {
	Label string // "initial", "removing-dependencies", ...
	// Stages is the optimization objective: ingress plus egress stages.
	// For ingress-only programs (all the paper's examples) it equals
	// IngressStages.
	Stages        int
	IngressStages int
	EgressStages  int
	Fits          bool
	Summary       string // per-stage table layout
	// Duration is the wall time since the previous snapshot (for the
	// first, since the run began) — the cost of the work leading up to
	// this row. The daemon aggregates these into per-phase metrics.
	Duration time.Duration
}

// Report renders the artifact P2GO hands the programmer (Fig. 2): the
// optimized program's stage history, every observation with its evidence
// (accepted and rejected), the offloaded tables the controller must
// implement, and the behavior summary. The programmer verifies the
// observations and re-runs with optimizations disabled if any look
// trace-specific.
func (r *Result) Report() string {
	var b strings.Builder
	b.WriteString("P2GO optimization report\n")
	b.WriteString("========================\n\n")
	fmt.Fprintf(&b, "pipeline stages: %d -> %d\n", r.StagesBefore(), r.StagesAfter())
	if pf := r.FinalProfile; pf != nil && pf.Engine != nil {
		fmt.Fprintf(&b, "replay engine: %s\n", pf.Engine)
	} else if pf := r.Profile; pf != nil && pf.Engine != nil {
		fmt.Fprintf(&b, "replay engine: %s\n", pf.Engine)
	}
	if len(r.Bindings) > 0 {
		fmt.Fprintf(&b, "tunable bindings: %s\n", p4.FormatBindings(r.Bindings))
		for _, k := range r.Tunables {
			marker := ""
			if k.Value != k.Default {
				marker = "  (changed)"
			}
			fmt.Fprintf(&b, "  %-16s %d in [%d, %d], default %d%s\n",
				k.Name, k.Value, k.Min, k.Max, k.Default, marker)
		}
	}
	b.WriteString("\nstage history:\n")
	b.WriteString(RenderHistory(r.History))
	b.WriteString("\nobservations to verify:\n")
	if len(r.Observations) == 0 {
		b.WriteString("  (none: no optimization opportunities found)\n")
	}
	for i, o := range r.Observations {
		verdict := "APPLIED "
		if !o.Accepted {
			verdict = "REJECTED"
		}
		fmt.Fprintf(&b, "  %2d. [%s] %s\n      evidence: %s\n", i+1, verdict, o.Summary, o.Evidence)
	}
	if len(r.OffloadedTables) > 0 {
		fmt.Fprintf(&b, "\noffloaded to the controller (implement these): %s\n",
			strings.Join(r.OffloadedTables, ", "))
		fmt.Fprintf(&b, "redirected traffic on the trace: %.2f%%\n", 100*r.RedirectedFraction)
	}
	if len(r.Guards) > 0 {
		b.WriteString("\nruntime violation detectors:\n")
		for _, g := range r.Guards {
			fmt.Fprintf(&b, "  %s -> %s watched by table %s (read register %s cell 0)\n",
				g.From, g.To, g.Table, g.Register)
		}
	}
	return b.String()
}

// RenderHistory formats the snapshots as a Table 2-style report.
func RenderHistory(history []StageSnapshot) string {
	var b strings.Builder
	for _, h := range history {
		fits := ""
		if !h.Fits {
			fits = "  (does not fit)"
		}
		fmt.Fprintf(&b, "%-24s %2d stages%s  %s\n", h.Label, h.Stages, fits, h.Summary)
	}
	return b.String()
}
