package core

import (
	"context"
	"fmt"
	"strings"

	"p2go/internal/deps"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/rt"
)

// phase2 removes dependencies that do not manifest in the profile (§3.2).
// Candidates are dependency edges on the longest path of the dependency
// graph — only those can shorten the pipeline. A candidate is removable
// when no set of non-exclusive actions contains the conflicting actions of
// both tables. One dependency is removed per iteration (the paper keeps
// changes tractable for the programmer); the loop re-runs until no
// candidate improves the pipeline or MaxPhase2Removals is reached.
func (r *run) phase2(ctx context.Context) error {
	removed := 0
	for {
		if r.opts.MaxPhase2Removals > 0 && removed >= r.opts.MaxPhase2Removals {
			return nil
		}
		ictx, sp := obs.Start(ctx, "phase2.iteration", obs.Int("iteration", removed+1))
		improved, err := r.phase2Once(ictx)
		sp.SetAttr(obs.Bool("improved", improved))
		sp.End()
		if err != nil {
			return err
		}
		if !improved {
			return nil
		}
		removed++
	}
}

// phase2Once tries candidates in control order and applies the first
// rewrite that both does not manifest and shortens the pipeline.
func (r *run) phase2Once(ctx context.Context) (bool, error) {
	g := r.compile.Deps
	baseStages := totalStages(r.compile.Mapping)
	for _, edge := range g.LongestPathEdges() {
		// Candidate failures below are swallowed (rejected candidates);
		// cancellation must not be.
		if err := r.interrupted(); err != nil {
			return false, err
		}
		applied, err := r.phase2Try(ctx, edge, baseStages)
		if err != nil {
			return false, err
		}
		if applied {
			return true, nil
		}
	}
	return false, nil
}

// phase2Try evaluates one dependency edge under its own span: profile
// check, rewrite, candidate compile, behavior verification, and — when
// everything holds — application to the run state.
func (r *run) phase2Try(ctx context.Context, edge *deps.Edge, baseStages int) (bool, error) {
	ctx, sp := obs.Start(ctx, "phase2.candidate",
		obs.String("from", edge.From), obs.String("to", edge.To))
	defer sp.End()
	manifested, witness := r.edgeManifests(edge)
	if manifested {
		sp.SetAttr(obs.String("rejected", "manifests"))
		return false, nil
	}
	if conflict := r.interveningConflict(edge); conflict != "" {
		sp.SetAttr(obs.String("rejected", "intervening-conflict"))
		return false, nil
	}
	// Rewrite a clone: apply `to` only when `from` misses. When
	// requested, a runtime violation detector goes into the hit arm
	// (§3.2's alternative approach).
	candidate := p4.Clone(r.cur)
	guard, err := moveIntoMissArm(candidate, edge.From, edge.To, r.opts.InsertDependencyGuards)
	if err != nil {
		sp.SetAttr(obs.String("rejected", "not-expressible"))
		return false, nil // not expressible (hit/miss nesting); try next
	}
	var guardRules []rt.Rule
	if guard != nil {
		// Mirror `to`'s rules onto the detector so it hits exactly
		// when `to` would have. Installed only if the candidate is
		// accepted.
		for _, rule := range r.cfg.ForTable(edge.To) {
			guardRules = append(guardRules, rt.Rule{
				Table:    guard.Table,
				Action:   guard.Action,
				Matches:  append([]rt.FieldMatch(nil), rule.Matches...),
				Priority: rule.Priority,
			})
		}
	}
	compiled, err := r.compileCandidate(ctx, candidate)
	if err != nil {
		sp.SetAttr(obs.String("rejected", "compile-failed"))
		return false, nil // rewrite made the program invalid for the target
	}
	if totalStages(compiled.Mapping) >= baseStages {
		sp.SetAttr(obs.String("rejected", "no-stage-saved"))
		return false, nil // no stage saved; keep looking
	}
	// Safety check beyond the paper: the rewrite must preserve the
	// program's observable behavior on the trace (miss markers aside
	// — skipping a table whose outcome was a no-op miss is the
	// intended effect of the rewrite).
	newProf, err := r.profileCandidate(ctx, candidate)
	if err != nil {
		return false, err
	}
	if diff := r.prof.BehaviorDiff(newProf); diff != "" {
		sp.SetAttr(obs.String("rejected", "behavior-changed"))
		r.obs = append(r.obs, Observation{
			Phase:        PhaseDependencies,
			Kind:         "remove-dependency",
			Accepted:     false,
			Summary:      fmt.Sprintf("apply %s only if %s misses", edge.To, edge.From),
			Evidence:     "rewrite changed the profile on the trace: " + diff,
			Tables:       []string{edge.From, edge.To},
			StagesBefore: baseStages,
			StagesAfter:  baseStages,
		})
		return false, nil
	}
	r.cur = candidate
	r.compile = compiled
	r.prof = newProf
	if guard != nil {
		for _, gr := range guardRules {
			r.cfg.Add(gr)
		}
		r.guards = append(r.guards, *guard)
		// Re-profile with the detector rules installed; on the
		// trace the detector must never hit (the dependency does
		// not manifest), so behavior is unchanged.
		if err := r.reprofile(ctx); err != nil {
			return false, err
		}
	}
	sp.SetAttr(obs.Bool("accepted", true), obs.Int("stages", totalStages(compiled.Mapping)))
	r.obs = append(r.obs, Observation{
		Phase:        PhaseDependencies,
		Kind:         "remove-dependency",
		Accepted:     true,
		Summary:      fmt.Sprintf("%s and %s are not dependent: apply %s only if %s misses", edge.From, edge.To, edge.To, edge.From),
		Evidence:     fmt.Sprintf("no set of non-exclusive actions contains the dependent actions of both tables (%s)", witness),
		Tables:       []string{edge.From, edge.To},
		StagesBefore: baseStages,
		StagesAfter:  totalStages(compiled.Mapping),
		Details: map[string]string{
			"from": edge.From,
			"to":   edge.To,
		},
	})
	return true, nil
}

// edgeManifests checks the dependency against the profile: it manifests if
// any conflicting action pair was observed on the same packet. Pair
// semantics follow the conflict kind: action-level conflicts need both
// actions executed; a read-after-write into the match key needs the later
// table to have *hit*; a control dependency needs the guarded table to have
// been applied at all. The witness string describes the checked pairs for
// the observation report.
func (r *run) edgeManifests(edge *deps.Edge) (bool, string) {
	var checked []string
	for _, pair := range edge.Pairs {
		manifested := false
		switch {
		case pair.ToAction != "":
			manifested = r.prof.CoOccurred(edge.From, pair.FromAction, edge.To, pair.ToAction)
		case pair.Kind == deps.KindReadAfterWrite:
			manifested = r.prof.CoHit(edge.From, pair.FromAction, edge.To)
		default: // control dependency
			manifested = r.prof.CoOccurred(edge.From, pair.FromAction, edge.To, "")
		}
		if manifested {
			return true, pair.String()
		}
		checked = append(checked, pair.String())
	}
	return false, strings.Join(checked, "; ")
}

// interveningConflict reports whether a table ordered between the edge's
// endpoints conflicts with any table that the rewrite would move (the
// moved apply subtree executes earlier after the rewrite, so reordering
// must be safe). Returns the offending table name, or "".
func (r *run) interveningConflict(edge *deps.Edge) string {
	prog := r.compile.IR
	from, to := prog.Tables[edge.From], prog.Tables[edge.To]
	if from == nil || to == nil {
		return "missing"
	}
	// Tables moving with `to`: its apply subtree (hit/miss arms).
	moved := map[string]bool{edge.To: true}
	var path []enclosure
	for _, name := range []string{p4.IngressControl, p4.EgressControl} {
		if c := r.compile.AST.Control(name); c != nil {
			if path = findApplyPath(c.Body, edge.To); path != nil {
				break
			}
		}
	}
	if path != nil {
		last := path[len(path)-1]
		if ap, ok := last.block.Stmts[last.idx].(*p4.ApplyStmt); ok {
			for _, t := range p4.TablesInBlock(ap.Hit) {
				moved[t] = true
			}
			for _, t := range p4.TablesInBlock(ap.Miss) {
				moved[t] = true
			}
		}
	}
	g := r.compile.Deps
	for _, t := range prog.Ordered {
		if t.Order <= from.Order || t.Order >= to.Order || moved[t.Name] {
			continue
		}
		for m := range moved {
			if g.Edge(t.Name, m) != nil || g.Edge(m, t.Name) != nil {
				return t.Name
			}
		}
	}
	return ""
}
