package core

import (
	"strconv"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

// TestTuneMaglev: the tune pass alone (no other optimization) finds
// strictly-fewer-stages bindings for the Maglev load balancer — the
// per-connection registers shrink until they co-locate — while the
// measured accuracy loss on maglev_rehash stays under the floor, and the
// floor demonstrably binds (at least one smaller candidate is rejected
// for losing too much accuracy).
func TestTuneMaglev(t *testing.T) {
	trace := trafficgen.MaglevTrace(trafficgen.MaglevSpec{Seed: 1})
	res, err := New(Options{
		Passes: []string{"tune"},
		Tune:   &TuneOptions{AccuracyTable: "maglev_rehash"},
	}).Optimize(p4.MustParse(programs.Maglev), programs.MaglevConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBefore() != 5 || res.StagesAfter() != 4 {
		t.Fatalf("maglev tune stages %d -> %d, want 5 -> 4\n%s",
			res.StagesBefore(), res.StagesAfter(), RenderHistory(res.History))
	}
	cells, ok := res.Bindings["conn_cells"]
	if !ok || cells >= programs.MaglevConnCells {
		t.Fatalf("tuned conn_cells = %d (ok=%v), want strictly below the default %d",
			cells, ok, programs.MaglevConnCells)
	}

	var result *Observation
	var rejectedForAccuracy bool
	for i := range res.Observations {
		o := &res.Observations[i]
		switch o.Kind {
		case "tune-result":
			result = o
		case "tune-candidate":
			if !o.Accepted {
				if loss, err := strconv.ParseFloat(o.Details["loss"], 64); err == nil && loss > 0.01 {
					rejectedForAccuracy = true
				}
			}
		}
	}
	if result == nil || !result.Accepted {
		t.Fatalf("no accepted tune-result observation; observations: %v", res.Observations)
	}
	loss, err := strconv.ParseFloat(result.Details["loss"], 64)
	if err != nil || loss > 0.01 {
		t.Errorf("tuned accuracy loss %q, want a number <= 0.01 (the floor)", result.Details["loss"])
	}
	if !rejectedForAccuracy {
		t.Error("no candidate was rejected for accuracy loss; the floor never bound the search")
	}

	// The searched knob landscape is part of the contract: every candidate
	// must be attributed to the tune pass's PassStat.
	var tune *PassStat
	for i := range res.PassStats {
		if res.PassStats[i].ID == "tune" {
			tune = &res.PassStats[i]
		}
	}
	if tune == nil || tune.Observations < 2 {
		t.Fatalf("tune PassStat = %+v, want one with >= 2 observations", tune)
	}
}

// TestTuneSharedCacheFewerMisses: a repeat tune run sharing the analysis
// cache replays from it — strictly fewer compiles and profiles actually
// execute (cache misses) the second time, and the outcome is identical.
func TestTuneSharedCacheFewerMisses(t *testing.T) {
	trace := trafficgen.SynCookieTrace(trafficgen.SynCookieSpec{Seed: 1})
	cache := NewAnalysisCache()
	run := func() *Result {
		res, err := New(Options{
			Passes:        []string{"tune"},
			Tune:          &TuneOptions{AccuracyTable: "cookie_check"},
			AnalysisCache: cache,
		}).Optimize(p4.MustParse(programs.SynCookie), programs.SynCookieConfig(), trace)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	misses := func(res *Result) (compiles, profiles int) {
		for _, s := range res.PassStats {
			compiles += s.CompileMisses
			profiles += s.ProfileMisses
		}
		return
	}

	first := run()
	second := run()
	c1, p1 := misses(first)
	c2, p2 := misses(second)
	t.Logf("first run: %d compiles, %d profiles; repeat under shared cache: %d compiles, %d profiles", c1, p1, c2, p2)
	if c2 >= c1 {
		t.Errorf("second run compiled %d programs, first %d; want strictly fewer", c2, c1)
	}
	if p2 >= p1 {
		t.Errorf("second run profiled %d programs, first %d; want strictly fewer", p2, p1)
	}
	if p4.FormatBindings(first.Bindings) != p4.FormatBindings(second.Bindings) {
		t.Errorf("cached repeat changed the answer: %s vs %s",
			p4.FormatBindings(first.Bindings), p4.FormatBindings(second.Bindings))
	}
	if first.StagesAfter() != second.StagesAfter() {
		t.Errorf("cached repeat changed stages: %d vs %d", first.StagesAfter(), second.StagesAfter())
	}
	if first.StagesAfter() >= first.StagesBefore() {
		t.Errorf("syncookie tune stages %d -> %d, want a reduction", first.StagesBefore(), first.StagesAfter())
	}
}

// TestTuneNoopWithoutTunables: scheduling tune on a knob-free program is
// harmless and says so.
func TestTuneNoopWithoutTunables(t *testing.T) {
	trace := trafficgen.QuickstartTrace(200, 1)
	res, err := New(Options{Passes: []string{"tune"}}).
		Optimize(p4.MustParse(programs.Quickstart), programs.QuickstartConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	var noop bool
	for _, o := range res.Observations {
		noop = noop || o.Kind == "tune-noop"
	}
	if !noop {
		t.Errorf("no tune-noop observation; observations: %v", res.Observations)
	}
	if len(res.Bindings) != 0 || len(res.Tunables) != 0 {
		t.Errorf("knob-free program reported bindings %v / tunables %v", res.Bindings, res.Tunables)
	}
}
