package core

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/programs"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// l2l3Inputs parses the phase-ordering workload.
func l2l3Inputs(t *testing.T) (*p4.Program, *rt.Config, *trafficgen.Trace) {
	t.Helper()
	return p4.MustParse(programs.L2L3ACL), programs.L2L3ACLConfig(),
		trafficgen.L2L3ACLTrace(trafficgen.L2L3ACLSpec{Seed: 1})
}

// TestPassRegistryLint pins the registry invariants the rest of the stack
// relies on: unique non-empty IDs, non-empty doc strings and span names,
// a run function on everything but the implicit profiling pass, and the
// default schedule being the paper's phase order.
func TestPassRegistryLint(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Passes() {
		if p.ID == "" {
			t.Error("registered pass with empty ID")
		}
		if seen[p.ID] {
			t.Errorf("duplicate pass ID %q", p.ID)
		}
		seen[p.ID] = true
		if p.Doc == "" {
			t.Errorf("pass %q has no doc string", p.ID)
		}
		if len(p.Needs) == 0 {
			t.Errorf("pass %q declares no analysis needs", p.ID)
		}
		if p.Default && (p.ReadOnly || p.Implicit) {
			t.Errorf("pass %q is default but not selectable", p.ID)
		}
	}
	for _, p := range passRegistry {
		if p.span == "" {
			t.Errorf("pass %q has no span name", p.id)
		}
		if !p.implicit && p.run == nil {
			t.Errorf("pass %q has no run function", p.id)
		}
	}
	if got, want := len(sortedPassIDs()), len(passRegistry); got != want {
		t.Errorf("passByID has %d entries, registry has %d", got, want)
	}
	if got, want := DefaultPassIDs(), []string{"phase2", "phase3", "phase4"}; !reflect.DeepEqual(got, want) {
		t.Errorf("DefaultPassIDs() = %v, want %v", got, want)
	}
}

// TestValidatePasses: the shared gate accepts any ordering and duplicates
// of selectable passes, and rejects unknown, implicit, and read-only IDs —
// surfacing the error from Optimize before any work happens.
func TestValidatePasses(t *testing.T) {
	if err := ValidatePasses(nil); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
	if err := ValidatePasses([]string{"phase4", "phase2", "phase2"}); err != nil {
		t.Errorf("reordered schedule with duplicate rejected: %v", err)
	}
	for _, bad := range []string{"phase1", "offload-report", "phase5", ""} {
		if ValidatePasses([]string{bad}) == nil {
			t.Errorf("ValidatePasses accepted %q", bad)
		}
	}
	if _, err := New(Options{Passes: []string{"phase5"}}).Optimize(nil, nil, nil); err == nil || !strings.Contains(err.Error(), "unknown pass") {
		t.Errorf("Optimize with a bad schedule returned %v, want unknown-pass error", err)
	}
	if _, err := New(Options{Passes: []string{"phase5"}}).OffloadCandidates(nil, nil, nil); err == nil {
		t.Error("OffloadCandidates ignored a bad schedule")
	}
}

// TestDisableShimsMapToPasses: the deprecated DisablePhaseN flags resolve
// to filtered default schedules, and an explicit Passes list always wins.
func TestDisableShimsMapToPasses(t *testing.T) {
	cases := []struct {
		opts Options
		want []string
	}{
		{Options{}, []string{"phase2", "phase3", "phase4"}},
		{Options{DisablePhase2: true}, []string{"phase3", "phase4"}},
		{Options{DisablePhase3: true}, []string{"phase2", "phase4"}},
		{Options{DisablePhase4: true}, []string{"phase2", "phase3"}},
		{Options{DisablePhase2: true, DisablePhase3: true, DisablePhase4: true}, nil},
		{Options{Passes: []string{"phase3"}, DisablePhase3: true}, []string{"phase3"}},
		{Options{Passes: []string{}}, []string{}},
	}
	for i, c := range cases {
		if got := c.opts.passIDs(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: passIDs() = %v, want %v", i, got, c.want)
		}
	}
}

// TestPassOrderingAblationGolden reproduces §2.2 on the l2l3_acl workload:
// with the default order, Phase 2 folds ACL2 into ACL1's miss arm first
// (5 → 4 stages), so the offload that then moves both ACLs out only saves
// one stage; running phase4 first offloads both ACLs in one step and saves
// two. Both orders land on 3 stages, but the attribution — and what the
// controller ends up running — depends on the schedule.
func TestPassOrderingAblationGolden(t *testing.T) {
	ast, cfg, trace := l2l3Inputs(t)
	type step struct {
		label  string
		stages int
	}
	check := func(name string, res *Result, wantHist []step, wantSaved string, wantPasses []string) {
		t.Helper()
		var got []step
		for _, h := range res.History {
			got = append(got, step{h.Label, h.Stages})
		}
		want := append([]step(nil), wantHist...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: history = %+v, want %+v", name, got, want)
		}
		if !reflect.DeepEqual(res.OffloadedTables, []string{"ACL1", "ACL2"}) {
			t.Errorf("%s: offloaded %v, want both ACLs", name, res.OffloadedTables)
		}
		if res.RedirectedFraction != 0.05 {
			t.Errorf("%s: redirected fraction = %v, want 0.05", name, res.RedirectedFraction)
		}
		saved := ""
		for _, o := range res.Observations {
			if o.Kind == "offload-segment" && o.Accepted {
				saved = o.Details["stages_saved"]
			}
		}
		if saved != wantSaved {
			t.Errorf("%s: offload observation stages_saved = %q, want %q", name, saved, wantSaved)
		}
		var ids []string
		for _, s := range res.PassStats {
			ids = append(ids, s.ID)
		}
		if !reflect.DeepEqual(ids, wantPasses) {
			t.Errorf("%s: pass stats order = %v, want %v", name, ids, wantPasses)
		}
	}

	def, err := New(Options{Parallelism: 1}).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	check("default order", def,
		[]step{{"initial", 5}, {"removing-dependencies", 4}, {"reducing-memory", 4}, {"offloading-code", 3}},
		"1", []string{"phase1", "phase2", "phase3", "phase4"})

	first, err := New(Options{Parallelism: 1, Passes: []string{"phase4", "phase2", "phase3"}}).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	check("offload first", first,
		[]step{{"initial", 5}, {"offloading-code", 3}, {"removing-dependencies", 3}, {"reducing-memory", 3}},
		"2", []string{"phase1", "phase4", "phase2", "phase3"})
}

// TestReorderedPassesParallelismInvariant extends the end-to-end
// determinism check to a non-default schedule: the reordered pipeline must
// produce identical results at Parallelism 1 and 4.
func TestReorderedPassesParallelismInvariant(t *testing.T) {
	ast, cfg, trace := l2l3Inputs(t)
	optimize := func(parallelism int) *Result {
		res, err := New(Options{
			Parallelism: parallelism,
			Passes:      []string{"phase4", "phase2", "phase3"},
		}).Optimize(ast, cfg, trace)
		if err != nil {
			t.Fatalf("optimize (parallelism %d): %v", parallelism, err)
		}
		return res
	}
	seq := optimize(1)
	par := optimize(4)
	if a, b := p4.Print(seq.Optimized), p4.Print(par.Optimized); a != b {
		t.Errorf("optimized program differs:\n--- sequential ---\n%s--- parallel ---\n%s", a, b)
	}
	if !reflect.DeepEqual(seq.Observations, par.Observations) {
		t.Errorf("observations differ:\nsequential: %+v\nparallel: %+v", seq.Observations, par.Observations)
	}
	if !reflect.DeepEqual(seq.History, par.History) {
		// Durations differ; compare labels and stages only.
		for i := range seq.History {
			if seq.History[i].Label != par.History[i].Label || seq.History[i].Stages != par.History[i].Stages {
				t.Errorf("history[%d] differs: %+v vs %+v", i, seq.History[i], par.History[i])
			}
		}
	}
	if d := seq.FinalProfile.Diff(par.FinalProfile); d != "" {
		t.Errorf("final profiles differ: %s", d)
	}
}

// countingHooks wraps the real compiler and profiler with call counters,
// standing in for the service layer's artifact cache.
type countingHooks struct {
	compiles atomic.Int64
	profiles atomic.Int64
}

func (h *countingHooks) options(cache *AnalysisCache, tweak func(*Options)) Options {
	opts := Options{
		Parallelism:   1,
		AnalysisCache: cache,
		CompileHook: func(_ context.Context, ast *p4.Program, tgt tofino.Target) (*tofino.Result, error) {
			h.compiles.Add(1)
			return tofino.Compile(ast, tgt)
		},
		ProfileHook: func(ctx context.Context, ast *p4.Program, cfg *rt.Config, tr *trafficgen.Trace) (*profile.Profile, error) {
			h.profiles.Add(1)
			return profile.RunParallelContext(ctx, ast, cfg, tr, 1)
		},
	}
	if tweak != nil {
		tweak(&opts)
	}
	return opts
}

// TestIncrementalRerunUsesCache is the acceptance check for the analysis
// cache: with a shared AnalysisCache, re-running the same program and
// trace issues strictly fewer CompileHook/ProfileHook calls than the cold
// run — zero, for an identical re-run — and changing only a threshold
// option replays entirely from cache while still changing the outcome.
func TestIncrementalRerunUsesCache(t *testing.T) {
	ast, cfg, trace := l2l3Inputs(t)
	hooks := &countingHooks{}
	cache := NewAnalysisCache()

	cold, err := New(hooks.options(cache, nil)).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	coldCompiles, coldProfiles := hooks.compiles.Load(), hooks.profiles.Load()
	if coldCompiles == 0 || coldProfiles == 0 {
		t.Fatalf("cold run issued %d compiles / %d profiles; hooks not exercised", coldCompiles, coldProfiles)
	}

	warm, err := New(hooks.options(cache, nil)).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	warmCompiles := hooks.compiles.Load() - coldCompiles
	warmProfiles := hooks.profiles.Load() - coldProfiles
	if warmCompiles >= coldCompiles || warmProfiles >= coldProfiles {
		t.Errorf("incremental re-run not cheaper: %d/%d compiles, %d/%d profiles",
			warmCompiles, coldCompiles, warmProfiles, coldProfiles)
	}
	if warmCompiles != 0 || warmProfiles != 0 {
		t.Errorf("identical re-run recomputed %d compiles and %d profiles, want 0", warmCompiles, warmProfiles)
	}
	if a, b := p4.Print(cold.Optimized), p4.Print(warm.Optimized); a != b {
		t.Errorf("cached re-run produced a different program:\n--- cold ---\n%s--- warm ---\n%s", a, b)
	}
	var hits int
	for _, s := range warm.PassStats {
		hits += s.CompileHits + s.ProfileHits
	}
	if hits == 0 {
		t.Error("warm run's PassStats record no cache hits")
	}

	// Only Options changed: a redirect cap below the workload's 5% UDP
	// share suppresses the offload — decided entirely from cached
	// analyses.
	capped, err := New(hooks.options(cache, func(o *Options) {
		o.Phase4MaxRedirect = Float(0.01)
	})).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if n := hooks.compiles.Load() - coldCompiles; n != 0 {
		t.Errorf("options-only re-run issued %d fresh compiles, want 0", n)
	}
	if n := hooks.profiles.Load() - coldProfiles; n != 0 {
		t.Errorf("options-only re-run issued %d fresh profiles, want 0", n)
	}
	if len(capped.OffloadedTables) != 0 {
		t.Errorf("offloaded %v despite the 1%% cap", capped.OffloadedTables)
	}
	if capped.StagesAfter() != 4 {
		t.Errorf("capped re-run stages = %d, want 4", capped.StagesAfter())
	}
}

// TestWithinRunCacheDeduplicates: even without a shared cache, one run
// deduplicates its own repeated programs (Phase 4 re-compiling and
// re-profiling the winning candidate it already measured), so PassStats
// record hits on a cold run too.
func TestWithinRunCacheDeduplicates(t *testing.T) {
	ast, cfg, trace := l2l3Inputs(t)
	res, err := New(Options{Parallelism: 1}).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	var stat *PassStat
	for i := range res.PassStats {
		if res.PassStats[i].ID == "phase4" {
			stat = &res.PassStats[i]
		}
	}
	if stat == nil {
		t.Fatal("no phase4 PassStat recorded")
	}
	if stat.CompileHits == 0 || stat.ProfileHits == 0 {
		t.Errorf("phase4 apply step did not reuse the measured candidate: %+v", *stat)
	}
	st := NewAnalysisCache().Stats()
	if st.CompileHits+st.CompileMisses+st.ProfileHits+st.ProfileMisses+st.CompileEntries+st.ProfileEntries != 0 {
		t.Errorf("fresh cache has non-zero stats: %+v", st)
	}
}

// TestOffloadCandidatesSpanTree: the ablation entry point runs through the
// manager, so its compiles and profiles nest under a proper optimize root
// span instead of floating as orphan roots (the old truncated traces).
func TestOffloadCandidatesSpanTree(t *testing.T) {
	ast, cfg, trace := l2l3Inputs(t)
	col := obs.NewCollector(0)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	reports, err := New(Options{Context: ctx, Parallelism: 1}).OffloadCandidates(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rep := range reports {
		// The inner then-block run: both ACLs behind the valid(udp) guard.
		if rep.Segment.Desc != "ingress.2.then[0:1]" {
			continue
		}
		found = true
		if !reflect.DeepEqual(rep.Segment.Tables, []string{"ACL1", "ACL2"}) ||
			rep.StagesSaved != 2 || rep.RedirectFrac != 0.05 {
			t.Errorf("both-ACLs candidate = %+v, want 2 stages saved at 5%% redirect", rep)
		}
	}
	if !found {
		t.Errorf("no {ACL1, ACL2} candidate in %+v", reports)
	}
	roots := 0
	names := map[string]int{}
	for _, s := range col.Spans() {
		names[s.Name]++
		if s.ParentID == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("ablation trace has %d root spans, want 1", roots)
	}
	for _, want := range []string{
		"optimize", "phase1.profile", "phase4.offload-report",
		"phase4.candidate", "compile", "profile", "sim.replay",
	} {
		if names[want] == 0 {
			t.Errorf("ablation trace has no %q span (got %v)", want, names)
		}
	}
	if !strings.HasPrefix(col.Tree(), "optimize") {
		t.Errorf("tree does not start at the optimize span:\n%s", col.Tree())
	}
}

// TestPlanCacheServesRepeatedPrograms: the prepared-profiler cache keys on
// (program, rules) only, so re-running the same program on a different
// trace re-replays every profile but serves instrumentation and bytecode
// lowering entirely from cache — and a plan-cache hit emits the same
// "profile.instrument" span (with its tables attr) as a real preparation,
// keeping span trees structurally identical.
func TestPlanCacheServesRepeatedPrograms(t *testing.T) {
	ast, cfg, trace := l2l3Inputs(t)
	cache := NewAnalysisCache()

	coldRes, err := New(Options{AnalysisCache: cache, Parallelism: 1}).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	cold := cache.Stats()
	if cold.PlanEntries == 0 || cold.PlanMisses == 0 {
		t.Fatalf("cold run stored no prepared plans: %+v", cold)
	}

	// Same packets in reverse order: a different trace digest (every
	// profile key misses) over the same programs (every plan key hits).
	rev := &trafficgen.Trace{}
	for i := len(trace.Packets) - 1; i >= 0; i-- {
		rev.Packets = append(rev.Packets, trace.Packets[i])
	}
	col := obs.NewCollector(0)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	warm, err := New(Options{AnalysisCache: cache, Parallelism: 1, Context: ctx}).Optimize(ast, cfg, rev)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.PlanMisses != cold.PlanMisses || st.PlanEntries != cold.PlanEntries {
		t.Errorf("warm run re-prepared plans: cold %+v, warm %+v", cold, st)
	}
	if st.PlanHits <= cold.PlanHits {
		t.Errorf("warm run recorded no plan-cache hits: cold %+v, warm %+v", cold, st)
	}
	if !strings.Contains(col.Tree(), "profile.instrument tables=") {
		t.Errorf("plan-cache hit did not emit the profile.instrument span:\n%s", col.Tree())
	}
	// Profile counts are order-independent sums, so the reversed trace
	// must profile Equal to the cold run — replayed through cached plans.
	if !warm.Profile.Equal(coldRes.Profile) {
		t.Errorf("reversed-trace profile differs from cold run:\n%s", warm.Profile.Diff(coldRes.Profile))
	}
}
