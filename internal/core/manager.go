package core

import (
	"context"
	"fmt"
	"time"

	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// manager executes a resolved pass schedule. It owns everything the
// passes share: the hardware model, the analysis cache behind the
// compile/profile funnels, and the resolved pass configuration (pointer
// Options fields collapsed to concrete values). One manager is built per
// Optimize/OffloadCandidates call; the cache it holds outlives the run
// only when the caller supplied one via Options.AnalysisCache.
type manager struct {
	opts   Options
	tgt    tofino.Target
	passes []*passDef
	cache  *AnalysisCache

	// Resolved Phase 4 config: nil Options pointers become the defaults
	// here, so an explicit zero survives (it used to be swallowed by
	// core.New's `== 0` normalization).
	minSavings  int
	maxRedirect float64
}

// newManager validates the schedule and resolves the pass configuration.
func newManager(opts Options) (*manager, error) {
	ids := opts.passIDs()
	if err := ValidatePasses(ids); err != nil {
		return nil, err
	}
	m := &manager{opts: opts, tgt: opts.target(), cache: opts.AnalysisCache}
	if m.cache == nil {
		m.cache = NewAnalysisCache()
	}
	m.minSavings = 1
	if opts.Phase4MinSavings != nil {
		m.minSavings = *opts.Phase4MinSavings
	}
	m.maxRedirect = defaultPhase4MaxRedirect
	if opts.Phase4MaxRedirect != nil {
		m.maxRedirect = *opts.Phase4MaxRedirect
	}
	for _, id := range ids {
		m.passes = append(m.passes, passByID[id])
	}
	return m, nil
}

// newRun builds the mutable state one optimization run evolves. The input
// AST may be parameterized: the run instantiates it at Options.Bindings
// (defaults for unbound tunables) and every pass operates on the concrete
// program; the pristine AST is kept for the tune pass to re-instantiate.
func (m *manager) newRun(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*run, error) {
	bindings, err := p4.ResolveBindings(ast, m.opts.Bindings)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	original, err := p4.Instantiate(ast, m.opts.Bindings)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &run{
		opts:       m.opts,
		mgr:        m,
		tgt:        m.tgt,
		cfg:        cfg,
		trace:      trace,
		src:        ast,
		original:   original,
		bindings:   bindings,
		cur:        p4.Clone(original),
		traceDig:   digestTrace(trace),
		phaseStart: time.Now(),
	}, nil
}

// optimize runs the scheduled passes: the implicit profiling pass first,
// then each scheduled pass under its span, snapshotting the stage mapping
// after each one — byte-identical span and history structure to the
// pre-manager pipeline.
func (m *manager) optimize(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*Result, error) {
	if cfg == nil {
		cfg = &rt.Config{}
	}
	if trace == nil || len(trace.Packets) == 0 {
		return nil, fmt.Errorf("core: a traffic trace is required for profiling")
	}
	ctx := m.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, root := obs.Start(ctx, "optimize")
	defer root.End()
	r, err := m.newRun(ast, cfg, trace)
	if err != nil {
		return nil, err
	}
	originalProfile, err := m.profilePass(ctx, r, root)
	if err != nil {
		return nil, err
	}
	for _, p := range m.passes {
		if err := m.runPass(ctx, r, p); err != nil {
			return nil, err
		}
	}
	root.SetAttr(
		obs.Int("stages_after", totalStages(r.compile.Mapping)),
		obs.Bool("fits", r.compile.Mapping.Fits),
	)

	res := &Result{
		Original:          r.original,
		Optimized:         r.cur,
		OptimizedConfig:   filterConfig(r.cfg, r.cur),
		Profile:           originalProfile,
		FinalProfile:      r.prof,
		Observations:      r.obs,
		History:           r.history,
		OffloadedTables:   r.offloaded,
		Guards:            r.guards,
		ControllerProgram: r.ctlProgram,
		PassStats:         r.stats,
	}
	if len(r.bindings) > 0 {
		res.Bindings = r.bindings
		for _, t := range r.src.Tunables {
			res.Tunables = append(res.Tunables, TunedKnob{
				Name: t.Name, Min: t.Min, Max: t.Max, Default: t.Default,
				Value: r.bindings[t.Name],
			})
		}
	}
	if r.prof != nil && r.prof.TotalPackets > 0 {
		res.RedirectedFraction = float64(r.prof.ToCPU) / float64(r.prof.TotalPackets)
	}
	return res, nil
}

// offloadReport runs the read-only offload-report pass: same root span,
// initial snapshot, and profiling prologue as optimize, so ablation runs
// trace and cache exactly like full runs.
func (m *manager) offloadReport(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) ([]CandidateReport, error) {
	if cfg == nil {
		cfg = &rt.Config{}
	}
	if trace == nil || len(trace.Packets) == 0 {
		return nil, fmt.Errorf("core: a traffic trace is required for profiling")
	}
	ctx := m.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, root := obs.Start(ctx, "optimize", obs.String("mode", "offload-report"))
	defer root.End()
	r, err := m.newRun(ast, cfg, trace)
	if err != nil {
		return nil, err
	}
	if _, err := m.profilePass(ctx, r, root); err != nil {
		return nil, err
	}
	if err := m.runPass(ctx, r, passByID["offload-report"]); err != nil {
		return nil, err
	}
	return r.reports, nil
}

// profilePass is the implicit phase1 pass: the initial compile, the
// "initial" history snapshot, the stages_before root attr, and the
// profiling replay under the phase1.profile span.
func (m *manager) profilePass(ctx context.Context, r *run, root *obs.Span) (*profile.Profile, error) {
	stat, start, before := r.beginPass("phase1")
	if err := r.recompile(ctx); err != nil {
		return nil, err
	}
	r.snapshot("initial")
	root.SetAttr(obs.Int("stages_before", totalStages(r.compile.Mapping)))
	p1ctx, p1 := obs.Start(ctx, "phase1.profile")
	err := r.reprofile(p1ctx)
	r.endPass(p1, stat, start, before)
	p1.End()
	if err != nil {
		return nil, err
	}
	return r.prof, nil
}

// runPass executes one scheduled pass under its span and snapshots the
// mapping afterwards, preserving the exact pre-manager emission order:
// span start, pass body, span end, snapshot.
func (m *manager) runPass(ctx context.Context, r *run, p *passDef) error {
	stat, start, before := r.beginPass(p.id)
	pctx, sp := obs.Start(ctx, p.span)
	err := p.run(r, pctx)
	r.endPass(sp, stat, start, before)
	sp.End()
	if err != nil {
		return err
	}
	if p.label != "" {
		r.snapshot(p.label)
	}
	return nil
}

// beginPass installs a fresh PassStat as the target of the compile/profile
// cache counters.
func (r *run) beginPass(id string) (*PassStat, time.Time, int) {
	stat := &PassStat{ID: id}
	r.statMu.Lock()
	r.stat = stat
	r.statMu.Unlock()
	return stat, time.Now(), len(r.obs)
}

// endPass finalizes the stat, appends it to the run, and — only when the
// cache actually answered something — records the hit/miss counts on the
// pass span. Cold runs therefore emit exactly the historical span attrs,
// keeping the golden span trees stable.
func (r *run) endPass(sp *obs.Span, stat *PassStat, start time.Time, obsBefore int) {
	r.statMu.Lock()
	r.stat = nil
	r.statMu.Unlock()
	stat.Duration = time.Since(start)
	stat.Observations = len(r.obs) - obsBefore
	if stat.CompileHits+stat.ProfileHits > 0 {
		sp.SetAttr(
			obs.Int("cache_hits", stat.CompileHits+stat.ProfileHits),
			obs.Int("cache_misses", stat.CompileMisses+stat.ProfileMisses),
		)
	}
	r.stats = append(r.stats, *stat)
}

// noteCompile records one compile lookup against the current pass. Called
// from pool workers, hence the lock.
func (r *run) noteCompile(hit bool) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	if r.stat == nil {
		return
	}
	if hit {
		r.stat.CompileHits++
	} else {
		r.stat.CompileMisses++
	}
}

// noteProfile records one profile lookup against the current pass.
func (r *run) noteProfile(hit bool) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	if r.stat == nil {
		return
	}
	if hit {
		r.stat.ProfileHits++
	} else {
		r.stat.ProfileMisses++
	}
}
