package core

import (
	"context"
	"strings"
	"testing"

	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

// collectNATGRE optimizes the NAT&GRE workload under a collecting tracer
// and returns the span tree with timing-dependent attrs dropped.
func collectNATGRE(t *testing.T) string {
	t.Helper()
	col := obs.NewCollector(0)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	trace := trafficgen.NATGRETrace(trafficgen.NATGRESpec{Seed: 1})
	// Parallelism 1 pins span creation (and therefore tree) order; the
	// optimization result itself is parallelism-independent, which
	// TestOptimizeParallelismInvariant checks.
	_, err := New(Options{Context: ctx, Parallelism: 1}).Optimize(
		p4.MustParse(programs.NATGRE), programs.NATGREConfig(), trace)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return col.Tree("packets_per_sec")
}

// TestNATGRESpanTreeGolden pins the exact span tree of a deterministic
// pipeline run: every phase, candidate, probe, and verifying re-profile in
// its nesting position, with its structural attributes. A diff here means
// either the pipeline's control flow changed or its instrumentation did —
// both deserve a deliberate golden update.
func TestNATGRESpanTreeGolden(t *testing.T) {
	const want = `optimize fits=true stages_after=3 stages_before=4
  compile stages=4
  phase1.profile
    profile
      profile.instrument tables=4
      sim.replay dedup=true engine=compiled packets=10000 unique_packets=10000
  phase2.remove-dependencies
    phase2.iteration improved=true iteration=1
      phase2.candidate accepted=true from=nat stages=3 to=gre
        compile stages=3
        profile
          profile.instrument tables=4
          sim.replay dedup=true engine=compiled packets=10000 unique_packets=10000
    phase2.iteration improved=false iteration=2
      phase2.candidate from=nat rejected=manifests to=ipv4_fwd
      phase2.candidate from=gre rejected=manifests to=ipv4_fwd
      phase2.candidate from=ipv4_fwd rejected=no-stage-saved to=egress_acl
        compile stages=3
  phase3.reduce-memory
    phase3.iteration improved=false iteration=1
      phase3.probe stages=3 table=nat value=512
        compile stages=3
      phase3.probe stages=3 table=gre value=512
        compile stages=3
      phase3.probe stages=3 table=ipv4_fwd value=1024
        compile stages=3
      phase3.probe stages=3 table=egress_acl value=32
        compile stages=3
  phase4.offload
    phase4.candidate rejected=compile-failed segment=ingress[0:0] tables=nat,gre,ipv4_fwd,egress_acl
      compile
    phase4.candidate rejected=not-self-contained segment=ingress.0.then[0:0] tables=nat,gre
    phase4.candidate rejected=not-self-contained segment=ingress.0.then[0:1] tables=nat,gre,ipv4_fwd
    phase4.candidate rejected=compile-failed segment=ingress.0.then[0:2] tables=nat,gre,ipv4_fwd,egress_acl
      compile
    phase4.candidate rejected=not-self-contained segment=ingress.0.then[1:1] tables=ipv4_fwd
    phase4.candidate rejected=compile-failed segment=ingress.0.then[1:2] tables=ipv4_fwd,egress_acl
      compile
    phase4.candidate rejected=compile-failed segment=ingress.0.then[2:2] tables=egress_acl
      compile
    phase4.candidate rejected=not-self-contained segment=ingress.0.then.0.miss[0:0] tables=gre
`
	got := collectNATGRE(t)
	if got != want {
		t.Errorf("span tree drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSpanTreeDeterministic runs the same optimization twice and demands
// identical span trees — the property the golden test (and the exporters'
// usefulness for diffing runs) rests on.
func TestSpanTreeDeterministic(t *testing.T) {
	first := collectNATGRE(t)
	second := collectNATGRE(t)
	if first != second {
		t.Errorf("same inputs produced different span trees:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestEx1SpanTreeCoversAllPhases checks the running example's trace
// contains the span kinds natgre's short run never reaches: binary-search
// iterations, verification re-profiles, and an applied offload.
func TestEx1SpanTreeCoversAllPhases(t *testing.T) {
	col := obs.NewCollector(0)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	trace := enterpriseTrace(t)
	_, err := New(Options{Context: ctx}).Optimize(
		p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	names := map[string]int{}
	for _, s := range col.Spans() {
		names[s.Name]++
	}
	for _, want := range []string{
		"optimize", "compile", "profile", "profile.instrument", "sim.replay",
		"phase1.profile",
		"phase2.remove-dependencies", "phase2.iteration", "phase2.candidate",
		"phase3.reduce-memory", "phase3.iteration", "phase3.probe",
		"phase3.binary-search", "phase3.verify",
		"phase4.offload", "phase4.candidate", "phase4.apply",
	} {
		if names[want] == 0 {
			t.Errorf("ex1 trace has no %q span (got %v)", want, names)
		}
	}
	// Exactly one root: the optimize span everything else nests under.
	roots := 0
	for _, s := range col.Spans() {
		if s.ParentID == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d root spans, want 1", roots)
	}
	if !strings.HasPrefix(col.Tree(), "optimize") {
		t.Errorf("tree does not start at the optimize span:\n%s", col.Tree())
	}
}
