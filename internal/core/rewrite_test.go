package core

import (
	"strings"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
)

const rewriteFixture = `
header_type m_t { fields { a : 8; b : 8; } }
metadata m_t m;
register reg { width : 32; instance_count : 100; }
field_list fl { m.a; }
field_list_calculation calc {
    input { fl; }
    algorithm : crc16;
    output_width : 16;
}
action act_a() { drop(); }
action act_b() { drop(); }
action act_c() { drop(); }
action act_reg() {
    modify_field_with_hash_based_offset(m.b, 0, calc, 100);
    register_write(reg, m.b, 1);
}
table t_a { reads { m.a : exact; } actions { act_a; } size : 4; }
table t_b { reads { m.a : exact; } actions { act_b; } size : 4; }
table t_c { reads { m.b : exact; } actions { act_c; } size : 4; }
table t_reg { actions { act_reg; } default_action : act_reg; }
control ingress {
    apply(t_a);
    if (m.a == 1) {
        apply(t_b);
    } else {
        if (m.b == 2) {
            apply(t_c);
        }
    }
    apply(t_reg);
}
`

func parseFixture(t *testing.T) *p4.Program {
	t.Helper()
	ast := p4.MustParse(rewriteFixture)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	return ast
}

func TestFindApplyPathDepths(t *testing.T) {
	ast := parseFixture(t)
	body := ast.Control(p4.IngressControl).Body
	if path := findApplyPath(body, "t_a"); len(path) != 1 {
		t.Errorf("t_a path depth = %d, want 1", len(path))
	}
	if path := findApplyPath(body, "t_b"); len(path) != 2 {
		t.Errorf("t_b path depth = %d, want 2", len(path))
	}
	path := findApplyPath(body, "t_c")
	if len(path) != 3 {
		t.Fatalf("t_c path depth = %d, want 3", len(path))
	}
	// t_c is reached through the else arm, then a then arm.
	if path[1].ifCond == nil || !path[1].negated {
		t.Error("t_c's first nested enclosure should be a negated if arm")
	}
	if path[2].ifCond == nil || path[2].negated {
		t.Error("t_c's second nested enclosure should be a plain then arm")
	}
	if findApplyPath(body, "ghost") != nil {
		t.Error("unknown table should yield nil path")
	}
}

func TestMoveIntoMissArmPreservesGuards(t *testing.T) {
	ast := parseFixture(t)
	// Move t_c (guarded by NOT(m.a==1) and m.b==2) into t_a's miss arm.
	if _, err := moveIntoMissArm(ast, "t_a", "t_c", false); err != nil {
		t.Fatal(err)
	}
	if err := p4.Check(ast); err != nil {
		t.Fatalf("rewritten program fails check: %v", err)
	}
	src := p4.Print(ast)
	if !strings.Contains(src, "miss") {
		t.Fatalf("no miss arm:\n%s", src)
	}
	// Both guards are preserved, the outer one negated.
	if !strings.Contains(src, "not (m.a == 1)") {
		t.Errorf("negated outer guard missing:\n%s", src)
	}
	if !strings.Contains(src, "m.b == 2") {
		t.Errorf("inner guard missing:\n%s", src)
	}
	// t_c is no longer in the else arm.
	path := findApplyPath(ast.Control(p4.IngressControl).Body, "t_c")
	foundMissArm := false
	for _, enc := range path {
		if enc.viaApply == "t_a" && !enc.onHit {
			foundMissArm = true
		}
	}
	if !foundMissArm {
		t.Error("t_c should now live in t_a's miss arm")
	}
}

func TestMoveIntoMissArmRejectsNesting(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; } }
metadata m_t m;
action x() { drop(); }
action y() { drop(); }
table outer { reads { m.a : exact; } actions { x; } size : 4; }
table inner { reads { m.a : exact; } actions { y; } size : 4; }
control ingress {
    apply(outer) {
        hit { apply(inner); }
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	if _, err := moveIntoMissArm(ast, "outer", "inner", false); err == nil {
		t.Error("nested tables must be rejected")
	}
}

func TestMoveIntoMissArmRejectsHitMissGuards(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; } }
metadata m_t m;
action x() { drop(); }
action y() { drop(); }
action z() { drop(); }
table t0 { reads { m.a : exact; } actions { x; } size : 4; }
table t1 { reads { m.a : exact; } actions { y; } size : 4; }
table t2 { reads { m.a : exact; } actions { z; } size : 4; }
control ingress {
    apply(t0);
    apply(t1) {
        hit { apply(t2); }
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	// t2 sits in t1's hit arm: not expressible as a condition at t0.
	if _, err := moveIntoMissArm(ast, "t0", "t2", false); err == nil {
		t.Error("hit/miss-guarded target must be rejected")
	}
}

func TestKnobForAndApply(t *testing.T) {
	ast := parseFixture(t)
	// Match-entry knob.
	knob, ok := knobFor(ast, "t_a")
	if !ok || knob.register != "" || knob.full != 4 {
		t.Fatalf("t_a knob = %+v, %v", knob, ok)
	}
	if err := applyKnob(ast, knob, 2); err != nil {
		t.Fatal(err)
	}
	if ast.Table("t_a").Size != 2 {
		t.Errorf("t_a size = %d, want 2", ast.Table("t_a").Size)
	}
	// Register knob rewrites the hash modulus too.
	rknob, ok := knobFor(ast, "t_reg")
	if !ok || rknob.register != "reg" || rknob.full != 100 {
		t.Fatalf("t_reg knob = %+v, %v", rknob, ok)
	}
	if err := applyKnob(ast, rknob, 60); err != nil {
		t.Fatal(err)
	}
	if ast.Register("reg").InstanceCount != 60 {
		t.Errorf("reg cells = %d, want 60", ast.Register("reg").InstanceCount)
	}
	var mod uint64
	for _, call := range ast.Action("act_reg").Body {
		if call.Name == p4.PrimHashOffset {
			mod = call.Args[3].(p4.IntLit).Value
		}
	}
	if mod != 60 {
		t.Errorf("hash modulus = %d, want 60 (must track the register size)", mod)
	}
	// No knob for a read-less, register-less table.
	srcTiny := `
action a() { no_op(); }
table t { actions { a; } default_action : a; }
control ingress { apply(t); }
`
	tiny := p4.MustParse(srcTiny)
	if err := p4.Check(tiny); err != nil {
		t.Fatal(err)
	}
	if _, ok := knobFor(tiny, "t"); ok {
		t.Error("read-less table without registers has no memory knob")
	}
}

func TestFixHashModulusMismatch(t *testing.T) {
	ast := parseFixture(t)
	// Corrupt the modulus so it no longer matches the register size.
	for _, call := range ast.Action("act_reg").Body {
		if call.Name == p4.PrimHashOffset {
			call.Args[3] = p4.IntLit{Value: 999}
		}
	}
	knob, _ := knobFor(ast, "t_reg")
	if err := applyKnob(ast, knob, 50); err == nil {
		t.Error("mismatched hash modulus must be rejected")
	}
}

func TestPruneUnused(t *testing.T) {
	ast := parseFixture(t)
	// Remove t_reg's apply: its action, register, calc, and field list
	// become unreachable.
	body := ast.Control(p4.IngressControl).Body
	body.Stmts = body.Stmts[:len(body.Stmts)-1]
	pruneUnused(ast)
	if ast.Table("t_reg") != nil {
		t.Error("unapplied table survived pruning")
	}
	if ast.Action("act_reg") != nil {
		t.Error("unreferenced action survived pruning")
	}
	if ast.Register("reg") != nil {
		t.Error("unreferenced register survived pruning")
	}
	if ast.Calculation("calc") != nil || ast.FieldList("fl") != nil {
		t.Error("unreferenced calculation/field list survived pruning")
	}
	// Still a valid program.
	if err := p4.Check(ast); err != nil {
		t.Fatalf("pruned program fails check: %v", err)
	}
	if ast.Table("t_a") == nil || ast.Action("act_a") == nil {
		t.Error("pruning removed live declarations")
	}
}

func TestEnumerateSegmentsDeterministic(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	a := enumerateSegments(ast)
	b := enumerateSegments(p4.Clone(ast))
	if len(a) != len(b) {
		t.Fatalf("segment counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i].Tables, ",") != strings.Join(b[i].Tables, ",") || a[i].Desc != b[i].Desc {
			t.Fatalf("segment %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// locateSegment agrees with the enumeration.
	for i := range a {
		block, lo, hi, err := locateSegment(ast, i)
		if err != nil {
			t.Fatalf("locateSegment(%d): %v", i, err)
		}
		if got := strings.Join(tablesInRun(block, lo, hi), ","); got != strings.Join(a[i].Tables, ",") {
			t.Fatalf("segment %d: located %s, enumerated %s", i, got, strings.Join(a[i].Tables, ","))
		}
	}
	if _, _, _, err := locateSegment(ast, len(a)+5); err == nil {
		t.Error("out-of-range segment index should fail")
	}
}

func TestGuardNamesAndBuild(t *testing.T) {
	ast := parseFixture(t)
	g, stmt, err := buildDependencyGuard(ast, "t_a", "t_b")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Table != g.Table {
		t.Error("guard apply references a different table")
	}
	if err := p4.Check(ast); err != nil {
		t.Fatalf("program with guard decls fails check: %v", err)
	}
	// Second guard for another pair shares the metadata header.
	if _, _, err := buildDependencyGuard(ast, "t_a", "t_c"); err != nil {
		t.Fatal(err)
	}
	ht := ast.HeaderType(guardMetaType)
	if ht == nil || len(ht.Fields) != 2 {
		t.Errorf("guard metadata fields = %v, want 2", ht)
	}
	// Duplicate guard is rejected.
	if _, _, err := buildDependencyGuard(ast, "t_a", "t_b"); err == nil {
		t.Error("duplicate guard must be rejected")
	}
}
