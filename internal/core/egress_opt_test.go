package core

import (
	"math/rand"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// egressOptProgram has two egress ACLs with a write-after-write dependency
// (both drop) that never manifests: Phase 2 should fold them into one
// egress stage, shortening the egress pipeline 2 -> 1 while ingress stays
// at 1.
const egressOptProgram = `
header_type m_t { fields { klass : 8; } }
metadata m_t m;
action route(p) { modify_field(standard_metadata.egress_spec, p); }
action eg_drop_a() { drop(); }
action eg_drop_b() { drop(); }
table ing_route { actions { route; } default_action : route(2); }
table eg_acl_a {
    reads { m.klass : exact; }
    actions { eg_drop_a; }
    size : 8;
}
table eg_acl_b {
    reads { standard_metadata.egress_port : exact; }
    actions { eg_drop_b; }
    size : 8;
}
control ingress {
    apply(ing_route);
}
control egress {
    apply(eg_acl_a);
    apply(eg_acl_b);
}
`

// TestEgressDependencyRemoval: the optimizer also shortens the egress
// pipeline when the profile shows its dependencies never manifest.
func TestEgressDependencyRemoval(t *testing.T) {
	ast := p4.MustParse(egressOptProgram)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	// Traffic never matches either egress ACL (metadata stays zero and
	// no rules are installed for class 0 / port 2... install rules that
	// simply never fire on the trace).
	cfgText := `
table_add eg_acl_a eg_drop_a 9
table_add eg_acl_b eg_drop_b 9
`
	cfg, err := parseRules(cfgText)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	trace := &trafficgen.Trace{}
	for i := 0; i < 500; i++ {
		data := make([]byte, 4)
		rng.Read(data)
		trace.Packets = append(trace.Packets, trafficgen.Packet{Port: 1, Data: data})
	}
	res, err := New(Options{}).Optimize(ast, cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Total stages: ingress 1 + egress 2 = 3 initially, 1 + 1 = 2 after.
	if res.StagesBefore() != 3 || res.StagesAfter() != 2 {
		t.Fatalf("total stages %d -> %d, want 3 -> 2\n%s",
			res.StagesBefore(), res.StagesAfter(), RenderHistory(res.History))
	}
	var dep *Observation
	for i := range res.Observations {
		if res.Observations[i].Phase == PhaseDependencies && res.Observations[i].Accepted {
			dep = &res.Observations[i]
		}
	}
	if dep == nil {
		t.Fatal("no accepted dependency removal in the egress pipeline")
	}
	if dep.Tables[0] != "eg_acl_a" || dep.Tables[1] != "eg_acl_b" {
		t.Errorf("removed %v, want eg_acl_a -> eg_acl_b", dep.Tables)
	}
	// The rewrite happened inside the egress control.
	eg := res.Optimized.Control(p4.EgressControl)
	if eg == nil {
		t.Fatal("egress control vanished")
	}
	if path := findApplyPath(eg.Body, "eg_acl_b"); path == nil {
		t.Error("eg_acl_b not in the egress control anymore")
	} else {
		inMiss := false
		for _, enc := range path {
			if enc.viaApply == "eg_acl_a" && !enc.onHit {
				inMiss = true
			}
		}
		if !inMiss {
			t.Error("eg_acl_b should be in eg_acl_a's miss arm")
		}
	}
}

// parseRules is a tiny indirection so the test reads naturally.
func parseRules(text string) (*rt.Config, error) { return rt.Parse(text) }
