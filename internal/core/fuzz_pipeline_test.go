package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"p2go/internal/controller"
	"p2go/internal/p4"
	"p2go/internal/trafficgen"
)

// genFuzzProgram builds a random metadata-only program: actions over a
// shared field pool create organic WAW/RAW/control dependencies, and the
// control tree nests applies under random conditions. No parser: the
// simulator runs on raw payloads, so any byte string is a valid packet.
func genFuzzProgram(rng *rand.Rand) string {
	var b strings.Builder
	nFields := 3 + rng.Intn(4)
	b.WriteString("header_type fz_t {\n    fields {\n")
	for i := 0; i < nFields; i++ {
		b.WriteString(fmt.Sprintf("        f%d : 16;\n", i))
	}
	b.WriteString("    }\n}\nmetadata fz_t fz;\n")

	field := func() string { return fmt.Sprintf("fz.f%d", rng.Intn(nFields)) }
	nTables := 2 + rng.Intn(5)
	for i := 0; i < nTables; i++ {
		// One action per table (gives the dependency analysis precise
		// action pairs).
		b.WriteString(fmt.Sprintf("action fza%d() {\n", i))
		for j, n := 0, 1+rng.Intn(3); j < n; j++ {
			switch rng.Intn(4) {
			case 0:
				b.WriteString(fmt.Sprintf("    modify_field(%s, %d);\n", field(), rng.Intn(50)))
			case 1:
				b.WriteString(fmt.Sprintf("    add_to_field(%s, %d);\n", field(), 1+rng.Intn(5)))
			case 2:
				b.WriteString("    drop();\n")
			case 3:
				b.WriteString(fmt.Sprintf("    modify_field(standard_metadata.egress_spec, %d);\n", 1+rng.Intn(8)))
			}
		}
		b.WriteString("}\n")
		b.WriteString(fmt.Sprintf("table fzt%d {\n", i))
		if rng.Intn(2) == 0 {
			b.WriteString(fmt.Sprintf("    reads {\n        %s : exact;\n    }\n", field()))
		}
		b.WriteString(fmt.Sprintf("    actions {\n        fza%d;\n    }\n", i))
		if rng.Intn(2) == 0 || len(tableReads(i)) == 0 {
			b.WriteString(fmt.Sprintf("    default_action : fza%d;\n", i))
		}
		b.WriteString(fmt.Sprintf("    size : %d;\n", 4+rng.Intn(60)))
		b.WriteString("}\n")
	}

	b.WriteString("control ingress {\n")
	depth := 0
	for i := 0; i < nTables; i++ {
		if depth < 2 && rng.Intn(3) == 0 {
			b.WriteString(fmt.Sprintf("if (%s < %d) {\n", field(), 1+rng.Intn(40)))
			depth++
		}
		b.WriteString(fmt.Sprintf("apply(fzt%d);\n", i))
		if depth > 0 && rng.Intn(3) == 0 {
			b.WriteString("}\n")
			depth--
		}
	}
	for ; depth > 0; depth-- {
		b.WriteString("}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// tableReads is a placeholder so the generator above can reference it; the
// actual reads decision is re-randomized inline (default_action presence is
// what matters for checkability).
func tableReads(int) []string { return nil }

// fuzzTrace builds random raw-payload packets.
func fuzzTrace(rng *rand.Rand, n int) *trafficgen.Trace {
	out := &trafficgen.Trace{}
	for i := 0; i < n; i++ {
		data := make([]byte, 1+rng.Intn(32))
		rng.Read(data)
		out.Packets = append(out.Packets, trafficgen.Packet{Port: uint64(1 + rng.Intn(3)), Data: data})
	}
	return out
}

// TestFuzzPipelineInvariants runs the full optimizer on random programs and
// random traffic, asserting the invariants the paper promises:
//
//  1. optimization never errors and never lengthens the pipeline;
//  2. the optimized program is valid P4 that reparses;
//  3. the optimized data plane (+ controller, when something was
//     offloaded) behaves exactly like the original on the trace.
func TestFuzzPipelineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for i := 0; i < 75; i++ {
		src := genFuzzProgram(rng)
		ast, err := p4.Parse(src)
		if err != nil {
			t.Fatalf("program %d: parse: %v\n%s", i, err, src)
		}
		if err := p4.Check(ast); err != nil {
			t.Fatalf("program %d: check: %v\n%s", i, err, src)
		}
		trace := fuzzTrace(rng, 400)
		res, err := New(Options{}).Optimize(ast, nil, trace)
		if err != nil {
			t.Fatalf("program %d: optimize: %v\n%s", i, err, src)
		}
		if res.StagesAfter() > res.StagesBefore() {
			t.Fatalf("program %d: pipeline grew %d -> %d\n%s",
				i, res.StagesBefore(), res.StagesAfter(), src)
		}
		printed := p4.Print(res.Optimized)
		reparsed, err := p4.Parse(printed)
		if err != nil {
			t.Fatalf("program %d: optimized does not reparse: %v\n%s", i, err, printed)
		}
		if err := p4.Check(reparsed); err != nil {
			t.Fatalf("program %d: optimized does not recheck: %v\n%s", i, err, printed)
		}
		segment := res.ControllerProgram
		if segment == nil {
			segment = p4.MustParse("control ingress { }")
		}
		report, err := controller.VerifyEquivalence(res.Original, res.OptimizedConfig,
			res.Optimized, res.OptimizedConfig, segment, trace)
		if err != nil {
			t.Fatalf("program %d: equivalence: %v\n%s", i, err, src)
		}
		if !report.Equivalent() {
			t.Fatalf("program %d: behavior diverged: %s\noriginal:\n%s\noptimized:\n%s",
				i, report, src, printed)
		}
	}
}
