package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"p2go/internal/deps"
	"p2go/internal/ir"
	"p2go/internal/obs"
	"p2go/internal/p4"
)

// ToCtlAction is the redirect action Phase 4 synthesizes.
const ToCtlAction = "to_controller"

// ToCtlTable is the redirect table name (Table 2's "C / To_Ctl" box).
const ToCtlTable = "To_Ctl"

// cpuPort must match sim.CPUPort; kept local to avoid the import.
const cpuPort = 255

// Segment is one offload candidate: a contiguous statement run in some
// control block, identified by its index in the deterministic enumeration
// order so it can be re-located in program clones.
type Segment struct {
	Index  int
	Tables []string
	// Depth and span describe the location for diagnostics.
	Desc string
}

// CandidateReport carries the metrics Phase 4's selection uses; exported
// for the phase-ordering ablation benchmarks.
type CandidateReport struct {
	Segment      Segment
	StagesSaved  int
	Redirected   int     // packets redirected to the controller
	RedirectFrac float64 // fraction of the trace
}

// phase4 offloads the self-contained code segment that saves at least one
// stage while redirecting the least traffic to the controller (§3.4). The
// contiguous-run enumeration over every control block is the dynamic
// program over (block, start, end); each candidate is compiled and
// profiled to measure its stage savings and redirected traffic, exactly as
// the paper describes.
func (r *run) phase4(ctx context.Context) error {
	reports, err := r.offloadCandidates(ctx)
	if err != nil {
		return err
	}
	baseStages := totalStages(r.compile.Mapping)
	var viable []CandidateReport
	for _, rep := range reports {
		if rep.StagesSaved < r.mgr.minSavings {
			continue
		}
		// A negative cap disables the check; an explicit zero really means
		// zero (only candidates with no redirected traffic pass).
		if r.mgr.maxRedirect >= 0 && rep.RedirectFrac > r.mgr.maxRedirect {
			continue
		}
		viable = append(viable, rep)
	}
	if len(viable) == 0 {
		return nil
	}
	sort.Slice(viable, func(i, j int) bool {
		a, b := viable[i], viable[j]
		if a.Redirected != b.Redirected {
			return a.Redirected < b.Redirected
		}
		if a.StagesSaved != b.StagesSaved {
			return a.StagesSaved > b.StagesSaved
		}
		return a.Segment.Index < b.Segment.Index
	})
	win := viable[0]

	actx, asp := obs.Start(ctx, "phase4.apply",
		obs.String("segment", win.Segment.Desc),
		obs.String("tables", strings.Join(win.Segment.Tables, ",")),
		obs.Int("stages_saved", win.StagesSaved))
	defer asp.End()
	candidate, ctlProg, err := r.rewriteOffloadBoth(win.Segment)
	if err != nil {
		return err
	}
	compiled, err := r.compileCandidate(actx, candidate)
	if err != nil {
		return err
	}
	newProf, err := r.profileCandidate(actx, candidate)
	if err != nil {
		return err
	}
	r.cur = candidate
	r.compile = compiled
	r.prof = newProf
	r.offloaded = append(r.offloaded, win.Segment.Tables...)
	r.ctlProgram = ctlProg
	r.obs = append(r.obs, Observation{
		Phase:    PhaseOffload,
		Kind:     "offload-segment",
		Accepted: true,
		Summary: fmt.Sprintf("offload {%s} to the controller via %s",
			strings.Join(win.Segment.Tables, ", "), ToCtlTable),
		Evidence: fmt.Sprintf("segment is self-contained and redirects only %.2f%% of the trace (%d packets) while saving %d stage(s); implement the removed tables in the controller",
			100*win.RedirectFrac, win.Redirected, win.StagesSaved),
		Tables:       win.Segment.Tables,
		StagesBefore: baseStages,
		StagesAfter:  totalStages(compiled.Mapping),
		Details: map[string]string{
			"redirected_fraction": fmt.Sprintf("%.6f", win.RedirectFrac),
			"stages_saved":        fmt.Sprintf("%d", win.StagesSaved),
		},
	})
	return nil
}

// offloadCandidates enumerates self-contained segments and measures each
// one by compiling and profiling the rewritten program. Measurements are
// independent (each works on its own clone), so they fan out over the
// worker pool; reports are collected by segment index, so the viable list
// reaches the selection sort in enumeration order exactly as it did
// sequentially.
func (r *run) offloadCandidates(ctx context.Context) ([]CandidateReport, error) {
	segs := enumerateSegments(r.cur)
	baseStages := totalStages(r.compile.Mapping)
	reports := make([]CandidateReport, len(segs))
	viable := make([]bool, len(segs))
	err := forEachIndexed(ctx, len(segs), r.opts.parallelism(), func(i int) error {
		// Candidate failures below are swallowed (not viable);
		// cancellation must not be.
		if err := r.interrupted(); err != nil {
			return err
		}
		rep, ok, err := r.measureSegment(ctx, segs[i], baseStages)
		if err != nil {
			return err
		}
		reports[i], viable[i] = rep, ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []CandidateReport
	for i, ok := range viable {
		if ok {
			out = append(out, reports[i])
		}
	}
	return out, nil
}

// measureSegment evaluates one offload candidate under its own span:
// self-containedness, rewrite, compile, and the profile that measures the
// redirected traffic.
func (r *run) measureSegment(ctx context.Context, seg Segment, baseStages int) (CandidateReport, bool, error) {
	ctx, sp := obs.Start(ctx, "phase4.candidate",
		obs.String("segment", seg.Desc),
		obs.String("tables", strings.Join(seg.Tables, ",")))
	defer sp.End()
	if !r.selfContained(seg) {
		sp.SetAttr(obs.String("rejected", "not-self-contained"))
		return CandidateReport{}, false, nil
	}
	candidate, err := r.rewriteOffload(seg)
	if err != nil {
		sp.SetAttr(obs.String("rejected", "rewrite-failed"))
		return CandidateReport{}, false, nil
	}
	compiled, err := r.compileCandidate(ctx, candidate)
	if err != nil {
		sp.SetAttr(obs.String("rejected", "compile-failed"))
		return CandidateReport{}, false, nil
	}
	prof, err := r.profileCandidate(ctx, candidate)
	if err != nil {
		sp.SetAttr(obs.String("rejected", "profile-failed"))
		return CandidateReport{}, false, nil
	}
	redirected := prof.Hits[ToCtlTable]
	rep := CandidateReport{
		Segment:     seg,
		StagesSaved: baseStages - totalStages(compiled.Mapping),
		Redirected:  redirected,
	}
	if prof.TotalPackets > 0 {
		rep.RedirectFrac = float64(redirected) / float64(prof.TotalPackets)
	}
	sp.SetAttr(obs.Int("stages_saved", rep.StagesSaved), obs.Int("redirected", redirected))
	return rep, true, nil
}

// enumerateSegments lists every contiguous statement run containing at
// least one table, across all blocks of the ingress control, in a
// deterministic depth-first order.
func enumerateSegments(ast *p4.Program) []Segment {
	ingress := ast.Control(p4.IngressControl)
	if ingress == nil {
		return nil
	}
	var out []Segment
	var walk func(b *p4.BlockStmt, where string)
	walk = func(b *p4.BlockStmt, where string) {
		if b == nil {
			return
		}
		for lo := 0; lo < len(b.Stmts); lo++ {
			for hi := lo; hi < len(b.Stmts); hi++ {
				tables := tablesInRun(b, lo, hi)
				if len(tables) == 0 {
					continue
				}
				out = append(out, Segment{
					Index:  len(out),
					Tables: tables,
					Desc:   fmt.Sprintf("%s[%d:%d]", where, lo, hi),
				})
			}
		}
		for i, s := range b.Stmts {
			switch v := s.(type) {
			case *p4.ApplyStmt:
				walk(v.Hit, fmt.Sprintf("%s.%d.hit", where, i))
				walk(v.Miss, fmt.Sprintf("%s.%d.miss", where, i))
			case *p4.IfStmt:
				walk(v.Then, fmt.Sprintf("%s.%d.then", where, i))
				walk(v.Else, fmt.Sprintf("%s.%d.else", where, i))
			case *p4.BlockStmt:
				walk(v, fmt.Sprintf("%s.%d", where, i))
			}
		}
	}
	walk(ingress.Body, "ingress")
	return out
}

func tablesInRun(b *p4.BlockStmt, lo, hi int) []string {
	tmp := &p4.BlockStmt{Stmts: b.Stmts[lo : hi+1]}
	return p4.TablesInBlock(tmp)
}

// selfContained checks the paper's offloadability criteria: packets sent to
// the controller need no additional state (no reads of externally written
// metadata — header fields and intrinsic metadata are fine: the controller
// reparses the packet and packet-in carries the ingress port) and no
// further data-plane processing of the segment's outputs (no field written
// inside is read outside). Conditions nested inside the segment count as
// segment reads: removing them moves their evaluation to the controller.
// The drop/forward verdict (egress_spec) only flows out if some remaining
// table actually reads it.
func (r *run) selfContained(seg Segment) bool {
	prog := r.compile.IR
	segSet := map[string]bool{}
	for _, t := range seg.Tables {
		if prog.Tables[t] == nil || prog.Tables[t].Order < 0 {
			return false
		}
		segSet[t] = true
	}
	intrinsic := map[ir.FieldKey]bool{
		ir.FieldKey(p4.StandardMetadataName + "." + p4.FieldIngressPort):  true,
		ir.FieldKey(p4.StandardMetadataName + "." + p4.FieldPacketLength): true,
	}

	writesInside := ir.FieldSet{}
	readsInside := ir.FieldSet{}
	for t := range segSet {
		tbl := prog.Tables[t]
		for k := range tbl.ActionWrites() {
			writesInside.Add(k)
		}
		for k := range tbl.ActionReads() {
			readsInside.Add(k)
		}
		for k := range tbl.MatchReads {
			readsInside.Add(k)
		}
	}
	// Conditions inside the segment move to the controller with it.
	for k := range r.segmentCondReads(seg) {
		readsInside.Add(k)
	}
	// Outputs must not feed the rest of the data plane.
	for _, t := range prog.Ordered {
		if segSet[t.Name] {
			continue
		}
		outsideReads := t.MatchReads.Union(t.ActionReads()).Union(t.GuardReads)
		for k := range outsideReads {
			if writesInside.Has(k) {
				return false
			}
		}
	}
	// Inputs must be reconstructible by the controller: header fields,
	// intrinsic metadata, or values computed inside the segment.
	for k := range readsInside {
		if intrinsic[k] || writesInside.Has(k) {
			continue
		}
		inst := instanceOf(r.cur, k)
		if inst == nil {
			return false
		}
		if inst.Metadata {
			return false // externally computed metadata
		}
	}
	return true
}

// segmentCondReads collects the fields read by if-conditions nested inside
// the segment's statements.
func (r *run) segmentCondReads(seg Segment) ir.FieldSet {
	out := ir.FieldSet{}
	block, lo, hi, err := locateSegment(r.cur, seg.Index)
	if err != nil {
		return out
	}
	probe := &p4.BlockStmt{Stmts: block.Stmts[lo : hi+1]}
	p4.WalkStmts(probe, func(s p4.Stmt) bool {
		if ifs, ok := s.(*p4.IfStmt); ok {
			for k := range deps.CondReads(ifs.Cond) {
				out.Add(k)
			}
		}
		return true
	})
	return out
}

func instanceOf(ast *p4.Program, k ir.FieldKey) *p4.Instance {
	name := string(k)
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return ast.Instance(name)
}

// rewriteOffload clones the current program, replaces the segment's
// statements with an apply of the To_Ctl redirect table, and prunes the
// now-unreachable declarations.
func (r *run) rewriteOffload(seg Segment) (*p4.Program, error) {
	candidate, _, err := r.rewriteOffloadBoth(seg)
	return candidate, err
}

// rewriteOffloadBoth additionally returns the controller program: the
// original program with its ingress control reduced to just the offloaded
// segment. Reception at the controller implies the segment's external
// guards held (the data plane still evaluates them before redirecting), so
// the controller runs the segment body unconditionally.
func (r *run) rewriteOffloadBoth(seg Segment) (*p4.Program, *p4.Program, error) {
	candidate := p4.Clone(r.cur)
	segs := enumerateSegments(candidate)
	if seg.Index >= len(segs) {
		return nil, nil, fmt.Errorf("core: segment index %d out of range", seg.Index)
	}
	clone := segs[seg.Index]
	if strings.Join(clone.Tables, ",") != strings.Join(seg.Tables, ",") {
		return nil, nil, fmt.Errorf("core: segment enumeration diverged between clones")
	}
	if err := ensureToCtl(candidate); err != nil {
		return nil, nil, err
	}
	// Re-locate the block: enumerateSegments is deterministic, so the
	// index identifies the same (block, lo, hi) in the clone.
	block, lo, hi, err := locateSegment(candidate, seg.Index)
	if err != nil {
		return nil, nil, err
	}
	// Controller program: the segment's statements become the whole
	// ingress control of a copy of the (pre-offload) program.
	ctlProg := p4.Clone(r.cur)
	ctlBlock, ctlLo, ctlHi, err := locateSegment(ctlProg, seg.Index)
	if err != nil {
		return nil, nil, err
	}
	segmentStmts := append([]p4.Stmt(nil), ctlBlock.Stmts[ctlLo:ctlHi+1]...)
	ctlProg.Control(p4.IngressControl).Body = &p4.BlockStmt{Stmts: segmentStmts}
	pruneUnused(ctlProg)

	redirect := &p4.ApplyStmt{Table: ToCtlTable}
	rest := append([]p4.Stmt{redirect}, block.Stmts[hi+1:]...)
	block.Stmts = append(block.Stmts[:lo], rest...)
	pruneUnused(candidate)
	return candidate, ctlProg, nil
}

// locateSegment re-runs the enumeration walk and returns the block and
// bounds of the segment with the given index.
func locateSegment(ast *p4.Program, index int) (*p4.BlockStmt, int, int, error) {
	ingress := ast.Control(p4.IngressControl)
	count := 0
	var foundBlock *p4.BlockStmt
	var foundLo, foundHi int
	var walk func(b *p4.BlockStmt) bool
	walk = func(b *p4.BlockStmt) bool {
		if b == nil {
			return true
		}
		for lo := 0; lo < len(b.Stmts); lo++ {
			for hi := lo; hi < len(b.Stmts); hi++ {
				if len(tablesInRun(b, lo, hi)) == 0 {
					continue
				}
				if count == index {
					foundBlock, foundLo, foundHi = b, lo, hi
					return false
				}
				count++
			}
		}
		for _, s := range b.Stmts {
			switch v := s.(type) {
			case *p4.ApplyStmt:
				if !walk(v.Hit) || !walk(v.Miss) {
					return false
				}
			case *p4.IfStmt:
				if !walk(v.Then) || !walk(v.Else) {
					return false
				}
			case *p4.BlockStmt:
				if !walk(v) {
					return false
				}
			}
		}
		return true
	}
	walk(ingress.Body)
	if foundBlock == nil {
		return nil, 0, 0, fmt.Errorf("core: segment %d not found", index)
	}
	return foundBlock, foundLo, foundHi, nil
}

// ensureToCtl declares the redirect action and table if absent.
func ensureToCtl(ast *p4.Program) error {
	if ast.Table(ToCtlTable) != nil {
		return fmt.Errorf("core: program already declares %s", ToCtlTable)
	}
	if ast.Action(ToCtlAction) == nil {
		act := &p4.ActionDecl{
			Name: ToCtlAction,
			Body: []*p4.PrimitiveCall{{
				Name: p4.PrimModifyField,
				Args: []p4.Expr{
					p4.FieldRef{Instance: p4.StandardMetadataName, Field: p4.FieldEgressSpec},
					p4.IntLit{Value: cpuPort},
				},
			}},
		}
		ast.Actions = append(ast.Actions, act)
		ast.Decls = append(ast.Decls, act)
	}
	tbl := &p4.TableDecl{
		Name:          ToCtlTable,
		ActionNames:   []string{ToCtlAction},
		DefaultAction: ToCtlAction,
	}
	ast.Tables = append(ast.Tables, tbl)
	ast.Decls = append(ast.Decls, tbl)
	return nil
}
