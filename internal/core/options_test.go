package core

import (
	"strings"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/tofino"
)

// TestPhase4RedirectCapDisabled: a negative cap admits hot segments; the
// minimum-redirect rule still picks the DNS branch on Ex. 1, so the
// outcome matches the default — but the candidate pool is larger (covered
// via the ablation); here we pin that disabling the cap keeps Table 2.
func TestPhase4RedirectCapDisabled(t *testing.T) {
	res := optimizeEx1(t, Options{Phase4MaxRedirect: Float(-1)})
	if res.StagesAfter() != 3 {
		t.Errorf("stages after = %d, want 3", res.StagesAfter())
	}
}

// TestPhase4RedirectCapTight: a cap below the DNS share (2%) suppresses
// the offload entirely.
func TestPhase4RedirectCapTight(t *testing.T) {
	res := optimizeEx1(t, Options{Phase4MaxRedirect: Float(0.01)})
	if len(res.OffloadedTables) != 0 {
		t.Errorf("offloaded %v despite the 1%% cap", res.OffloadedTables)
	}
	if res.StagesAfter() != 6 {
		t.Errorf("stages after = %d, want 6 (phases 2+3 only)", res.StagesAfter())
	}
}

// TestPhase4MinSavings: requiring 4+ saved stages rejects the DNS branch
// (which saves 3).
func TestPhase4MinSavings(t *testing.T) {
	res := optimizeEx1(t, Options{Phase4MinSavings: Int(4)})
	if len(res.OffloadedTables) != 0 {
		t.Errorf("offloaded %v despite MinSavings=4", res.OffloadedTables)
	}
}

// TestOptionsResolution: nil pointer fields resolve to the documented
// defaults, and an explicit zero is honored as zero — historically
// Phase4MaxRedirect: 0 silently became the 10% default, which made "no
// redirected traffic at all" inexpressible.
func TestOptionsResolution(t *testing.T) {
	m, err := newManager(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.minSavings != 1 {
		t.Errorf("default minSavings = %d, want 1", m.minSavings)
	}
	if m.maxRedirect != defaultPhase4MaxRedirect {
		t.Errorf("default maxRedirect = %v, want %v", m.maxRedirect, defaultPhase4MaxRedirect)
	}
	m, err = newManager(Options{Phase4MinSavings: Int(0), Phase4MaxRedirect: Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	if m.minSavings != 0 {
		t.Errorf("explicit Int(0) minSavings = %d, want 0", m.minSavings)
	}
	if m.maxRedirect != 0 {
		t.Errorf("explicit Float(0) maxRedirect = %v, want 0", m.maxRedirect)
	}
}

// TestPhase4RedirectCapZero: an explicit zero cap means zero — every
// candidate redirects at least the DNS share, so nothing is offloaded.
func TestPhase4RedirectCapZero(t *testing.T) {
	res := optimizeEx1(t, Options{Phase4MaxRedirect: Float(0)})
	if len(res.OffloadedTables) != 0 {
		t.Errorf("offloaded %v despite a zero redirect cap", res.OffloadedTables)
	}
	if res.StagesAfter() != 6 {
		t.Errorf("stages after = %d, want 6 (phases 2+3 only)", res.StagesAfter())
	}
}

// TestTargetOverride: a roomier target dissolves the memory pressure that
// makes IPv4 span stages, so the initial mapping shrinks.
func TestTargetOverride(t *testing.T) {
	tgt := tofino.DefaultTarget()
	tgt.StageSRAMBytes *= 4
	tgt.StageTCAMBytes *= 4
	res, err := New(Options{Target: tgt}).Optimize(p4.MustParse(programs.Ex1), programs.Ex1Config(), enterpriseTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	// IPv4 fits one stage; S1+S2 can share: the dependency structure
	// still forces SM after the sketches and DD after SM.
	if res.StagesBefore() >= 8 {
		t.Errorf("roomier target should start below 8 stages, got %d", res.StagesBefore())
	}
}

// TestObservationDetails: accepted observations carry machine-readable
// details.
func TestObservationDetails(t *testing.T) {
	res := optimizeEx1(t, Options{})
	for _, o := range res.Observations {
		if !o.Accepted {
			continue
		}
		switch o.Kind {
		case "reduce-table", "reduce-register":
			if o.Details["full"] == "" || o.Details["reduced"] == "" || o.Details["reduction"] == "" {
				t.Errorf("memory observation missing details: %v", o.Details)
			}
		case "offload-segment":
			if o.Details["redirected_fraction"] == "" || o.Details["stages_saved"] == "" {
				t.Errorf("offload observation missing details: %v", o.Details)
			}
		case "remove-dependency":
			if o.Details["from"] == "" || o.Details["to"] == "" {
				t.Errorf("dependency observation missing details: %v", o.Details)
			}
		}
	}
}

// TestPhaseLabels: the history labels follow the paper's phase names.
func TestPhaseLabels(t *testing.T) {
	res := optimizeEx1(t, Options{})
	want := []string{"initial", "removing-dependencies", "reducing-memory", "offloading-code"}
	for i, h := range res.History {
		if h.Label != want[i] {
			t.Errorf("history[%d] = %s, want %s", i, h.Label, want[i])
		}
	}
	if PhaseProfiling.String() != "profiling" || PhaseOffload.String() != "offloading-code" {
		t.Error("phase names drifted")
	}
}

// TestReportRendering: the operator-facing report carries the history,
// every observation with evidence, and the offload summary. The plain run
// shows the Sketch_1 rejection; the guard run shows the detectors (its
// extra guard table shifts Phase 3's binary-search landing point, so the
// engineered rejection does not reproduce there — a nice demonstration
// that the optimization trajectory depends on every byte in the stages).
func TestReportRendering(t *testing.T) {
	plain := optimizeEx1(t, Options{}).Report()
	for _, want := range []string{
		"pipeline stages: 8 -> 3",
		"APPLIED",
		"REJECTED",
		"evidence:",
		"offloaded to the controller",
		"Sketch_Min",
	} {
		if !strings.Contains(plain, want) {
			t.Errorf("plain report missing %q:\n%s", want, plain)
		}
	}
	guarded := optimizeEx1(t, Options{InsertDependencyGuards: true}).Report()
	for _, want := range []string{
		"runtime violation detectors",
		"p2go_viol_ACL_DHCP",
	} {
		if !strings.Contains(guarded, want) {
			t.Errorf("guarded report missing %q:\n%s", want, guarded)
		}
	}
}
