package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// AnalysisCache is the content-addressed store for the two expensive
// analyses the pipeline computes: compiles (stage mapping + dependency
// graph) and profiles (trace replays). Keys are digests of the analysis
// inputs — the printed program plus the hardware model for compiles, plus
// the rules and the trace for profiles — so any two requests for the same
// analysis of the same program share one result, wherever in the pipeline
// they come from: Phase 3's binary search re-visiting a probe value,
// Phase 4 re-compiling the winning candidate it already measured, or a
// whole re-run with only Options changed.
//
// A fresh per-run cache is created automatically; pass one explicitly via
// Options.AnalysisCache to carry results across runs (incremental
// re-optimization). Cached values are treated as immutable and shared —
// the same contract CompileHook/ProfileHook results already obey. Only
// successful analyses are cached: errors (including context cancellation)
// are never stored, so a canceled run cannot poison a shared cache.
type AnalysisCache struct {
	mu       sync.Mutex
	compiles map[string]*tofino.Result
	profiles map[string]*profile.Profile
	preps    map[string]*profile.Prepared
	stats    AnalysisCacheStats
}

// AnalysisCacheStats counts lookups and stored entries across the cache's
// lifetime (all runs that shared it).
type AnalysisCacheStats struct {
	CompileHits    int
	CompileMisses  int
	ProfileHits    int
	ProfileMisses  int
	PlanHits       int
	PlanMisses     int
	CompileEntries int
	ProfileEntries int
	PlanEntries    int
}

// NewAnalysisCache creates an empty cache, ready to be shared across runs
// via Options.AnalysisCache.
func NewAnalysisCache() *AnalysisCache {
	return &AnalysisCache{
		compiles: map[string]*tofino.Result{},
		profiles: map[string]*profile.Profile{},
		preps:    map[string]*profile.Prepared{},
	}
}

// getCompile looks up a compile result and records the hit or miss.
func (c *AnalysisCache) getCompile(key string) (*tofino.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.compiles[key]
	if ok {
		c.stats.CompileHits++
	} else {
		c.stats.CompileMisses++
	}
	return res, ok
}

// putCompile stores a successful compile. The first stored result wins so
// concurrent probes that raced on the same key keep pointer-stable values.
func (c *AnalysisCache) putCompile(key string, res *tofino.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.compiles[key]; !ok {
		c.compiles[key] = res
		c.stats.CompileEntries++
	}
}

// getProfile looks up a profile and records the hit or miss.
func (c *AnalysisCache) getProfile(key string) (*profile.Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.profiles[key]
	if ok {
		c.stats.ProfileHits++
	} else {
		c.stats.ProfileMisses++
	}
	return p, ok
}

// putProfile stores a successful profile; first stored result wins.
func (c *AnalysisCache) putProfile(key string, p *profile.Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.profiles[key]; !ok {
		c.profiles[key] = p
		c.stats.ProfileEntries++
	}
}

// getPrepared looks up a prepared profiler (instrumented program + lowered
// execution plan) and records the hit or miss.
func (c *AnalysisCache) getPrepared(key string) (*profile.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.preps[key]
	if ok {
		c.stats.PlanHits++
	} else {
		c.stats.PlanMisses++
	}
	return p, ok
}

// putPrepared stores a successful preparation; first stored result wins.
// Prepared values are immutable and every replay takes a fresh Switch from
// them, so sharing across runs (and concurrent probes) is safe.
func (c *AnalysisCache) putPrepared(key string, p *profile.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.preps[key]; !ok {
		c.preps[key] = p
		c.stats.PlanEntries++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *AnalysisCache) Stats() AnalysisCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// analysisDigest is the hex SHA-256 over length-prefixed parts, so
// concatenation ambiguity cannot collide keys.
func analysisDigest(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// compileKey content-addresses one compile: the printed program and the
// hardware model. doCompile never mutates the AST it is handed, so the
// printed source is a faithful key.
func compileKey(ast *p4.Program, tgt tofino.Target) string {
	return analysisDigest("compile", p4.Print(ast),
		fmt.Sprintf("%d/%d/%d/%d/%d", tgt.Stages, tgt.StageSRAMBytes, tgt.StageTCAMBytes,
			tgt.MaxTablesPerStage, tgt.StageALUs))
}

// profileKey content-addresses one trace replay: the printed program, the
// installed rules, and the trace digest (computed once per run).
func profileKey(ast *p4.Program, cfg *rt.Config, traceDigest string) string {
	return analysisDigest("profile", p4.Print(ast), rt.Format(cfg), traceDigest)
}

// planKey content-addresses one preparation (instrumentation + plan
// lowering): the printed program and the rules. The trace is deliberately
// absent — a prepared plan serves any trace, which is the point of caching
// it separately from profiles.
func planKey(ast *p4.Program, cfg *rt.Config) string {
	return analysisDigest("plan", p4.Print(ast), rt.Format(cfg))
}

// digestTrace hashes the trace packets (port + frame bytes), mirroring the
// service-layer trace digest so profile keys distinguish traces even when
// they come from the same generator spec.
func digestTrace(t *trafficgen.Trace) string {
	h := sha256.New()
	var n [8]byte
	for _, pkt := range t.Packets {
		binary.BigEndian.PutUint64(n[:], pkt.Port)
		h.Write(n[:])
		binary.BigEndian.PutUint64(n[:], uint64(len(pkt.Data)))
		h.Write(n[:])
		h.Write(pkt.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}
