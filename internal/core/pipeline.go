package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// Options configures an optimization run.
type Options struct {
	// Target is the hardware model; zero value means
	// tofino.DefaultTarget().
	Target tofino.Target
	// Passes selects which optimization passes run and in what order
	// (the §2.2 phase-ordering ablations as configuration). IDs come
	// from the pass registry (see Passes()); duplicates are allowed.
	// nil means the default schedule — phase2, phase3, phase4, filtered
	// by the deprecated DisablePhaseN shims below. A non-nil empty slice
	// means "profile only, run no optimization pass".
	Passes []string
	// DisablePhase2/3/4 let the programmer re-run P2GO with individual
	// optimizations turned off (§2.2).
	//
	// Deprecated: set Passes instead; these shims only apply when Passes
	// is nil and cannot express reordering.
	DisablePhase2 bool
	DisablePhase3 bool
	DisablePhase4 bool
	// MaxPhase2Removals bounds dependency removals; 0 means "until no
	// candidate improves the pipeline". The paper's strict
	// one-change-at-a-time mode is MaxPhase2Removals == 1.
	MaxPhase2Removals int
	// InsertDependencyGuards makes Phase 2 add a runtime violation
	// detector for every removed dependency (§3.2's alternative
	// approach): a table in the first table's hit arm matching on the
	// second table's fields; a hit increments a violation register,
	// reporting that the removed dependency manifested at runtime.
	InsertDependencyGuards bool
	// Phase4MinSavings is the minimum stage savings an offload must
	// achieve. nil means the default of 1; use Int(v) to set a value
	// (an explicit Int(0) accepts zero-saving offloads).
	Phase4MinSavings *int
	// Phase4MaxRedirect caps the fraction of traffic that may be
	// redirected to the controller — the paper's premise is that offload
	// candidates are "rarely used", so hot segments (e.g. the forwarding
	// path itself) are never offloaded. nil means the default of 10%;
	// use Float(v) to set a value: an explicit Float(0) means "no
	// redirected traffic at all", and a negative value disables the cap.
	Phase4MaxRedirect *float64
	// Context, when non-nil, cancels an in-flight run: the pipeline
	// checks it before every compile and profile (the operations that
	// dominate cost) and aborts with the context's error.
	Context context.Context
	// CompileHook, when non-nil, intercepts every compile the pipeline
	// issues — including the candidate probes inside Phase 3's binary
	// search and Phase 4's enumeration — so a caller can serve repeats
	// from a content-addressed cache. The context is the span-carrying
	// context of the enclosing pipeline step, so hook-side spans (cache
	// lookups, replays) nest under the right probe. The returned result
	// is treated as immutable and may be shared across runs.
	CompileHook func(context.Context, *p4.Program, tofino.Target) (*tofino.Result, error)
	// ProfileHook likewise intercepts every trace replay. The returned
	// profile is treated as immutable.
	ProfileHook func(context.Context, *p4.Program, *rt.Config, *trafficgen.Trace) (*profile.Profile, error)
	// Parallelism bounds the worker count of the parallel paths: trace
	// replay shards (stateless programs only — see profile.StatefulTables)
	// and the Phase 3 halving probes / Phase 4 segment measurements, which
	// are independent compile+profile jobs. 0 means one worker per CPU;
	// 1 forces the historical sequential behavior, including span
	// creation order. Results are collected by index either way, so the
	// observations, history, and final program never depend on it.
	Parallelism int
	// AnalysisCache, when non-nil, carries compiled mappings and profiles
	// across runs: a re-run of the same program and trace with only the
	// pass schedule or thresholds changed replays mostly from cache. nil
	// means a fresh cache per run (which still deduplicates the repeated
	// programs inside one run, e.g. Phase 3 re-compiling the winning
	// probe it already measured).
	AnalysisCache *AnalysisCache
	// Bindings assigns values to the program's @tunable symbols before
	// anything runs; missing names take their declared defaults. The run
	// operates on the instantiated concrete program, whose printed source
	// is binding-distinct — so compile/profile cache keys and artifact
	// digests separate instantiations automatically. Unknown names and
	// out-of-range values fail the run. Ignored (must be empty) for
	// programs without tunables.
	Bindings map[string]int
	// Tune configures the "tune" pass when it is scheduled; nil means
	// defaults (no accuracy constraint, 4 coordinate-descent rounds).
	Tune *TuneOptions
}

// defaultPhase4MaxRedirect is the "rarely used" threshold.
const defaultPhase4MaxRedirect = 0.10

func (o Options) target() tofino.Target {
	if o.Target.Stages == 0 {
		return tofino.DefaultTarget()
	}
	return o.Target
}

// parallelism resolves Options.Parallelism to an effective worker count.
func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return profile.DefaultShards()
	}
	return o.Parallelism
}

// passIDs resolves the pass schedule: an explicit Passes list wins;
// otherwise the deprecated DisablePhaseN shims filter the default order.
func (o Options) passIDs() []string {
	if o.Passes != nil {
		return o.Passes
	}
	var out []string
	for _, id := range DefaultPassIDs() {
		switch {
		case id == "phase2" && o.DisablePhase2:
		case id == "phase3" && o.DisablePhase3:
		case id == "phase4" && o.DisablePhase4:
		default:
			out = append(out, id)
		}
	}
	return out
}

// Result is the outcome of a P2GO run.
type Result struct {
	// Original is the input program instantiated at the run's bindings
	// (for programs without tunables, a verbatim copy of the input).
	// Equivalence checks compare Optimized against it, so both sides run
	// at the same knob values.
	Original *p4.Program
	// Optimized is the rewritten program.
	Optimized *p4.Program
	// OptimizedConfig is the runtime configuration for the optimized
	// program (rules of offloaded tables removed — they move to the
	// controller).
	OptimizedConfig *rt.Config
	// Profile is the original program's profile (Phase 1 output).
	Profile *profile.Profile
	// FinalProfile is the optimized program's profile on the same trace.
	FinalProfile *profile.Profile
	// Observations lists every accepted and rejected candidate, in order.
	Observations []Observation
	// History snapshots the stage mapping after each phase (Table 2).
	History []StageSnapshot
	// OffloadedTables lists tables Phase 4 moved to the controller; the
	// controller must implement them (§3.4).
	OffloadedTables []string
	// Guards lists the runtime violation detectors inserted by Phase 2
	// when Options.InsertDependencyGuards is set. Read a guard's
	// register (cell 0) on the running switch to see how many packets
	// the removed dependency manifested on.
	Guards []DependencyGuard
	// ControllerProgram is the offloaded segment as a standalone P4
	// program: its ingress control is exactly the segment body, to be
	// executed (in software) on every redirected packet. Nil when
	// nothing was offloaded. This realizes §3.4's "generating the
	// controller code" via the same behavioral semantics instead of a
	// uBPF backend.
	ControllerProgram *p4.Program
	// RedirectedFraction is the share of trace traffic the optimized
	// program sends to the controller.
	RedirectedFraction float64
	// PassStats records each executed pass in order (the implicit phase1
	// profiling pass first): duration, analysis-cache hit/miss counts,
	// and observations produced.
	PassStats []PassStat
	// Bindings is the tunable assignment the run ended with:
	// Options.Bindings resolved against the declared tunables (defaults
	// filled in), then replaced by the tune pass's winner when that pass
	// ran and adopted one. Empty for programs without tunables.
	Bindings map[string]int
	// Tunables describes every declared tunable with its final value, in
	// declaration order. Empty for programs without tunables.
	Tunables []TunedKnob
}

// TunedKnob is one tunable symbol with the value a run bound it to.
type TunedKnob struct {
	Name    string `json:"name"`
	Min     int    `json:"min"`
	Max     int    `json:"max"`
	Default int    `json:"default"`
	Value   int    `json:"value"`
}

// StagesBefore returns the initial pipeline length.
func (r *Result) StagesBefore() int {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[0].Stages
}

// StagesAfter returns the final pipeline length.
func (r *Result) StagesAfter() int {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1].Stages
}

// Optimizer runs the P2GO pipeline.
type Optimizer struct {
	opts Options
}

// New creates an Optimizer. Options with pointer fields left nil get
// their defaults resolved by the pass manager at run time, so a zero
// Options value still means "the paper's pipeline with default
// thresholds".
func New(opts Options) *Optimizer {
	return &Optimizer{opts: opts}
}

// run carries the evolving state across passes.
type run struct {
	opts     Options
	mgr      *manager
	tgt      tofino.Target
	cfg      *rt.Config
	trace    *trafficgen.Trace
	traceDig string
	// src is the pristine input AST, possibly parameterized (tunable
	// declarations intact); the tune pass instantiates candidates from
	// it. original is src instantiated at the run's starting bindings —
	// what Result.Original reports. cur evolves under the passes.
	src        *p4.Program
	original   *p4.Program
	bindings   map[string]int
	cur        *p4.Program
	compile    *tofino.Result
	prof       *profile.Profile
	obs        []Observation
	history    []StageSnapshot
	offloaded  []string
	guards     []DependencyGuard
	ctlProgram *p4.Program
	phaseStart time.Time
	// stat is the PassStat of the pass currently executing; pool workers
	// record cache hits/misses into it under statMu.
	statMu  sync.Mutex
	stat    *PassStat
	stats   []PassStat
	reports []CandidateReport
}

// Optimize profiles the program on the trace and applies the scheduled
// optimization passes — by default the paper's order (offloading
// deliberately last, §2.2: earlier phases may shrink segments enough that
// offloading them has no benefit), or exactly Options.Passes when set.
func (o *Optimizer) Optimize(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*Result, error) {
	m, err := newManager(o.opts)
	if err != nil {
		return nil, err
	}
	return m.optimize(ast, cfg, trace)
}

// interrupted reports the run's context error, if a context was set and
// has been canceled (or timed out).
func (r *run) interrupted() error {
	if r.opts.Context == nil {
		return nil
	}
	if err := r.opts.Context.Err(); err != nil {
		return fmt.Errorf("core: run canceled: %w", err)
	}
	return nil
}

// doCompile is the single funnel for every compile the pipeline issues.
// The AST handed over is never mutated afterwards, so the analysis cache
// (and hook implementations) may key on its printed source. A cache hit
// emits the same "compile" span with the same stages attr as a real
// compile, so span trees are structurally identical either way.
func (r *run) doCompile(ctx context.Context, ast *p4.Program) (*tofino.Result, error) {
	if err := r.interrupted(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "compile")
	defer sp.End()
	key := compileKey(ast, r.tgt)
	if res, ok := r.mgr.cache.getCompile(key); ok {
		r.noteCompile(true)
		sp.SetAttr(obs.Int("stages", totalStages(res.Mapping)))
		return res, nil
	}
	r.noteCompile(false)
	res, err := func() (*tofino.Result, error) {
		if r.opts.CompileHook != nil {
			return r.opts.CompileHook(ctx, ast, r.tgt)
		}
		return tofino.Compile(ast, r.tgt)
	}()
	if err == nil {
		r.mgr.cache.putCompile(key, res)
		sp.SetAttr(obs.Int("stages", totalStages(res.Mapping)))
	}
	return res, err
}

// doProfile is the single funnel for every trace replay. Cached replays
// are returned under the usual "profile" span (with no replay children —
// nothing was replayed).
func (r *run) doProfile(ctx context.Context, ast *p4.Program, cfg *rt.Config) (*profile.Profile, error) {
	if err := r.interrupted(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "profile")
	defer sp.End()
	key := profileKey(ast, cfg, r.traceDig)
	if prof, ok := r.mgr.cache.getProfile(key); ok {
		r.noteProfile(true)
		return prof, nil
	}
	r.noteProfile(false)
	prof, err := func() (*profile.Profile, error) {
		if r.opts.ProfileHook != nil {
			return r.opts.ProfileHook(ctx, ast, cfg, r.trace)
		}
		prep, err := r.prepared(ctx, ast, cfg)
		if err != nil {
			return nil, err
		}
		return prep.Profiler().RunWith(ctx, r.trace, profile.RunOptions{Shards: r.opts.parallelism()})
	}()
	if err == nil {
		r.mgr.cache.putProfile(key, prof)
	}
	return prof, err
}

// prepared returns the instrumented program and lowered execution plan for
// (ast, cfg), serving repeats from the analysis cache — a profile of the
// same program on a different trace (a re-run, a fleet sibling) pays
// instrumentation and bytecode lowering once. A cache hit emits the same
// "profile.instrument" span with the same tables attr as a real
// preparation, so span trees are structurally identical either way.
func (r *run) prepared(ctx context.Context, ast *p4.Program, cfg *rt.Config) (*profile.Prepared, error) {
	key := planKey(ast, cfg)
	if prep, ok := r.mgr.cache.getPrepared(key); ok {
		_, sp := obs.Start(ctx, "profile.instrument")
		sp.SetAttr(obs.Int("tables", prep.Tables()))
		sp.End()
		return prep, nil
	}
	prep, err := profile.PrepareContext(ctx, ast, cfg)
	if err == nil {
		r.mgr.cache.putPrepared(key, prep)
	}
	return prep, err
}

// recompile refreshes the compiler outputs for the current program.
func (r *run) recompile(ctx context.Context) error {
	res, err := r.doCompile(ctx, p4.Clone(r.cur))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	r.compile = res
	return nil
}

// reprofile refreshes the profile for the current program. Rules whose
// tables were optimized away are filtered first.
func (r *run) reprofile(ctx context.Context) error {
	prof, err := r.doProfile(ctx, r.cur, filterConfig(r.cfg, r.cur))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	r.prof = prof
	return nil
}

func (r *run) snapshot(label string) {
	m := r.compile.Mapping
	summary := m.Summary()
	if m.EgressStagesUsed > 0 {
		summary += " egress:" + egressSummary(m)
	}
	now := time.Now()
	r.history = append(r.history, StageSnapshot{
		Label:         label,
		Stages:        totalStages(m),
		IngressStages: m.StagesUsed,
		EgressStages:  m.EgressStagesUsed,
		Fits:          m.Fits,
		Summary:       summary,
		Duration:      now.Sub(r.phaseStart),
	})
	r.phaseStart = now
}

// egressSummary renders the egress pipeline like Mapping.Summary.
func egressSummary(m *tofino.Mapping) string {
	out := ""
	for s := 1; s <= m.EgressStagesUsed; s++ {
		out += "[" + strings.Join(m.TablesInStageOf(p4.EgressControl, s), " ") + "]"
	}
	return out
}

// filterConfig drops rules for tables that no longer exist in the program
// (they belong to the controller after offloading).
func filterConfig(cfg *rt.Config, ast *p4.Program) *rt.Config {
	out := &rt.Config{}
	for _, rule := range cfg.Rules {
		if ast.Table(rule.Table) != nil {
			out.Add(rule)
		}
	}
	return out.Clone()
}

// OffloadCandidates profiles the program and reports the metrics of every
// self-contained offload segment, without applying anything. Used by the
// phase-ordering ablation (§2.2: offloading first would have offloaded both
// ACLs). It runs the read-only offload-report pass through the same
// manager as Optimize, so its compiles and profiles nest under a proper
// "optimize" root span (mode=offload-report), record stage snapshots, and
// share the analysis cache — ablation traces are no longer truncated.
func (o *Optimizer) OffloadCandidates(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) ([]CandidateReport, error) {
	m, err := newManager(o.opts)
	if err != nil {
		return nil, err
	}
	return m.offloadReport(ast, cfg, trace)
}

// totalStages is the optimization objective: ingress plus egress stages
// (egress is zero for ingress-only programs, so Table 2 semantics are
// unchanged).
func totalStages(m *tofino.Mapping) int { return m.StagesUsed + m.EgressStagesUsed }

// compileCandidate compiles a rewritten program without touching the run
// state.
func (r *run) compileCandidate(ctx context.Context, ast *p4.Program) (*tofino.Result, error) {
	return r.doCompile(ctx, p4.Clone(ast))
}

// profileCandidate profiles a rewritten program without touching the run
// state.
func (r *run) profileCandidate(ctx context.Context, ast *p4.Program) (*profile.Profile, error) {
	return r.doProfile(ctx, ast, filterConfig(r.cfg, ast))
}
