package fleet

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"p2go/internal/core"
	"p2go/internal/faults"
	"p2go/internal/p4"
	"p2go/internal/profile"
	"p2go/internal/report"
	"p2go/internal/rt"
	"p2go/internal/tofino"
	"p2go/internal/trafficgen"
)

// testHooks wraps the real compiler and profiler with call counters — the
// same stand-in for the service artifact cache the core package's
// TestIncrementalRerunUsesCache uses, here counting across a whole fleet.
type testHooks struct {
	compiles atomic.Int64
	profiles atomic.Int64
}

func (h *testHooks) core() core.Options {
	return core.Options{
		Parallelism: 1,
		CompileHook: func(_ context.Context, ast *p4.Program, tgt tofino.Target) (*tofino.Result, error) {
			h.compiles.Add(1)
			return tofino.Compile(ast, tgt)
		},
		ProfileHook: func(ctx context.Context, ast *p4.Program, cfg *rt.Config, tr *trafficgen.Trace) (*profile.Profile, error) {
			h.profiles.Add(1)
			return profile.RunParallelContext(ctx, ast, cfg, tr, 1)
		},
	}
}

// mapCache is an in-memory DeviceCache.
type mapCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapCache() *mapCache { return &mapCache{m: map[string][]byte{}} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[key]
	return d, ok
}

func (c *mapCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), data...)
}

func TestValidate(t *testing.T) {
	good := Synthetic("quickstart", 2, 1, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("synthetic spec invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no devices", func(s *Spec) { s.Devices = nil }, "no devices"},
		{"duplicate device", func(s *Spec) { s.Devices[1].Name = s.Devices[0].Name }, "duplicate"},
		{"unnamed device", func(s *Spec) { s.Devices[0].Name = "" }, "no name"},
		{"no program", func(s *Spec) { s.Devices[0].Workload = "" }, "neither a workload"},
		{"unknown workload", func(s *Spec) { s.Devices[0].Workload = "nope" }, "unknown workload"},
		{"no injections", func(s *Spec) { s.Injections = nil }, "no injections"},
		{"injection at unknown device", func(s *Spec) { s.Injections[0].Device = "ghost" }, "unknown device"},
		{"injection unknown workload", func(s *Spec) { s.Injections[0].Workload = "nope" }, "unknown workload"},
		{"negative count", func(s *Spec) { s.Injections[0].Count = -1 }, "negative count"},
		{"link unknown device", func(s *Spec) {
			s.Links = []LinkSpec{{From: HopSpec{Device: "ghost"}, To: HopSpec{Device: s.Devices[0].Name}}}
		}, "unknown device"},
		{"bad pass", func(s *Spec) { s.Passes = []string{"phase99"} }, "unknown pass"},
		{"negative parallelism", func(s *Spec) { s.DeviceParallelism = -1 }, "negative parallelism"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Synthetic("quickstart", 2, 1, 10)
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestFingerprintIgnoresParallelism(t *testing.T) {
	a := Synthetic("quickstart", 2, 1, 10)
	b := Synthetic("quickstart", 2, 1, 10)
	b.DeviceParallelism = 8
	b.Parallelism = 4
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on parallelism knobs; fan-out must not change the artifact key")
	}
	c := Synthetic("quickstart", 3, 1, 10)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprints collide across different fleets")
	}
	d := Synthetic("quickstart", 2, 1, 10)
	d.Injections[0].Seed = 99
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint ignores injection seeds")
	}
}

// TestRunSyntheticAggregates: a homogeneous fleet optimizes every device
// against its own trace and the aggregate counts add up, with rows in
// spec order.
func TestRunSyntheticAggregates(t *testing.T) {
	spec := Synthetic("quickstart", 3, 1, 40)
	spec.DeviceParallelism = 2
	res, err := Run(context.Background(), spec, Options{Core: core.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "fleet" || res.Name != spec.Name {
		t.Errorf("kind/name = %q/%q", res.Kind, res.Name)
	}
	if res.DeviceCount != 3 || res.Optimized != 3 || res.Skipped != 0 || res.Failed != 0 {
		t.Fatalf("counts = %d/%d/%d/%d, want 3 optimized", res.DeviceCount, res.Optimized, res.Skipped, res.Failed)
	}
	if res.TotalPackets != 3*40 {
		t.Errorf("total packets = %d, want 120", res.TotalPackets)
	}
	// Quickstart is 2 stages with nothing to optimize.
	if res.StagesBefore != 6 || res.StagesAfter != 6 {
		t.Errorf("stages = %d -> %d, want 6 -> 6", res.StagesBefore, res.StagesAfter)
	}
	for i, row := range res.Devices {
		if row.Device != spec.Devices[i].Name {
			t.Errorf("row %d = %q, want spec order (%q)", i, row.Device, spec.Devices[i].Name)
		}
		if row.Status != report.FleetOptimized || row.Result == nil {
			t.Errorf("row %s: status %q, result %v", row.Device, row.Status, row.Result != nil)
		}
		if row.Packets != 40 {
			t.Errorf("row %s saw %d packets, want 40", row.Device, row.Packets)
		}
	}
	if res.DurationSeconds <= 0 {
		t.Error("duration not recorded")
	}
}

// TestFleetSharedCacheDedup is the tentpole acceptance check: a fleet of
// N devices running the same program issues strictly fewer compiles than
// N independent runs would — the shared AnalysisCache answers every
// device after the first.
func TestFleetSharedCacheDedup(t *testing.T) {
	const n = 4
	solo := &testHooks{}
	if _, err := Run(context.Background(), Synthetic("quickstart", 1, 1, 30),
		Options{Core: solo.core()}); err != nil {
		t.Fatal(err)
	}
	soloCompiles := solo.compiles.Load()
	if soloCompiles == 0 {
		t.Fatal("solo run issued no compiles; hooks not exercised")
	}

	fleet := &testHooks{}
	spec := Synthetic("quickstart", n, 1, 30)
	spec.DeviceParallelism = 1 // deterministic hook counts: no racing first-misses
	res, err := Run(context.Background(), spec, Options{Core: fleet.core()})
	if err != nil {
		t.Fatal(err)
	}
	fleetCompiles := fleet.compiles.Load()
	if fleetCompiles >= n*soloCompiles {
		t.Errorf("fleet of %d issued %d compiles, want strictly fewer than %d×%d=%d (shared cache not deduping)",
			n, fleetCompiles, n, soloCompiles, n*soloCompiles)
	}
	// Same program on every device: the fleet compiles exactly what one
	// device does, and the other n-1 devices hit.
	if fleetCompiles != soloCompiles {
		t.Errorf("fleet compiles = %d, want %d (one device's worth)", fleetCompiles, soloCompiles)
	}
	if res.CompileHits == 0 {
		t.Error("report shows zero cross-device compile cache hits")
	}
	if int64(res.CompileMisses) != fleetCompiles {
		t.Errorf("report compile misses = %d, hook saw %d", res.CompileMisses, fleetCompiles)
	}
}

// TestExternalAnalysisCacheAcrossFleets: an explicitly shared cache
// carries analyses across fleet jobs — the p2god-wide incremental story.
func TestExternalAnalysisCacheAcrossFleets(t *testing.T) {
	shared := core.NewAnalysisCache()
	hooks := &testHooks{}
	spec := Synthetic("quickstart", 2, 1, 30)
	spec.DeviceParallelism = 1
	if _, err := Run(context.Background(), spec, Options{Core: hooks.core(), AnalysisCache: shared}); err != nil {
		t.Fatal(err)
	}
	cold := hooks.compiles.Load()
	res, err := Run(context.Background(), spec, Options{Core: hooks.core(), AnalysisCache: shared})
	if err != nil {
		t.Fatal(err)
	}
	if warm := hooks.compiles.Load() - cold; warm != 0 {
		t.Errorf("re-run of the same fleet recompiled %d times, want 0", warm)
	}
	if res.CompileMisses != 0 {
		t.Errorf("re-run reports %d compile misses, want 0", res.CompileMisses)
	}
	if res.Optimized != 2 {
		t.Errorf("re-run optimized %d devices, want 2", res.Optimized)
	}
}

// TestDeviceCacheServesRows: a second run with the same DeviceCache
// serves every row from cache without recomputing anything, and marks
// the rows cached.
func TestDeviceCacheServesRows(t *testing.T) {
	cache := newMapCache()
	hooks := &testHooks{}
	spec := Synthetic("quickstart", 2, 1, 30)
	first, err := Run(context.Background(), spec, Options{Core: hooks.core(), DeviceCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range first.Devices {
		if row.Cached {
			t.Errorf("cold run marked %s cached", row.Device)
		}
	}
	cold := hooks.compiles.Load()

	second, err := Run(context.Background(), spec, Options{Core: hooks.core(), DeviceCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm := hooks.compiles.Load() - cold; warm != 0 {
		t.Errorf("device-cached re-run still compiled %d times", warm)
	}
	for _, row := range second.Devices {
		if !row.Cached || row.Status != report.FleetOptimized || row.Result == nil {
			t.Errorf("row %s: cached=%v status=%q", row.Device, row.Cached, row.Status)
		}
	}
	if second.Optimized != first.Optimized || second.StagesAfter != first.StagesAfter {
		t.Errorf("cached aggregate diverged: %d/%d vs %d/%d",
			second.Optimized, second.StagesAfter, first.Optimized, first.StagesAfter)
	}
}

// TestRunRecordsSkipped: a device no traffic reaches lands in the result
// as a skipped row with a reason, not an error and not silently absent.
func TestRunRecordsSkipped(t *testing.T) {
	spec := Synthetic("quickstart", 2, 1, 20)
	spec.Devices = append(spec.Devices, DeviceSpec{Name: "idle", Workload: "quickstart"})
	res, err := Run(context.Background(), spec, Options{Core: core.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized != 2 || res.Skipped != 1 || res.Failed != 0 {
		t.Fatalf("counts = %d/%d/%d, want 2 optimized + 1 skipped", res.Optimized, res.Skipped, res.Failed)
	}
	var idle *report.FleetDevice
	for i := range res.Devices {
		if res.Devices[i].Device == "idle" {
			idle = &res.Devices[i]
		}
	}
	if idle == nil || idle.Status != report.FleetSkipped || idle.Reason == "" {
		t.Errorf("idle row = %+v, want skipped with a reason", idle)
	}
}

// TestRunAttributesDeviceFaults: an injected data-plane failure fails
// that device's row (with the error text naming it) while the rest of
// the fleet completes.
func TestRunAttributesDeviceFaults(t *testing.T) {
	spec := Synthetic("quickstart", 3, 1, 20)
	// Each device sees 20 events (its own packets, devices are
	// disconnected). Failing events 0..19 lands every failure on the
	// first device injected, sw-0000.
	set := faults.MustSet(faults.Spec{Point: faults.SimStep, From: 0, To: 20})
	res, err := Run(context.Background(), spec, Options{Core: core.Options{Parallelism: 1}, Faults: set})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Optimized != 2 {
		t.Fatalf("counts = %d failed / %d optimized, want 1/2", res.Failed, res.Optimized)
	}
	row := res.Devices[0]
	if row.Device != "sw-0000" || row.Status != report.FleetFailed {
		t.Fatalf("row 0 = %+v, want sw-0000 failed", row)
	}
	if !strings.Contains(row.Error, "sw-0000") {
		t.Errorf("error %q does not name the device", row.Error)
	}
}

// TestRunCanceledContext: cancellation is a fleet-level error, not n
// failed rows.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Synthetic("quickstart", 2, 1, 10), Options{Core: core.Options{Parallelism: 1}})
	if err == nil {
		t.Fatal("canceled fleet returned no error")
	}
}

// TestRunLinkedTopology: injections propagate across links, so a
// downstream device optimizes against the traffic its upstream forwarded.
func TestRunLinkedTopology(t *testing.T) {
	spec := Spec{
		Name: "linked",
		Devices: []DeviceSpec{
			{Name: "edge", Workload: "quickstart"},
			{Name: "downstream", Workload: "quickstart"},
		},
		// Quickstart routes 10/8 to port 1 (7 of every 10 trace packets);
		// wire that port onward.
		Links:      []LinkSpec{{From: HopSpec{Device: "edge", Port: 1}, To: HopSpec{Device: "downstream", Port: 1}}},
		Injections: []InjectionSpec{{Device: "edge", Workload: "quickstart", Seed: 1, Count: 50}},
	}
	res, err := Run(context.Background(), spec, Options{Core: core.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	edge, down := res.Devices[0], res.Devices[1]
	if edge.Packets != 50 {
		t.Errorf("edge saw %d packets, want all 50", edge.Packets)
	}
	if down.Status == report.FleetOptimized && (down.Packets == 0 || down.Packets >= 50) {
		t.Errorf("downstream saw %d packets, want a forwarded subset", down.Packets)
	}
	if down.Status == report.FleetSkipped && edge.Status != report.FleetOptimized {
		t.Errorf("unexpected statuses: edge %q downstream %q", edge.Status, down.Status)
	}
}
