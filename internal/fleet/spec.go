// Package fleet is the network-wide optimization subsystem: it takes a
// serializable description of a whole deployment — devices, links, and
// traffic injections — collects each device's observed trace in-network,
// fans per-device P2GO runs across a bounded worker pool, and aggregates
// a fleet-level result with per-device error attribution instead of
// fail-fast.
//
// The paper's §6 poses network-wide compilation as future work;
// internal/network implements the per-device baseline (replay a network
// trace, optimize every device with what it saw). This package promotes
// that baseline to a production job shape: one content-addressed
// core.AnalysisCache is threaded across every device in a fleet, so
// fleets where most devices run the same program with different rules
// and traffic — the common case in a real deployment — dedup compiles
// and profiles massively. p2god exposes it as the POST /fleets job type;
// the spec here is exactly that endpoint's request body.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"p2go/internal/core"
	"p2go/internal/workloads"
)

// HopSpec names an attachment point: a device and one of its ports.
type HopSpec struct {
	Device string `json:"device"`
	Port   uint64 `json:"port"`
}

// LinkSpec wires an egress port of one device to an ingress port of
// another.
type LinkSpec struct {
	From HopSpec `json:"from"`
	To   HopSpec `json:"to"`
}

// DeviceSpec is one switch in the fleet. The program and rules come from
// the named workload; Program/Rules override them inline (mirroring the
// single-job JobSpec fields).
type DeviceSpec struct {
	Name     string `json:"name"`
	Workload string `json:"workload,omitempty"`
	// Program, when set, is inline P4_14 source overriding the workload's
	// program.
	Program string `json:"program,omitempty"`
	// Rules, when set, is an inline runtime configuration overriding the
	// workload's rules.
	Rules string `json:"rules,omitempty"`
}

// InjectionSpec is one stream of traffic entering the network: the named
// workload's generated trace, injected packet-by-packet at the device
// (each packet enters on its own recorded port).
type InjectionSpec struct {
	Device   string `json:"device"`
	Workload string `json:"workload"`
	// Seed drives the workload's trace generator; 0 defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// Count caps how many trace packets are injected; 0 means the whole
	// generated trace.
	Count int `json:"count,omitempty"`
}

// Spec is a fleet optimization job: the topology, the traffic, and the
// per-device optimization configuration. It is the POST /fleets request
// body.
type Spec struct {
	// Name labels the fleet in reports; cosmetic but part of the job
	// digest.
	Name    string       `json:"name,omitempty"`
	Devices []DeviceSpec `json:"devices"`
	Links   []LinkSpec   `json:"links,omitempty"`
	// Injections drive trace collection; every device optimizes against
	// the traffic that actually reached it.
	Injections []InjectionSpec `json:"injections"`
	// Passes schedules the optimization passes for every device (IDs from
	// core.Passes()); empty means the default schedule.
	Passes []string `json:"passes,omitempty"`
	// DeviceParallelism bounds how many devices optimize concurrently;
	// 0 means one worker per CPU. Not part of any digest: results are
	// fan-out independent.
	DeviceParallelism int `json:"device_parallelism,omitempty"`
	// Parallelism is each device run's inner worker count (replay shards,
	// candidate probes); 0 means the runner's default. Not part of any
	// digest.
	Parallelism int `json:"parallelism,omitempty"`
}

// Validate checks the spec cheaply (no parsing): device names unique,
// workloads registered, links and injections referencing known devices,
// pass IDs valid. The expensive program parsing happens in Run.
func (s *Spec) Validate() error {
	if len(s.Devices) == 0 {
		return fmt.Errorf("fleet: no devices")
	}
	seen := map[string]bool{}
	for i, d := range s.Devices {
		if d.Name == "" {
			return fmt.Errorf("fleet: device %d has no name", i)
		}
		if seen[d.Name] {
			return fmt.Errorf("fleet: duplicate device %q", d.Name)
		}
		seen[d.Name] = true
		if d.Workload == "" && d.Program == "" {
			return fmt.Errorf("fleet: device %q has neither a workload nor an inline program", d.Name)
		}
		if d.Workload != "" {
			if _, err := workloads.Get(d.Workload); err != nil {
				return fmt.Errorf("fleet: device %q: %w", d.Name, err)
			}
		}
	}
	for _, l := range s.Links {
		if !seen[l.From.Device] {
			return fmt.Errorf("fleet: link from unknown device %q", l.From.Device)
		}
		if !seen[l.To.Device] {
			return fmt.Errorf("fleet: link to unknown device %q", l.To.Device)
		}
	}
	if len(s.Injections) == 0 {
		return fmt.Errorf("fleet: no injections (every device would be skipped with an empty trace)")
	}
	for i, inj := range s.Injections {
		if !seen[inj.Device] {
			return fmt.Errorf("fleet: injection %d at unknown device %q", i, inj.Device)
		}
		if _, err := workloads.Get(inj.Workload); err != nil {
			return fmt.Errorf("fleet: injection %d: %w", i, err)
		}
		if inj.Count < 0 {
			return fmt.Errorf("fleet: injection %d: negative count", i)
		}
	}
	if len(s.Passes) == 0 {
		s.Passes = nil // JSON cannot distinguish [] from absent
	}
	if err := core.ValidatePasses(s.Passes); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if s.DeviceParallelism < 0 || s.Parallelism < 0 {
		return fmt.Errorf("fleet: negative parallelism")
	}
	return nil
}

// Fingerprint content-addresses the fleet job: two specs with the same
// fingerprint produce the same fleet artifact. The parallelism knobs are
// deliberately excluded — results are fan-out independent.
func (s Spec) Fingerprint() string {
	parts := []string{"fleet", s.Name}
	for _, d := range s.Devices {
		parts = append(parts, "dev", d.Name, d.Workload, d.Program, d.Rules)
	}
	for _, l := range s.Links {
		parts = append(parts, "link",
			fmt.Sprintf("%s/%d>%s/%d", l.From.Device, l.From.Port, l.To.Device, l.To.Port))
	}
	for _, inj := range s.Injections {
		parts = append(parts, "inj",
			fmt.Sprintf("%s/%s/%d/%d", inj.Device, inj.Workload, inj.Seed, inj.Count))
	}
	parts = append(parts, "passes", strings.Join(s.Passes, ","))
	return digest(parts...)
}

// Synthetic builds an n-device fleet of disconnected switches all running
// the named workload, each injected with its own trace (seed, seed+1,
// ...) capped at packets per device — the homogeneous-fleet shape where
// the shared analysis cache dedups compiles massively, used by the
// `cmd/experiments -fleet` load test and `p2go fleet submit -devices N`.
func Synthetic(workload string, n int, seed int64, packets int) Spec {
	s := Spec{Name: fmt.Sprintf("synthetic-%s-%d", workload, n)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sw-%04d", i)
		s.Devices = append(s.Devices, DeviceSpec{Name: name, Workload: workload})
		s.Injections = append(s.Injections, InjectionSpec{
			Device:   name,
			Workload: workload,
			Seed:     seed + int64(i),
			Count:    packets,
		})
	}
	return s
}

// digest is the hex SHA-256 over length-prefixed parts, so concatenation
// ambiguity cannot collide keys (same scheme as the service layer's).
func digest(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
