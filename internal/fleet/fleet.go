package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2go/internal/core"
	"p2go/internal/faults"
	"p2go/internal/network"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/report"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
	"p2go/internal/workloads"
)

// skipEmptyTrace is the recorded reason for devices no traffic reached.
const skipEmptyTrace = "no packets reached the device (empty trace; P2GO needs a representative trace)"

// DeviceCache stores finished per-device rows across fleet runs, keyed by
// a content digest of the device's inputs (program, rules, observed
// trace, pass schedule, target). p2god plugs its LRU + disk-spill cache
// in here, which is what lets a fleet job killed mid-run recompute only
// the devices that had not finished. Implementations must be safe for
// concurrent use; Get returning false means "compute it".
type DeviceCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// Options configures a fleet run.
type Options struct {
	// Core is the per-device optimization template: target, hooks,
	// thresholds, context. The fleet runner copies it per device and
	// overrides Passes/Parallelism from the spec and AnalysisCache from
	// the shared cache below.
	Core core.Options
	// AnalysisCache is the compile/profile cache shared across every
	// device in the fleet — the core of the network-wide story: a
	// homogeneous fleet of N same-program devices compiles far fewer than
	// N times. nil means a fresh cache per fleet (still shared across the
	// fleet's devices, just not across fleets).
	AnalysisCache *core.AnalysisCache
	// DeviceCache, when non-nil, serves and stores whole per-device rows
	// across runs (see DeviceCache). Only optimized rows are stored —
	// failures are always recomputed.
	DeviceCache DeviceCache
	// OnDevice, when non-nil, is called once per finished device row, in
	// completion order — the journal/metrics progress hook. It must be
	// safe for concurrent use; rows run on the device fan-out workers.
	OnDevice func(report.FleetDevice)
	// Faults injects failures into trace collection (faults.SimStep).
	Faults *faults.Set
}

// resolvedDevice is a DeviceSpec with its program parsed and rules
// loaded, plus the canonical printed forms the device digest uses.
type resolvedDevice struct {
	spec    DeviceSpec
	prog    *p4.Program
	cfg     *rt.Config
	printed string // canonical program text
	rules   string // canonical rules text
}

// Run executes the fleet job: collect each device's observed trace by
// replaying the injections through the topology, fan per-device P2GO
// runs across a bounded pool sharing one analysis cache, and aggregate
// the per-device rows into a fleet-level result. Per-device failures are
// attributed in their row (Status "failed") and never abort the fleet;
// the error return is reserved for fleet-level problems — an invalid
// spec, an unbuildable topology, or context cancellation.
func Run(ctx context.Context, spec Spec, opts Options) (*report.FleetResult, error) {
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	ctx, root := obs.Start(ctx, "fleet",
		obs.String("fleet.name", spec.Name),
		obs.Int("fleet.devices", len(spec.Devices)),
		obs.Int("fleet.injections", len(spec.Injections)))
	defer root.End()

	devices, topo, err := resolve(spec)
	if err != nil {
		return nil, err
	}
	topo.SetFaults(opts.Faults)

	injections, err := buildInjections(spec)
	if err != nil {
		return nil, err
	}

	_, collectSpan := obs.Start(ctx, "fleet.collect",
		obs.Int("packets", len(injections)))
	traces, devErrs := topo.CollectDeviceTracesPartial(injections)
	collectSpan.SetAttr(obs.Int("device_errors", len(devErrs)))
	collectSpan.End()

	// A device whose data plane errored mid-collection saw a trace that
	// under-represents its traffic; fail its row instead of optimizing
	// against bad evidence. Several errors on one device join into one
	// row.
	collectFailed := map[string][]string{}
	for _, e := range devErrs {
		collectFailed[e.Device] = append(collectFailed[e.Device], e.Error())
	}

	shared := opts.AnalysisCache
	if shared == nil {
		shared = core.NewAnalysisCache()
	}
	statsBefore := shared.Stats()

	rows := make([]report.FleetDevice, len(devices))
	runErr := forEach(ctx, len(devices), spec.DeviceParallelism, func(i int) error {
		dev := devices[i]
		trace := traces[dev.spec.Name]
		row, err := runDevice(ctx, spec, opts, shared, dev, trace, collectFailed[dev.spec.Name])
		if err != nil {
			return err
		}
		rows[i] = row
		if opts.OnDevice != nil {
			opts.OnDevice(row)
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	statsAfter := shared.Stats()
	out := report.AggregateFleet(spec.Name, rows)
	out.CompileHits = statsAfter.CompileHits - statsBefore.CompileHits
	out.CompileMisses = statsAfter.CompileMisses - statsBefore.CompileMisses
	out.ProfileHits = statsAfter.ProfileHits - statsBefore.ProfileHits
	out.ProfileMisses = statsAfter.ProfileMisses - statsBefore.ProfileMisses
	out.DurationSeconds = time.Since(start).Seconds()
	root.SetAttr(
		obs.Int("fleet.optimized", out.Optimized),
		obs.Int("fleet.skipped", out.Skipped),
		obs.Int("fleet.failed", out.Failed),
		obs.Int("fleet.stages_before", out.StagesBefore),
		obs.Int("fleet.stages_after", out.StagesAfter),
		obs.Int("fleet.compile_hits", out.CompileHits),
		obs.Int("fleet.compile_misses", out.CompileMisses))
	return out, nil
}

// runDevice produces one device's row: failed (collection errors),
// skipped (empty trace), cached (device-cache hit), or optimized (a
// fresh P2GO run against the device's observed trace). The error return
// aborts the whole fleet and is reserved for context cancellation —
// every per-device failure becomes a row instead.
func runDevice(ctx context.Context, spec Spec, opts Options, shared *core.AnalysisCache,
	dev resolvedDevice, trace *trafficgen.Trace, collectErrs []string) (report.FleetDevice, error) {
	name := dev.spec.Name
	packets := 0
	if trace != nil {
		packets = len(trace.Packets)
	}
	devCtx, span := obs.Start(ctx, "fleet.device", obs.String("device", name))
	defer span.End()

	if len(collectErrs) > 0 {
		span.SetAttr(obs.String("status", report.FleetFailed))
		return report.FleetDevice{
			Device:  name,
			Status:  report.FleetFailed,
			Error:   strings.Join(collectErrs, "; "),
			Packets: packets,
		}, nil
	}
	if packets == 0 {
		span.SetAttr(obs.String("status", report.FleetSkipped))
		return report.FleetDevice{
			Device: name,
			Status: report.FleetSkipped,
			Reason: skipEmptyTrace,
		}, nil
	}

	key := deviceKey(dev, trace, spec.Passes, opts.Core)
	if opts.DeviceCache != nil {
		if data, ok := opts.DeviceCache.Get(key); ok {
			var row report.FleetDevice
			if err := json.Unmarshal(data, &row); err == nil && row.Status == report.FleetOptimized {
				row.Device = name
				row.Cached = true
				span.SetAttr(obs.String("status", row.Status), obs.Bool("cached", true))
				return row, nil
			}
			// A corrupt or mismatched entry falls through to recompute.
		}
	}

	devOpts := opts.Core
	devOpts.Context = devCtx
	devOpts.AnalysisCache = shared
	if spec.Passes != nil {
		devOpts.Passes = spec.Passes
	}
	if spec.Parallelism > 0 {
		devOpts.Parallelism = spec.Parallelism
	}
	res, err := core.New(devOpts).Optimize(dev.prog, dev.cfg, trace)
	if err != nil {
		// Cancellation is fleet-level: stop fanning out instead of
		// recording every remaining device as failed.
		if ctx.Err() != nil {
			return report.FleetDevice{}, ctx.Err()
		}
		span.SetAttr(obs.String("status", report.FleetFailed))
		return report.FleetDevice{
			Device:  name,
			Status:  report.FleetFailed,
			Error:   fmt.Sprintf("optimize: %v", err),
			Packets: packets,
		}, nil
	}
	row := report.FleetDevice{
		Device:  name,
		Status:  report.FleetOptimized,
		Packets: packets,
		Result:  report.FromResult(dev.spec.Workload, 0, res),
	}
	span.SetAttr(obs.String("status", row.Status),
		obs.Int("stages_before", row.Result.StagesBefore),
		obs.Int("stages_after", row.Result.StagesAfter))
	if opts.DeviceCache != nil {
		if data, err := json.Marshal(row); err == nil {
			opts.DeviceCache.Put(key, data)
		}
	}
	return row, nil
}

// resolve parses every device's program, loads its rules, and boots the
// topology. Returned devices are in spec order (the row order of the
// result).
func resolve(spec Spec) ([]resolvedDevice, *network.Topology, error) {
	topo := network.NewTopology()
	devices := make([]resolvedDevice, 0, len(spec.Devices))
	for _, d := range spec.Devices {
		src := d.Program
		var cfg *rt.Config
		if d.Workload != "" {
			w, err := workloads.Get(d.Workload)
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: device %q: %w", d.Name, err)
			}
			if src == "" {
				src = w.Source
			}
			cfg = w.Config()
		}
		if d.Rules != "" {
			parsed, err := rt.Parse(d.Rules)
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: device %q rules: %w", d.Name, err)
			}
			cfg = parsed
		}
		prog, err := p4.Parse(src)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: device %q program: %w", d.Name, err)
		}
		if err := topo.AddDevice(d.Name, prog, cfg); err != nil {
			return nil, nil, fmt.Errorf("fleet: %w", err)
		}
		rules := ""
		if cfg != nil {
			rules = rt.Format(cfg)
		}
		devices = append(devices, resolvedDevice{
			spec:    d,
			prog:    prog,
			cfg:     cfg,
			printed: p4.Print(prog),
			rules:   rules,
		})
	}
	for _, l := range spec.Links {
		if err := topo.Link(network.Hop{Device: l.From.Device, Port: l.From.Port},
			network.Hop{Device: l.To.Device, Port: l.To.Port}); err != nil {
			return nil, nil, fmt.Errorf("fleet: %w", err)
		}
	}
	return devices, topo, nil
}

// buildInjections expands every injection spec into per-packet network
// injections: the workload's generated trace (optionally capped) entering
// at the named device on each packet's own recorded port.
func buildInjections(spec Spec) ([]network.Injection, error) {
	var out []network.Injection
	for i, inj := range spec.Injections {
		w, err := workloads.Get(inj.Workload)
		if err != nil {
			return nil, fmt.Errorf("fleet: injection %d: %w", i, err)
		}
		seed := inj.Seed
		if seed == 0 {
			seed = 1
		}
		trace, err := w.Trace(seed)
		if err != nil {
			return nil, fmt.Errorf("fleet: injection %d (%s): %w", i, inj.Workload, err)
		}
		pkts := trace.Packets
		if inj.Count > 0 && inj.Count < len(pkts) {
			pkts = pkts[:inj.Count]
		}
		for _, pkt := range pkts {
			out = append(out, network.Injection{
				At:   network.Hop{Device: inj.Device, Port: pkt.Port},
				Data: pkt.Data,
			})
		}
	}
	return out, nil
}

// deviceKey content-addresses one device's optimization: the canonical
// program text, rules, observed trace, effective pass schedule, and
// hardware model. Two devices (or two runs) with the same key produce
// the same row, which is what makes the DeviceCache safe to share across
// fleets and after crashes.
func deviceKey(dev resolvedDevice, trace *trafficgen.Trace, passes []string, copts core.Options) string {
	tgt := copts.Target
	return digest("fleet-device",
		dev.printed,
		dev.rules,
		traceDigest(trace),
		strings.Join(passes, ","),
		fmt.Sprintf("%d/%d/%d/%d/%d", tgt.Stages, tgt.StageSRAMBytes, tgt.StageTCAMBytes,
			tgt.MaxTablesPerStage, tgt.StageALUs),
	)
}

// traceDigest hashes a trace's packets (port + payload, length-prefixed)
// — the same content addressing the service layer uses for profile keys.
func traceDigest(t *trafficgen.Trace) string {
	parts := make([]string, 0, 2*len(t.Packets))
	for _, pkt := range t.Packets {
		parts = append(parts, fmt.Sprintf("%d", pkt.Port), string(pkt.Data))
	}
	return digest(parts...)
}

// forEach runs fn(0..n-1) on up to workers goroutines — the same bounded
// fan-out contract as the optimizer core's probe pool: deterministic
// lowest-index error, inline execution at workers<=1 so span order
// matches the sequential code, a failure (or cancellation) stops workers
// from claiming further indices while in-flight calls finish.
func forEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx int
		failed   atomic.Bool
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					record(int(next.Load()), err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
