// Package faults is a deterministic, seedable fault-injection framework
// for chaos-testing the composed P2GO system: the optimized data plane,
// the redirect link, the controller replicas, the p2god workers, and the
// artifact cache. Each fault point is driven by its own seeded PRNG and
// an optional event-index window, so a given Spec produces the identical
// firing pattern on every run — injector determinism is itself testable
// (`go test -count=2` must see the same faults twice).
//
// Injection sites pull decisions from a Set; a nil *Set never fires, so
// production code threads faults through unconditionally and pays nothing
// when chaos is off.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Well-known fault points threaded through the layers. Points are plain
// strings so packages can add their own without importing a registry.
const (
	// ControllerDown makes a controller replica refuse a redirected
	// packet (the replica is unreachable for that delivery attempt).
	ControllerDown = "controller.down"
	// RedirectLoss drops the redirect delivery on the data-plane →
	// controller link before it reaches any replica.
	RedirectLoss = "redirect.loss"
	// RedirectDelay delays a redirect delivery (the attempt succeeds but
	// pays the configured latency).
	RedirectDelay = "redirect.delay"
	// SimStep makes one behavioral-simulator step error out.
	SimStep = "sim.step"
	// CacheCorrupt corrupts the bytes of an artifact-cache read.
	CacheCorrupt = "cache.corrupt"
	// WorkerPanic crashes a p2god worker mid-job.
	WorkerPanic = "worker.panic"
	// JobTransient injects a transient (retryable) pipeline error into a
	// p2god job.
	JobTransient = "job.transient"
	// LeaseLost makes a replica-group lease acquisition or renewal attempt
	// fail (the replica believes it lost contact with the lease store for
	// that attempt; its lease keeps aging toward expiry).
	LeaseLost = "cluster.lease-lost"
	// Partition cuts a replica off from the shared coordination/spill
	// directory: lease reads and writes error out while it fires.
	Partition = "cluster.partition"
	// SlowDisk delays a spill-layer disk operation (artifact spill reads
	// and writes, lease-file writes), modeling a degraded shared disk.
	SlowDisk = "disk.slow"
)

// Spec describes one fault stream at one point.
type Spec struct {
	// Point names the injection site (e.g. ControllerDown).
	Point string
	// Probability is the chance each event at the point fires, in [0,1].
	// Zero with a window set means "always fire inside the window".
	Probability float64
	// From/To bound firing to the event-index window [From, To) at the
	// point (the first event is index 0). To == 0 means open-ended.
	From, To int
	// Seed drives the stream's PRNG; streams with the same seed and
	// probability fire identically.
	Seed int64
}

// windowed reports whether the spec restricts firing to a window.
func (s Spec) windowed() bool { return s.From > 0 || s.To > 0 }

// String renders the spec in the same form Parse accepts.
func (s Spec) String() string {
	parts := []string{s.Point}
	var opts []string
	if s.Probability > 0 {
		opts = append(opts, "p="+strconv.FormatFloat(s.Probability, 'g', -1, 64))
	}
	if s.From > 0 {
		opts = append(opts, "from="+strconv.Itoa(s.From))
	}
	if s.To > 0 {
		opts = append(opts, "to="+strconv.Itoa(s.To))
	}
	if s.Seed != 0 {
		opts = append(opts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	if len(opts) > 0 {
		parts = append(parts, strings.Join(opts, ","))
	}
	return strings.Join(parts, ":")
}

// InjectedError is the typed error an injected fault surfaces as, so
// layers can tell injected failures from organic ones (and classify them
// as transient).
type InjectedError struct {
	// Point is the fault point that fired.
	Point string
	// Event is the event index at the point when it fired.
	Event int
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s failure (event %d)", e.Point, e.Event)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*InjectedError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// injector is one fault stream's live state.
type injector struct {
	spec   Spec
	rng    *rand.Rand
	events int
	fired  int
}

// fire advances the event counter and decides whether this event faults.
// The PRNG is consumed on every in-window event so the firing pattern
// depends only on the spec, not on how often out-of-window events occur.
func (i *injector) fire() bool {
	n := i.events
	i.events++
	if i.spec.windowed() {
		if n < i.spec.From {
			return false
		}
		if i.spec.To > 0 && n >= i.spec.To {
			return false
		}
	}
	if i.spec.Probability > 0 {
		if i.rng.Float64() >= i.spec.Probability {
			return false
		}
	} else if !i.spec.windowed() {
		return false // zero-probability, unwindowed spec never fires
	}
	i.fired++
	return true
}

// Set is a thread-safe collection of fault streams, keyed by point. The
// zero value and a nil *Set are both inert: every Fire returns false.
type Set struct {
	mu sync.Mutex
	by map[string]*injector
}

// NewSet builds a set from specs. Multiple specs for the same point are
// rejected — one stream per point keeps the event numbering unambiguous.
func NewSet(specs ...Spec) (*Set, error) {
	s := &Set{by: map[string]*injector{}}
	for _, sp := range specs {
		if sp.Point == "" {
			return nil, fmt.Errorf("faults: spec with empty point")
		}
		if sp.Probability < 0 || sp.Probability > 1 {
			return nil, fmt.Errorf("faults: %s: probability %g outside [0,1]", sp.Point, sp.Probability)
		}
		if sp.To > 0 && sp.To <= sp.From {
			return nil, fmt.Errorf("faults: %s: empty window [%d,%d)", sp.Point, sp.From, sp.To)
		}
		if _, dup := s.by[sp.Point]; dup {
			return nil, fmt.Errorf("faults: duplicate spec for point %s", sp.Point)
		}
		s.by[sp.Point] = &injector{spec: sp, rng: rand.New(rand.NewSource(sp.Seed))}
	}
	return s, nil
}

// MustSet is NewSet for tests and fixed literals; it panics on error.
func MustSet(specs ...Spec) *Set {
	s, err := NewSet(specs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Fire records one event at point and reports whether it faults. Safe on
// a nil Set (never fires).
func (s *Set) Fire(point string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.by[point]
	if !ok {
		return false
	}
	return i.fire()
}

// Err is Fire returning a typed *InjectedError when the event faults and
// nil otherwise.
func (s *Set) Err(point string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.by[point]
	if !ok {
		return nil
	}
	n := i.events
	if !i.fire() {
		return nil
	}
	return &InjectedError{Point: point, Event: n}
}

// Fired returns how many events at point have faulted so far.
func (s *Set) Fired(point string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.by[point]
	if !ok {
		return 0
	}
	return i.fired
}

// Events returns how many events have been recorded at point.
func (s *Set) Events(point string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.by[point]
	if !ok {
		return 0
	}
	return i.events
}

// Counts snapshots fired counts for every configured point.
func (s *Set) Counts() map[string]int {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.by))
	for p, i := range s.by {
		out[p] = i.fired
	}
	return out
}

// String lists the configured specs, sorted by point.
func (s *Set) String() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var specs []string
	for _, i := range s.by {
		specs = append(specs, i.spec.String())
	}
	sort.Strings(specs)
	return strings.Join(specs, ";")
}

// Parse reads a fault-plan string of the form
//
//	point[:k=v,...][;point[:k=v,...]]...
//
// with keys p (probability), from, to, and seed — e.g.
//
//	controller.down:from=100,to=200;redirect.loss:p=0.05,seed=7
//
// This is the CLI surface for -faults flags.
func Parse(plan string) ([]Spec, error) {
	var specs []Spec
	for _, part := range strings.Split(plan, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, opts, _ := strings.Cut(part, ":")
		point = strings.TrimSpace(point)
		if point == "" {
			return nil, fmt.Errorf("faults: empty point in %q", part)
		}
		sp := Spec{Point: point}
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: %s: bad option %q (want k=v)", point, kv)
				}
				var err error
				switch k {
				case "p":
					sp.Probability, err = strconv.ParseFloat(v, 64)
				case "from":
					sp.From, err = strconv.Atoi(v)
				case "to":
					sp.To, err = strconv.Atoi(v)
				case "seed":
					sp.Seed, err = strconv.ParseInt(v, 10, 64)
				default:
					err = fmt.Errorf("unknown key %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("faults: %s: option %q: %v", point, kv, err)
				}
			}
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// ParseSet is Parse followed by NewSet.
func ParseSet(plan string) (*Set, error) {
	specs, err := Parse(plan)
	if err != nil {
		return nil, err
	}
	return NewSet(specs...)
}
