package faults

import (
	"errors"
	"fmt"
	"testing"
)

// pattern records which of the first n events at a point fire.
func pattern(s *Set, point string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = s.Fire(point)
	}
	return out
}

// TestDeterminism: the same spec produces the identical firing pattern on
// every run — the property the CI chaos job re-verifies with -count=2.
func TestDeterminism(t *testing.T) {
	spec := Spec{Point: RedirectLoss, Probability: 0.3, Seed: 42}
	a := pattern(MustSet(spec), RedirectLoss, 1000)
	b := pattern(MustSet(spec), RedirectLoss, 1000)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: run A fired=%v, run B fired=%v", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 1000 {
		t.Fatalf("p=0.3 fired %d/1000 events", fired)
	}
	if got := MustSet(spec); got.String() != "redirect.loss:p=0.3,seed=42" {
		t.Errorf("String() = %q", got.String())
	}
}

// TestSeedChangesPattern: different seeds give different streams.
func TestSeedChangesPattern(t *testing.T) {
	a := pattern(MustSet(Spec{Point: RedirectLoss, Probability: 0.5, Seed: 1}), RedirectLoss, 200)
	b := pattern(MustSet(Spec{Point: RedirectLoss, Probability: 0.5, Seed: 2}), RedirectLoss, 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical 200-event patterns")
	}
}

// TestWindow: a pure window fires every event inside [From, To) and none
// outside.
func TestWindow(t *testing.T) {
	s := MustSet(Spec{Point: ControllerDown, From: 3, To: 6})
	got := pattern(s, ControllerDown, 10)
	for i, fired := range got {
		want := i >= 3 && i < 6
		if fired != want {
			t.Errorf("event %d: fired=%v, want %v", i, fired, want)
		}
	}
	if s.Fired(ControllerDown) != 3 || s.Events(ControllerDown) != 10 {
		t.Errorf("fired=%d events=%d, want 3/10", s.Fired(ControllerDown), s.Events(ControllerDown))
	}
}

// TestWindowWithProbability: probability applies inside the window only.
func TestWindowWithProbability(t *testing.T) {
	s := MustSet(Spec{Point: SimStep, Probability: 0.5, From: 100, To: 200, Seed: 9})
	got := pattern(s, SimStep, 300)
	for i := 0; i < 100; i++ {
		if got[i] || got[200+i] {
			t.Fatalf("event outside window fired (i=%d)", i)
		}
	}
	if f := s.Fired(SimStep); f == 0 || f == 100 {
		t.Errorf("in-window p=0.5 fired %d/100", f)
	}
}

// TestNilSetInert: a nil set is safe at every call site.
func TestNilSetInert(t *testing.T) {
	var s *Set
	if s.Fire(WorkerPanic) || s.Err(WorkerPanic) != nil || s.Fired(WorkerPanic) != 0 ||
		s.Events(WorkerPanic) != 0 || s.Counts() != nil || s.String() != "" {
		t.Error("nil Set must be inert")
	}
}

// TestUnconfiguredPointInert: points without a spec never fire.
func TestUnconfiguredPointInert(t *testing.T) {
	s := MustSet(Spec{Point: RedirectLoss, Probability: 1})
	if s.Fire(ControllerDown) {
		t.Error("unconfigured point fired")
	}
}

// TestErrTyped: Err returns a typed, detectable error carrying the point
// and event index.
func TestErrTyped(t *testing.T) {
	s := MustSet(Spec{Point: CacheCorrupt, From: 1, To: 2})
	if err := s.Err(CacheCorrupt); err != nil {
		t.Fatalf("event 0 should not fault: %v", err)
	}
	err := s.Err(CacheCorrupt)
	if err == nil {
		t.Fatal("event 1 should fault")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != CacheCorrupt || inj.Event != 1 {
		t.Errorf("err = %#v", err)
	}
	if !IsInjected(fmt.Errorf("wrapped: %w", err)) {
		t.Error("IsInjected must see through wrapping")
	}
	if IsInjected(errors.New("organic")) {
		t.Error("organic error reported as injected")
	}
}

// TestParseRoundTrip: the CLI plan syntax parses and re-renders.
func TestParseRoundTrip(t *testing.T) {
	plan := "controller.down:from=100,to=200;redirect.loss:p=0.05,seed=7"
	s, err := ParseSet(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != plan {
		t.Errorf("round trip = %q, want %q", got, plan)
	}
	for _, bad := range []string{
		"point:p=2",          // probability outside [0,1]
		"point:from=5,to=3",  // empty window
		"point:bogus=1",      // unknown key
		"point:p",            // not k=v
		":p=0.5",             // empty point
		"dup:p=0.5;dup:p=.1", // duplicate point
	} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%q) should fail", bad)
		}
	}
}

// TestZeroSpecNeverFires: a spec with no probability and no window is a
// configured-but-inert stream (useful as a CLI placeholder).
func TestZeroSpecNeverFires(t *testing.T) {
	s := MustSet(Spec{Point: JobTransient})
	for i := 0; i < 50; i++ {
		if s.Fire(JobTransient) {
			t.Fatal("zero spec fired")
		}
	}
}
