// Package pcap reads and writes classic libpcap capture files (magic
// 0xa1b2c3d4, microsecond resolution, and the 0xa1b23c4d nanosecond
// variant), in both byte orders — enough to persist and replay the traffic
// traces P2GO profiles with, without any external dependency.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic numbers.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkTypeEthernet is the only link type the tools emit.
const LinkTypeEthernet = 1

// Record is one captured packet.
type Record struct {
	TimestampSec  uint32
	TimestampFrac uint32 // micro- or nanoseconds depending on file magic
	Data          []byte
}

// Header is the global pcap file header.
type Header struct {
	Nanosecond   bool
	VersionMajor uint16
	VersionMinor uint16
	SnapLen      uint32
	LinkType     uint32
}

// Writer writes a pcap file.
type Writer struct {
	w       io.Writer
	snapLen uint32
}

// NewWriter writes the global header and returns a Writer. SnapLen 0 means
// 65535.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = 65535
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// Write appends one packet record.
func (w *Writer) Write(rec Record) error {
	capLen := uint32(len(rec.Data))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:4], rec.TimestampSec)
	binary.LittleEndian.PutUint32(hdr[4:8], rec.TimestampFrac)
	binary.LittleEndian.PutUint32(hdr[8:12], capLen)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(rec.Data)))
	if _, err := w.w.Write(hdr); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(rec.Data[:capLen]); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Reader reads a pcap file.
type Reader struct {
	r         io.Reader
	byteOrder binary.ByteOrder
	Header    Header
}

// NewReader parses the global header.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == MagicMicroseconds:
		rd.byteOrder = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		rd.byteOrder = binary.LittleEndian
		rd.Header.Nanosecond = true
	case magicBE == MagicMicroseconds:
		rd.byteOrder = binary.BigEndian
	case magicBE == MagicNanoseconds:
		rd.byteOrder = binary.BigEndian
		rd.Header.Nanosecond = true
	default:
		return nil, fmt.Errorf("pcap: bad magic 0x%08x", magicLE)
	}
	bo := rd.byteOrder
	rd.Header.VersionMajor = bo.Uint16(hdr[4:6])
	rd.Header.VersionMinor = bo.Uint16(hdr[6:8])
	rd.Header.SnapLen = bo.Uint32(hdr[16:20])
	rd.Header.LinkType = bo.Uint32(hdr[20:24])
	return rd, nil
}

// Next returns the next record, or io.EOF at end of file.
func (r *Reader) Next() (Record, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	bo := r.byteOrder
	rec := Record{
		TimestampSec:  bo.Uint32(hdr[0:4]),
		TimestampFrac: bo.Uint32(hdr[4:8]),
	}
	capLen := bo.Uint32(hdr[8:12])
	if capLen > 256*1024*1024 {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	rec.Data = make([]byte, capLen)
	if _, err := io.ReadFull(r.r, rec.Data); err != nil {
		return Record{}, fmt.Errorf("pcap: read record data: %w", err)
	}
	return rec, nil
}

// ReadAll reads every record.
func ReadAll(r io.Reader) ([]Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes all records with the default snap length.
func WriteAll(w io.Writer, recs []Record) error {
	pw, err := NewWriter(w, 0)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := pw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
