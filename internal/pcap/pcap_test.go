package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{TimestampSec: 1, TimestampFrac: 500, Data: []byte{1, 2, 3}},
		{TimestampSec: 2, TimestampFrac: 600, Data: []byte{}},
		{TimestampSec: 3, TimestampFrac: 700, Data: bytes.Repeat([]byte{0xAB}, 1500)},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].TimestampSec != recs[i].TimestampSec ||
			got[i].TimestampFrac != recs[i].TimestampFrac ||
			!bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header.VersionMajor != 2 || rd.Header.VersionMinor != 4 {
		t.Errorf("version = %d.%d, want 2.4", rd.Header.VersionMajor, rd.Header.VersionMinor)
	}
	if rd.Header.SnapLen != 65535 || rd.Header.LinkType != LinkTypeEthernet {
		t.Errorf("header = %+v", rd.Header)
	}
	if rd.Header.Nanosecond {
		t.Error("default magic is microseconds")
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("empty file Next = %v, want EOF", err)
	}
}

func TestBigEndianAndNanosecondFiles(t *testing.T) {
	// Construct a big-endian nanosecond file by hand.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], MagicNanoseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 10)
	binary.BigEndian.PutUint32(rec[4:8], 999)
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec)
	buf.Write([]byte{9, 8, 7, 6})

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TimestampSec != 10 || got[0].TimestampFrac != 999 {
		t.Fatalf("records = %+v", got)
	}
	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if !rd.Header.Nanosecond {
		t.Error("nanosecond flag not detected")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("zero magic should fail")
	}
	if _, err := ReadAll(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header should fail")
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Data: bytes.Repeat([]byte{1}, 100)}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Data) != 10 {
		t.Errorf("captured length = %d, want 10", len(got[0].Data))
	}
}

func TestImplausibleCaptureLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w.Write(Record{Data: []byte{1}})
	raw := buf.Bytes()
	// Corrupt the capture length of the first record.
	binary.LittleEndian.PutUint32(raw[24+8:24+12], 1<<30)
	if _, err := ReadAll(bytes.NewReader(raw)); err == nil {
		t.Error("implausible capture length should fail")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		recs := make([]Record, len(payloads))
		for i, p := range payloads {
			recs[i] = Record{TimestampSec: uint32(i), Data: p}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			want := recs[i].Data
			if len(want) > 65535 {
				want = want[:65535]
			}
			if !bytes.Equal(got[i].Data, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
