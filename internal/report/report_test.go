package report

import (
	"encoding/json"
	"strings"
	"testing"

	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/workloads"
)

// runQuickstart optimizes the fast baseline workload once.
func runQuickstart(t *testing.T) *core.Result {
	t.Helper()
	w, err := workloads.Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p4.Parse(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := w.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.Options{}).Optimize(prog, w.Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFromResultRoundTrip(t *testing.T) {
	res := runQuickstart(t)
	jr := FromResult("quickstart", 1, res)

	if jr.Kind != "optimize" || jr.Workload != "quickstart" || jr.Seed != 1 {
		t.Fatalf("header = %+v", jr)
	}
	if jr.StagesBefore != res.StagesBefore() || jr.StagesAfter != res.StagesAfter() {
		t.Errorf("stages %d->%d, want %d->%d", jr.StagesBefore, jr.StagesAfter,
			res.StagesBefore(), res.StagesAfter())
	}
	if len(jr.History) != len(res.History) {
		t.Errorf("history rows %d, want %d", len(jr.History), len(res.History))
	}
	if !strings.Contains(jr.OptimizedP4, "control ingress") {
		t.Error("optimized_p4 is not P4 source")
	}
	if jr.Profile == nil || jr.Profile.TotalPackets == 0 {
		t.Error("missing profile")
	}

	data, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	var back JobResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.StagesAfter != jr.StagesAfter || back.Workload != jr.Workload {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if len(back.History) != len(jr.History) {
		t.Errorf("round trip lost history")
	}
}

func TestFromProfile(t *testing.T) {
	res := runQuickstart(t)
	jr := FromProfile("quickstart", 7, res.Profile)
	if jr.Kind != "profile" || jr.Seed != 7 {
		t.Fatalf("header = %+v", jr)
	}
	if jr.Profile == nil {
		t.Fatal("missing profile")
	}
	if len(jr.Profile.HitRates) == 0 {
		t.Error("missing hit rates")
	}
	for table, rate := range jr.Profile.HitRates {
		if rate < 0 || rate > 1 {
			t.Errorf("hit rate %s = %v out of range", table, rate)
		}
	}
	if jr.History != nil || jr.OptimizedP4 != "" {
		t.Error("profile result must not carry optimize fields")
	}
}

func TestFromProfileNil(t *testing.T) {
	if convertProfile(nil) != nil {
		t.Error("nil profile must serialize to nil")
	}
}

// TestFleetEquivalent: the kill/takeover equivalence check ignores what
// legitimately differs between runs (timings, cache counters, Cached
// flags, replica attribution) and catches what must not (outcomes,
// programs, traffic).
func TestFleetEquivalent(t *testing.T) {
	mk := func() *FleetResult {
		return &FleetResult{
			Kind: "fleet", Name: "ha", DeviceCount: 2, Optimized: 2,
			StagesBefore: 8, StagesAfter: 5, TotalPackets: 80,
			Devices: []FleetDevice{
				{Device: "sw1", Status: FleetOptimized, Packets: 40,
					Result: &JobResult{StagesBefore: 4, StagesAfter: 2, OptimizedP4: "p1"}},
				{Device: "sw2", Status: FleetOptimized, Packets: 40,
					Result: &JobResult{StagesBefore: 4, StagesAfter: 3, OptimizedP4: "p2"}},
			},
		}
	}
	a, b := mk(), mk()
	// The survivor's run differs only in what equivalence must ignore.
	b.Replica = "r2"
	b.DurationSeconds = 99
	b.CompileHits = 17
	b.Devices[0].Cached = true
	if diffs := FleetEquivalent(a, b); len(diffs) != 0 {
		t.Fatalf("ignorable differences reported: %v", diffs)
	}

	c := mk()
	c.Devices[1].Status = FleetFailed
	c.Devices[1].Result = nil
	c.Optimized, c.Failed = 1, 1
	if diffs := FleetEquivalent(a, c); len(diffs) == 0 {
		t.Fatal("a failed device row went unnoticed")
	}

	d := mk()
	d.Devices[0].Result.OptimizedP4 = "different"
	if diffs := FleetEquivalent(a, d); len(diffs) == 0 {
		t.Fatal("a diverging optimized program went unnoticed")
	}

	e := mk()
	e.Devices = e.Devices[:1]
	e.DeviceCount = 1
	if diffs := FleetEquivalent(a, e); len(diffs) == 0 {
		t.Fatal("a missing device went unnoticed")
	}
}
