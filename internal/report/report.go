// Package report defines the machine-readable job-result schema shared by
// the `p2go -json` command-line flags and the p2god HTTP service: one JSON
// shape for the outcome of a profile or optimize run, whichever surface it
// came through.
package report

import (
	"fmt"

	"p2go/internal/controller"
	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/prof"
	"p2go/internal/profile"
)

// JobResult is the outcome of one profile or optimize run.
type JobResult struct {
	Kind     string `json:"kind"` // "profile" or "optimize"
	Workload string `json:"workload,omitempty"`
	Seed     int64  `json:"seed"`

	// Optimize fields.
	StagesBefore       int           `json:"stages_before,omitempty"`
	StagesAfter        int           `json:"stages_after,omitempty"`
	History            []Stage       `json:"history,omitempty"`
	Passes             []Pass        `json:"passes,omitempty"`
	Observations       []Observation `json:"observations,omitempty"`
	OffloadedTables    []string      `json:"offloaded_tables,omitempty"`
	RedirectedFraction float64       `json:"redirected_fraction,omitempty"`
	OptimizedP4        string        `json:"optimized_p4,omitempty"`
	ControllerP4       string        `json:"controller_p4,omitempty"`
	FinalProfile       *Profile      `json:"final_profile,omitempty"`

	// Bindings is the canonical "name=value,name=value" rendering of the
	// @tunable assignments the run operated under (submitted or found by
	// the tune pass); empty for knob-free programs.
	Bindings string `json:"bindings,omitempty"`
	// Tunables lists each knob's declared range and final value.
	Tunables []TunedKnob `json:"tunables,omitempty"`

	// Profile is the Phase 1 profile: the whole result of a profile run,
	// the original program's profile of an optimize run.
	Profile *Profile `json:"profile,omitempty"`

	// Equivalence is the behavior check verdict, when the caller ran one
	// (the CLI does; the service leaves it empty).
	Equivalence string `json:"equivalence,omitempty"`

	// Resilience reports the failure-handling counters when the run was
	// verified under fault injection (`p2go optimize -faults ...`).
	Resilience *Resilience `json:"resilience,omitempty"`

	// Resources attributes the run's own resource consumption (CPU time,
	// allocations, GC work, peaks) when the surface that ran it metered
	// it — p2god does; the CLI leaves it empty.
	Resources *Resources `json:"resources,omitempty"`
}

// TunedKnob is one @tunable symbol's declared range and final value.
type TunedKnob struct {
	Name    string `json:"name"`
	Min     int    `json:"min"`
	Max     int    `json:"max"`
	Default int    `json:"default"`
	Value   int    `json:"value"`
}

// Resources is the resource-attribution block: what one run cost the
// process that executed it. CPU seconds are the process-wide rusage
// delta while the job ran — exact when the job ran alone, an upper
// bound when workers ran concurrently (documented rather than hidden:
// splitting rusage across goroutines is not possible from user space).
type Resources struct {
	WallSeconds   float64 `json:"wall_seconds"`
	CPUSeconds    float64 `json:"cpu_seconds"`
	AllocBytes    int64   `json:"alloc_bytes"`
	AllocObjects  int64   `json:"alloc_objects"`
	GCCycles      int64   `json:"gc_cycles"`
	HeapPeakBytes int64   `json:"heap_peak_bytes"`
	GoroutinePeak int     `json:"goroutine_peak"`
}

// FromUsage converts a measured prof.Usage into the report block.
func FromUsage(u prof.Usage) *Resources {
	return &Resources{
		WallSeconds:   u.WallSeconds,
		CPUSeconds:    u.CPUSeconds,
		AllocBytes:    u.AllocBytes,
		AllocObjects:  u.AllocObjects,
		GCCycles:      u.GCCycles,
		HeapPeakBytes: u.HeapPeakBytes,
		GoroutinePeak: u.GoroutinePeak,
	}
}

// Fleet device statuses.
const (
	// FleetOptimized: the device was optimized and carries a Result.
	FleetOptimized = "optimized"
	// FleetSkipped: the device was deliberately not optimized (Reason says
	// why — typically an empty trace).
	FleetSkipped = "skipped"
	// FleetFailed: the device's collection or optimization errored.
	FleetFailed = "failed"
)

// FleetDevice is one device's row in a fleet result: exactly one of
// Result (optimized), Reason (skipped), or Error (failed) is meaningful,
// selected by Status.
type FleetDevice struct {
	Device string `json:"device"`
	Status string `json:"status"`
	// Reason says why a skipped device was not optimized.
	Reason string `json:"reason,omitempty"`
	// Error is the failure text of a failed device.
	Error string `json:"error,omitempty"`
	// Packets is how much of the injected traffic this device saw.
	Packets int `json:"packets"`
	// Cached reports the row was served from the device artifact cache
	// (a previous fleet run already optimized identical inputs).
	Cached bool `json:"cached,omitempty"`
	// Result is the device's optimize outcome, in the same schema as a
	// single-program optimize job.
	Result *JobResult `json:"result,omitempty"`
}

// FleetResult is the outcome of one network-wide fleet optimization job:
// per-device rows plus the fleet-level aggregates.
type FleetResult struct {
	Kind string `json:"kind"` // always "fleet"
	Name string `json:"name,omitempty"`

	DeviceCount int `json:"device_count"`
	Optimized   int `json:"optimized"`
	Skipped     int `json:"skipped"`
	Failed      int `json:"failed"`

	// StagesBefore/After sum the optimized devices' pipeline lengths.
	StagesBefore int `json:"stages_before"`
	StagesAfter  int `json:"stages_after"`

	// TotalPackets sums the traffic every device saw; Redirected*
	// aggregate the optimized programs' controller redirections.
	TotalPackets       int     `json:"total_packets"`
	RedirectedPackets  int     `json:"redirected_packets"`
	RedirectedFraction float64 `json:"redirected_fraction"`

	// Cross-device analysis-cache counters: with a shared cache, devices
	// running the same program dedup compiles and profiles, so hits grow
	// with fleet homogeneity while misses track unique analyses.
	CompileHits   int `json:"compile_cache_hits"`
	CompileMisses int `json:"compile_cache_misses"`
	ProfileHits   int `json:"profile_cache_hits"`
	ProfileMisses int `json:"profile_cache_misses"`

	Devices []FleetDevice `json:"devices"`

	DurationSeconds float64 `json:"duration_seconds,omitempty"`

	// Resources attributes the whole fleet job's resource consumption on
	// the daemon that ran it. Attribution only: FleetEquivalent ignores
	// it, like timings and cache counters.
	Resources *Resources `json:"resources,omitempty"`

	// Replica names the p2god replica that produced this result, when the
	// job ran in a replica group. Attribution only: FleetEquivalent
	// ignores it, so a report computed by a survivor after takeover
	// compares equal to one computed uninterrupted.
	Replica string `json:"replica,omitempty"`
}

// FleetEquivalent compares two fleet results for semantic equality: same
// devices, same per-device outcomes, same optimized programs, same
// fleet-level aggregates. Fields that legitimately differ between an
// uninterrupted run and a kill/takeover re-run — timings, cache-hit
// counters, per-row Cached flags, and replica attribution — are ignored.
// It returns the differences found (empty means equivalent), so a chaos
// harness can say exactly what diverged.
func FleetEquivalent(a, b *FleetResult) []string {
	var diffs []string
	diff := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }
	if a == nil || b == nil {
		if a != b {
			diff("one result is nil (a=%v b=%v)", a == nil, b == nil)
		}
		return diffs
	}
	if a.Kind != b.Kind || a.Name != b.Name {
		diff("identity: %s/%s vs %s/%s", a.Kind, a.Name, b.Kind, b.Name)
	}
	if a.DeviceCount != b.DeviceCount || a.Optimized != b.Optimized ||
		a.Skipped != b.Skipped || a.Failed != b.Failed {
		diff("status counts: %d/%d/%d/%d vs %d/%d/%d/%d (devices/optimized/skipped/failed)",
			a.DeviceCount, a.Optimized, a.Skipped, a.Failed,
			b.DeviceCount, b.Optimized, b.Skipped, b.Failed)
	}
	if a.StagesBefore != b.StagesBefore || a.StagesAfter != b.StagesAfter {
		diff("fleet stages: %d->%d vs %d->%d", a.StagesBefore, a.StagesAfter, b.StagesBefore, b.StagesAfter)
	}
	if a.TotalPackets != b.TotalPackets || a.RedirectedPackets != b.RedirectedPackets {
		diff("traffic: %d total/%d redirected vs %d/%d",
			a.TotalPackets, a.RedirectedPackets, b.TotalPackets, b.RedirectedPackets)
	}
	rows := func(r *FleetResult) map[string]FleetDevice {
		m := make(map[string]FleetDevice, len(r.Devices))
		for _, d := range r.Devices {
			m[d.Device] = d
		}
		return m
	}
	am, bm := rows(a), rows(b)
	for name, ad := range am {
		bd, ok := bm[name]
		if !ok {
			diff("device %s: only in first result", name)
			continue
		}
		if ad.Status != bd.Status || ad.Reason != bd.Reason || ad.Packets != bd.Packets {
			diff("device %s: %s/%q/%d pkts vs %s/%q/%d pkts",
				name, ad.Status, ad.Reason, ad.Packets, bd.Status, bd.Reason, bd.Packets)
			continue
		}
		ar, br := ad.Result, bd.Result
		if (ar == nil) != (br == nil) {
			diff("device %s: result present in one run only", name)
			continue
		}
		if ar == nil {
			continue
		}
		if ar.StagesBefore != br.StagesBefore || ar.StagesAfter != br.StagesAfter {
			diff("device %s: stages %d->%d vs %d->%d",
				name, ar.StagesBefore, ar.StagesAfter, br.StagesBefore, br.StagesAfter)
		}
		if ar.OptimizedP4 != br.OptimizedP4 {
			diff("device %s: optimized programs differ", name)
		}
		if !slicesEqual(ar.OffloadedTables, br.OffloadedTables) {
			diff("device %s: offloaded tables %v vs %v", name, ar.OffloadedTables, br.OffloadedTables)
		}
	}
	for name := range bm {
		if _, ok := am[name]; !ok {
			diff("device %s: only in second result", name)
		}
	}
	return diffs
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AggregateFleet folds per-device rows into a FleetResult: status counts,
// fleet stage totals, and aggregate redirected traffic. Cache counters
// and duration are the caller's to fill (they come from the shared
// analysis cache, not the rows).
func AggregateFleet(name string, devices []FleetDevice) *FleetResult {
	out := &FleetResult{Kind: "fleet", Name: name, DeviceCount: len(devices), Devices: devices}
	replayed := 0
	for _, d := range devices {
		out.TotalPackets += d.Packets
		switch d.Status {
		case FleetOptimized:
			out.Optimized++
			if d.Result != nil {
				out.StagesBefore += d.Result.StagesBefore
				out.StagesAfter += d.Result.StagesAfter
				if fp := d.Result.FinalProfile; fp != nil {
					out.RedirectedPackets += fp.ToCPU
					replayed += fp.TotalPackets
				}
			}
		case FleetSkipped:
			out.Skipped++
		case FleetFailed:
			out.Failed++
		}
	}
	if replayed > 0 {
		out.RedirectedFraction = float64(out.RedirectedPackets) / float64(replayed)
	}
	return out
}

// Resilience is the machine-readable view of every degradation path a
// fault-injected run took. All counters are zero on a clean run; the
// invariant the chaos harness enforces is that divergences are counted
// here, never silent.
type Resilience struct {
	FaultPlan         string         `json:"fault_plan,omitempty"`
	Policy            string         `json:"policy,omitempty"`
	Redirected        int            `json:"redirected"`
	Delivered         int            `json:"delivered"`
	Retries           int            `json:"redirect_retries,omitempty"`
	Failovers         int            `json:"failovers,omitempty"`
	Delayed           int            `json:"delayed,omitempty"`
	Lost              int            `json:"lost,omitempty"`
	StaleServed       int            `json:"stale_served,omitempty"`
	DegradedPass      int            `json:"degraded_pass,omitempty"`
	DegradedDrop      int            `json:"degraded_drop,omitempty"`
	DegradedFallback  int            `json:"degraded_fallback,omitempty"`
	DegradedVerdicts  int            `json:"degraded_verdicts"`
	SilentDivergences int            `json:"silent_divergences"`
	FaultsFired       map[string]int `json:"faults_fired,omitempty"`
}

// Pass is one executed optimization pass, in execution order (the
// implicit phase1 profiling pass first): how long it ran, how many of its
// compiles/profiles the analysis cache answered, and how many
// observations it produced.
type Pass struct {
	ID              string  `json:"id"`
	DurationSeconds float64 `json:"duration_seconds"`
	CompileHits     int     `json:"compile_cache_hits"`
	CompileMisses   int     `json:"compile_cache_misses"`
	ProfileHits     int     `json:"profile_cache_hits"`
	ProfileMisses   int     `json:"profile_cache_misses"`
	Observations    int     `json:"observations"`
}

// Stage is one row of the Table 2-style stage history.
type Stage struct {
	Label           string  `json:"label"`
	Stages          int     `json:"stages"`
	IngressStages   int     `json:"ingress_stages"`
	EgressStages    int     `json:"egress_stages,omitempty"`
	Fits            bool    `json:"fits"`
	Summary         string  `json:"summary"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// Observation is one profile-guided finding with its evidence.
type Observation struct {
	Phase        string            `json:"phase"`
	Kind         string            `json:"kind"`
	Accepted     bool              `json:"accepted"`
	Summary      string            `json:"summary"`
	Evidence     string            `json:"evidence"`
	Tables       []string          `json:"tables,omitempty"`
	StagesBefore int               `json:"stages_before"`
	StagesAfter  int               `json:"stages_after"`
	Details      map[string]string `json:"details,omitempty"`
}

// Profile is the serialized form of a Phase 1 profile.
type Profile struct {
	TotalPackets     int                `json:"total_packets"`
	HitRates         map[string]float64 `json:"hit_rates"`
	Hits             map[string]int     `json:"hits"`
	Applied          map[string]int     `json:"applied"`
	Drops            int                `json:"drops"`
	ToCPU            int                `json:"to_cpu"`
	NonExclusiveSets []ActionSet        `json:"non_exclusive_sets,omitempty"`
	// ReplayEngine records how the replay executed (compiled vs
	// interpreter, dedup on/off with fallback reasons) so a silent slow
	// path is visible in the report, not just in wall-clock time.
	ReplayEngine *profile.EngineReport `json:"replay_engine,omitempty"`
}

// ActionSet is one observed set of non-exclusive actions (Table 1).
type ActionSet struct {
	Members []string `json:"members"`
	Count   int      `json:"count"`
}

// FromChaos serializes a chaos-equivalence run's degradation counters.
func FromChaos(rep *controller.ChaosReport, plan, policy string) *Resilience {
	return &Resilience{
		FaultPlan:         plan,
		Policy:            policy,
		Redirected:        rep.Redirected,
		Delivered:         rep.Stats.Delivered,
		Retries:           rep.Stats.Retries,
		Failovers:         rep.Stats.Failovers,
		Delayed:           rep.Stats.Delayed,
		Lost:              rep.Stats.Lost,
		StaleServed:       rep.Stats.StaleServed,
		DegradedPass:      rep.Stats.DegradedPass,
		DegradedDrop:      rep.Stats.DegradedDrop,
		DegradedFallback:  rep.Stats.DegradedFallback,
		DegradedVerdicts:  rep.Degraded,
		SilentDivergences: rep.Silent,
		FaultsFired:       rep.Faults,
	}
}

// FromProfile serializes a profile run.
func FromProfile(workload string, seed int64, p *profile.Profile) *JobResult {
	return &JobResult{
		Kind:     "profile",
		Workload: workload,
		Seed:     seed,
		Profile:  convertProfile(p),
	}
}

// FromResult serializes an optimize run.
func FromResult(workload string, seed int64, res *core.Result) *JobResult {
	out := &JobResult{
		Kind:               "optimize",
		Workload:           workload,
		Seed:               seed,
		StagesBefore:       res.StagesBefore(),
		StagesAfter:        res.StagesAfter(),
		OffloadedTables:    res.OffloadedTables,
		RedirectedFraction: res.RedirectedFraction,
		OptimizedP4:        p4.Print(res.Optimized),
		Profile:            convertProfile(res.Profile),
		FinalProfile:       convertProfile(res.FinalProfile),
	}
	if res.ControllerProgram != nil {
		out.ControllerP4 = p4.Print(res.ControllerProgram)
	}
	if len(res.Bindings) > 0 {
		out.Bindings = p4.FormatBindings(res.Bindings)
	}
	for _, k := range res.Tunables {
		out.Tunables = append(out.Tunables, TunedKnob{
			Name: k.Name, Min: k.Min, Max: k.Max, Default: k.Default, Value: k.Value,
		})
	}
	for _, h := range res.History {
		out.History = append(out.History, Stage{
			Label:           h.Label,
			Stages:          h.Stages,
			IngressStages:   h.IngressStages,
			EgressStages:    h.EgressStages,
			Fits:            h.Fits,
			Summary:         h.Summary,
			DurationSeconds: h.Duration.Seconds(),
		})
	}
	for _, s := range res.PassStats {
		out.Passes = append(out.Passes, Pass{
			ID:              s.ID,
			DurationSeconds: s.Duration.Seconds(),
			CompileHits:     s.CompileHits,
			CompileMisses:   s.CompileMisses,
			ProfileHits:     s.ProfileHits,
			ProfileMisses:   s.ProfileMisses,
			Observations:    s.Observations,
		})
	}
	for _, o := range res.Observations {
		out.Observations = append(out.Observations, Observation{
			Phase:        o.Phase.String(),
			Kind:         o.Kind,
			Accepted:     o.Accepted,
			Summary:      o.Summary,
			Evidence:     o.Evidence,
			Tables:       o.Tables,
			StagesBefore: o.StagesBefore,
			StagesAfter:  o.StagesAfter,
			Details:      o.Details,
		})
	}
	return out
}

func convertProfile(p *profile.Profile) *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{
		TotalPackets: p.TotalPackets,
		HitRates:     map[string]float64{},
		Hits:         p.Hits,
		Applied:      p.Applied,
		Drops:        p.Drops,
		ToCPU:        p.ToCPU,
		ReplayEngine: p.Engine,
	}
	for t := range p.Applied {
		out.HitRates[t] = p.HitRate(t)
	}
	for _, s := range p.NonExclusiveSets(2) {
		out.NonExclusiveSets = append(out.NonExclusiveSets, ActionSet{Members: s.Members, Count: s.Count})
	}
	return out
}
