// Package prof is p2god's continuous-profiling layer: per-job resource
// attribution (CPU time, allocations, GC cycles, peak heap and goroutine
// counts measured around a unit of work) and a crash-safe on-disk store
// of periodic pprof snapshots the daemon takes of itself. Together they
// close the P2GO feedback loop on the optimizer's own process: the same
// daemon that profiles P4 programs records where its own cycles go, and
// the stored CPU profiles feed `go build -pgo` (see cmd/experiments
// -pgo).
package prof

import (
	"runtime/metrics"
	"sync"
	"time"
)

// metric names sampled per measurement; all are cheap runtime/metrics
// reads (no stop-the-world, unlike runtime.ReadMemStats).
const (
	metricAllocBytes   = "/gc/heap/allocs:bytes"
	metricAllocObjects = "/gc/heap/allocs:objects"
	metricGCCycles     = "/gc/cycles/total:gc-cycles"
	metricHeapInUse    = "/memory/classes/heap/objects:bytes"
	metricGoroutines   = "/sched/goroutines:goroutines"
)

// Usage is the resource delta one measured unit of work consumed. CPU
// time is the process-wide rusage delta (user+system): with concurrent
// jobs it over-attributes — each job sees every core the process burned
// while it ran — so treat it as an upper bound, exact when jobs run
// alone. Everything else comes from runtime/metrics deltas, which are
// process-wide too but dominated by the measured work on a busy worker.
type Usage struct {
	// WallSeconds is the elapsed wall-clock time.
	WallSeconds float64
	// CPUSeconds is the process CPU time (user+system) consumed while
	// the meter ran.
	CPUSeconds float64
	// AllocBytes / AllocObjects are the heap allocation deltas.
	AllocBytes   int64
	AllocObjects int64
	// GCCycles counts garbage-collection cycles completed.
	GCCycles int64
	// HeapPeakBytes is the highest in-use heap the sampler observed
	// (sampled, so short spikes between ticks can be missed).
	HeapPeakBytes int64
	// GoroutinePeak is the highest live-goroutine count observed.
	GoroutinePeak int
}

// reading is one point-in-time sample of the tracked runtime metrics.
type reading struct {
	allocBytes   uint64
	allocObjects uint64
	gcCycles     uint64
	heapInUse    uint64
	goroutines   uint64
}

func read() reading {
	samples := []metrics.Sample{
		{Name: metricAllocBytes},
		{Name: metricAllocObjects},
		{Name: metricGCCycles},
		{Name: metricHeapInUse},
		{Name: metricGoroutines},
	}
	metrics.Read(samples)
	get := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	return reading{
		allocBytes:   get(0),
		allocObjects: get(1),
		gcCycles:     get(2),
		heapInUse:    get(3),
		goroutines:   get(4),
	}
}

// DefaultSampleEvery is the peak-sampler tick. 10ms resolves the peaks
// of second-scale optimize jobs while costing a handful of metric reads
// per job.
const DefaultSampleEvery = 10 * time.Millisecond

// Meter measures the resource consumption of one unit of work. Begin
// snapshots the runtime counters and starts a background sampler that
// tracks peak heap and goroutine counts; Sample reads the delta so far;
// End stops the sampler and returns the final delta. A Meter is safe
// for concurrent Sample calls.
type Meter struct {
	mu        sync.Mutex
	start     time.Time
	cpu0      float64
	base      reading
	peakHeap  uint64
	peakGoros uint64
	stopped   bool
	stop      chan struct{}
	done      chan struct{}
}

// Begin starts a measurement. sampleEvery is the peak-sampler period;
// <=0 uses DefaultSampleEvery.
func Begin(sampleEvery time.Duration) *Meter {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	base := read()
	m := &Meter{
		start:     time.Now(),
		cpu0:      processCPUSeconds(),
		base:      base,
		peakHeap:  base.heapInUse,
		peakGoros: base.goroutines,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go m.sampler(sampleEvery)
	return m
}

func (m *Meter) sampler(every time.Duration) {
	defer close(m.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.observe(read())
		}
	}
}

// observe folds one reading into the tracked peaks.
func (m *Meter) observe(r reading) {
	m.mu.Lock()
	if r.heapInUse > m.peakHeap {
		m.peakHeap = r.heapInUse
	}
	if r.goroutines > m.peakGoros {
		m.peakGoros = r.goroutines
	}
	m.mu.Unlock()
}

// usageLocked computes the delta against a fresh reading; m.mu held.
func (m *Meter) usageLocked(now reading) Usage {
	delta := func(a, b uint64) int64 {
		if a < b {
			return 0 // counter reset (cannot happen for runtime metrics, but stay safe)
		}
		return int64(a - b)
	}
	cpu := processCPUSeconds() - m.cpu0
	if cpu < 0 {
		cpu = 0
	}
	return Usage{
		WallSeconds:   time.Since(m.start).Seconds(),
		CPUSeconds:    cpu,
		AllocBytes:    delta(now.allocBytes, m.base.allocBytes),
		AllocObjects:  delta(now.allocObjects, m.base.allocObjects),
		GCCycles:      delta(now.gcCycles, m.base.gcCycles),
		HeapPeakBytes: int64(m.peakHeap),
		GoroutinePeak: int(m.peakGoros),
	}
}

// Sample returns the resource delta so far without stopping the meter.
func (m *Meter) Sample() Usage {
	now := read()
	m.mu.Lock()
	defer m.mu.Unlock()
	if now.heapInUse > m.peakHeap {
		m.peakHeap = now.heapInUse
	}
	if now.goroutines > m.peakGoros {
		m.peakGoros = now.goroutines
	}
	return m.usageLocked(now)
}

// End stops the sampler and returns the final delta. End is idempotent;
// calls after the first return the delta at the time of the first End.
func (m *Meter) End() Usage {
	m.mu.Lock()
	if !m.stopped {
		m.stopped = true
		close(m.stop)
	}
	m.mu.Unlock()
	<-m.done
	return m.Sample()
}
