//go:build unix

package prof

import "syscall"

// processCPUSeconds returns the process's cumulative CPU time
// (user+system) via getrusage. Monotonic for the life of the process.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Nano()+ru.Stime.Nano()) / 1e9
}
