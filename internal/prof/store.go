package prof

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Capture kinds stored by the Store.
const (
	KindCPU  = "cpu"
	KindHeap = "heap"
)

// stampLayout orders capture IDs lexically == chronologically.
const stampLayout = "20060102T150405.000000000"

// DefaultCPUDuration is how long each periodic CPU capture samples for.
// Two seconds is long enough for the sampler (100Hz) to see a few
// hundred stacks of a busy daemon without holding the profiler — and
// therefore blocking /debug/pprof/profile — for long.
const DefaultCPUDuration = 2 * time.Second

// DefaultKeep bounds retention per capture kind.
const DefaultKeep = 32

// Info describes one stored capture.
type Info struct {
	// ID is the capture's filename, e.g.
	// "20260808T120000.000000000-cpu.pprof"; IDs sort chronologically.
	ID string `json:"id"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// Bytes is the raw pprof size on disk.
	Bytes int64 `json:"bytes"`
	// CapturedAt is the capture time, RFC 3339 UTC.
	CapturedAt string `json:"captured_at"`
}

// Store is a bounded, crash-safe archive of the daemon's own pprof
// snapshots. Captures are written with the same temp+fsync+rename
// discipline as the artifact cache's spill files, so kill -9 never
// leaves a torn capture; retention keeps the newest Keep files per
// kind. One Store must own its directory.
type Store struct {
	dir string
	// keep is max files retained per kind.
	keep int
	// cpuDur is how long each CPU capture samples.
	cpuDur time.Duration
	// onCapture, when set, observes every capture attempt per kind
	// (err == nil means stored). Wired to the daemon's metrics.
	onCapture func(kind string, err error)

	// mu serializes captures: runtime/pprof allows only one active CPU
	// profile per process.
	mu sync.Mutex
}

// StoreConfig configures NewStore; zero values take the defaults above.
type StoreConfig struct {
	Dir         string
	Keep        int
	CPUDuration time.Duration
	// OnCapture observes capture attempts (kind, error or nil).
	OnCapture func(kind string, err error)
}

// NewStore opens (creating if needed) a profile store rooted at
// cfg.Dir.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("profile store: empty directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile store: %w", err)
	}
	s := &Store{dir: cfg.Dir, keep: cfg.Keep, cpuDur: cfg.CPUDuration, onCapture: cfg.OnCapture}
	if s.keep <= 0 {
		s.keep = DefaultKeep
	}
	if s.cpuDur <= 0 {
		s.cpuDur = DefaultCPUDuration
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetOnCapture installs the capture observer after construction — the
// daemon builds the store before the manager that owns the metrics it
// reports into. Call before captures start; the observer is read under
// the capture lock.
func (s *Store) SetOnCapture(f func(kind string, err error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCapture = f
}

// Capture takes one CPU capture (sampling for the configured duration,
// honoring ctx cancellation) and one heap capture, stores both, and
// applies retention. It returns the stored captures' Info. A CPU
// capture fails — without affecting the heap capture — when another
// CPU profile is already running (e.g. a live /debug/pprof/profile
// request); the first error is returned after both kinds were
// attempted.
func (s *Store) Capture(ctx context.Context) ([]Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	now := time.Now().UTC()
	var infos []Info
	var firstErr error
	store := func(kind string, data []byte, err error) {
		if err == nil {
			var info Info
			if info, err = s.write(kind, now, data); err == nil {
				infos = append(infos, info)
			}
		}
		s.observe(kind, err)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	cpu, err := s.captureCPU(ctx)
	store(KindCPU, cpu, err)

	var heap bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&heap, 0); err != nil {
		store(KindHeap, nil, fmt.Errorf("heap capture: %w", err))
	} else {
		store(KindHeap, heap.Bytes(), nil)
	}

	s.retainLocked()
	return infos, firstErr
}

// captureCPU samples the process's CPU profile for s.cpuDur.
func (s *Store) captureCPU(ctx context.Context) ([]byte, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another CPU profile is active (live /debug/pprof/profile or a
		// concurrent store capture).
		return nil, fmt.Errorf("cpu capture: %w", err)
	}
	select {
	case <-time.After(s.cpuDur):
	case <-ctx.Done():
	}
	pprof.StopCPUProfile()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cpu capture: %w", err)
	}
	return buf.Bytes(), nil
}

// write persists one capture crash-atomically (temp+fsync+rename, then
// directory fsync — the artifact cache's spill discipline).
func (s *Store) write(kind string, at time.Time, data []byte) (Info, error) {
	id := fmt.Sprintf("%s-%s.pprof", at.Format(stampLayout), kind)
	tmp, err := os.CreateTemp(s.dir, ".capture-*")
	if err != nil {
		return Info{}, fmt.Errorf("%s capture: %w", kind, err)
	}
	name := tmp.Name()
	defer os.Remove(name) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return Info{}, fmt.Errorf("%s capture: %w", kind, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Info{}, fmt.Errorf("%s capture: %w", kind, err)
	}
	if err := tmp.Close(); err != nil {
		return Info{}, fmt.Errorf("%s capture: %w", kind, err)
	}
	if err := os.Rename(name, filepath.Join(s.dir, id)); err != nil {
		return Info{}, fmt.Errorf("%s capture: %w", kind, err)
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return Info{ID: id, Kind: kind, Bytes: int64(len(data)), CapturedAt: at.Format(time.RFC3339Nano)}, nil
}

// retainLocked deletes all but the newest keep captures of each kind;
// s.mu held. Deletion failures are ignored — retention is advisory and
// retried on the next capture.
func (s *Store) retainLocked() {
	infos, err := s.List()
	if err != nil {
		return
	}
	perKind := map[string]int{}
	// List is newest-first, so everything past the quota is older.
	for _, info := range infos {
		perKind[info.Kind]++
		if perKind[info.Kind] > s.keep {
			_ = os.Remove(filepath.Join(s.dir, info.ID))
		}
	}
}

// List returns the stored captures, newest first. Files that are not
// well-formed capture names (temp files, strays) are skipped.
func (s *Store) List() ([]Info, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("profile store: %w", err)
	}
	infos := make([]Info, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, ok := parseID(e.Name())
		if !ok {
			continue
		}
		if fi, err := e.Info(); err == nil {
			info.Bytes = fi.Size()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID > infos[j].ID })
	return infos, nil
}

// Open returns a stored capture's raw pprof bytes by ID. IDs are
// validated against the capture-name grammar before touching the
// filesystem, so request paths cannot escape the store directory.
func (s *Store) Open(id string) ([]byte, error) {
	if _, ok := parseID(id); !ok {
		return nil, fmt.Errorf("profile store: invalid capture id %q", id)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, id))
	if err != nil {
		return nil, fmt.Errorf("profile store: %w", err)
	}
	return data, nil
}

// parseID decodes "<stamp>-<kind>.pprof" names; ok is false for
// anything else (including path-traversal attempts — the stamp parse
// rejects separators).
func parseID(name string) (Info, bool) {
	base, ok := strings.CutSuffix(name, ".pprof")
	if !ok {
		return Info{}, false
	}
	stamp, kind, ok := strings.Cut(base, "-")
	if !ok || (kind != KindCPU && kind != KindHeap) {
		return Info{}, false
	}
	at, err := time.Parse(stampLayout, stamp)
	if err != nil {
		return Info{}, false
	}
	return Info{ID: name, Kind: kind, CapturedAt: at.UTC().Format(time.RFC3339Nano)}, true
}

// Run captures on a fixed cadence until ctx is canceled. The first
// capture happens one period in, not at startup — the daemon's first
// seconds profile its own initialization, which is rarely the workload
// anyone wants to feed back into PGO. Errors are reported through
// OnCapture and do not stop the loop.
func (s *Store) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = s.Capture(ctx)
		}
	}
}

func (s *Store) observe(kind string, err error) {
	if s.onCapture != nil {
		s.onCapture(kind, err)
	}
}
