package prof

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestMeterMeasuresWork(t *testing.T) {
	m := Begin(time.Millisecond)
	// Allocate enough that the allocation delta is unambiguous.
	var keep [][]byte
	for i := 0; i < 64; i++ {
		keep = append(keep, make([]byte, 64<<10))
	}
	time.Sleep(5 * time.Millisecond)
	mid := m.Sample()
	u := m.End()
	_ = keep

	if u.WallSeconds <= 0 {
		t.Fatalf("WallSeconds = %v, want > 0", u.WallSeconds)
	}
	if u.AllocBytes < 64*(64<<10) {
		t.Errorf("AllocBytes = %d, want >= %d", u.AllocBytes, 64*(64<<10))
	}
	if u.AllocObjects <= 0 {
		t.Errorf("AllocObjects = %d, want > 0", u.AllocObjects)
	}
	if u.HeapPeakBytes <= 0 {
		t.Errorf("HeapPeakBytes = %d, want > 0", u.HeapPeakBytes)
	}
	if u.GoroutinePeak <= 0 {
		t.Errorf("GoroutinePeak = %d, want > 0", u.GoroutinePeak)
	}
	if u.CPUSeconds < 0 {
		t.Errorf("CPUSeconds = %v, want >= 0", u.CPUSeconds)
	}
	if mid.WallSeconds > u.WallSeconds {
		t.Errorf("mid-flight sample wall %v exceeds final %v", mid.WallSeconds, u.WallSeconds)
	}
	// End is idempotent and must not hang or panic on repeat.
	if again := m.End(); again.WallSeconds <= 0 {
		t.Errorf("second End() = %+v, want a usable usage", again)
	}
}

func TestStoreCaptureListOpen(t *testing.T) {
	dir := t.TempDir()
	var observed []string
	s, err := NewStore(StoreConfig{
		Dir:         dir,
		CPUDuration: 50 * time.Millisecond,
		OnCapture: func(kind string, err error) {
			if err == nil {
				observed = append(observed, kind)
			} else {
				observed = append(observed, kind+":err")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := s.Capture(context.Background())
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if len(infos) != 2 {
		t.Fatalf("Capture returned %d infos, want 2 (cpu+heap): %+v", len(infos), infos)
	}
	if len(observed) != 2 || observed[0] != KindCPU || observed[1] != KindHeap {
		t.Errorf("observer saw %v, want [cpu heap]", observed)
	}

	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("List returned %d captures, want 2: %+v", len(listed), listed)
	}
	for _, info := range listed {
		data, err := s.Open(info.ID)
		if err != nil {
			t.Fatalf("Open(%s): %v", info.ID, err)
		}
		if len(data) == 0 {
			t.Errorf("capture %s is empty", info.ID)
		}
		// pprof output is gzip-compressed protobuf.
		if !bytes.HasPrefix(data, []byte{0x1f, 0x8b}) {
			t.Errorf("capture %s does not look like gzipped pprof (prefix % x)", info.ID, data[:min(4, len(data))])
		}
	}
}

func TestStoreOpenRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir, CPUDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a file outside the store that a naive join would reach.
	outside := filepath.Join(filepath.Dir(dir), "secret")
	if err := os.WriteFile(outside, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"../secret", "..%2fsecret", "secret", "", ".", "20060102T150405.000000000-cpu.pprof/../../secret"} {
		if _, err := s.Open(id); err == nil {
			t.Errorf("Open(%q) succeeded, want error", id)
		}
	}
}

func TestStoreRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir, Keep: 2, CPUDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Capture(context.Background()); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		// Distinct wall-clock stamps keep IDs unique across iterations.
		time.Sleep(2 * time.Millisecond)
	}
	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	perKind := map[string]int{}
	for _, info := range listed {
		perKind[info.Kind]++
	}
	if perKind[KindCPU] != 2 || perKind[KindHeap] != 2 {
		t.Fatalf("retention kept %v, want 2 of each kind", perKind)
	}
	// Survivors must be the newest: IDs sort chronologically and List is
	// newest-first.
	for i := 1; i < len(listed); i++ {
		if listed[i-1].ID < listed[i].ID {
			t.Fatalf("List not newest-first: %s before %s", listed[i-1].ID, listed[i].ID)
		}
	}
}

func TestStoreSkipsStrayFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir, CPUDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".capture-123", "notes.txt", "20060102T150405.000000000-weird.pprof"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 0 {
		t.Fatalf("List picked up stray files: %+v", listed)
	}
}
