//go:build !unix

package prof

// processCPUSeconds is unavailable off unix; CPU attribution reads as
// zero there rather than failing the build.
func processCPUSeconds() float64 { return 0 }
