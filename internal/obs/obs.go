// Package obs is p2go's stdlib-only observability layer: hierarchical
// spans carried through context.Context, pluggable trace exporters
// (Chrome trace-event JSON, append-only JSONL, an in-memory collector for
// tests), Prometheus-style histograms, and a small slog front end.
//
// The design center is zero cost when disabled: every entry point is
// nil-safe, so instrumented code calls obs.Start / span.SetAttr / span.End
// unconditionally and pays only a context lookup when no Tracer is
// installed. A Tracer is installed per run (per CLI invocation, per p2god
// job), never globally, so concurrent jobs get disjoint span trees.
package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so span
// trees compare bytewise in golden tests; use the String/Int/Float
// constructors for consistent formatting.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int) Attr {
	return Attr{Key: key, Value: strconv.Itoa(value)}
}

// Int64 builds an int64-valued attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float-valued attribute (shortest round-trip formatting).
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Bool builds a boolean-valued attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// SpanData is the immutable record of a finished span, as handed to
// exporters.
type SpanData struct {
	ID       int64
	ParentID int64 // 0 for root spans
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Exporter receives finished spans. Exporters must be safe for concurrent
// use; the tracer calls Export from whichever goroutine ends the span.
type Exporter interface {
	Export(SpanData)
}

// Tracer assigns span IDs and fans finished spans out to its exporters.
type Tracer struct {
	mu        sync.Mutex
	nextID    int64
	exporters []Exporter
}

// NewTracer builds a tracer exporting to every given exporter.
func NewTracer(exporters ...Exporter) *Tracer {
	return &Tracer{exporters: exporters}
}

func (t *Tracer) export(d SpanData) {
	for _, e := range t.exporters {
		e.Export(d)
	}
}

func (t *Tracer) newID() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// Span is an in-flight span. All methods are nil-safe: a nil *Span (the
// result of Start without an installed tracer) ignores every call.
type Span struct {
	tracer   *Tracer
	id       int64
	parentID int64
	name     string
	start    time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span and exports it. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	s.tracer.export(SpanData{
		ID:       s.id,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	})
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer installs a tracer into the context; Start calls on the
// returned context (and its descendants) record spans through it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer installed in ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Start begins a span named name under ctx's current span (if any). When
// no tracer is installed, it returns ctx unchanged and a nil span — every
// method of which is a no-op — so call sites need no conditionals.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parentID int64
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		parentID = parent.id
	}
	s := &Span{
		tracer:   t,
		id:       t.newID(),
		parentID: parentID,
		name:     name,
		start:    time.Now(),
		attrs:    append([]Attr(nil), attrs...),
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Emit records an already-measured span — one whose start and duration
// were observed outside the Start/End pattern (e.g. a job's queue wait,
// reconstructed from enqueue and dequeue timestamps). parent may be nil.
func (t *Tracer) Emit(parent *Span, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	var parentID int64
	if parent != nil {
		parentID = parent.id
	}
	t.export(SpanData{
		ID:       t.newID(),
		ParentID: parentID,
		Name:     name,
		Start:    start,
		Duration: dur,
		Attrs:    append([]Attr(nil), attrs...),
	})
}

// sortAttrs orders attributes by key (stable for duplicate keys) — used
// by exporters that need deterministic rendering.
func sortAttrs(attrs []Attr) []Attr {
	out := append([]Attr(nil), attrs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
