package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector is an in-memory exporter: it retains every finished span, in
// export (End) order, for tests and for on-demand rendering (the p2god
// trace endpoint). A cap bounds memory for long-lived collectors; spans
// past the cap are counted but not retained.
type Collector struct {
	mu      sync.Mutex
	spans   []SpanData
	cap     int
	dropped int
}

// NewCollector builds a collector retaining at most cap spans (cap <= 0
// means unbounded).
func NewCollector(cap int) *Collector { return &Collector{cap: cap} }

// Export implements Exporter.
func (c *Collector) Export(d SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 && len(c.spans) >= c.cap {
		c.dropped++
		return
	}
	c.spans = append(c.spans, d)
}

// Spans returns a snapshot of the retained spans, in export order.
func (c *Collector) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.spans...)
}

// Dropped reports how many spans the cap discarded.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Tree renders the collected spans as an indented name tree with sorted
// attributes, children in creation (ID) order. Attribute keys listed in
// skipAttrs are omitted — golden tests use this to drop timing-dependent
// values (durations, throughput) while keeping structural ones.
func (c *Collector) Tree(skipAttrs ...string) string {
	skip := make(map[string]bool, len(skipAttrs))
	for _, k := range skipAttrs {
		skip[k] = true
	}
	spans := c.Spans()
	children := make(map[int64][]SpanData)
	for _, s := range spans {
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
	}
	var b strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, s := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(s.Name)
			for _, a := range sortAttrs(s.Attrs) {
				if skip[a.Key] {
					continue
				}
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

// chromeEvent is one Chrome trace-event ("X" complete events only).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // µs since trace start
	Dur  int64             `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the Chrome trace format, loadable
// in Perfetto and chrome://tracing.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Timestamps
// are microseconds relative to the earliest span start; each span's tid is
// its root ancestor's ID, so concurrent jobs land on separate tracks.
// Events are sorted by (ts, id), making ts monotonically non-decreasing.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	var base time.Time
	for _, s := range spans {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
	}
	parent := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.ParentID
	}
	root := func(id int64) int64 {
		for i := 0; i < len(spans); i++ { // bounded walk guards against cycles
			p := parent[id]
			if p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Sub(base).Microseconds(),
			Dur:  s.Duration.Microseconds(),
			Pid:  1,
			Tid:  root(s.ID),
		}
		if len(s.Attrs) > 0 || s.ParentID != 0 {
			ev.Args = make(map[string]string, len(s.Attrs)+1)
			for _, a := range sortAttrs(s.Attrs) {
				ev.Args[a.Key] = a.Value
			}
			if s.ParentID != 0 {
				ev.Args["parent"] = fmt.Sprintf("%d", s.ParentID)
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Tid < events[j].Tid
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ChromeExporter buffers spans and renders them as Chrome trace-event
// JSON on Flush — the `p2go ... -trace out.json` exporter.
type ChromeExporter struct {
	Collector
}

// NewChromeExporter builds an unbounded Chrome trace exporter.
func NewChromeExporter() *ChromeExporter { return &ChromeExporter{} }

// Flush writes the buffered spans as a complete Chrome trace.
func (e *ChromeExporter) Flush(w io.Writer) error {
	return WriteChromeTrace(w, e.Spans())
}

// jsonlSpan is the JSONL event-log schema: one object per line, append
// only, written as each span ends.
type jsonlSpan struct {
	Name   string            `json:"name"`
	ID     int64             `json:"id"`
	Parent int64             `json:"parent,omitempty"`
	Start  string            `json:"start"`
	DurUS  int64             `json:"dur_us"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// JSONLExporter streams finished spans to w as JSON Lines. Safe for
// concurrent use; the caller owns w's lifetime (close the file after the
// tracer is done).
type JSONLExporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLExporter builds a JSONL exporter writing to w.
func NewJSONLExporter(w io.Writer) *JSONLExporter { return &JSONLExporter{w: w} }

// Export implements Exporter.
func (e *JSONLExporter) Export(d SpanData) {
	rec := jsonlSpan{
		Name:   d.Name,
		ID:     d.ID,
		Parent: d.ParentID,
		Start:  d.Start.UTC().Format(time.RFC3339Nano),
		DurUS:  d.Duration.Microseconds(),
	}
	if len(d.Attrs) > 0 {
		rec.Attrs = make(map[string]string, len(d.Attrs))
		for _, a := range d.Attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.w.Write(append(line, '\n'))
}
