package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative `le` buckets plus `_sum` and `_count`. It is NOT internally
// synchronized — the owner (service.Metrics) already serializes access
// under its own mutex, and per-test use is single-goroutine.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given upper bounds, which must
// be strictly increasing. The +Inf bucket is implicit.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// DurationBuckets returns bounds (seconds) suited to phase/job latencies:
// sub-millisecond compiles up to multi-second chaos verifications.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// ThroughputBuckets returns bounds suited to replay rates in packets/sec.
func ThroughputBuckets() []float64 {
	return []float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7}
}

// BytesBuckets returns bounds suited to memory sizes: 64KiB up to 4GiB
// in powers of four, covering a job's peak heap on workloads from the
// seed examples to large synthetic fleets.
func BytesBuckets() []float64 {
	return []float64{1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24,
		1 << 26, 1 << 28, 1 << 30, 1 << 32}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// formatLabels renders a label set as {k1="v1",k2="v2"} with keys sorted;
// empty input renders as the empty string.
func formatLabels(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	sorted := sortAttrs(attrs)
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(a.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest representation, "+Inf" for the overflow bucket.
func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteProm renders one histogram series (bucket/sum/count lines, no
// HELP/TYPE header — the caller writes those once per family). labels are
// the series' own labels; the `le` label is merged in sorted key order.
func (h *Histogram) WriteProm(w io.Writer, name string, labels ...Attr) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		bound := math.Inf(+1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		all := append(append([]Attr(nil), labels...), String("le", formatBound(bound)))
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(all), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(labels),
		strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(labels), h.count)
}
