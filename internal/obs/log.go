package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a structured text logger at the given level — the
// slog-based replacement for the binaries' ad-hoc log.Printf/fmt prints.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
