package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchyAndCollector(t *testing.T) {
	col := NewCollector(0)
	ctx := WithTracer(context.Background(), NewTracer(col))

	ctx, root := Start(ctx, "root", String("kind", "test"))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild", Int("i", 3))
	grand.End()
	child.End()
	_, sib := Start(ctx, "sibling")
	sib.SetAttr(Bool("ok", true))
	sib.End()
	root.End()

	spans := col.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// Export order is End order: grandchild, child, sibling, root.
	if spans[0].Name != "grandchild" || spans[3].Name != "root" {
		t.Fatalf("unexpected export order: %v", spanNames(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].ParentID != 0 {
		t.Errorf("root has parent %d", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].ID {
		t.Errorf("child parent = %d, want root %d", byName["child"].ParentID, byName["root"].ID)
	}
	if byName["grandchild"].ParentID != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child %d", byName["grandchild"].ParentID, byName["child"].ID)
	}
	if byName["sibling"].ParentID != byName["root"].ID {
		t.Errorf("sibling parent = %d, want root %d", byName["sibling"].ParentID, byName["root"].ID)
	}

	tree := col.Tree()
	want := "root kind=test\n" +
		"  child\n" +
		"    grandchild i=3\n" +
		"  sibling ok=true\n"
	if tree != want {
		t.Errorf("Tree() =\n%s\nwant:\n%s", tree, want)
	}
}

func spanNames(spans []SpanData) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx, span := Start(context.Background(), "anything", Int("x", 1))
	if span != nil {
		t.Fatal("expected nil span without a tracer")
	}
	// All methods must be nil-safe.
	span.SetAttr(String("a", "b"))
	span.End()
	if ctx == nil {
		t.Fatal("ctx must be non-nil")
	}
	// A nil ctx is tolerated too.
	if _, s := Start(nil, "x"); s != nil { //nolint:staticcheck // nil ctx on purpose
		t.Fatal("expected nil span for nil ctx")
	}
}

func TestEndIdempotent(t *testing.T) {
	col := NewCollector(0)
	ctx := WithTracer(context.Background(), NewTracer(col))
	_, s := Start(ctx, "once")
	s.End()
	s.End()
	if n := len(col.Spans()); n != 1 {
		t.Fatalf("double End exported %d spans, want 1", n)
	}
}

func TestEmitSyntheticSpan(t *testing.T) {
	col := NewCollector(0)
	tr := NewTracer(col)
	ctx := WithTracer(context.Background(), tr)
	_, root := Start(ctx, "job")
	start := time.Now().Add(-250 * time.Millisecond)
	tr.Emit(root, "job.queue-wait", start, 250*time.Millisecond, Float("seconds", 0.25))
	root.End()

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	qw := spans[0]
	if qw.Name != "job.queue-wait" {
		t.Fatalf("first exported span is %q", qw.Name)
	}
	if qw.Duration != 250*time.Millisecond {
		t.Errorf("duration = %v", qw.Duration)
	}
	if qw.ParentID == 0 {
		t.Error("synthetic span lost its parent")
	}
}

func TestCollectorCap(t *testing.T) {
	col := NewCollector(2)
	ctx := WithTracer(context.Background(), NewTracer(col))
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, "s")
		s.End()
	}
	if n := len(col.Spans()); n != 2 {
		t.Fatalf("cap ignored: %d spans retained", n)
	}
	if d := col.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
}

func TestTreeSkipAttrs(t *testing.T) {
	col := NewCollector(0)
	ctx := WithTracer(context.Background(), NewTracer(col))
	_, s := Start(ctx, "replay", Int("packets", 100), Float("packets_per_sec", 123456.7))
	s.End()
	tree := col.Tree("packets_per_sec")
	if strings.Contains(tree, "packets_per_sec") {
		t.Errorf("skip list not honored: %s", tree)
	}
	if !strings.Contains(tree, "packets=100") {
		t.Errorf("structural attr lost: %s", tree)
	}
}
