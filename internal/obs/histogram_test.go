package obs

import (
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// le semantics: 0.1 falls in the le="0.1" bucket.
	if h.counts[0] != 2 || h.counts[1] != 1 || h.counts[2] != 1 || h.counts[3] != 1 {
		t.Fatalf("bucket counts = %v", h.counts)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram(0.5, 2)
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(100)

	var b strings.Builder
	h.WriteProm(&b, "p2god_phase_duration_seconds", String("phase", "initial"))
	got := b.String()
	want := `p2god_phase_duration_seconds_bucket{le="0.5",phase="initial"} 1
p2god_phase_duration_seconds_bucket{le="2",phase="initial"} 2
p2god_phase_duration_seconds_bucket{le="+Inf",phase="initial"} 3
p2god_phase_duration_seconds_sum{phase="initial"} 101.1
p2god_phase_duration_seconds_count{phase="initial"} 3
`
	if got != want {
		t.Errorf("WriteProm =\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramWritePromNoLabels(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(0.5)
	var b strings.Builder
	h.WriteProm(&b, "x_seconds")
	got := b.String()
	want := `x_seconds_bucket{le="1"} 1
x_seconds_bucket{le="+Inf"} 1
x_seconds_sum 0.5
x_seconds_count 1
`
	if got != want {
		t.Errorf("WriteProm =\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatLabelsSortedAndEscaped(t *testing.T) {
	got := formatLabels([]Attr{String("z", "last"), String("a", `q"uote`)})
	want := `{a="q\"uote",z="last"}`
	if got != want {
		t.Errorf("formatLabels = %s, want %s", got, want)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewHistogram(1, 1)
}
