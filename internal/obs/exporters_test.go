package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestChromeTraceRoundTrip(t *testing.T) {
	exp := NewChromeExporter()
	ctx := WithTracer(context.Background(), NewTracer(exp))

	ctx, root := Start(ctx, "optimize", String("workload", "ex1"))
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "phase3.probe", Int("value", 1024>>i))
		time.Sleep(time.Millisecond)
		s.End()
	}
	root.End()

	var buf bytes.Buffer
	if err := exp.Flush(&buf); err != nil {
		t.Fatal(err)
	}

	// Must round-trip as valid JSON in the Chrome trace-event schema.
	var decoded struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(decoded.TraceEvents))
	}
	prevTs := int64(-1)
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < prevTs {
			t.Errorf("event %q: ts %d not monotonic (prev %d)", ev.Name, ev.Ts, prevTs)
		}
		prevTs = ev.Ts
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%d/%d)", ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Pid != 1 {
			t.Errorf("event %q: pid = %d", ev.Name, ev.Pid)
		}
	}
	// The root span starts first: its event has ts 0.
	if decoded.TraceEvents[0].Ts != 0 {
		t.Errorf("first event ts = %d, want 0", decoded.TraceEvents[0].Ts)
	}
	// Children reference their parent and share the root's track.
	var rootID string
	for _, ev := range decoded.TraceEvents {
		if ev.Name == "optimize" {
			if ev.Args["workload"] != "ex1" {
				t.Errorf("root args = %v", ev.Args)
			}
			rootID = "" // root has no parent arg
			if _, ok := ev.Args["parent"]; ok {
				t.Error("root event has a parent arg")
			}
		}
	}
	_ = rootID
	probeTracks := map[int64]bool{}
	for _, ev := range decoded.TraceEvents {
		probeTracks[ev.Tid] = true
		if ev.Name == "phase3.probe" && ev.Args["parent"] == "" {
			t.Error("probe event lost its parent arg")
		}
	}
	if len(probeTracks) != 1 {
		t.Errorf("spans of one tree landed on %d tracks, want 1", len(probeTracks))
	}
}

func TestJSONLExporter(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithTracer(context.Background(), NewTracer(NewJSONLExporter(&buf)))
	ctx, root := Start(ctx, "a")
	_, child := Start(ctx, "b", Int("n", 7))
	child.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first struct {
		Name   string            `json:"name"`
		ID     int64             `json:"id"`
		Parent int64             `json:"parent"`
		Start  string            `json:"start"`
		DurUS  int64             `json:"dur_us"`
		Attrs  map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v", err)
	}
	if first.Name != "b" || first.Attrs["n"] != "7" || first.Parent == 0 {
		t.Errorf("unexpected first record: %+v", first)
	}
	if _, err := time.Parse(time.RFC3339Nano, first.Start); err != nil {
		t.Errorf("start %q not RFC3339Nano: %v", first.Start, err)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
}
