// Package ir lowers a checked P4 AST into the intermediate representation
// the rest of the toolchain works on: per-action and per-table field
// read/write sets, register usage, control-flow ordering, mutual-exclusion
// facts, and the control graph (all execution paths), which are exactly the
// compiler artifacts the P2GO paper relies on.
package ir

import (
	"fmt"
	"sort"

	"p2go/internal/p4"
)

// FieldKey identifies a field as "instance.field".
type FieldKey string

// Key builds a FieldKey from a p4 field reference.
func Key(ref p4.FieldRef) FieldKey { return FieldKey(ref.String()) }

// FieldSet is a set of field keys.
type FieldSet map[FieldKey]struct{}

// Add inserts k.
func (s FieldSet) Add(k FieldKey) { s[k] = struct{}{} }

// Has reports membership.
func (s FieldSet) Has(k FieldKey) bool { _, ok := s[k]; return ok }

// Intersects reports whether s and t share any element.
func (s FieldSet) Intersects(t FieldSet) bool {
	if len(t) < len(s) {
		s, t = t, s
	}
	for k := range s {
		if t.Has(k) {
			return true
		}
	}
	return false
}

// Intersection returns the sorted common elements of s and t.
func (s FieldSet) Intersection(t FieldSet) []FieldKey {
	var out []FieldKey
	for k := range s {
		if t.Has(k) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sorted returns the elements in sorted order.
func (s FieldSet) Sorted() []FieldKey {
	out := make([]FieldKey, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union returns a new set with all elements of s and t.
func (s FieldSet) Union(t FieldSet) FieldSet {
	out := FieldSet{}
	for k := range s {
		out.Add(k)
	}
	for k := range t {
		out.Add(k)
	}
	return out
}

// Action is an analyzed action: its declaration plus the fields it reads and
// writes and the registers it touches. Reads include hash-calculation input
// fields; a drop() primitive counts as a write to
// standard_metadata.egress_spec, mirroring how the paper's example explains
// the IPv4/ACL dependency ("their respective drop actions must set the
// egress port to a special 'drop' value").
type Action struct {
	Name      string
	Decl      *p4.ActionDecl
	Reads     FieldSet
	Writes    FieldSet
	RegReads  []string
	RegWrites []string
	// Counters updated by the action (count primitive).
	Counters []string
	Drops    bool
}

// Table is an analyzed table.
type Table struct {
	Name       string
	Decl       *p4.TableDecl
	MatchReads FieldSet  // fields the match key reads
	Actions    []*Action // resolved actions, in declaration order
	Default    *Action   // resolved default action; nil when none declared
	Registers  []string  // registers touched by any action, sorted
	Counters   []string  // counters updated by any action, sorted
	// Order is the position of the table's apply statement in a
	// depth-first walk of the controls, ingress first (0-based). The
	// stage allocator uses it to orient action dependencies.
	Order int
	// Pipeline is the control the table is applied in: p4.IngressControl
	// or p4.EgressControl.
	Pipeline string
	// GuardReads is the union of fields read by the conditions (if
	// predicates) guarding this table's apply statement. A table depends
	// on whatever wrote those fields ("a table can also depend on a
	// control statement", Fig. 1).
	GuardReads FieldSet
	// GuardedByHitMiss lists the tables whose hit/miss outcome guards this
	// table (one entry per enclosing hit/miss arm, outermost first).
	GuardedByHitMiss []HitMissGuard
	// position encodes the apply statement's location in the control
	// tree for mutual-exclusion queries.
	position []armStep
}

// ActionByName returns the table's action with the given name, or nil.
func (t *Table) ActionByName(name string) *Action {
	for _, a := range t.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ActionWrites returns the union of the write sets of all actions.
func (t *Table) ActionWrites() FieldSet {
	out := FieldSet{}
	for _, a := range t.Actions {
		for k := range a.Writes {
			out.Add(k)
		}
	}
	return out
}

// ActionReads returns the union of the read sets of all actions.
func (t *Table) ActionReads() FieldSet {
	out := FieldSet{}
	for _, a := range t.Actions {
		for k := range a.Reads {
			out.Add(k)
		}
	}
	return out
}

// HitMissGuard records that a table sits inside the hit or miss arm of
// another table's apply statement.
type HitMissGuard struct {
	Table string
	OnHit bool // true: inside the hit arm; false: inside the miss arm
}

// armStep is one step of a control-tree position: the statement (identified
// by pointer) and which arm of it we descended into.
type armStep struct {
	stmt p4.Stmt
	arm  int // armSeq for plain block order; armThen/armElse/armHit/armMiss otherwise
}

const (
	armThen = 1
	armElse = 2
	armHit  = 3
	armMiss = 4
)

// Program is the analyzed program.
type Program struct {
	AST     *p4.Program
	Tables  map[string]*Table
	Ordered []*Table // tables in control-flow (walk) order, ingress first
	Actions map[string]*Action
	Ingress *p4.ControlDecl
	// Egress is the optional egress control (nil when absent). Egress
	// tables compile into their own stage pipeline and never contend
	// with ingress tables.
	Egress *p4.ControlDecl
}

// Build analyzes a checked program. It assumes p4.Check passed.
func Build(ast *p4.Program) (*Program, error) {
	prog := &Program{
		AST:     ast,
		Tables:  map[string]*Table{},
		Actions: map[string]*Action{},
		Ingress: ast.Control(p4.IngressControl),
		Egress:  ast.Control(p4.EgressControl),
	}
	if prog.Ingress == nil {
		return nil, fmt.Errorf("ir: program has no ingress control")
	}
	for _, decl := range ast.Actions {
		a, err := analyzeAction(ast, decl)
		if err != nil {
			return nil, err
		}
		prog.Actions[a.Name] = a
	}
	for _, decl := range ast.Tables {
		t := &Table{
			Name:       decl.Name,
			Decl:       decl,
			MatchReads: FieldSet{},
			GuardReads: FieldSet{},
			Order:      -1,
		}
		for _, r := range decl.Reads {
			if r.Kind == p4.MatchValid {
				continue // validity bits are parser outputs, not table writes
			}
			t.MatchReads.Add(Key(r.Field))
		}
		regs := map[string]bool{}
		ctrs := map[string]bool{}
		for _, an := range decl.ActionNames {
			a := prog.Actions[an]
			if a == nil {
				return nil, fmt.Errorf("ir: table %s references unknown action %s", decl.Name, an)
			}
			t.Actions = append(t.Actions, a)
			for _, r := range a.RegReads {
				regs[r] = true
			}
			for _, r := range a.RegWrites {
				regs[r] = true
			}
			for _, c := range a.Counters {
				ctrs[c] = true
			}
		}
		if decl.DefaultAction != "" {
			t.Default = prog.Actions[decl.DefaultAction]
		}
		for r := range regs {
			t.Registers = append(t.Registers, r)
		}
		sort.Strings(t.Registers)
		for c := range ctrs {
			t.Counters = append(t.Counters, c)
		}
		sort.Strings(t.Counters)
		prog.Tables[decl.Name] = t
	}
	if err := prog.walkControl(); err != nil {
		return nil, err
	}
	if err := prog.validateRegisters(); err != nil {
		return nil, err
	}
	return prog, nil
}

// walkControl assigns Order, GuardReads, GuardedByHitMiss, and position to
// every applied table.
func (p *Program) walkControl() error {
	order := 0
	pipeline := p4.IngressControl
	var walk func(b *p4.BlockStmt, guards FieldSet, hitMiss []HitMissGuard, pos []armStep) error
	walk = func(b *p4.BlockStmt, guards FieldSet, hitMiss []HitMissGuard, pos []armStep) error {
		if b == nil {
			return nil
		}
		for _, s := range b.Stmts {
			switch v := s.(type) {
			case *p4.ApplyStmt:
				t := p.Tables[v.Table]
				if t == nil {
					return fmt.Errorf("ir: apply of unknown table %s", v.Table)
				}
				if t.Order >= 0 {
					return fmt.Errorf("ir: table %s applied more than once", v.Table)
				}
				t.Order = order
				order++
				t.Pipeline = pipeline
				t.GuardReads = guards.Union(nil)
				t.GuardedByHitMiss = append([]HitMissGuard(nil), hitMiss...)
				t.position = append(append([]armStep(nil), pos...), armStep{stmt: s, arm: 0})
				hitHM := append(append([]HitMissGuard(nil), hitMiss...), HitMissGuard{Table: v.Table, OnHit: true})
				missHM := append(append([]HitMissGuard(nil), hitMiss...), HitMissGuard{Table: v.Table, OnHit: false})
				if err := walk(v.Hit, guards, hitHM, append(pos, armStep{stmt: s, arm: armHit})); err != nil {
					return err
				}
				if err := walk(v.Miss, guards, missHM, append(pos, armStep{stmt: s, arm: armMiss})); err != nil {
					return err
				}
			case *p4.IfStmt:
				condReads := boolExprReads(v.Cond)
				childGuards := guards.Union(condReads)
				if err := walk(v.Then, childGuards, hitMiss, append(pos, armStep{stmt: s, arm: armThen})); err != nil {
					return err
				}
				if err := walk(v.Else, childGuards, hitMiss, append(pos, armStep{stmt: s, arm: armElse})); err != nil {
					return err
				}
			case *p4.BlockStmt:
				if err := walk(v, guards, hitMiss, pos); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(p.Ingress.Body, FieldSet{}, nil, nil); err != nil {
		return err
	}
	if p.Egress != nil {
		pipeline = p4.EgressControl
		if err := walk(p.Egress.Body, FieldSet{}, nil, nil); err != nil {
			return err
		}
	}
	for _, t := range p.Tables {
		if t.Order >= 0 {
			p.Ordered = append(p.Ordered, t)
		}
	}
	sort.Slice(p.Ordered, func(i, j int) bool { return p.Ordered[i].Order < p.Ordered[j].Order })
	return nil
}

// validateRegisters enforces the RMT constraint that a register array or
// counter is accessed by a single table (stateful memory lives in exactly
// one stage).
func (p *Program) validateRegisters() error {
	owner := map[string]string{}
	for _, t := range p.Ordered {
		for _, r := range t.Registers {
			if prev, ok := owner[r]; ok && prev != t.Name {
				return fmt.Errorf("ir: register %s accessed by both %s and %s; a register must be local to one table", r, prev, t.Name)
			}
			owner[r] = t.Name
		}
		for _, c := range t.Counters {
			key := "counter:" + c
			if prev, ok := owner[key]; ok && prev != t.Name {
				return fmt.Errorf("ir: counter %s accessed by both %s and %s; a counter must be local to one table", c, prev, t.Name)
			}
			owner[key] = t.Name
		}
	}
	return nil
}

// MutuallyExclusive reports whether tables a and b can never both be applied
// to the same packet, determined structurally: their apply statements sit in
// different arms of the same if/else or hit/miss statement.
func (p *Program) MutuallyExclusive(a, b string) bool {
	ta, tb := p.Tables[a], p.Tables[b]
	if ta == nil || tb == nil || ta.Order < 0 || tb.Order < 0 {
		return false
	}
	pa, pb := ta.position, tb.position
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		if pa[i].stmt != pb[i].stmt {
			return false // diverged at different statements of the same block: both can run
		}
		if pa[i].arm != pb[i].arm {
			// Same statement, different arms. then/else and hit/miss
			// arms are exclusive; arm 0 (the apply itself) vs the hit
			// arm means the hit block runs in addition to the apply.
			ea := pa[i].arm
			eb := pb[i].arm
			exclusivePair := (ea == armThen && eb == armElse) || (ea == armElse && eb == armThen) ||
				(ea == armHit && eb == armMiss) || (ea == armMiss && eb == armHit)
			return exclusivePair
		}
	}
	return false
}

func analyzeAction(ast *p4.Program, decl *p4.ActionDecl) (*Action, error) {
	a := &Action{Name: decl.Name, Decl: decl, Reads: FieldSet{}, Writes: FieldSet{}}
	addRead := func(e p4.Expr) {
		if ref, ok := e.(p4.FieldRef); ok && ref.Field != "" {
			a.Reads.Add(Key(ref))
		}
	}
	addWrite := func(e p4.Expr) {
		if ref, ok := e.(p4.FieldRef); ok && ref.Field != "" {
			a.Writes.Add(Key(ref))
		}
	}
	for _, call := range decl.Body {
		switch call.Name {
		case p4.PrimModifyField:
			addWrite(call.Args[0])
			addRead(call.Args[1])
		case p4.PrimAddToField, p4.PrimSubFromField:
			addWrite(call.Args[0])
			addRead(call.Args[0]) // read-modify-write
			addRead(call.Args[1])
		case p4.PrimBitAnd, p4.PrimBitOr, p4.PrimBitXor, p4.PrimMin, p4.PrimMax:
			addWrite(call.Args[0])
			addRead(call.Args[1])
			addRead(call.Args[2])
		case p4.PrimDrop:
			a.Drops = true
			a.Writes.Add(FieldKey(p4.StandardMetadataName + "." + p4.FieldEgressSpec))
		case p4.PrimNoOp:
		case p4.PrimRegisterRead:
			addWrite(call.Args[0])
			reg := call.Args[1].(p4.FieldRef).Instance
			a.RegReads = append(a.RegReads, reg)
			addRead(call.Args[2])
		case p4.PrimRegisterWrite:
			reg := call.Args[0].(p4.FieldRef).Instance
			a.RegWrites = append(a.RegWrites, reg)
			addRead(call.Args[1])
			addRead(call.Args[2])
		case p4.PrimCount:
			ctr := call.Args[0].(p4.FieldRef).Instance
			a.Counters = append(a.Counters, ctr)
			addRead(call.Args[1])
		case p4.PrimHashOffset:
			addWrite(call.Args[0])
			addRead(call.Args[1])
			calcName := call.Args[2].(p4.FieldRef).Instance
			calc := ast.Calculation(calcName)
			if calc == nil {
				return nil, fmt.Errorf("ir: action %s: unknown calculation %s", decl.Name, calcName)
			}
			fl := ast.FieldList(calc.Input)
			if fl == nil {
				return nil, fmt.Errorf("ir: action %s: calculation %s has unknown field list %s", decl.Name, calcName, calc.Input)
			}
			for _, f := range fl.Fields {
				a.Reads.Add(Key(f))
			}
			addRead(call.Args[3])
		default:
			return nil, fmt.Errorf("ir: action %s: unknown primitive %s", decl.Name, call.Name)
		}
	}
	return a, nil
}

// boolExprReads collects the fields a boolean expression reads.
func boolExprReads(e p4.BoolExpr) FieldSet {
	out := FieldSet{}
	var visit func(p4.BoolExpr)
	visit = func(e p4.BoolExpr) {
		switch v := e.(type) {
		case *p4.CompareExpr:
			for _, side := range []p4.Expr{v.Left, v.Right} {
				if ref, ok := side.(p4.FieldRef); ok && ref.Field != "" {
					out.Add(Key(ref))
				}
			}
		case *p4.BinaryBoolExpr:
			visit(v.Left)
			visit(v.Right)
		case *p4.NotExpr:
			visit(v.X)
		case *p4.ValidExpr:
			// Validity is set by the parser, not by tables: no field read.
		}
	}
	visit(e)
	return out
}
