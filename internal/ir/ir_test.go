package ir

import (
	"strings"
	"testing"

	"p2go/internal/p4"
)

const testProgram = `
header_type ipv4_t {
    fields {
        srcAddr : 32;
        dstAddr : 32;
        proto : 8;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
    }
}
header_type meta_t {
    fields {
        idx1 : 16;
        count1 : 32;
        sketch_count : 32;
    }
}
header ipv4_t ipv4;
header udp_t udp;
metadata meta_t meta;

register r1 {
    width : 32;
    instance_count : 256;
}

field_list flow {
    ipv4.srcAddr;
    ipv4.dstAddr;
}
field_list_calculation h1 {
    input { flow; }
    algorithm : crc16;
    output_width : 16;
}

parser start {
    extract(ipv4);
    return ingress;
}

action set_port(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action do_drop() {
    drop();
}
action sketch_update() {
    modify_field_with_hash_based_offset(meta.idx1, 0, h1, 256);
    register_read(meta.count1, r1, meta.idx1);
    add_to_field(meta.count1, 1);
    register_write(r1, meta.idx1, meta.count1);
    min(meta.sketch_count, meta.count1, meta.count1);
}
action alarm() {
    drop();
}

table fwd {
    reads { ipv4.dstAddr : lpm; }
    actions { set_port; do_drop; }
    size : 16;
    default_action : do_drop;
}
table acl_udp {
    reads { udp.dstPort : exact; }
    actions { do_drop; }
    size : 8;
}
table sketch {
    actions { sketch_update; }
    default_action : sketch_update;
}
table dns_drop {
    actions { alarm; }
    default_action : alarm;
}
table t_then {
    actions { set_port; }
}
table t_else {
    actions { set_port; }
}

control ingress {
    apply(fwd);
    if (valid(udp)) {
        apply(acl_udp);
        apply(sketch);
        if (meta.sketch_count >= 128) {
            apply(dns_drop);
        }
    }
    if (ipv4.proto == 6) {
        apply(t_then);
    } else {
        apply(t_else);
    }
}
`

func buildTest(t *testing.T) *Program {
	t.Helper()
	ast, err := p4.Parse(testProgram)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := p4.Check(ast); err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := Build(ast)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func TestActionReadWriteSets(t *testing.T) {
	prog := buildTest(t)
	su := prog.Actions["sketch_update"]
	for _, want := range []FieldKey{"ipv4.srcAddr", "ipv4.dstAddr", "meta.idx1", "meta.count1"} {
		if !su.Reads.Has(want) {
			t.Errorf("sketch_update reads missing %s (got %v)", want, su.Reads.Sorted())
		}
	}
	for _, want := range []FieldKey{"meta.idx1", "meta.count1", "meta.sketch_count"} {
		if !su.Writes.Has(want) {
			t.Errorf("sketch_update writes missing %s (got %v)", want, su.Writes.Sorted())
		}
	}
	if len(su.RegReads) != 1 || su.RegReads[0] != "r1" {
		t.Errorf("RegReads = %v, want [r1]", su.RegReads)
	}
	if len(su.RegWrites) != 1 || su.RegWrites[0] != "r1" {
		t.Errorf("RegWrites = %v, want [r1]", su.RegWrites)
	}
	dd := prog.Actions["do_drop"]
	if !dd.Drops {
		t.Error("do_drop.Drops = false")
	}
	if !dd.Writes.Has("standard_metadata.egress_spec") {
		t.Error("drop() should write standard_metadata.egress_spec")
	}
}

func TestTableAnalysis(t *testing.T) {
	prog := buildTest(t)
	fwd := prog.Tables["fwd"]
	if !fwd.MatchReads.Has("ipv4.dstAddr") {
		t.Errorf("fwd match reads = %v", fwd.MatchReads.Sorted())
	}
	if fwd.Default == nil || fwd.Default.Name != "do_drop" {
		t.Errorf("fwd default = %v", fwd.Default)
	}
	sk := prog.Tables["sketch"]
	if len(sk.Registers) != 1 || sk.Registers[0] != "r1" {
		t.Errorf("sketch registers = %v", sk.Registers)
	}
	if !sk.ActionWrites().Has("meta.sketch_count") {
		t.Error("sketch ActionWrites missing meta.sketch_count")
	}
}

func TestControlOrderAndGuards(t *testing.T) {
	prog := buildTest(t)
	var names []string
	for _, tbl := range prog.Ordered {
		names = append(names, tbl.Name)
	}
	want := "fwd,acl_udp,sketch,dns_drop,t_then,t_else"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
	dd := prog.Tables["dns_drop"]
	if !dd.GuardReads.Has("meta.sketch_count") {
		t.Errorf("dns_drop guard reads = %v, want to include meta.sketch_count", dd.GuardReads.Sorted())
	}
	if prog.Tables["acl_udp"].GuardReads.Has("meta.sketch_count") {
		t.Error("acl_udp should not be guarded by the sketch_count condition")
	}
	tt := prog.Tables["t_then"]
	if !tt.GuardReads.Has("ipv4.proto") {
		t.Errorf("t_then guard reads = %v", tt.GuardReads.Sorted())
	}
}

func TestMutualExclusion(t *testing.T) {
	prog := buildTest(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"t_then", "t_else", true},
		{"fwd", "acl_udp", false},
		{"acl_udp", "sketch", false},
		{"dns_drop", "t_then", false},
		{"fwd", "t_else", false},
	}
	for _, c := range cases {
		if got := prog.MutuallyExclusive(c.a, c.b); got != c.want {
			t.Errorf("MutuallyExclusive(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := prog.MutuallyExclusive(c.b, c.a); got != c.want {
			t.Errorf("MutuallyExclusive(%s, %s) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestMutualExclusionHitMiss(t *testing.T) {
	src := `
action a() { no_op(); }
table t0 { actions { a; } }
table t_hit { actions { a; } }
table t_miss { actions { a; } }
control ingress {
    apply(t0) {
        hit { apply(t_hit); }
        miss { apply(t_miss); }
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.MutuallyExclusive("t_hit", "t_miss") {
		t.Error("hit and miss arms should be mutually exclusive")
	}
	if prog.MutuallyExclusive("t0", "t_hit") {
		t.Error("a table and its hit arm are not mutually exclusive")
	}
	hm := prog.Tables["t_hit"].GuardedByHitMiss
	if len(hm) != 1 || hm[0].Table != "t0" || !hm[0].OnHit {
		t.Errorf("t_hit GuardedByHitMiss = %v, want [{t0 true}]", hm)
	}
	hmMiss := prog.Tables["t_miss"].GuardedByHitMiss
	if len(hmMiss) != 1 || hmMiss[0].Table != "t0" || hmMiss[0].OnHit {
		t.Errorf("t_miss GuardedByHitMiss = %v, want [{t0 false}]", hmMiss)
	}
}

func TestEnumeratePaths(t *testing.T) {
	src := `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action a() { no_op(); }
table t1 { actions { a; } }
table t2 { actions { a; } }
control ingress {
    apply(t1);
    if (m.x == 1) {
        apply(t2);
    }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := prog.EnumeratePaths()
	if err != nil {
		t.Fatal(err)
	}
	// t1 hit/miss x (t2 applied hit/miss, or skipped) = 2 * 3 = 6 paths.
	if len(paths) != 6 {
		var got []string
		for _, p := range paths {
			got = append(got, p.String())
		}
		t.Fatalf("paths = %d, want 6:\n%s", len(paths), strings.Join(got, "\n"))
	}
}

func TestEnumeratePathsHitMissArms(t *testing.T) {
	prog := buildTest(t)
	paths, err := prog.EnumeratePaths()
	if err != nil {
		t.Fatal(err)
	}
	// Every path contains fwd and exactly one of t_then/t_else.
	for _, p := range paths {
		tables := strings.Join(p.Tables(), ",")
		if !strings.Contains(tables, "fwd") {
			t.Errorf("path %s missing fwd", p)
		}
		hasThen := strings.Contains(tables, "t_then")
		hasElse := strings.Contains(tables, "t_else")
		if hasThen == hasElse {
			t.Errorf("path %s should contain exactly one of t_then/t_else", p)
		}
	}
}

func TestRegisterSharedByTwoTablesRejected(t *testing.T) {
	src := `
header_type m_t { fields { i : 16; v : 32; } }
metadata m_t m;
register r { width : 32; instance_count : 16; }
action rd() { register_read(m.v, r, m.i); }
action wr() { register_write(r, m.i, m.v); }
table t1 { actions { rd; } }
table t2 { actions { wr; } }
control ingress { apply(t1); apply(t2); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ast); err == nil {
		t.Error("expected error for register shared across tables")
	}
}

func TestFieldSetOps(t *testing.T) {
	a := FieldSet{"x.a": {}, "x.b": {}}
	b := FieldSet{"x.b": {}, "x.c": {}}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	inter := a.Intersection(b)
	if len(inter) != 1 || inter[0] != "x.b" {
		t.Errorf("Intersection = %v", inter)
	}
	u := a.Union(b)
	if len(u) != 3 {
		t.Errorf("Union size = %d, want 3", len(u))
	}
	empty := FieldSet{}
	if empty.Intersects(a) || a.Intersects(empty) {
		t.Error("empty set should not intersect")
	}
}
