package ir

import (
	"fmt"
	"sort"
	"strings"

	"p2go/internal/p4"
)

// PathStep is one table application on an execution path, together with the
// match outcome the path assumes.
type PathStep struct {
	Table string
	Hit   bool
}

func (s PathStep) String() string {
	if s.Hit {
		return s.Table + ":hit"
	}
	return s.Table + ":miss"
}

// Path is one complete execution path through the ingress control.
type Path []PathStep

func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, " -> ")
}

// Tables returns the table names on the path, in order.
func (p Path) Tables() []string {
	out := make([]string, len(p))
	for i, s := range p {
		out[i] = s.Table
	}
	return out
}

// MaxPaths caps control-graph enumeration; programs P2GO handles are tiny,
// so hitting the cap indicates a pathological input.
const MaxPaths = 1 << 16

// EnumeratePaths computes the control graph: every distinct execution path
// through the ingress control, where each applied table may hit or miss and
// each condition may be true or false. The result is deterministic
// (sorted lexicographically).
func (p *Program) EnumeratePaths() ([]Path, error) {
	paths, err := extend([]Path{nil}, p.Ingress.Body)
	if err != nil {
		return nil, err
	}
	// Deduplicate (e.g. an if with no else contributes identical
	// continuations) and sort for determinism.
	seen := map[string]bool{}
	var out []Path
	for _, pt := range paths {
		k := pt.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, pt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// extend splits every seed path across the hit/miss and then/else branches
// of block b, returning all resulting paths.
func extend(seed []Path, b *p4.BlockStmt) ([]Path, error) {
	if b == nil {
		return seed, nil
	}
	paths := seed
	for _, s := range b.Stmts {
		var next []Path
		switch v := s.(type) {
		case *p4.ApplyStmt:
			for _, pt := range paths {
				hitPath := append(append(Path(nil), pt...), PathStep{Table: v.Table, Hit: true})
				missPath := append(append(Path(nil), pt...), PathStep{Table: v.Table, Hit: false})
				hitExt, err := extend([]Path{hitPath}, v.Hit)
				if err != nil {
					return nil, err
				}
				missExt, err := extend([]Path{missPath}, v.Miss)
				if err != nil {
					return nil, err
				}
				next = append(next, hitExt...)
				next = append(next, missExt...)
			}
		case *p4.IfStmt:
			for _, pt := range paths {
				thenExt, err := extend([]Path{append(Path(nil), pt...)}, v.Then)
				if err != nil {
					return nil, err
				}
				next = append(next, thenExt...)
				elseExt, err := extend([]Path{append(Path(nil), pt...)}, v.Else)
				if err != nil {
					return nil, err
				}
				next = append(next, elseExt...)
			}
		case *p4.BlockStmt:
			ext, err := extend(paths, v)
			if err != nil {
				return nil, err
			}
			next = ext
		default:
			next = paths
		}
		if len(next) > MaxPaths {
			return nil, fmt.Errorf("ir: control graph exceeds %d paths", MaxPaths)
		}
		paths = next
	}
	return paths, nil
}
