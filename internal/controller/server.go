package controller

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"p2go/internal/sim"
)

// Wire protocol for remote packet-in handling: the data plane sends
//
//	uint16 ingress port | uint32 frame length | frame bytes
//
// and the controller answers
//
//	uint8 verdict (0 pass, 1 drop, 2 notify) | uint16 forward port
//
// per packet, in order, over a TCP connection. The protocol is
// deliberately minimal — one request, one response, no pipelining
// required — but responses preserve request order even when the client
// pipelines.

// Verdict codes on the wire.
const (
	WireVerdictPass   = 0
	WireVerdictDrop   = 1
	WireVerdictNotify = 2
)

// maxFrameLen bounds accepted frames; anything larger is a protocol error.
const maxFrameLen = 1 << 16

// Server serves packet-in requests over TCP, backed by a Controller.
type Server struct {
	ctl *Controller

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a controller.
func NewServer(ctl *Controller) *Server {
	return &Server{ctl: ctl, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on l until Close is called. It blocks; run it
// in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("controller: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("controller: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

// Close stops the server and waits for connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// handleConn processes packet-in requests sequentially per connection.
func (s *Server) handleConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		port, frame, err := readPacketIn(r)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		out, err := s.ctl.Handle(sim.Input{Port: uint64(port), Data: frame})
		if err != nil {
			return
		}
		verdict := byte(WireVerdictPass)
		fwd := uint16(out.Port)
		switch {
		case out.Dropped:
			verdict = WireVerdictDrop
			fwd = 0
		case out.ToCPU:
			verdict = WireVerdictNotify
			fwd = 0
		}
		resp := []byte{verdict, byte(fwd >> 8), byte(fwd)}
		if _, err := w.Write(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func readPacketIn(r io.Reader) (uint16, []byte, error) {
	hdr := make([]byte, 6)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	port := binary.BigEndian.Uint16(hdr[0:2])
	n := binary.BigEndian.Uint32(hdr[2:6])
	if n > maxFrameLen {
		return 0, nil, fmt.Errorf("controller: frame length %d exceeds %d", n, maxFrameLen)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return 0, nil, err
	}
	return port, frame, nil
}

// Client sends packet-in requests to a remote controller.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a controller server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("controller: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// RemoteVerdict is a controller response.
type RemoteVerdict struct {
	Code        byte // WireVerdictPass/Drop/Notify
	ForwardPort uint16
}

// Submit sends one packet and waits for the verdict.
func (c *Client) Submit(port uint16, frame []byte) (RemoteVerdict, error) {
	if len(frame) > maxFrameLen {
		return RemoteVerdict{}, fmt.Errorf("controller: frame too large (%d bytes)", len(frame))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	hdr := make([]byte, 6)
	binary.BigEndian.PutUint16(hdr[0:2], port)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(frame)))
	if _, err := c.w.Write(hdr); err != nil {
		return RemoteVerdict{}, err
	}
	if _, err := c.w.Write(frame); err != nil {
		return RemoteVerdict{}, err
	}
	if err := c.w.Flush(); err != nil {
		return RemoteVerdict{}, err
	}
	resp := make([]byte, 3)
	if _, err := io.ReadFull(c.r, resp); err != nil {
		return RemoteVerdict{}, err
	}
	return RemoteVerdict{Code: resp[0], ForwardPort: binary.BigEndian.Uint16(resp[1:3])}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
