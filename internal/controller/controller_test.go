package controller

import (
	"testing"

	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// TestEx1DeploymentEquivalence: after the full P2GO pipeline, the optimized
// data plane plus the controller behaves exactly like the original firewall
// on the profiling trace — the paper's central "same behavior on the trace"
// claim, verified end to end.
func TestEx1DeploymentEquivalence(t *testing.T) {
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := programs.Ex1Config()
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControllerProgram == nil {
		t.Fatal("no controller program produced")
	}
	report, err := VerifyEquivalence(res.Original, cfg, res.Optimized, res.OptimizedConfig,
		res.ControllerProgram, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Equivalent() {
		t.Fatalf("behavior diverged: %s", report)
	}
	// Exactly the DNS share is redirected.
	if report.Redirected != res.Profile.Hits["Sketch_1"] {
		t.Errorf("redirected = %d, want %d", report.Redirected, res.Profile.Hits["Sketch_1"])
	}
}

// TestFailureDeploymentEquivalence: same end-to-end check for the
// failure-detection example, where the offloaded segment's guard depends on
// data-plane Bloom filter state.
func TestFailureDeploymentEquivalence(t *testing.T) {
	trace := trafficgen.FailureTrace(trafficgen.FailureSpec{Seed: 1})
	cfg := programs.FailureConfig()
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.FailureDetection), cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControllerProgram == nil {
		t.Fatal("no controller program produced")
	}
	report, err := VerifyEquivalence(res.Original, cfg, res.Optimized, res.OptimizedConfig,
		res.ControllerProgram, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Equivalent() {
		t.Fatalf("behavior diverged: %s", report)
	}
	if report.Redirected == 0 {
		t.Error("expected redirected retransmissions")
	}
}

// TestControllerProgramShape: the Ex. 1 controller program is exactly the
// DNS branch.
func TestControllerProgramShape(t *testing.T) {
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	ctl := res.ControllerProgram
	for _, want := range []string{"Sketch_1", "Sketch_2", "Sketch_Min", "DNS_Drop"} {
		if ctl.Table(want) == nil {
			t.Errorf("controller program missing table %s", want)
		}
	}
	for _, gone := range []string{"IPv4", "ACL_UDP", "ACL_DHCP"} {
		if ctl.Table(gone) != nil {
			t.Errorf("controller program should not contain %s", gone)
		}
	}
	if ctl.Register("cms_r1") == nil || ctl.Register("cms_r2") == nil {
		t.Error("controller program missing the sketch registers")
	}
	// It is valid, printable P4.
	src := p4.Print(ctl)
	if _, err := p4.Parse(src); err != nil {
		t.Fatalf("controller program does not reparse: %v", err)
	}
}

// TestControllerStats: the deployment counts drops, notifications, passes.
func TestControllerStats(t *testing.T) {
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := programs.Ex1Config()
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(res.Optimized, res.OptimizedConfig, res.ControllerProgram, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range trace.Packets {
		if _, err := dep.Process(simInput(pkt)); err != nil {
			t.Fatal(err)
		}
	}
	stats := dep.Controller().Stats()
	if stats.Handled != res.Profile.Hits["Sketch_1"] {
		t.Errorf("handled = %d, want the DNS share %d", stats.Handled, res.Profile.Hits["Sketch_1"])
	}
	if stats.Dropped != res.Profile.Hits["DNS_Drop"] {
		t.Errorf("controller drops = %d, want %d", stats.Dropped, res.Profile.Hits["DNS_Drop"])
	}
	if stats.Passed != stats.Handled-stats.Dropped {
		t.Errorf("passed = %d, want %d", stats.Passed, stats.Handled-stats.Dropped)
	}
	// Reset clears everything.
	dep.Reset()
	if dep.Controller().Stats().Handled != 0 {
		t.Error("Reset did not clear stats")
	}
}

func simInput(p trafficgen.Packet) (in sim.Input) {
	return sim.Input{Port: p.Port, Data: p.Data}
}
