package controller

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"p2go/internal/faults"
	"p2go/internal/ir"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// DegradationPolicy decides a redirected packet's fate when no controller
// replica accepts the delivery.
type DegradationPolicy int

const (
	// FailOpen forwards the packet on the data plane's pre-redirect
	// forwarding decision (availability over the segment's verdict).
	FailOpen DegradationPolicy = iota
	// FailClosed drops the packet (the segment's verdict is
	// safety-relevant; never forward unchecked).
	FailClosed
	// FallbackOriginal runs the packet through a local copy of the
	// original program and uses its verdict (slowest, most faithful).
	FallbackOriginal
)

func (p DegradationPolicy) String() string {
	switch p {
	case FailOpen:
		return "fail-open"
	case FailClosed:
		return "fail-closed"
	case FallbackOriginal:
		return "fallback"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy reads a policy name ("fail-open", "fail-closed",
// "fallback") — the CLI surface for -degrade flags.
func ParsePolicy(s string) (DegradationPolicy, error) {
	switch s {
	case "fail-open", "":
		return FailOpen, nil
	case "fail-closed":
		return FailClosed, nil
	case "fallback":
		return FallbackOriginal, nil
	}
	return 0, fmt.Errorf("controller: unknown degradation policy %q (want fail-open, fail-closed, or fallback)", s)
}

// RetryConfig shapes redirect-delivery retries.
type RetryConfig struct {
	// MaxAttempts is the total delivery attempts per redirect, replica
	// failovers included (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff; it doubles per retry up to
	// MaxDelay (defaults 1ms and 16ms — the harness replays traces, so
	// delays stay small).
	BaseDelay, MaxDelay time.Duration
	// JitterSeed drives the deterministic jitter added to each backoff
	// (up to half the delay).
	JitterSeed int64
	// Sleep replaces time.Sleep; tests install a recording no-op.
	Sleep func(time.Duration)
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 16 * time.Millisecond
	}
	if r.Sleep == nil {
		r.Sleep = time.Sleep
	}
	return r
}

// DegradationStats counts every failure-handling decision the resilient
// deployment made. Anything that may make a verdict diverge from the
// original program increments one of these — the chaos harness asserts
// there is no divergence these counters do not explain.
type DegradationStats struct {
	// Redirected counts packets the data plane sent to the controller.
	Redirected int
	// Delivered counts redirects some replica accepted and answered.
	Delivered int
	// Retries counts delivery re-attempts (loss or replica down).
	Retries int
	// Failovers counts deliveries served by a non-primary replica.
	Failovers int
	// Delayed counts deliveries that paid an injected link delay.
	Delayed int
	// MirrorMisses counts state-sync mirrors a replica missed; that
	// replica's segment state is stale from then on.
	MirrorMisses int
	// StaleServed counts verdicts served by a stale replica (marked
	// degraded: their segment state may have diverged).
	StaleServed int
	// ReplicaTrips counts healthy -> unhealthy transitions.
	ReplicaTrips int
	// Lost counts redirects no replica accepted; the degradation policy
	// decided their fate.
	Lost int
	// DegradedPass/Drop/Fallback split Lost by the applied policy.
	DegradedPass, DegradedDrop, DegradedFallback int
}

// Degraded is the total number of packets whose verdict was produced by a
// failure-handling path.
func (s DegradationStats) Degraded() int {
	return s.StaleServed + s.DegradedPass + s.DegradedDrop + s.DegradedFallback
}

// ReplicaStatus is one replica's health snapshot.
type ReplicaStatus struct {
	Index               int
	Healthy             bool
	Stale               bool
	Handled             int
	ConsecutiveFailures int
}

// ResilientOptions configures a ResilientDeployment.
type ResilientOptions struct {
	// Replicas is the controller replica count (default 2).
	Replicas int
	// Policy applies when no replica accepts a delivery.
	Policy DegradationPolicy
	// Retry shapes delivery retries and backoff.
	Retry RetryConfig
	// HealthFailureThreshold is the consecutive delivery failures that
	// mark a replica unhealthy (default 2). Unhealthy replicas are
	// deprioritized; a success restores them.
	HealthFailureThreshold int
	// DelayPenalty is the latency one injected RedirectDelay costs
	// (default 1ms).
	DelayPenalty time.Duration
	// Faults is the fault plan; nil means no injection.
	Faults *faults.Set
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.HealthFailureThreshold <= 0 {
		o.HealthFailureThreshold = 2
	}
	if o.DelayPenalty <= 0 {
		o.DelayPenalty = time.Millisecond
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// replica is one controller instance plus its health/staleness state.
type replica struct {
	ctl     *Controller
	healthy bool
	stale   bool
	fails   int // consecutive delivery failures
	handled int
}

// ResilientDeployment composes the optimized data plane with a set of
// replicated controllers behind bounded-retry redirect delivery, passive
// health tracking, state-sync mirroring, and a degradation policy. It is
// the fault-tolerant counterpart of Deployment: every way a verdict can
// deviate from the original program is counted in DegradationStats and
// flagged on the Verdict, never silent.
type ResilientDeployment struct {
	mu        sync.Mutex
	dataPlane *sim.Switch
	replicas  []*replica
	fallback  *sim.Switch // original program; only for FallbackOriginal
	opts      ResilientOptions
	jitter    *rand.Rand
	rr        int // round-robin cursor over replicas
	stats     DegradationStats
}

// NewResilientDeployment builds the composed fault-tolerant system.
// original may be nil unless opts.Policy is FallbackOriginal.
func NewResilientDeployment(optimized *p4.Program, optimizedCfg *rt.Config,
	segment *p4.Program, fullCfg *rt.Config,
	original *p4.Program, opts ResilientOptions) (*ResilientDeployment, error) {

	opts = opts.withDefaults()
	ast := p4.Clone(optimized)
	if err := p4.Check(ast); err != nil {
		return nil, fmt.Errorf("controller: optimized program: %w", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		return nil, err
	}
	dp, err := sim.New(prog, optimizedCfg, sim.Options{})
	if err != nil {
		return nil, err
	}
	d := &ResilientDeployment{
		dataPlane: dp,
		opts:      opts,
		jitter:    rand.New(rand.NewSource(opts.Retry.JitterSeed)),
	}
	for i := 0; i < opts.Replicas; i++ {
		ctl, err := New(segment, fullCfg)
		if err != nil {
			return nil, fmt.Errorf("controller: replica %d: %w", i, err)
		}
		d.replicas = append(d.replicas, &replica{ctl: ctl, healthy: true})
	}
	if opts.Policy == FallbackOriginal {
		if original == nil {
			return nil, fmt.Errorf("controller: fallback policy requires the original program")
		}
		origAST := p4.Clone(original)
		if err := p4.Check(origAST); err != nil {
			return nil, fmt.Errorf("controller: original program: %w", err)
		}
		origIR, err := ir.Build(origAST)
		if err != nil {
			return nil, err
		}
		d.fallback, err = sim.New(origIR, fullCfg, sim.Options{})
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Process runs a packet through the data plane and, when redirected,
// through the replicated controller path.
func (d *ResilientDeployment) Process(in sim.Input) (Verdict, error) {
	return d.ProcessContext(context.Background(), in)
}

// ProcessContext is Process under a tracer-carrying context: each
// redirect is recorded as a "controller.redirect" span carrying the
// delivery's retry/failover counts, and a delivery exhaustion adds a
// "controller.degrade" child span with the applied policy. Packets the
// data plane handles alone stay span-free.
func (d *ResilientDeployment) ProcessContext(ctx context.Context, in sim.Input) (Verdict, error) {
	out, err := d.dataPlane.Process(in)
	if err != nil {
		return Verdict{}, err
	}
	if !out.ToCPU {
		return Verdict{Dropped: out.Dropped, Port: out.Port}, nil
	}
	ctx, sp := obs.Start(ctx, "controller.redirect")
	defer sp.End()

	d.mu.Lock()
	defer d.mu.Unlock()
	pre := d.stats
	d.stats.Redirected++

	ctlOut, serving, ok := d.deliverLocked(in)
	sp.SetAttr(
		obs.Int("retries", d.stats.Retries-pre.Retries),
		obs.Int("failovers", d.stats.Failovers-pre.Failovers),
		obs.Bool("delivered", ok))
	if !ok {
		_, dsp := obs.Start(ctx, "controller.degrade",
			obs.String("policy", d.opts.Policy.String()))
		v, err := d.degradeLocked(in, out)
		if err != nil {
			dsp.SetAttr(obs.String("error", err.Error()))
		}
		dsp.End()
		sp.SetAttr(obs.Bool("degraded", true))
		return v, err
	}
	d.stats.Delivered++
	d.mirrorLocked(in, serving)

	v := Verdict{ViaController: true}
	if serving.stale {
		d.stats.StaleServed++
		v.Degraded = true
		sp.SetAttr(obs.Bool("stale_served", true))
	}
	switch {
	case ctlOut.Dropped:
		v.Dropped = true
		v.Port = sim.DropPort
	case ctlOut.ToCPU:
		v.Notified = true
		v.Port = sim.CPUPort
	default:
		v.Port = out.ForwardPort
		v.Dropped = out.ForwardPort == sim.DropPort
	}
	return v, nil
}

// deliverLocked attempts redirect delivery with bounded retry,
// exponential backoff with deterministic jitter, and replica failover.
func (d *ResilientDeployment) deliverLocked(in sim.Input) (sim.Output, *replica, bool) {
	delay := d.opts.Retry.BaseDelay
	first := -1
	for attempt := 0; attempt < d.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			d.stats.Retries++
			d.opts.Retry.Sleep(delay + time.Duration(d.jitter.Int63n(int64(delay)/2+1)))
			if delay *= 2; delay > d.opts.Retry.MaxDelay {
				delay = d.opts.Retry.MaxDelay
			}
		}
		if d.opts.Faults.Fire(faults.RedirectDelay) {
			d.stats.Delayed++
			d.opts.Retry.Sleep(d.opts.DelayPenalty)
		}
		if d.opts.Faults.Fire(faults.RedirectLoss) {
			continue // lost on the link; no replica saw it
		}
		idx := d.pickLocked()
		if first < 0 {
			first = idx
		}
		r := d.replicas[idx]
		if d.opts.Faults.Fire(faults.ControllerDown) {
			d.failLocked(r)
			continue
		}
		ctlOut, err := r.ctl.Handle(in)
		if err != nil {
			d.failLocked(r)
			continue
		}
		r.fails = 0
		r.healthy = true
		r.handled++
		if idx != first {
			d.stats.Failovers++
		}
		return ctlOut, r, true
	}
	return sim.Output{}, nil, false
}

// pickLocked chooses the next replica: round-robin over healthy ones,
// falling back to round-robin over all (so a fully-down set still gets
// half-open probes and can recover).
func (d *ResilientDeployment) pickLocked() int {
	n := len(d.replicas)
	for i := 0; i < n; i++ {
		idx := (d.rr + i) % n
		if d.replicas[idx].healthy {
			d.rr = (idx + 1) % n
			return idx
		}
	}
	idx := d.rr % n
	d.rr = (idx + 1) % n
	return idx
}

func (d *ResilientDeployment) failLocked(r *replica) {
	r.fails++
	if r.healthy && r.fails >= d.opts.HealthFailureThreshold {
		r.healthy = false
		d.stats.ReplicaTrips++
	}
}

// mirrorLocked syncs the delivered packet to every other replica so
// their segment state (sketches, filters, registers) tracks the serving
// replica's. A replica that misses a mirror is stale: its future
// verdicts are flagged degraded.
func (d *ResilientDeployment) mirrorLocked(in sim.Input, serving *replica) {
	for _, r := range d.replicas {
		if r == serving {
			continue
		}
		if d.opts.Faults.Fire(faults.ControllerDown) {
			d.failLocked(r)
			d.markStaleLocked(r)
			continue
		}
		if _, err := r.ctl.Handle(in); err != nil {
			d.failLocked(r)
			d.markStaleLocked(r)
			continue
		}
		r.fails = 0
		r.healthy = true
	}
}

func (d *ResilientDeployment) markStaleLocked(r *replica) {
	if !r.stale {
		r.stale = true
	}
	d.stats.MirrorMisses++
}

// degradeLocked applies the degradation policy after delivery
// exhaustion. The packet never reached the segment, so every replica's
// state is now behind the original program's — all become stale.
func (d *ResilientDeployment) degradeLocked(in sim.Input, out sim.Output) (Verdict, error) {
	d.stats.Lost++
	for _, r := range d.replicas {
		r.stale = true
	}
	v := Verdict{ViaController: true, Degraded: true}
	switch d.opts.Policy {
	case FailClosed:
		d.stats.DegradedDrop++
		v.Dropped = true
		v.Port = sim.DropPort
	case FallbackOriginal:
		d.stats.DegradedFallback++
		fout, err := d.fallback.Process(in)
		if err != nil {
			return Verdict{}, fmt.Errorf("controller: fallback: %w", err)
		}
		switch {
		case fout.Dropped:
			v.Dropped = true
			v.Port = sim.DropPort
		case fout.ToCPU:
			v.Notified = true
			v.Port = sim.CPUPort
		default:
			v.Port = fout.Port
		}
	default: // FailOpen
		d.stats.DegradedPass++
		v.Port = out.ForwardPort
		v.Dropped = out.ForwardPort == sim.DropPort
	}
	return v, nil
}

// Stats returns a snapshot of the degradation counters.
func (d *ResilientDeployment) Stats() DegradationStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Health snapshots every replica's status.
func (d *ResilientDeployment) Health() []ReplicaStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ReplicaStatus, len(d.replicas))
	for i, r := range d.replicas {
		out[i] = ReplicaStatus{Index: i, Healthy: r.healthy, Stale: r.stale,
			Handled: r.handled, ConsecutiveFailures: r.fails}
	}
	return out
}

// Reset clears data-plane, replica, and degradation state.
func (d *ResilientDeployment) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dataPlane.Reset()
	for _, r := range d.replicas {
		r.ctl.Reset()
		r.healthy, r.stale, r.fails, r.handled = true, false, 0, 0
	}
	if d.fallback != nil {
		d.fallback.Reset()
	}
	d.stats = DegradationStats{}
	d.rr = 0
}

// ChaosReport is the chaos-equivalence verdict: every packet either
// matched the original program exactly or carried an explicit degradation
// flag. Silent is the count of unexplained divergences — the invariant
// the chaos suite enforces is Silent == 0 under every fault plan.
type ChaosReport struct {
	Packets    int
	Redirected int
	// Degraded counts divergent verdicts that were explicitly flagged.
	Degraded int
	// Silent counts divergent verdicts with no degradation flag.
	Silent int
	// First describes the first silent divergence, for debugging.
	First string
	// Stats are the deployment's degradation counters after the replay.
	Stats DegradationStats
	// Faults maps fault points to how often each fired.
	Faults map[string]int
}

// Clean is true when every divergence was explicitly accounted for.
func (r *ChaosReport) Clean() bool { return r.Silent == 0 }

func (r *ChaosReport) String() string {
	return fmt.Sprintf("%d packets (%d redirected): %d degraded, %d silent divergences",
		r.Packets, r.Redirected, r.Degraded, r.Silent)
}

// VerifyChaosEquivalence replays the trace through the original program
// and through the resilient deployment under opts (including its fault
// plan), comparing every packet's fate. Divergences are legal only when
// flagged degraded; anything else is a silent divergence.
func VerifyChaosEquivalence(original *p4.Program, originalCfg *rt.Config,
	optimized *p4.Program, optimizedCfg *rt.Config,
	segment *p4.Program, trace *trafficgen.Trace,
	opts ResilientOptions) (*ChaosReport, error) {
	return VerifyChaosEquivalenceContext(context.Background(), original, originalCfg,
		optimized, optimizedCfg, segment, trace, opts)
}

// VerifyChaosEquivalenceContext is VerifyChaosEquivalence under a
// tracer-carrying context: the comparison runs inside a
// "controller.verify-chaos" span, the replay goes through sim.Replay, and
// every redirect, retry, and degradation decision appears as child spans.
func VerifyChaosEquivalenceContext(ctx context.Context,
	original *p4.Program, originalCfg *rt.Config,
	optimized *p4.Program, optimizedCfg *rt.Config,
	segment *p4.Program, trace *trafficgen.Trace,
	opts ResilientOptions) (*ChaosReport, error) {

	ctx, sp := obs.Start(ctx, "controller.verify-chaos", obs.Int("packets", len(trace.Packets)))
	defer sp.End()

	origAST := p4.Clone(original)
	if err := p4.Check(origAST); err != nil {
		return nil, err
	}
	origIR, err := ir.Build(origAST)
	if err != nil {
		return nil, err
	}
	origSwitch, err := sim.New(origIR, originalCfg, sim.Options{})
	if err != nil {
		return nil, err
	}
	dep, err := NewResilientDeployment(optimized, optimizedCfg, segment, originalCfg, original, opts)
	if err != nil {
		return nil, err
	}

	report := &ChaosReport{}
	err = sim.Replay(ctx, len(trace.Packets), func(i int) error {
		pkt := trace.Packets[i]
		in := sim.Input{Port: pkt.Port, Data: pkt.Data}
		origOut, err := origSwitch.Process(in)
		if err != nil {
			return fmt.Errorf("controller: original, packet %d: %w", i, err)
		}
		verdict, err := dep.ProcessContext(ctx, in)
		if err != nil {
			return fmt.Errorf("controller: resilient deployment, packet %d: %w", i, err)
		}
		report.Packets++
		if verdict.ViaController {
			report.Redirected++
		}
		equal := origOut.Dropped == verdict.Dropped
		if equal && !origOut.Dropped {
			if origOut.ToCPU {
				equal = verdict.Notified
			} else {
				equal = origOut.Port == verdict.Port && !verdict.Notified
			}
		}
		if !equal {
			if verdict.Degraded {
				report.Degraded++
			} else {
				report.Silent++
				if report.First == "" {
					report.First = fmt.Sprintf(
						"packet %d: original(drop=%v port=%d cpu=%v) vs resilient(drop=%v port=%d via_ctl=%v notified=%v degraded=%v)",
						i, origOut.Dropped, origOut.Port, origOut.ToCPU,
						verdict.Dropped, verdict.Port, verdict.ViaController, verdict.Notified, verdict.Degraded)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	report.Stats = dep.Stats()
	report.Faults = opts.Faults.Counts()
	sp.SetAttr(obs.Int("redirected", report.Redirected),
		obs.Int("degraded", report.Degraded), obs.Int("silent", report.Silent))
	return report, nil
}
