package controller

import (
	"net"
	"sync"
	"testing"

	"p2go/internal/core"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func ex1Controller(t *testing.T) (*Controller, *core.Result, *trafficgen.Trace) {
	t.Helper()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := programs.Ex1Config()
	res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(res.ControllerProgram, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, res, trace
}

func dnsQuery(src, dst uint32, id uint16) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS},
		&packet.DNS{ID: id, QDCount: 1},
	)
}

// TestServerOverTCP drives the packet-in protocol over a real TCP loopback
// connection: the DNS limiter's verdicts arrive over the wire.
func TestServerOverTCP(t *testing.T) {
	ctl, _, _ := ex1Controller(t)
	srv := NewServer(ctl)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	client, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	src := packet.IP(10, 9, 1, 1)
	dst := packet.IP(10, 0, 0, 53)
	var firstDrop int
	for i := 1; i <= programs.Ex1DNSThreshold+4; i++ {
		v, err := client.Submit(1, dnsQuery(src, dst, uint16(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if v.Code == WireVerdictDrop && firstDrop == 0 {
			firstDrop = i
		}
	}
	if firstDrop != programs.Ex1DNSThreshold {
		t.Errorf("first remote drop at query %d, want %d", firstDrop, programs.Ex1DNSThreshold)
	}
	stats := ctl.Stats()
	if stats.Handled != programs.Ex1DNSThreshold+4 {
		t.Errorf("handled = %d, want %d", stats.Handled, programs.Ex1DNSThreshold+4)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestServerConcurrentClients: multiple connections share the controller's
// state safely.
func TestServerConcurrentClients(t *testing.T) {
	ctl, _, _ := ex1Controller(t)
	srv := NewServer(ctl)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	const clients = 4
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			src := packet.IP(10, 9, 2, byte(c+1)) // distinct flow per client
			for i := 0; i < perClient; i++ {
				if _, err := client.Submit(1, dnsQuery(src, packet.IP(10, 0, 0, 53), uint16(i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := ctl.Stats().Handled; got != clients*perClient {
		t.Errorf("handled = %d, want %d", got, clients*perClient)
	}
}

// TestServerRejectsOversizedFrame: a protocol violation drops the
// connection without crashing the server.
func TestServerRejectsOversizedFrame(t *testing.T) {
	ctl, _, _ := ex1Controller(t)
	srv := NewServer(ctl)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// port=1, length = 2^31: the server must hang up.
	if _, err := conn.Write([]byte{0, 1, 0x80, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close after oversized frame")
	}
	// The client-side API also refuses oversized frames.
	client := NewClient(conn)
	if _, err := client.Submit(1, make([]byte, maxFrameLen+1)); err == nil {
		t.Error("client should refuse oversized frames")
	}
}

// TestClientOverNetPipe exercises the protocol without real sockets.
func TestClientOverNetPipe(t *testing.T) {
	ctl, _, _ := ex1Controller(t)
	srv := NewServer(ctl)
	serverConn, clientConn := net.Pipe()
	go srv.handleConn(serverConn)
	client := NewClient(clientConn)
	defer client.Close()
	v, err := client.Submit(1, dnsQuery(packet.IP(10, 9, 3, 3), packet.IP(10, 0, 0, 53), 1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != WireVerdictPass {
		t.Errorf("verdict = %d, want pass", v.Code)
	}
}
