// Package controller implements the software side of Phase 4: a controller
// that processes the packets an optimized data plane redirects to the CPU
// port. It executes the offloaded segment (core.Result.ControllerProgram)
// in the behavioral simulator: reception implies the segment's external
// guards held, the segment is self-contained, and the data plane's
// forwarding decision survives the redirect (sim.Output.ForwardPort), so
// the composed system reproduces the original program's behavior exactly.
//
// The package also provides the end-to-end equivalence harness the
// experiments use: original program vs. optimized program + controller,
// verdict-for-verdict over a trace.
package controller

import (
	"context"
	"fmt"
	"sync"

	"p2go/internal/ir"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// Stats counts controller activity.
type Stats struct {
	Handled  int // packets received from the data plane
	Dropped  int // segment verdict: drop
	Notified int // segment verdict: notification (e.g. a failure alarm)
	Passed   int // segment verdict: pass (data plane forwards)
}

// Controller executes the offloaded segment on redirected packets.
type Controller struct {
	mu    sync.Mutex
	sw    *sim.Switch
	stats Stats
}

// New builds a controller from the offloaded-segment program (e.g.
// core.Result.ControllerProgram) and the full runtime configuration —
// rules for tables outside the segment are filtered out.
func New(segment *p4.Program, cfg *rt.Config) (*Controller, error) {
	ast := p4.Clone(segment)
	if err := p4.Check(ast); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	filtered := &rt.Config{}
	if cfg != nil {
		for _, rule := range cfg.Rules {
			if ast.Table(rule.Table) != nil {
				filtered.Add(rule)
			}
		}
	}
	sw, err := sim.New(prog, filtered, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return &Controller{sw: sw}, nil
}

// Handle processes one redirected packet through the segment and returns
// the segment's output.
func (c *Controller) Handle(in sim.Input) (sim.Output, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, err := c.sw.Process(in)
	if err != nil {
		return sim.Output{}, err
	}
	c.stats.Handled++
	switch {
	case out.Dropped:
		c.stats.Dropped++
	case out.ToCPU:
		c.stats.Notified++
	default:
		c.stats.Passed++
	}
	return out, nil
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset clears the controller's state (registers and counters).
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sw.Reset()
	c.stats = Stats{}
}

// Verdict is the effective fate of a packet after the data plane and,
// when redirected, the controller.
type Verdict struct {
	Dropped       bool
	Port          uint64
	ViaController bool
	// Notified means the segment raised a controller notification (the
	// original program would have sent the packet to the CPU port).
	Notified bool
	// Degraded means the fate was decided (or may have been influenced)
	// by a failure-handling path — a degradation policy after delivery
	// exhaustion, or a replica whose segment state is stale. Degraded
	// verdicts are allowed to diverge from the original program; they
	// are always explicitly counted in DegradationStats.
	Degraded bool
}

// Deployment composes the optimized data plane with a controller, modeling
// the post-offload system.
type Deployment struct {
	dataPlane *sim.Switch
	ctl       *Controller
}

// NewDeployment builds the composed system from a completed optimization:
// the optimized program and its filtered configuration drive the data
// plane; the controller program (the offloaded segment) and the full
// original configuration drive the controller.
func NewDeployment(optimized *p4.Program, optimizedCfg *rt.Config,
	segment *p4.Program, fullCfg *rt.Config) (*Deployment, error) {
	ast := p4.Clone(optimized)
	if err := p4.Check(ast); err != nil {
		return nil, fmt.Errorf("controller: optimized program: %w", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		return nil, err
	}
	dp, err := sim.New(prog, optimizedCfg, sim.Options{})
	if err != nil {
		return nil, err
	}
	ctl, err := New(segment, fullCfg)
	if err != nil {
		return nil, err
	}
	return &Deployment{dataPlane: dp, ctl: ctl}, nil
}

// Controller exposes the deployment's controller (for stats).
func (d *Deployment) Controller() *Controller { return d.ctl }

// Process runs a packet through the data plane and, when redirected,
// through the controller. Packets the controller passes are forwarded to
// the data plane's pre-redirect forwarding decision.
func (d *Deployment) Process(in sim.Input) (Verdict, error) {
	return d.ProcessContext(context.Background(), in)
}

// ProcessContext is Process under a tracer-carrying context: each
// redirect to the controller is recorded as a "controller.redirect" span
// with the segment's verdict. Non-redirected packets stay span-free — the
// fast path is the common path.
func (d *Deployment) ProcessContext(ctx context.Context, in sim.Input) (Verdict, error) {
	out, err := d.dataPlane.Process(in)
	if err != nil {
		return Verdict{}, err
	}
	if !out.ToCPU {
		return Verdict{Dropped: out.Dropped, Port: out.Port}, nil
	}
	_, sp := obs.Start(ctx, "controller.redirect")
	defer sp.End()
	ctlOut, err := d.ctl.Handle(in)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		return Verdict{}, err
	}
	v := Verdict{ViaController: true}
	switch {
	case ctlOut.Dropped:
		v.Dropped = true
		v.Port = sim.DropPort
		sp.SetAttr(obs.String("verdict", "drop"))
	case ctlOut.ToCPU:
		v.Notified = true
		v.Port = sim.CPUPort
		sp.SetAttr(obs.String("verdict", "notify"))
	default:
		v.Port = out.ForwardPort
		v.Dropped = out.ForwardPort == sim.DropPort
		sp.SetAttr(obs.String("verdict", "pass"))
	}
	return v, nil
}

// Reset clears data-plane and controller state.
func (d *Deployment) Reset() {
	d.dataPlane.Reset()
	d.ctl.Reset()
}

// EquivalenceReport summarizes an original-vs-deployment comparison.
type EquivalenceReport struct {
	Packets    int
	Redirected int
	Mismatches int
	// First describes the first mismatch, for debugging.
	First string
}

// Equivalent is true when every packet's fate matched.
func (r *EquivalenceReport) Equivalent() bool { return r.Mismatches == 0 }

func (r *EquivalenceReport) String() string {
	if r.Equivalent() {
		return fmt.Sprintf("equivalent over %d packets (%d via controller)", r.Packets, r.Redirected)
	}
	return fmt.Sprintf("%d/%d mismatches (first: %s)", r.Mismatches, r.Packets, r.First)
}

// VerifyEquivalence replays the trace through the original program and
// through the optimized program + controller, comparing the fate of every
// packet: drops must match, controller notifications must correspond to
// the original's CPU-port redirects, and forwarded packets must leave on
// the same port.
func VerifyEquivalence(original *p4.Program, originalCfg *rt.Config,
	optimized *p4.Program, optimizedCfg *rt.Config,
	segment *p4.Program, trace *trafficgen.Trace) (*EquivalenceReport, error) {
	return VerifyEquivalenceContext(context.Background(), original, originalCfg,
		optimized, optimizedCfg, segment, trace)
}

// VerifyEquivalenceContext is VerifyEquivalence under a tracer-carrying
// context: the whole comparison runs inside a "controller.verify" span,
// the replay loop goes through sim.Replay (so it reports packets/sec),
// and each redirect shows up as a "controller.redirect" child span.
func VerifyEquivalenceContext(ctx context.Context,
	original *p4.Program, originalCfg *rt.Config,
	optimized *p4.Program, optimizedCfg *rt.Config,
	segment *p4.Program, trace *trafficgen.Trace) (*EquivalenceReport, error) {

	ctx, sp := obs.Start(ctx, "controller.verify", obs.Int("packets", len(trace.Packets)))
	defer sp.End()

	origAST := p4.Clone(original)
	if err := p4.Check(origAST); err != nil {
		return nil, err
	}
	origIR, err := ir.Build(origAST)
	if err != nil {
		return nil, err
	}
	origSwitch, err := sim.New(origIR, originalCfg, sim.Options{})
	if err != nil {
		return nil, err
	}
	dep, err := NewDeployment(optimized, optimizedCfg, segment, originalCfg)
	if err != nil {
		return nil, err
	}

	report := &EquivalenceReport{}
	err = sim.Replay(ctx, len(trace.Packets), func(i int) error {
		pkt := trace.Packets[i]
		in := sim.Input{Port: pkt.Port, Data: pkt.Data}
		origOut, err := origSwitch.Process(in)
		if err != nil {
			return fmt.Errorf("controller: original, packet %d: %w", i, err)
		}
		verdict, err := dep.ProcessContext(ctx, in)
		if err != nil {
			return fmt.Errorf("controller: deployment, packet %d: %w", i, err)
		}
		report.Packets++
		if verdict.ViaController {
			report.Redirected++
		}
		equal := origOut.Dropped == verdict.Dropped
		if equal && !origOut.Dropped {
			if origOut.ToCPU {
				equal = verdict.Notified
			} else {
				equal = origOut.Port == verdict.Port && !verdict.Notified
			}
		}
		if !equal {
			report.Mismatches++
			if report.First == "" {
				report.First = fmt.Sprintf(
					"packet %d: original(drop=%v port=%d cpu=%v) vs deployment(drop=%v port=%d via_ctl=%v notified=%v)",
					i, origOut.Dropped, origOut.Port, origOut.ToCPU,
					verdict.Dropped, verdict.Port, verdict.ViaController, verdict.Notified)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sp.SetAttr(obs.Int("redirected", report.Redirected), obs.Int("mismatches", report.Mismatches))
	return report, nil
}
