package controller

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"p2go/internal/core"
	"p2go/internal/faults"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// chaosFixture is the running example optimized once and shared by the
// chaos tests (the optimization itself is covered elsewhere).
type chaosFixture struct {
	res   *core.Result
	cfg   *rt.Config
	trace *trafficgen.Trace
}

var (
	chaosOnce sync.Once
	chaosFix  chaosFixture
)

func ex1Fixture(t *testing.T) chaosFixture {
	t.Helper()
	chaosOnce.Do(func() {
		trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := programs.Ex1Config()
		res, err := core.New(core.Options{}).Optimize(p4.MustParse(programs.Ex1), cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		chaosFix = chaosFixture{res: res, cfg: cfg, trace: trace}
	})
	if chaosFix.res == nil {
		t.Fatal("fixture failed to build")
	}
	if chaosFix.res.ControllerProgram == nil {
		t.Fatal("no controller program produced")
	}
	return chaosFix
}

// noSleep keeps backoff out of the test clock.
func noSleep(time.Duration) {}

func chaosOpts(set *faults.Set, policy DegradationPolicy) ResilientOptions {
	return ResilientOptions{
		Replicas: 2,
		Policy:   policy,
		Retry:    RetryConfig{MaxAttempts: 3, JitterSeed: 1, Sleep: noSleep},
		Faults:   set,
	}
}

func runChaos(t *testing.T, f chaosFixture, opts ResilientOptions) *ChaosReport {
	t.Helper()
	rep, err := VerifyChaosEquivalence(f.res.Original, f.cfg,
		f.res.Optimized, f.res.OptimizedConfig, f.res.ControllerProgram, f.trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChaosNoFaultsExact: with no injectors the resilient deployment is
// verdict-for-verdict identical to the original program — replication and
// mirroring alone change nothing.
func TestChaosNoFaultsExact(t *testing.T) {
	f := ex1Fixture(t)
	rep := runChaos(t, f, chaosOpts(nil, FailOpen))
	if !rep.Clean() || rep.Degraded != 0 {
		t.Fatalf("fault-free run degraded: %s (first: %s)", rep, rep.First)
	}
	if rep.Redirected == 0 || rep.Stats.Delivered != rep.Redirected {
		t.Errorf("redirected=%d delivered=%d, want equal and nonzero",
			rep.Redirected, rep.Stats.Delivered)
	}
	if rep.Stats.Degraded() != 0 || rep.Stats.Retries != 0 {
		t.Errorf("fault-free stats = %+v", rep.Stats)
	}
}

// TestChaosControllerDownWindow: an unavailability window forces retries,
// failovers, and (while both replicas are down) policy degradations —
// every divergence explicitly counted, none silent.
func TestChaosControllerDownWindow(t *testing.T) {
	f := ex1Fixture(t)
	set := faults.MustSet(faults.Spec{Point: faults.ControllerDown, From: 10, To: 60})
	rep := runChaos(t, f, chaosOpts(set, FailOpen))
	if !rep.Clean() {
		t.Fatalf("silent divergence under controller-down window: %s (first: %s)", rep, rep.First)
	}
	if rep.Stats.Lost == 0 || rep.Stats.DegradedPass != rep.Stats.Lost {
		t.Errorf("window should lose deliveries to fail-open: %+v", rep.Stats)
	}
	if rep.Stats.Retries == 0 || rep.Stats.ReplicaTrips == 0 {
		t.Errorf("window should trip replicas and force retries: %+v", rep.Stats)
	}
	if rep.Faults[faults.ControllerDown] == 0 {
		t.Error("injector never fired")
	}
}

// TestChaosRedirectLoss: probabilistic link loss is mostly absorbed by
// bounded retry; exhausted deliveries degrade, and every later verdict
// (replica state now behind the original) is flagged stale — zero silent
// divergences.
func TestChaosRedirectLoss(t *testing.T) {
	f := ex1Fixture(t)
	set := faults.MustSet(faults.Spec{Point: faults.RedirectLoss, Probability: 0.3, Seed: 7})
	rep := runChaos(t, f, chaosOpts(set, FailOpen))
	if !rep.Clean() {
		t.Fatalf("silent divergence under 30%% redirect loss: %s (first: %s)", rep, rep.First)
	}
	if rep.Stats.Retries == 0 {
		t.Errorf("30%% loss should force retries: %+v", rep.Stats)
	}
	if rep.Stats.Delivered+rep.Stats.Lost != rep.Redirected {
		t.Errorf("delivered %d + lost %d != redirected %d",
			rep.Stats.Delivered, rep.Stats.Lost, rep.Redirected)
	}
}

// TestChaosTotalOutageFailClosed: with the controller permanently down,
// fail-closed drops every redirected packet — a counted degradation per
// packet, never a silent one.
func TestChaosTotalOutageFailClosed(t *testing.T) {
	f := ex1Fixture(t)
	set := faults.MustSet(faults.Spec{Point: faults.ControllerDown, Probability: 1, Seed: 1})
	rep := runChaos(t, f, chaosOpts(set, FailClosed))
	if !rep.Clean() {
		t.Fatalf("silent divergence under total outage: %s (first: %s)", rep, rep.First)
	}
	if rep.Stats.DegradedDrop != rep.Redirected || rep.Stats.Delivered != 0 {
		t.Errorf("total outage + fail-closed: %+v (redirected %d)", rep.Stats, rep.Redirected)
	}
}

// TestChaosTotalOutageFallback: the fallback policy runs lost packets
// through a local copy of the original program. For Ex. 1 the offloaded
// segment's state is fed only by redirected packets, so the fallback copy
// tracks the original exactly: zero effective divergence, yet every
// packet still carries the explicit degradation flag.
func TestChaosTotalOutageFallback(t *testing.T) {
	f := ex1Fixture(t)
	set := faults.MustSet(faults.Spec{Point: faults.ControllerDown, Probability: 1, Seed: 1})
	rep := runChaos(t, f, chaosOpts(set, FallbackOriginal))
	if !rep.Clean() {
		t.Fatalf("silent divergence under fallback: %s (first: %s)", rep, rep.First)
	}
	if rep.Stats.DegradedFallback != rep.Redirected {
		t.Errorf("fallback should absorb all %d redirects: %+v", rep.Redirected, rep.Stats)
	}
	if rep.Degraded != 0 {
		t.Errorf("fallback verdicts diverged %d times; the local original copy should match", rep.Degraded)
	}
}

// TestChaosRedirectDelay: injected link delay slows delivery but changes
// no verdicts.
func TestChaosRedirectDelay(t *testing.T) {
	f := ex1Fixture(t)
	set := faults.MustSet(faults.Spec{Point: faults.RedirectDelay, Probability: 0.5, Seed: 3})
	rep := runChaos(t, f, chaosOpts(set, FailOpen))
	if !rep.Clean() || rep.Degraded != 0 {
		t.Fatalf("delay must not change verdicts: %s", rep)
	}
	if rep.Stats.Delayed == 0 {
		t.Error("delay injector never charged a delivery")
	}
}

// TestChaosReplicaRecovery: replicas tripped during a down window are
// healthy again once traffic flows past it.
func TestChaosReplicaRecovery(t *testing.T) {
	f := ex1Fixture(t)
	set := faults.MustSet(faults.Spec{Point: faults.ControllerDown, From: 0, To: 20})
	dep, err := NewResilientDeployment(f.res.Optimized, f.res.OptimizedConfig,
		f.res.ControllerProgram, f.cfg, f.res.Original, chaosOpts(set, FailOpen))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range f.trace.Packets {
		if _, err := dep.Process(simInput(pkt)); err != nil {
			t.Fatal(err)
		}
	}
	if dep.Stats().ReplicaTrips == 0 {
		t.Fatalf("down window should trip replicas: %+v", dep.Stats())
	}
	for _, st := range dep.Health() {
		if !st.Healthy {
			t.Errorf("replica %d still unhealthy after recovery: %+v", st.Index, st)
		}
	}
	// Reset restores a pristine deployment.
	dep.Reset()
	if s := dep.Stats(); s.Redirected != 0 || s.Degraded() != 0 {
		t.Errorf("Reset left stats %+v", s)
	}
	for _, st := range dep.Health() {
		if !st.Healthy || st.Stale || st.Handled != 0 {
			t.Errorf("Reset left replica %+v", st)
		}
	}
}

// TestChaosDeterminism: the same fault plan yields the identical chaos
// report — the injectors are seeded, the backoff jitter is seeded, and
// the replay is single-threaded.
func TestChaosDeterminism(t *testing.T) {
	f := ex1Fixture(t)
	run := func() *ChaosReport {
		set := faults.MustSet(
			faults.Spec{Point: faults.RedirectLoss, Probability: 0.2, Seed: 11},
			faults.Spec{Point: faults.ControllerDown, Probability: 0.1, Seed: 12},
		)
		return runChaos(t, f, chaosOpts(set, FailOpen))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identically-seeded chaos runs diverged:\nA: %+v\nB: %+v", a, b)
	}
	if !a.Clean() {
		t.Fatalf("silent divergence under combined faults: %s (first: %s)", a, a.First)
	}
}

// TestParsePolicy covers the CLI policy names.
func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]DegradationPolicy{
		"": FailOpen, "fail-open": FailOpen, "fail-closed": FailClosed, "fallback": FallbackOriginal,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should fail")
	}
	if FallbackOriginal.String() != "fallback" {
		t.Errorf("String() = %q", FallbackOriginal.String())
	}
}
