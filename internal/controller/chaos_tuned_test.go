package controller

import (
	"testing"

	"p2go/internal/core"
	"p2go/internal/faults"
	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// TestChaosTunedWorkloads puts the parameterized workloads through the
// chaos harness at their tuned bindings: the program is optimized with the
// knobs pinned (so original and optimized agree on the instantiation and
// equivalence is exact), then verified under seeded fault injection. Every
// divergence must be an explicitly counted degradation — tuning a knob
// must not open silent-divergence holes in the resilient deployment.
func TestChaosTunedWorkloads(t *testing.T) {
	cases := []struct {
		name     string
		source   string
		cfg      func() *rt.Config
		trace    *trafficgen.Trace
		bindings map[string]int
	}{
		{
			// failure offloads FailureAlarm after tuning, so the fault
			// window hits live redirects.
			name:     "failure",
			source:   programs.FailureDetection,
			cfg:      programs.FailureConfig,
			trace:    trafficgen.FailureTrace(trafficgen.FailureSpec{Seed: 1}),
			bindings: map[string]int{"bf_cells": 120000, "cms_cells": 8000},
		},
		{
			name:     "maglev",
			source:   programs.Maglev,
			cfg:      programs.MaglevConfig,
			trace:    trafficgen.MaglevTrace(trafficgen.MaglevSpec{Seed: 1}),
			bindings: map[string]int{"conn_cells": 32768},
		},
		{
			name:     "syncookie",
			source:   programs.SynCookie,
			cfg:      programs.SynCookieConfig,
			trace:    trafficgen.SynCookieTrace(trafficgen.SynCookieSpec{Seed: 1}),
			bindings: map[string]int{"sc_bf_cells": 32768},
		},
	}
	set := faults.MustSet(
		faults.Spec{Point: faults.ControllerDown, From: 10, To: 60},
		faults.Spec{Point: faults.RedirectLoss, Probability: 0.2, Seed: 7},
	)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg()
			res, err := core.New(core.Options{Bindings: tc.bindings}).
				Optimize(p4.MustParse(tc.source), cfg, tc.trace)
			if err != nil {
				t.Fatal(err)
			}
			segment := res.ControllerProgram
			if segment == nil {
				segment = p4.MustParse("control ingress { }")
			}
			rep, err := VerifyChaosEquivalence(res.Original, cfg,
				res.Optimized, res.OptimizedConfig, segment, tc.trace,
				chaosOpts(set, FailOpen))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("%s at %v: %d silent divergence(s) (first: %s)",
					tc.name, tc.bindings, rep.Silent, rep.First)
			}
			if res.ControllerProgram != nil && rep.Redirected == 0 {
				t.Errorf("%s offloaded %v but redirected nothing", tc.name, res.OffloadedTables)
			}
		})
	}
}
