package tofino

import (
	"fmt"
	"sort"
	"strings"

	"p2go/internal/deps"
	"p2go/internal/ir"
	"p2go/internal/p4"
)

// Result bundles the compiler outputs P2GO consumes: "(i) the actual
// mapping of the program to the physical stages; (ii) the dependency
// graph; and (iii) the control graph, containing all possible execution
// paths packets may take through the program".
type Result struct {
	AST     *p4.Program
	IR      *ir.Program
	Deps    *deps.Graph
	Mapping *Mapping
	Paths   []ir.Path
}

// Compile checks, lowers, analyzes, and stage-allocates a program against
// the target. Compilation succeeds even when the program does not fit the
// physical stage count (Mapping.Fits == false) so that P2GO can profile
// oversized programs in simulation.
func Compile(ast *p4.Program, tgt Target) (*Result, error) {
	if err := p4.Check(ast); err != nil {
		return nil, fmt.Errorf("tofino: %w", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		return nil, fmt.Errorf("tofino: %w", err)
	}
	g := deps.Build(prog)
	mapping, err := Allocate(prog, g, tgt)
	if err != nil {
		return nil, err
	}
	paths, err := prog.EnumeratePaths()
	if err != nil {
		return nil, fmt.Errorf("tofino: %w", err)
	}
	return &Result{AST: ast, IR: prog, Deps: g, Mapping: mapping, Paths: paths}, nil
}

// CompileSource parses src and compiles it.
func CompileSource(src string, tgt Target) (*Result, error) {
	ast, err := p4.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("tofino: %w", err)
	}
	return Compile(ast, tgt)
}

// Render prints the mapping in the style of the paper's Table 2: one column
// per stage, listing the tables whose memory lives there.
func (m *Mapping) Render() string {
	var b strings.Builder
	fits := "fits"
	if !m.Fits {
		fits = fmt.Sprintf("DOES NOT FIT (%d physical stages)", m.Target.Stages)
	}
	fmt.Fprintf(&b, "stages used: %d (%s)\n", m.StagesUsed, fits)
	for s := 1; s <= m.StagesUsed; s++ {
		tables := m.TablesInStage(s)
		fmt.Fprintf(&b, "  stage %2d: %s\n", s, strings.Join(tables, ", "))
	}
	if m.EgressStagesUsed > 0 {
		fmt.Fprintf(&b, "egress stages used: %d\n", m.EgressStagesUsed)
		for s := 1; s <= m.EgressStagesUsed; s++ {
			tables := m.TablesInStageOf(p4.EgressControl, s)
			fmt.Fprintf(&b, "  egress stage %2d: %s\n", s, strings.Join(tables, ", "))
		}
	}
	return b.String()
}

// Summary returns a compact one-line mapping like
// "[IPv4][IPv4][ACL_UDP ACL_DHCP][Sketch_1]..." for logs and tests.
func (m *Mapping) Summary() string {
	var parts []string
	for s := 1; s <= m.StagesUsed; s++ {
		parts = append(parts, "["+strings.Join(m.TablesInStage(s), " ")+"]")
	}
	return strings.Join(parts, "")
}

// StageOccupancy reports per-stage memory utilization, for the memory
// experiments and observability.
type StageOccupancy struct {
	Stage    int
	SRAMUsed int
	TCAMUsed int
	Tables   []string
}

// Occupancy computes per-stage utilization from the placements.
func (m *Mapping) Occupancy() []StageOccupancy {
	occ := map[int]*StageOccupancy{}
	for _, p := range m.Placements {
		for s, n := range p.SRAMByStage {
			o := occ[s]
			if o == nil {
				o = &StageOccupancy{Stage: s}
				occ[s] = o
			}
			o.SRAMUsed += n
		}
		for s, n := range p.TCAMByStage {
			o := occ[s]
			if o == nil {
				o = &StageOccupancy{Stage: s}
				occ[s] = o
			}
			o.TCAMUsed += n
		}
		for s := p.First; s <= p.Last; s++ {
			o := occ[s]
			if o == nil {
				o = &StageOccupancy{Stage: s}
				occ[s] = o
			}
			o.Tables = append(o.Tables, p.Table)
		}
	}
	var out []StageOccupancy
	for _, o := range occ {
		sort.Strings(o.Tables)
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
