package tofino

import (
	"strings"
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/programs"
)

func compileEx1(t *testing.T) *Result {
	t.Helper()
	res, err := CompileSource(programs.Ex1, DefaultTarget())
	if err != nil {
		t.Fatalf("compile ex1: %v", err)
	}
	return res
}

// TestEx1InitialMapping pins the paper's Table 2 "Initial Program" row:
// 8 stages, IPv4 spanning stages 1-2, one table per remaining stage.
func TestEx1InitialMapping(t *testing.T) {
	res := compileEx1(t)
	m := res.Mapping
	if m.StagesUsed != 8 {
		t.Fatalf("stages used = %d, want 8\n%s", m.StagesUsed, m.Render())
	}
	if !m.Fits {
		t.Fatal("ex1 should fit the 12-stage target")
	}
	want := map[string][2]int{
		"IPv4":       {1, 2},
		"ACL_UDP":    {3, 3},
		"ACL_DHCP":   {4, 4},
		"Sketch_1":   {5, 5},
		"Sketch_2":   {6, 6},
		"Sketch_Min": {7, 7},
		"DNS_Drop":   {8, 8},
	}
	for table, stages := range want {
		p := m.Placement(table)
		if p == nil {
			t.Fatalf("no placement for %s", table)
		}
		if p.First != stages[0] || p.Last != stages[1] {
			t.Errorf("%s at stages %d-%d, want %d-%d\n%s",
				table, p.First, p.Last, stages[0], stages[1], m.Render())
		}
	}
}

func TestEx1TableCosts(t *testing.T) {
	res := compileEx1(t)
	ipv4 := TableCost(res.IR, res.IR.Tables["IPv4"])
	if ipv4.TCAMBytes != programs.Ex1IPv4Size*8 {
		t.Errorf("IPv4 TCAM = %d, want %d", ipv4.TCAMBytes, programs.Ex1IPv4Size*8)
	}
	if ipv4.RegisterBytes != 0 {
		t.Errorf("IPv4 register bytes = %d, want 0", ipv4.RegisterBytes)
	}
	s1 := TableCost(res.IR, res.IR.Tables["Sketch_1"])
	wantReg := programs.Ex1SketchCells * 4
	if s1.RegisterBytes != wantReg {
		t.Errorf("Sketch_1 register bytes = %d, want %d", s1.RegisterBytes, wantReg)
	}
	if s1.SRAMBytes != wantReg+minTableBytes {
		t.Errorf("Sketch_1 SRAM = %d, want %d", s1.SRAMBytes, wantReg+minTableBytes)
	}
	acl := TableCost(res.IR, res.IR.Tables["ACL_UDP"])
	if acl.SRAMBytes != programs.Ex1ACLSize*6 {
		t.Errorf("ACL_UDP SRAM = %d, want %d", acl.SRAMBytes, programs.Ex1ACLSize*6)
	}
}

// TestEx1ReducedIPv4 verifies the Phase 3 geometry: shrinking IPv4 to 8192
// entries frees a stage (the table no longer spans two stages).
func TestEx1ReducedIPv4(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	ast.Table("IPv4").Size = programs.Ex1IPv4ReducedSize
	res, err := Compile(ast, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.StagesUsed != 7 {
		t.Fatalf("stages used = %d, want 7\n%s", res.Mapping.StagesUsed, res.Mapping.Render())
	}
	p := res.Mapping.Placement("IPv4")
	if p.Stages() != 1 {
		t.Errorf("reduced IPv4 spans %d stages, want 1", p.Stages())
	}
	// One entry more and it still spans two stages.
	ast2 := p4.MustParse(programs.Ex1)
	ast2.Table("IPv4").Size = programs.Ex1IPv4ReducedSize + 1
	res2, err := Compile(ast2, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mapping.Placement("IPv4").Stages() != 2 {
		t.Error("IPv4 at reduced size + 1 should still span two stages")
	}
}

// TestEx1RegisterAtomicity: a register bigger than a stage is a hard error.
func TestEx1RegisterAtomicity(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	ast.Register("cms_r1").InstanceCount = DefaultTarget().StageSRAMBytes // x4 bytes each: way over
	_, err := Compile(ast, DefaultTarget())
	if err == nil {
		t.Fatal("expected register-too-large error")
	}
	var tooBig *ErrRegisterTooLarge
	if !asErr(err, &tooBig) {
		t.Fatalf("error = %v, want ErrRegisterTooLarge", err)
	}
}

func asErr(err error, target **ErrRegisterTooLarge) bool {
	e, ok := err.(*ErrRegisterTooLarge)
	if ok {
		*target = e
	}
	return ok
}

// TestDoesNotFitStillCompiles: an oversized program yields a mapping with
// Fits == false instead of an error ("P2GO could compile and profile the
// program in simulation, independently of the required resources").
func TestDoesNotFitStillCompiles(t *testing.T) {
	tgt := DefaultTarget()
	tgt.Stages = 4
	res, err := CompileSource(programs.Ex1, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Fits {
		t.Error("ex1 cannot fit 4 stages")
	}
	if res.Mapping.StagesUsed != 8 {
		t.Errorf("stages used = %d, want 8", res.Mapping.StagesUsed)
	}
}

func TestMappingRenderAndSummary(t *testing.T) {
	res := compileEx1(t)
	r := res.Mapping.Render()
	for _, want := range []string{"stages used: 8", "stage  1: IPv4", "stage  8: DNS_Drop"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q:\n%s", want, r)
		}
	}
	sum := res.Mapping.Summary()
	if !strings.HasPrefix(sum, "[IPv4][IPv4][ACL_UDP]") {
		t.Errorf("Summary = %s", sum)
	}
}

func TestOccupancy(t *testing.T) {
	res := compileEx1(t)
	occ := res.Mapping.Occupancy()
	if len(occ) != 8 {
		t.Fatalf("occupancy stages = %d, want 8", len(occ))
	}
	if occ[0].TCAMUsed != DefaultTarget().StageTCAMBytes {
		t.Errorf("stage 1 TCAM = %d, want full %d", occ[0].TCAMUsed, DefaultTarget().StageTCAMBytes)
	}
	if occ[4].SRAMUsed != programs.Ex1SketchCells*4+minTableBytes {
		t.Errorf("stage 5 SRAM = %d", occ[4].SRAMUsed)
	}
}

// TestMonotonePlacement: an independent tiny table later in control order
// never lands before the previous table's last stage.
func TestMonotonePlacement(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; b : 8; } }
metadata m_t m;
action wa() { modify_field(m.a, 1); }
action wb() { modify_field(m.b, 1); }
action ra() { modify_field(m.b, m.a); }
table t1 { actions { wa; } default_action : wa; }
table t2 { reads { m.a : exact; } actions { ra; } size : 10000; }
table t3 { actions { wb; } default_action : wb; }
control ingress {
    apply(t1);
    apply(t2);
    apply(t3);
}
`
	res, err := CompileSource(src, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	// t2 depends on t1 (match reads m.a): stage 2. t3 writes m.b which
	// t2's action also writes: WAW, so t3 must be after t2.
	if m.Placement("t1").First != 1 || m.Placement("t2").First != 2 {
		t.Fatalf("placements: %s", m.Summary())
	}
	if m.Placement("t3").First <= m.Placement("t2").Last {
		t.Errorf("t3 must follow t2 (WAW): %s", m.Summary())
	}
}

// TestColocation: independent small tables share a stage.
func TestColocation(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; b : 8; } }
metadata m_t m;
action wa() { modify_field(m.a, 1); }
action wb() { modify_field(m.b, 1); }
table t1 { actions { wa; } default_action : wa; }
table t2 { actions { wb; } default_action : wb; }
control ingress {
    apply(t1);
    apply(t2);
}
`
	res, err := CompileSource(src, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.StagesUsed != 1 {
		t.Errorf("independent tables should co-locate: %s", res.Mapping.Summary())
	}
}

func TestControlPathsInResult(t *testing.T) {
	res := compileEx1(t)
	if len(res.Paths) == 0 {
		t.Fatal("no control paths")
	}
	// Every path that applies DNS_Drop must also apply all three sketch
	// tables (they dominate it in the control flow).
	for _, path := range res.Paths {
		tables := map[string]bool{}
		for _, s := range path {
			tables[s.Table] = true
		}
		if tables["DNS_Drop"] && (!tables["Sketch_1"] || !tables["Sketch_Min"]) {
			t.Errorf("path %s applies DNS_Drop without the sketch", path)
		}
	}
}

// TestPhase2GeometryAfterRewrite verifies that moving ACL_DHCP into
// ACL_UDP's miss arm lets the compiler put both ACLs in one stage,
// shortening the pipeline to 7 stages (Table 2 row 2).
func TestPhase2GeometryAfterRewrite(t *testing.T) {
	src := strings.Replace(programs.Ex1, `
        if (valid(udp)) {
            apply(ACL_UDP);
        }
        if (valid(dhcp)) {
            apply(ACL_DHCP);
        }`, `
        if (valid(udp)) {
            apply(ACL_UDP) {
                miss {
                    if (valid(dhcp)) {
                        apply(ACL_DHCP);
                    }
                }
            }
        }`, 1)
	if src == programs.Ex1 {
		t.Fatal("rewrite did not apply; test fixture out of sync with Ex1 source")
	}
	res, err := CompileSource(src, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	if m.StagesUsed != 7 {
		t.Fatalf("stages used = %d, want 7\n%s", m.StagesUsed, m.Render())
	}
	au, ad := m.Placement("ACL_UDP"), m.Placement("ACL_DHCP")
	if au.First != 3 || ad.First != 3 {
		t.Errorf("ACLs at %d and %d, want both at 3\n%s", au.First, ad.First, m.Render())
	}
}

// TestPhase3GeometryReducedSketch verifies the other Phase 3 candidate:
// after the Phase 2 rewrite, shrinking Sketch_1 to Ex1ReducedSketchCells
// lets it co-locate with the ACLs, also saving a stage.
func TestPhase3GeometryReducedSketch(t *testing.T) {
	src := strings.Replace(programs.Ex1, `
        if (valid(udp)) {
            apply(ACL_UDP);
        }
        if (valid(dhcp)) {
            apply(ACL_DHCP);
        }`, `
        if (valid(udp)) {
            apply(ACL_UDP) {
                miss {
                    if (valid(dhcp)) {
                        apply(ACL_DHCP);
                    }
                }
            }
        }`, 1)
	ast := p4.MustParse(src)
	ast.Register("cms_r1").InstanceCount = programs.Ex1ReducedSketchCells
	res, err := Compile(ast, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.StagesUsed != 6 {
		t.Fatalf("stages = %d, want 6\n%s", res.Mapping.StagesUsed, res.Mapping.Render())
	}
	if res.Mapping.Placement("Sketch_1").First != 3 {
		t.Errorf("reduced Sketch_1 should co-locate with the ACLs\n%s", res.Mapping.Render())
	}
	// One cell more and it no longer fits with the ACLs.
	ast2 := p4.MustParse(src)
	ast2.Register("cms_r1").InstanceCount = programs.Ex1ReducedSketchCells + 1
	res2, err := Compile(ast2, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mapping.StagesUsed != 7 {
		t.Errorf("sketch at reduced+1 cells should still need 7 stages, got %d", res2.Mapping.StagesUsed)
	}
}

func TestBuildIRFromResult(t *testing.T) {
	res := compileEx1(t)
	var names []string
	for _, tbl := range res.IR.Ordered {
		names = append(names, tbl.Name)
	}
	want := "IPv4,ACL_UDP,ACL_DHCP,Sketch_1,Sketch_2,Sketch_Min,DNS_Drop"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("table order = %s, want %s", got, want)
	}
	if res.Deps.Edge("ACL_UDP", "ACL_DHCP") == nil {
		t.Error("missing ACL dependency edge")
	}
	var _ ir.FieldSet = res.IR.Tables["IPv4"].MatchReads
}

// TestALUConstraint exercises the §6 multi-dimensional resource model: two
// independent tiny tables co-locate with unconstrained ALUs, but a
// per-stage ALU budget smaller than their combined primitive count forces
// a second stage.
func TestALUConstraint(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; b : 8; c : 8; d : 8; } }
metadata m_t m;
action heavy_a() {
    modify_field(m.a, 1);
    modify_field(m.b, 2);
    modify_field(m.c, 3);
}
action heavy_b() {
    modify_field(m.d, 1);
    add_to_field(m.d, 2);
    bit_or(m.d, m.d, 4);
}
table t1 { actions { heavy_a; } default_action : heavy_a; }
table t2 { actions { heavy_b; } default_action : heavy_b; }
control ingress {
    apply(t1);
    apply(t2);
}
`
	// Unconstrained: both share stage 1.
	free, err := CompileSource(src, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if free.Mapping.StagesUsed != 1 {
		t.Fatalf("unconstrained: %d stages, want 1", free.Mapping.StagesUsed)
	}
	// 4 ALUs per stage: each table needs 3, together 6 > 4.
	tgt := DefaultTarget()
	tgt.StageALUs = 4
	tight, err := CompileSource(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Mapping.StagesUsed != 2 {
		t.Fatalf("ALU-constrained: %d stages, want 2\n%s", tight.Mapping.StagesUsed, tight.Mapping.Render())
	}
	cost := TableCost(tight.IR, tight.IR.Tables["t1"])
	if cost.ALUs != 3 {
		t.Errorf("t1 ALUs = %d, want 3", cost.ALUs)
	}
}

// TestALUDefaultUnconstrained: the calibrated examples are unaffected by
// the ALU dimension at its default.
func TestALUDefaultUnconstrained(t *testing.T) {
	res := compileEx1(t)
	if res.Mapping.StagesUsed != 8 {
		t.Fatalf("ex1 = %d stages with default target, want 8", res.Mapping.StagesUsed)
	}
	if DefaultTarget().StageALUs != 0 {
		t.Error("default target should leave ALUs unconstrained")
	}
}
