// Package tofino models an RMT-style switch target (a stand-in for the
// Barefoot Tofino compiler backend, whose real memory model is under NDA)
// and implements the table-to-stage allocator. It produces the three
// compiler outputs P2GO consumes: the stage mapping, the dependency graph,
// and the control graph.
//
// The memory model is deliberately simple and fully documented (DESIGN.md
// §2): each stage has an SRAM and a TCAM budget; exact-match entries and
// action data consume SRAM, lpm/ternary keys consume TCAM (key+mask),
// register arrays consume SRAM and are atomic (a register lives in exactly
// one stage). Only relative effects matter for the paper's experiments — a
// table narrowly exceeding a stage forces an extra stage — and those
// crossovers are what the model reproduces.
package tofino

import (
	"fmt"

	"p2go/internal/ir"
	"p2go/internal/p4"
)

// Target describes the hardware resources of the switch pipeline.
type Target struct {
	// Stages is the number of physical ingress stages.
	Stages int
	// StageSRAMBytes is the SRAM budget per stage (exact-match entries,
	// action data, register cells).
	StageSRAMBytes int
	// StageTCAMBytes is the TCAM budget per stage (lpm/ternary keys).
	StageTCAMBytes int
	// MaxTablesPerStage bounds how many logical tables may share a stage.
	MaxTablesPerStage int
	// StageALUs bounds the action units available per stage (each
	// primitive call of a table's widest action consumes one). Zero
	// means unconstrained — the default, matching the paper's focus on
	// stages as the one optimized resource. Setting it exercises the
	// multi-dimensional optimization space of §6.
	StageALUs int
}

// DefaultTarget returns the target model used throughout the reproduction:
// 12 stages, 256 KiB SRAM and 64 KiB TCAM per stage, 16 tables per stage.
func DefaultTarget() Target {
	return Target{
		Stages:            12,
		StageSRAMBytes:    256 * 1024,
		StageTCAMBytes:    64 * 1024,
		MaxTablesPerStage: 16,
	}
}

// Cost is the memory footprint of a table, split by resource.
type Cost struct {
	SRAMBytes int // exact keys + action data + overhead + registers
	TCAMBytes int // lpm/ternary keys (stored as key+mask)
	// RegisterBytes is the portion of SRAMBytes owned by register arrays;
	// it is atomic and cannot span stages.
	RegisterBytes int
	// ALUs is the action-unit demand: the primitive count of the
	// table's widest action.
	ALUs int
}

// Per-entry cost constants of the model.
const (
	entryOverheadBytes = 4  // pointers, next-table, validity
	actionParamBytes   = 4  // action data per parameter
	minTableBytes      = 64 // bookkeeping for a table with no match entries
)

// TableCost computes the memory cost of a table under this model.
func TableCost(prog *ir.Program, t *ir.Table) Cost {
	var c Cost
	exactKey := 0
	tcamKey := 0
	for _, r := range t.Decl.Reads {
		var bytes int
		if r.Kind == p4.MatchValid {
			bytes = 1
		} else {
			bytes = fieldBytes(prog.AST, r.Field)
		}
		switch r.Kind {
		case p4.MatchLPM, p4.MatchTernary, p4.MatchRange:
			tcamKey += bytes
		default:
			exactKey += bytes
		}
	}
	actionData := 0
	for _, a := range t.Actions {
		if n := len(a.Decl.Params) * actionParamBytes; n > actionData {
			actionData = n
		}
		if n := len(a.Decl.Body); n > c.ALUs {
			c.ALUs = n
		}
	}
	if c.ALUs == 0 {
		c.ALUs = 1 // even a no-op table occupies an action slot
	}
	size := t.Decl.Size
	if size <= 0 {
		size = 1
	}
	if tcamKey > 0 {
		c.TCAMBytes = size * tcamKey * 2 // key + mask
		c.SRAMBytes = size * (actionData + entryOverheadBytes)
	} else if exactKey > 0 {
		c.SRAMBytes = size * (exactKey + actionData + entryOverheadBytes)
	} else {
		c.SRAMBytes = minTableBytes
	}
	if c.SRAMBytes < minTableBytes {
		c.SRAMBytes = minTableBytes
	}
	for _, reg := range t.Registers {
		r := prog.AST.Register(reg)
		if r == nil {
			continue
		}
		bytes := r.InstanceCount * ((r.Width + 7) / 8)
		c.RegisterBytes += bytes
		c.SRAMBytes += bytes
	}
	for _, ctr := range t.Counters {
		cd := prog.AST.Counter(ctr)
		if cd == nil {
			continue
		}
		bytes := cd.InstanceCount * counterCellBytes
		c.RegisterBytes += bytes // counters are stateful: atomic like registers
		c.SRAMBytes += bytes
	}
	return c
}

// counterCellBytes is the per-cell cost of a counter (64-bit count).
const counterCellBytes = 8

func fieldBytes(ast *p4.Program, ref p4.FieldRef) int {
	inst := ast.Instance(ref.Instance)
	if inst == nil {
		return 4
	}
	ht := ast.HeaderType(inst.TypeName)
	if ht == nil {
		return 4
	}
	f := ht.Field(ref.Field)
	if f == nil {
		return 4
	}
	return (f.Width + 7) / 8
}

// Placement records where one table landed.
type Placement struct {
	Table string
	// Pipeline is the physical pipeline (p4.IngressControl or
	// p4.EgressControl) the stages below refer to.
	Pipeline string
	First    int // first stage (1-based)
	Last     int // last stage (inclusive)
	// SRAMByStage / TCAMByStage give the bytes consumed in each stage.
	SRAMByStage map[int]int
	TCAMByStage map[int]int
	Cost        Cost
}

// Stages returns the number of stages the placement spans.
func (p *Placement) Stages() int { return p.Last - p.First + 1 }

// Mapping is the result of stage allocation.
type Mapping struct {
	Target     Target
	Placements []*Placement // control order
	// StagesUsed is the number of ingress stages the program needs — the
	// resource the paper optimizes. It may exceed Target.Stages, in which
	// case Fits is false ("P2GO could compile and profile the program in
	// simulation, independently of the required resources").
	StagesUsed int
	// EgressStagesUsed is the egress pipeline's stage count (0 when the
	// program has no egress control).
	EgressStagesUsed int
	Fits             bool

	byTable map[string]*Placement
}

// Placement returns the placement of the named table, or nil.
func (m *Mapping) Placement(table string) *Placement { return m.byTable[table] }

// TablesInStage lists the ingress tables occupying the given stage, in
// control order.
func (m *Mapping) TablesInStage(stage int) []string {
	return m.TablesInStageOf(p4.IngressControl, stage)
}

// TablesInStageOf lists the tables of one pipeline occupying the given
// stage, in control order.
func (m *Mapping) TablesInStageOf(pipeline string, stage int) []string {
	var out []string
	for _, p := range m.Placements {
		if p.Pipeline == pipeline && p.First <= stage && stage <= p.Last {
			out = append(out, p.Table)
		}
	}
	return out
}

// stageState tracks remaining capacity while allocating.
type stageState struct {
	sramFree   int
	tcamFree   int
	tableSlots int
	aluFree    int // -1 when unconstrained
}

// ErrRegisterTooLarge is returned when a register array exceeds one stage's
// SRAM: registers are atomic in RMT and cannot span stages.
type ErrRegisterTooLarge struct {
	Table string
	Bytes int
	Limit int
}

func (e *ErrRegisterTooLarge) Error() string {
	return fmt.Sprintf("tofino: table %s needs %d bytes of atomic stage memory but a stage has %d",
		e.Table, e.Bytes, e.Limit)
}

// Allocate maps the program's tables to stages. Placement is monotone in
// control order (a table never lands before the previous table's last
// stage), dependency edges force strictly later stages than the
// predecessor's last stage, and tables without conflicting dependencies
// co-locate when stage memory and table slots allow. Tables whose match
// memory exceeds a stage span consecutive stages; tables with register
// arrays are atomic.
//
// Allocation always succeeds with a mapping (possibly Fits == false) unless
// an atomic table exceeds single-stage memory.
func Allocate(prog *ir.Program, g DependencyEdges, tgt Target) (*Mapping, error) {
	const maxStages = 256 // simulation headroom beyond the physical target
	newStates := func() []stageState {
		states := make([]stageState, maxStages+1) // 1-based
		for i := range states {
			states[i] = stageState{
				sramFree:   tgt.StageSRAMBytes,
				tcamFree:   tgt.StageTCAMBytes,
				tableSlots: tgt.MaxTablesPerStage,
				aluFree:    tgt.StageALUs,
			}
			if tgt.StageALUs == 0 {
				states[i].aluFree = -1
			}
		}
		return states
	}
	// Ingress and egress are physically separate pipelines.
	pipelineStates := map[string][]stageState{
		p4.IngressControl: newStates(),
		p4.EgressControl:  newStates(),
	}
	m := &Mapping{Target: tgt, byTable: map[string]*Placement{}}
	lastStage := map[string]int{}
	prevLast := map[string]int{}
	for _, t := range prog.Ordered {
		cost := TableCost(prog, t)
		atomicBytes := cost.RegisterBytes
		if atomicBytes > 0 {
			// Registers pin the whole table to one stage.
			atomicBytes = cost.SRAMBytes
		}
		if atomicBytes > tgt.StageSRAMBytes {
			return nil, &ErrRegisterTooLarge{Table: t.Name, Bytes: atomicBytes, Limit: tgt.StageSRAMBytes}
		}
		minStage := 1
		if prevLast[t.Pipeline] > minStage {
			minStage = prevLast[t.Pipeline]
		}
		for _, pred := range g.Predecessors(t.Name) {
			if s, ok := lastStage[pred]; ok && s+1 > minStage {
				minStage = s + 1
			}
		}
		pl, err := place(t.Name, cost, atomicBytes > 0, pipelineStates[t.Pipeline], minStage, maxStages)
		if err != nil {
			return nil, err
		}
		pl.Pipeline = t.Pipeline
		m.Placements = append(m.Placements, pl)
		m.byTable[t.Name] = pl
		lastStage[t.Name] = pl.Last
		switch t.Pipeline {
		case p4.EgressControl:
			if pl.Last > m.EgressStagesUsed {
				m.EgressStagesUsed = pl.Last
			}
		default:
			if pl.Last > m.StagesUsed {
				m.StagesUsed = pl.Last
			}
		}
		prevLast[t.Pipeline] = pl.Last
	}
	m.Fits = m.StagesUsed <= tgt.Stages && m.EgressStagesUsed <= tgt.Stages
	return m, nil
}

// place finds the first feasible stage >= minStage and consumes memory.
func place(name string, cost Cost, atomic bool, states []stageState, minStage, maxStages int) (*Placement, error) {
	aluOK := func(st *stageState) bool { return st.aluFree < 0 || st.aluFree >= cost.ALUs }
	takeALU := func(st *stageState) {
		if st.aluFree >= 0 {
			st.aluFree -= cost.ALUs
		}
	}
	for s := minStage; s <= maxStages; s++ {
		if atomic {
			st := &states[s]
			if st.tableSlots >= 1 && st.sramFree >= cost.SRAMBytes && st.tcamFree >= cost.TCAMBytes && aluOK(st) {
				st.tableSlots--
				st.sramFree -= cost.SRAMBytes
				st.tcamFree -= cost.TCAMBytes
				takeALU(st)
				return &Placement{
					Table: name, First: s, Last: s, Cost: cost,
					SRAMByStage: map[int]int{s: cost.SRAMBytes},
					TCAMByStage: map[int]int{s: cost.TCAMBytes},
				}, nil
			}
			continue
		}
		// Spanning placement: start here if the stage has any usable
		// capacity in every dimension the table needs, then spill.
		st := &states[s]
		if st.tableSlots < 1 || !aluOK(st) {
			continue
		}
		if (cost.SRAMBytes > 0 && st.sramFree <= 0) || (cost.TCAMBytes > 0 && st.tcamFree <= 0) {
			continue
		}
		// The match+action logic lives in the first stage; spill stages
		// hold overflow memory only.
		takeALU(st)
		pl := &Placement{Table: name, First: s, Cost: cost,
			SRAMByStage: map[int]int{}, TCAMByStage: map[int]int{}}
		sram, tcam := cost.SRAMBytes, cost.TCAMBytes
		last := s
		for cur := s; cur <= maxStages && (sram > 0 || tcam > 0); cur++ {
			cs := &states[cur]
			if cur > s && cs.tableSlots < 1 {
				// Cannot continue the span through a full stage.
				return nil, fmt.Errorf("tofino: table %s cannot span through full stage %d", name, cur)
			}
			took := false
			if sram > 0 && cs.sramFree > 0 {
				n := min(sram, cs.sramFree)
				cs.sramFree -= n
				sram -= n
				pl.SRAMByStage[cur] += n
				took = true
			}
			if tcam > 0 && cs.tcamFree > 0 {
				n := min(tcam, cs.tcamFree)
				cs.tcamFree -= n
				tcam -= n
				pl.TCAMByStage[cur] += n
				took = true
			}
			if took {
				cs.tableSlots--
				last = cur
			}
		}
		if sram > 0 || tcam > 0 {
			return nil, fmt.Errorf("tofino: table %s does not fit in %d simulated stages", name, maxStages)
		}
		pl.Last = last
		return pl, nil
	}
	return nil, fmt.Errorf("tofino: no feasible stage for table %s", name)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DependencyEdges abstracts the dependency graph for the allocator; the
// deps package's Graph satisfies it via an adapter to avoid an import
// cycle-free but concrete coupling.
type DependencyEdges interface {
	// Predecessors returns the tables that must finish in an earlier
	// stage than the given table.
	Predecessors(table string) []string
}
