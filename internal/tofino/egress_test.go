package tofino

import (
	"strings"
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/sim"
)

// egressProgram has two ingress tables and two egress tables; the egress
// tables depend on each other but never contend with ingress stages.
const egressProgram = `
header_type m_t { fields { a : 8; b : 8; } }
metadata m_t m;
action set_port(p) { modify_field(standard_metadata.egress_spec, p); }
action ing_drop() { drop(); }
action mark_a() { modify_field(m.a, 1); }
action mark_b() { modify_field(m.b, m.a); }
table ing_fwd { reads { m.a : exact; } actions { set_port; } size : 4; default_action : set_port(2); }
table ing_acl { actions { ing_drop; } }
table eg_mark { actions { mark_a; } default_action : mark_a; }
table eg_use { actions { mark_b; } default_action : mark_b; }
control ingress {
    apply(ing_fwd);
    if (m.a == 99) {
        apply(ing_acl);
    }
}
control egress {
    apply(eg_mark);
    apply(eg_use);
}
`

func compileEgress(t *testing.T) *Result {
	t.Helper()
	res, err := CompileSource(egressProgram, DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEgressSeparatePipeline: ingress and egress stages are counted
// independently and never share stages.
func TestEgressSeparatePipeline(t *testing.T) {
	res := compileEgress(t)
	m := res.Mapping
	// Ingress: ing_fwd writes egress_spec; ing_acl drops (also writes
	// egress_spec): WAW -> 2 stages.
	if m.StagesUsed != 2 {
		t.Errorf("ingress stages = %d, want 2\n%s", m.StagesUsed, m.Render())
	}
	// Egress: eg_use reads m.a written by eg_mark (RAW) -> 2 stages.
	if m.EgressStagesUsed != 2 {
		t.Errorf("egress stages = %d, want 2\n%s", m.EgressStagesUsed, m.Render())
	}
	for _, tbl := range []string{"eg_mark", "eg_use"} {
		if p := m.Placement(tbl); p.Pipeline != p4.EgressControl {
			t.Errorf("%s pipeline = %q, want egress", tbl, p.Pipeline)
		}
	}
	// eg_mark lands at egress stage 1 even though ingress stage 1 is
	// occupied: separate resource pools.
	if m.Placement("eg_mark").First != 1 {
		t.Errorf("eg_mark at egress stage %d, want 1", m.Placement("eg_mark").First)
	}
	if got := strings.Join(m.TablesInStageOf(p4.EgressControl, 1), ","); got != "eg_mark" {
		t.Errorf("egress stage 1 = %s, want eg_mark", got)
	}
	if got := m.TablesInStage(1); len(got) != 1 || got[0] != "ing_fwd" {
		t.Errorf("ingress stage 1 = %v, want [ing_fwd]", got)
	}
	if !strings.Contains(m.Render(), "egress stages used: 2") {
		t.Errorf("Render missing egress section:\n%s", m.Render())
	}
}

// TestEgressNoCrossPipelineDeps: a WAW between an ingress and an egress
// table produces no dependency edge.
func TestEgressNoCrossPipelineDeps(t *testing.T) {
	res := compileEgress(t)
	// mark_a writes m.a; ing_fwd reads m.a (match): cross-pipeline, no
	// edge in either direction.
	if e := res.Deps.Edge("ing_fwd", "eg_mark"); e != nil {
		t.Errorf("unexpected cross-pipeline edge: %v", e)
	}
	if e := res.Deps.Edge("eg_mark", "eg_use"); e == nil {
		t.Error("missing intra-egress dependency edge")
	}
	tbl := res.IR.Tables["eg_use"]
	if tbl.Pipeline != p4.EgressControl {
		t.Errorf("eg_use pipeline = %q", tbl.Pipeline)
	}
}

// TestEgressExecution: the simulator runs egress after ingress; dropped
// packets skip it.
func TestEgressExecution(t *testing.T) {
	ast := p4.MustParse(egressProgram)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rt.Parse("table_add ing_fwd set_port 7 => 9")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New(prog, cfg, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Process(sim.Input{Port: 1, Data: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	var tables []string
	for _, e := range out.Exec {
		tables = append(tables, e.Table)
	}
	want := "ing_fwd,eg_mark,eg_use"
	if got := strings.Join(tables, ","); got != want {
		t.Errorf("exec = %s, want %s", got, want)
	}
}

// TestEgressSkippedOnDrop: a dropped packet does not traverse egress.
func TestEgressSkippedOnDrop(t *testing.T) {
	src := `
header_type m_t { fields { a : 8; } }
metadata m_t m;
action d() { drop(); }
action mark() { modify_field(m.a, 1); }
table ing { actions { d; } default_action : d; }
table eg { actions { mark; } default_action : mark; }
control ingress { apply(ing); }
control egress { apply(eg); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New(prog, nil, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Process(sim.Input{Port: 1, Data: []byte{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped {
		t.Fatal("packet should be dropped")
	}
	for _, e := range out.Exec {
		if e.Table == "eg" {
			t.Error("dropped packet traversed the egress pipeline")
		}
	}
}
