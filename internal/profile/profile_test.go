package profile

import (
	"math"
	"strings"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/programs"
	"p2go/internal/trafficgen"
)

func enterpriseTrace(t *testing.T) *trafficgen.Trace {
	t.Helper()
	trace, err := trafficgen.EnterpriseTrace(trafficgen.EnterpriseSpec{Seed: 1})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return trace
}

func profileEx1(t *testing.T) *Profile {
	t.Helper()
	ast := p4.MustParse(programs.Ex1)
	prof, err := Run(ast, programs.Ex1Config(), enterpriseTrace(t))
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return prof
}

// TestEx1HitRates pins the paper's Ex. 1 annotation: IPv4 100%, ACL_UDP 8%,
// ACL_DHCP 14%, Sketch_* 2%, DNS_Drop ~1%.
func TestEx1HitRates(t *testing.T) {
	prof := profileEx1(t)
	if prof.TotalPackets != 20000 {
		t.Fatalf("total = %d, want 20000", prof.TotalPackets)
	}
	want := map[string]float64{
		"IPv4":       1.00,
		"ACL_UDP":    0.08,
		"ACL_DHCP":   0.14,
		"Sketch_1":   0.02,
		"Sketch_2":   0.02,
		"Sketch_Min": 0.02,
	}
	for table, rate := range want {
		if got := prof.HitRate(table); math.Abs(got-rate) > 1e-9 {
			t.Errorf("%s hit rate = %.4f, want %.4f", table, got, rate)
		}
	}
	// DNS_Drop: the heavy flow's packets past the 128-query threshold.
	wantDrops := trafficgen.ExpectedEnterpriseDNSDrops()
	if got := prof.Hits["DNS_Drop"]; got != wantDrops {
		t.Errorf("DNS_Drop hits = %d, want %d", got, wantDrops)
	}
	if rate := prof.HitRate("DNS_Drop"); math.Abs(rate-0.01) > 1e-9 {
		t.Errorf("DNS_Drop hit rate = %.4f, want 0.0100", rate)
	}
}

// TestEx1NonExclusiveSets pins the paper's Table 1: exactly four distinct
// sets of non-exclusive actions with >= 2 members.
func TestEx1NonExclusiveSets(t *testing.T) {
	prof := profileEx1(t)
	sets := prof.NonExclusiveSets(2)
	if len(sets) != 4 {
		var got []string
		for _, s := range sets {
			got = append(got, "{"+strings.Join(s.Members, ",")+"}")
		}
		t.Fatalf("sets = %d, want 4:\n%s", len(sets), strings.Join(got, "\n"))
	}
	wantSets := []string{
		SetKey([]string{"IPv4.set_nhop", "ACL_UDP.acl_udp_drop"}),
		SetKey([]string{"IPv4.set_nhop", "ACL_DHCP.acl_dhcp_drop"}),
		SetKey([]string{"IPv4.set_nhop", "Sketch_1.sketch1_count", "Sketch_2.sketch2_count", "Sketch_Min.sketch_take_min"}),
		SetKey([]string{"IPv4.set_nhop", "Sketch_1.sketch1_count", "Sketch_2.sketch2_count", "Sketch_Min.sketch_take_min", "DNS_Drop.dns_limit_drop"}),
	}
	got := map[string]bool{}
	for _, s := range sets {
		got[SetKey(s.Members)] = true
	}
	for _, w := range wantSets {
		if !got[w] {
			t.Errorf("missing set {%s}", w)
		}
	}
}

// TestACLDependencyDoesNotManifest is Phase 2's key observation: the drop
// actions of ACL_UDP and ACL_DHCP are never applied to the same packet,
// while the IPv4/ACL_UDP dependency does manifest.
func TestACLDependencyDoesNotManifest(t *testing.T) {
	prof := profileEx1(t)
	if prof.CoOccurred("ACL_UDP", "acl_udp_drop", "ACL_DHCP", "acl_dhcp_drop") {
		t.Error("ACL drop actions must never co-occur in the enterprise trace")
	}
	if !prof.CoOccurred("IPv4", "set_nhop", "ACL_UDP", "acl_udp_drop") {
		t.Error("IPv4/ACL_UDP dependency should manifest")
	}
	// Table-level co-occurrence: ACL_UDP is applied to DHCP packets
	// (a UDP packet), it just never hits on them.
	if !prof.CoOccurred("ACL_DHCP", "acl_dhcp_drop", "ACL_UDP", "") {
		t.Error("ACL_UDP is applied to the same packets ACL_DHCP drops")
	}
}

// TestReducedSketchChangesProfile reproduces §3.3's discard decision:
// shrinking Sketch_1's register to the binary-search minimum makes the CMS
// over-count, raising DNS_Drop's hit rate; the profile comparison detects
// it.
func TestReducedSketchChangesProfile(t *testing.T) {
	trace := enterpriseTrace(t)
	base, err := Run(p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	reduced := p4.MustParse(programs.Ex1)
	reduced.Register("cms_r1").InstanceCount = programs.Ex1ReducedSketchCells
	// The resize also updates the hash modulus, as P2GO's rewrite does.
	act := reduced.Action("sketch1_count")
	for _, call := range act.Body {
		if call.Name == p4.PrimHashOffset {
			call.Args[3] = p4.IntLit{Value: uint64(programs.Ex1ReducedSketchCells)}
		}
	}
	redProf, err := Run(reduced, programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if base.Equal(redProf) {
		t.Fatal("reduced-sketch profile must differ (CMS over-counting)")
	}
	if redProf.Hits["DNS_Drop"] <= base.Hits["DNS_Drop"] {
		t.Errorf("DNS_Drop hits: reduced %d should exceed base %d",
			redProf.Hits["DNS_Drop"], base.Hits["DNS_Drop"])
	}
	diff := base.Diff(redProf)
	if !strings.Contains(diff, "DNS_Drop") {
		t.Errorf("Diff should mention DNS_Drop: %s", diff)
	}
	// Everything except the DNS limiter behaves identically.
	for _, tbl := range []string{"IPv4", "ACL_UDP", "ACL_DHCP", "Sketch_1", "Sketch_2", "Sketch_Min"} {
		if base.Hits[tbl] != redProf.Hits[tbl] {
			t.Errorf("table %s hits changed: %d vs %d", tbl, base.Hits[tbl], redProf.Hits[tbl])
		}
	}
}

// TestReducedIPv4KeepsProfile: the IPv4 shrink (the optimization P2GO
// applies) must NOT change the profile.
func TestReducedIPv4KeepsProfile(t *testing.T) {
	trace := enterpriseTrace(t)
	base, err := Run(p4.MustParse(programs.Ex1), programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	reduced := p4.MustParse(programs.Ex1)
	reduced.Table("IPv4").Size = programs.Ex1IPv4ReducedSize
	redProf, err := Run(reduced, programs.Ex1Config(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Equal(redProf) {
		t.Errorf("IPv4 shrink changed the profile: %s", base.Diff(redProf))
	}
}

func TestProfileDeterminism(t *testing.T) {
	a := profileEx1(t)
	b := profileEx1(t)
	if !a.Equal(b) {
		t.Errorf("profiles differ across runs: %s", a.Diff(b))
	}
}

func TestInstrumentMarkers(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	ins, err := Instrument(ast)
	if err != nil {
		t.Fatal(err)
	}
	// Markers: one per (table, action) plus miss markers for the two
	// ACLs (reads, no default). Ex1 has 8 declared table-action pairs.
	wantMarkers := 8 + 2
	if len(ins.Fields) != wantMarkers {
		t.Errorf("markers = %d, want %d: %v", len(ins.Fields), wantMarkers, ins.sortedFieldNames())
	}
	if ins.Field("IPv4", "set_nhop") == "" {
		t.Error("missing marker for IPv4.set_nhop")
	}
	if ins.TrailerBytes() != wantMarkers {
		t.Errorf("trailer bytes = %d, want %d", ins.TrailerBytes(), wantMarkers)
	}
	// The original program is untouched.
	if ast.Instance(TrailerName) != nil {
		t.Error("Instrument mutated its input")
	}
	if len(ast.Action("set_nhop").Body) != 1 {
		t.Error("Instrument mutated the original action body")
	}
	// The instrumented program re-instruments cleanly? No: it must refuse.
	if _, err := Instrument(ins.AST); err == nil {
		t.Error("re-instrumenting an instrumented program should fail")
	}
}

func TestInstrumentSharedActionSpecialized(t *testing.T) {
	src := `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action shared_drop() { drop(); }
table t1 { reads { m.x : exact; } actions { shared_drop; } size : 4; }
table t2 { reads { m.x : exact; } actions { shared_drop; } size : 4; }
control ingress { apply(t1); apply(t2); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	ins, err := Instrument(ast)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Field("t1", "shared_drop") == "" {
		t.Error("t1 keeps the original action name")
	}
	if ins.Field("t2", "shared_drop__t2") == "" {
		t.Error("t2 should get a specialized clone")
	}
	if ins.AST.Action("shared_drop__t2") == nil {
		t.Error("specialized action not declared")
	}
}

func TestParseTrailerErrors(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	ins, err := Instrument(ast)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.ParseTrailer([]byte{1}); err == nil {
		t.Error("short packet should fail trailer parsing")
	}
}

func TestProfileRender(t *testing.T) {
	prof := profileEx1(t)
	r := prof.Render()
	for _, want := range []string{"IPv4", "100.00%", "ACL_UDP", "8.00%", "non-exclusive"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q:\n%s", want, r)
		}
	}
}

func TestAppliedCounts(t *testing.T) {
	prof := profileEx1(t)
	// ACL_UDP is applied to every UDP packet: blocked + DHCP + DNS.
	applied := prof.Applied["ACL_UDP"]
	wantMin := prof.Hits["ACL_UDP"] + prof.Hits["ACL_DHCP"] + prof.Hits["Sketch_1"]
	if applied < wantMin {
		t.Errorf("ACL_UDP applied = %d, want >= %d", applied, wantMin)
	}
	if prof.Applied["IPv4"] != prof.TotalPackets {
		t.Errorf("IPv4 applied = %d, want all %d", prof.Applied["IPv4"], prof.TotalPackets)
	}
}
