package profile

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"p2go/internal/p4"
	"p2go/internal/trafficgen"
	"p2go/internal/workloads"
)

// TestRunWithCombinationsProfileEqual is the profiling differential
// harness: for every bundled workload, every engine/shard/dedup
// combination of RunWith must produce a profile Equal to the reference
// replay (interpreter, one shard, no dedup) — the guarantee the compiled
// engine and flow deduplication are allowed to exist under. It also pins
// the EngineReport: stateful programs must report the dedup and sharding
// fallback instead of silently taking them.
func TestRunWithCombinationsProfileEqual(t *testing.T) {
	ctx := context.Background()
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			trace, err := w.Trace(2)
			if err != nil {
				t.Fatal(err)
			}
			prep, err := Prepare(p4.MustParse(w.Source), w.Config())
			if err != nil {
				t.Fatal(err)
			}
			if engine, reason := prep.Engine(); engine != "compiled" {
				t.Fatalf("workload did not lower: engine=%s reason=%q", engine, reason)
			}
			stateful := len(prep.stateful) > 0

			ref, err := prep.Profiler().RunWith(ctx, trace, RunOptions{Shards: 1, Interpret: true, NoDedup: true})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Engine == nil || ref.Engine.Engine != "interpreter" || ref.Engine.FallbackReason != "forced" {
				t.Fatalf("reference EngineReport = %+v", ref.Engine)
			}

			for _, shards := range []int{1, 2, 4} {
				for _, noDedup := range []bool{false, true} {
					for _, interp := range []bool{false, true} {
						opts := RunOptions{Shards: shards, Interpret: interp, NoDedup: noDedup}
						label := fmt.Sprintf("shards=%d noDedup=%v interp=%v", shards, noDedup, interp)
						got, err := prep.Profiler().RunWith(ctx, trace, opts)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !got.Equal(ref) {
							t.Fatalf("%s: profile diverges from reference:\n%s", label, got.Diff(ref))
						}
						rep := got.Engine
						if rep == nil {
							t.Fatalf("%s: no EngineReport", label)
						}
						wantEngine := "compiled"
						if interp {
							wantEngine = "interpreter"
						}
						if rep.Engine != wantEngine {
							t.Errorf("%s: engine = %s, want %s (reason %q)", label, rep.Engine, wantEngine, rep.FallbackReason)
						}
						if stateful {
							if rep.Dedup || rep.Shards != 1 {
								t.Errorf("%s: stateful program reports dedup=%v shards=%d", label, rep.Dedup, rep.Shards)
							}
							if !noDedup && rep.DedupReason != "stateful-tables" {
								t.Errorf("%s: dedup_reason = %q, want stateful-tables", label, rep.DedupReason)
							}
						} else {
							if rep.Dedup == noDedup {
								t.Errorf("%s: dedup = %v", label, rep.Dedup)
							}
							if rep.Dedup && rep.UniquePackets > got.TotalPackets {
								t.Errorf("%s: %d unique packets out of %d total", label, rep.UniquePackets, got.TotalPackets)
							}
						}
					}
				}
			}
		})
	}
}

// TestDedupCollapsesRepeatedFlows drives dedup with a trace it can
// actually collapse — a handful of distinct packets repeated thousands of
// times — and checks both the counters (weighted exactly like the full
// replay) and the replay volume (UniquePackets equals the distinct flow
// count, which is the 10x-class win the engine exists for).
func TestDedupCollapsesRepeatedFlows(t *testing.T) {
	w, err := workloads.Get("natgre")
	if err != nil {
		t.Fatal(err)
	}
	base, err := w.Trace(4)
	if err != nil {
		t.Fatal(err)
	}
	distinct := 16
	rng := rand.New(rand.NewSource(9))
	trace := &trafficgen.Trace{}
	for i := 0; i < 8000; i++ {
		trace.Packets = append(trace.Packets, base.Packets[rng.Intn(distinct)])
	}

	prep, err := Prepare(p4.MustParse(w.Source), w.Config())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := prep.Profiler().RunWith(context.Background(), trace, RunOptions{Shards: 1, NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.Profiler().RunWith(context.Background(), trace, RunOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatalf("deduplicated profile diverges:\n%s", got.Diff(ref))
	}
	if got.Engine.UniquePackets != distinct {
		t.Errorf("replayed %d unique packets, want %d", got.Engine.UniquePackets, distinct)
	}
	if got.TotalPackets != 8000 {
		t.Errorf("TotalPackets = %d, want 8000", got.TotalPackets)
	}
}
