package profile

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// Profile is the result of profiling a program on a trace: "(i) the
// fraction of packets that match each table (hit rate); and (ii) the sets
// of actions that are applied on the same packet(s) (non-exclusive
// actions)" (§3.1).
type Profile struct {
	TotalPackets int
	// Hits counts, per table, the packets that matched it. A read-less
	// table counts as matched whenever it is applied.
	Hits map[string]int
	// Applied counts, per table, the packets that were applied to it at
	// all (hit or miss).
	Applied map[string]int
	// ActionCounts counts executions per "table.action" (including
	// default actions and synthesized miss markers).
	ActionCounts map[string]int
	// Sets counts, per canonical execution set, the packets that executed
	// exactly that set of (table, action) pairs. Keys are
	// "table.action|table.action|..." sorted lexicographically.
	Sets map[string]int
	// Drops counts packets a drop primitive fired on.
	Drops int
	// ToCPU counts packets redirected to the controller.
	ToCPU int
	// Engine records how the replay that produced this profile executed
	// (engine choice, dedup, shards). It is ignored by Equal/Diff and not
	// propagated by MergeProfiles; RunWith sets it on the merged result.
	Engine *EngineReport
}

// HitRate returns the fraction of packets that matched the table.
func (p *Profile) HitRate(table string) float64 {
	if p.TotalPackets == 0 {
		return 0
	}
	return float64(p.Hits[table]) / float64(p.TotalPackets)
}

// SetKey canonicalizes an execution set.
func SetKey(entries []string) string {
	sorted := append([]string(nil), entries...)
	sort.Strings(sorted)
	return strings.Join(sorted, "|")
}

// NonExclusiveSets returns the distinct observed sets of non-exclusive hit
// actions with at least minSize members, sorted by descending count — the
// paper's Table 1. Miss markers and default-on-miss executions are
// filtered: the table lists actions applied to packets, and a miss applies
// no rule action.
type SetCount struct {
	Members []string // "table.action", sorted
	Count   int
}

// NonExclusiveSets lists observed hit-action sets of at least minSize.
func (p *Profile) NonExclusiveSets(minSize int) []SetCount {
	agg := map[string]int{}
	for key, count := range p.Sets {
		members := strings.Split(key, "|")
		var hits []string
		for _, m := range members {
			if p.isHitEntry(m) {
				hits = append(hits, m)
			}
		}
		if len(hits) < minSize {
			continue
		}
		agg[SetKey(hits)] += count
	}
	var out []SetCount
	for key, count := range agg {
		out = append(out, SetCount{Members: strings.Split(key, "|"), Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return SetKey(out[i].Members) < SetKey(out[j].Members)
	})
	return out
}

// isHitEntry reports whether a set entry represents a rule hit rather than
// a miss/default execution. Entries are tagged at collection time with a
// "!" suffix for miss/default executions.
func (p *Profile) isHitEntry(entry string) bool {
	return !strings.HasSuffix(entry, missTag)
}

// missTag marks miss/default-action executions inside set keys.
const missTag = "!miss"

// CoOccurred reports whether any packet executed both (tableA, actionA) and
// (tableB, actionB). An empty actionB means "tableB was applied at all"
// (hit or miss). This is Phase 2's manifestation test for action-level
// conflicts and control dependencies.
func (p *Profile) CoOccurred(tableA, actionA, tableB, actionB string) bool {
	return p.coOccur(tableA, actionA, tableB, actionB, false)
}

// CoHit reports whether any packet executed (tableA, actionA) while tableB
// *matched* (hit a rule, or executed its always-on default for a read-less
// table). Read-after-write dependencies into a match key manifest only on
// hits: a lookup that misses shows no observable influence of the written
// value, which is precisely the observation Phase 2 reports to the
// programmer.
func (p *Profile) CoHit(tableA, actionA, tableB string) bool {
	return p.coOccur(tableA, actionA, tableB, "", true)
}

func (p *Profile) coOccur(tableA, actionA, tableB, actionB string, requireHit bool) bool {
	needleA := tableA + "." + actionA
	for key, count := range p.Sets {
		if count == 0 {
			continue
		}
		members := strings.Split(key, "|")
		hasA, hasB := false, false
		for _, m := range members {
			isMiss := strings.HasSuffix(m, missTag)
			base := strings.TrimSuffix(m, missTag)
			if base == needleA {
				hasA = true
			}
			switch {
			case actionB == "":
				if strings.HasPrefix(base, tableB+".") && (!requireHit || !isMiss) {
					hasB = true
				}
			case base == tableB+"."+actionB:
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

// Equal reports whether two profiles are identical: same totals, same hit
// counts, same execution sets. Phase 3 uses this to verify that a memory
// reduction "does not change the program profile".
func (p *Profile) Equal(other *Profile) bool {
	return p.Diff(other) == ""
}

// Diff describes the first differences between two profiles, or "".
func (p *Profile) Diff(other *Profile) string {
	var out []string
	if p.TotalPackets != other.TotalPackets {
		out = append(out, fmt.Sprintf("total packets %d vs %d", p.TotalPackets, other.TotalPackets))
	}
	tables := map[string]bool{}
	for t := range p.Hits {
		tables[t] = true
	}
	for t := range other.Hits {
		tables[t] = true
	}
	var names []string
	for t := range tables {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		if p.Hits[t] != other.Hits[t] {
			out = append(out, fmt.Sprintf("table %s: %d vs %d hits", t, p.Hits[t], other.Hits[t]))
		}
	}
	keys := map[string]bool{}
	for k := range p.Sets {
		keys[k] = true
	}
	for k := range other.Sets {
		keys[k] = true
	}
	var setNames []string
	for k := range keys {
		setNames = append(setNames, k)
	}
	sort.Strings(setNames)
	for _, k := range setNames {
		if p.Sets[k] != other.Sets[k] {
			out = append(out, fmt.Sprintf("set {%s}: %d vs %d packets", k, p.Sets[k], other.Sets[k]))
		}
	}
	if p.Drops != other.Drops {
		out = append(out, fmt.Sprintf("drops %d vs %d", p.Drops, other.Drops))
	}
	return strings.Join(out, "; ")
}

// BehaviorEqual reports whether two profiles describe the same observable
// behavior: identical hit counts per table, identical per-packet hit-action
// sets, and identical drop/redirect totals. Unlike Equal it ignores miss
// markers — Phase 2's rewrite intentionally skips applying a table whose
// outcome was always a no-op miss, which changes which tables are applied
// but not what happens to any packet.
func (p *Profile) BehaviorEqual(other *Profile) bool {
	return p.BehaviorDiff(other) == ""
}

// BehaviorDiff describes behavioral differences between two profiles.
func (p *Profile) BehaviorDiff(other *Profile) string {
	var out []string
	if p.TotalPackets != other.TotalPackets {
		out = append(out, fmt.Sprintf("total packets %d vs %d", p.TotalPackets, other.TotalPackets))
	}
	tables := map[string]bool{}
	for t := range p.Hits {
		tables[t] = true
	}
	for t := range other.Hits {
		tables[t] = true
	}
	var names []string
	for t := range tables {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		if p.Hits[t] != other.Hits[t] {
			out = append(out, fmt.Sprintf("table %s: %d vs %d hits", t, p.Hits[t], other.Hits[t]))
		}
	}
	a, b := p.hitSets(), other.hitSets()
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var setNames []string
	for k := range keys {
		setNames = append(setNames, k)
	}
	sort.Strings(setNames)
	for _, k := range setNames {
		if a[k] != b[k] {
			out = append(out, fmt.Sprintf("hit set {%s}: %d vs %d packets", k, a[k], b[k]))
		}
	}
	if p.Drops != other.Drops {
		out = append(out, fmt.Sprintf("drops %d vs %d", p.Drops, other.Drops))
	}
	if p.ToCPU != other.ToCPU {
		out = append(out, fmt.Sprintf("to-cpu %d vs %d", p.ToCPU, other.ToCPU))
	}
	return strings.Join(out, "; ")
}

// hitSets aggregates the execution sets down to their hit entries.
func (p *Profile) hitSets() map[string]int {
	agg := map[string]int{}
	for key, count := range p.Sets {
		var hits []string
		for _, m := range strings.Split(key, "|") {
			if p.isHitEntry(m) {
				hits = append(hits, m)
			}
		}
		agg[SetKey(hits)] += count
	}
	return agg
}

// Render formats the profile like the paper's Ex. 1 annotation plus
// Table 1.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile over %d packets\n", p.TotalPackets)
	if p.Engine != nil {
		fmt.Fprintf(&b, "replay engine: %s\n", p.Engine)
	}
	var tables []string
	for t := range p.Applied {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	b.WriteString("hit rates:\n")
	for _, t := range tables {
		fmt.Fprintf(&b, "  %-12s %6.2f%%\n", t, 100*p.HitRate(t))
	}
	b.WriteString("non-exclusive action sets (>= 2 members):\n")
	for _, s := range p.NonExclusiveSets(2) {
		fmt.Fprintf(&b, "  {%s}  x%d\n", strings.Join(s.Members, ", "), s.Count)
	}
	return b.String()
}

// Profiler replays traces through an instrumented program.
type Profiler struct {
	Ins    *Instrumented
	Switch *sim.Switch
	source *p4.Program
	cfg    *rt.Config
	// prog is the instrumented program's IR; sharded replay builds one
	// additional Switch per worker from it.
	prog *ir.Program
	// opts rebuilds worker Switches identical to Switch.
	opts sim.Options
	// prep is the shared immutable state this profiler was built from
	// (plan, stateful-table list, miss-default lookup).
	prep *Prepared
}

// NewProfiler instruments the program and boots a simulator with the given
// runtime configuration. Drops are neutralized so the collector observes
// every packet (the instrumented program is only used for profiling and
// never deployed, §3.1).
func NewProfiler(ast *p4.Program, cfg *rt.Config) (*Profiler, error) {
	return NewProfilerContext(context.Background(), ast, cfg)
}

// NewProfilerContext is NewProfiler under a "profile.instrument" span
// covering instrumentation, IR build, and plan lowering. It is
// PrepareContext plus a Profiler over the prepared plan; callers that
// profile the same program repeatedly should hold the Prepared instead.
func NewProfilerContext(ctx context.Context, ast *p4.Program, cfg *rt.Config) (*Profiler, error) {
	prep, err := PrepareContext(ctx, ast, cfg)
	if err != nil {
		return nil, err
	}
	return prep.Profiler(), nil
}

// Run replays the trace and builds the profile. Register state is reset
// first so repeated runs are reproducible.
func (p *Profiler) Run(trace *trafficgen.Trace) (*Profile, error) {
	return p.RunContext(context.Background(), trace)
}

// RunContext is Run with tracing: the replay runs under a "sim.replay"
// span recording the packet count, engine, and throughput. It is
// RunWith on a single shard with the default engine and dedup policy.
func (p *Profiler) RunContext(ctx context.Context, trace *trafficgen.Trace) (*Profile, error) {
	return p.RunWith(ctx, trace, RunOptions{Shards: 1})
}

// collector accumulates one replay slice into a Profile: each worker of a
// sharded replay owns one (with its own Switch), and the sequential path
// uses a single one over the profiler's Switch.
type collector struct {
	p    *Profiler
	sw   *sim.Switch
	prof *Profile
	keys keyInterner
	// entries and seen are per-packet scratch, reused across packets;
	// ins/outs/marks are per-batch scratch for the ProcessBatch path.
	entries []string
	seen    map[string]bool
	ins     []sim.Input
	outs    []sim.Output
	marks   []FieldInfo
}

func newCollector(p *Profiler, sw *sim.Switch) *collector {
	return &collector{
		p:  p,
		sw: sw,
		prof: &Profile{
			Hits:         map[string]int{},
			Applied:      map[string]int{},
			ActionCounts: map[string]int{},
			Sets:         map[string]int{},
		},
		seen: make(map[string]bool, 8),
	}
}

// observeBatch replays packets[lo:hi) through the Switch in one
// ProcessBatch call and folds each result into the profile. weights and
// firstIdx, when non-nil, carry dedup multiplicities and the original
// trace index of each representative (for deterministic error reports);
// without them each packet has weight 1 and its own index.
func (c *collector) observeBatch(packets []trafficgen.Packet, weights, firstIdx []int, lo, hi int) error {
	ins := c.ins[:0]
	for i := lo; i < hi; i++ {
		ins = append(ins, sim.Input{Port: packets[i].Port, Data: packets[i].Data})
	}
	c.ins = ins
	if cap(c.outs) < len(ins) {
		c.outs = make([]sim.Output, len(ins))
	}
	outs := c.outs[:len(ins)]
	// The profiler reads executions from the trailer, not Output.Exec, and
	// never keeps Data past the fold — so both per-packet allocations of
	// the process loop are skipped.
	k, err := c.sw.ProcessBatch(ins, outs, sim.BatchOpts{SkipExec: true, ReuseData: true})
	if err != nil {
		return fmt.Errorf("profile: packet %d: %w", origIndex(firstIdx, lo+k), err)
	}
	for j := range outs {
		w := 1
		if weights != nil {
			w = weights[lo+j]
		}
		if err := c.foldOutput(origIndex(firstIdx, lo+j), &outs[j], w); err != nil {
			return err
		}
	}
	return nil
}

// origIndex maps a replay position to its original trace index.
func origIndex(firstIdx []int, i int) int {
	if firstIdx != nil {
		return firstIdx[i]
	}
	return i
}

// foldOutput folds one packet's execution set into the profile with the
// given multiplicity.
func (c *collector) foldOutput(i int, out *sim.Output, weight int) error {
	executed, err := c.p.Ins.AppendExecuted(c.marks[:0], out.Data)
	if err != nil {
		return fmt.Errorf("profile: packet %d: %w", i, err)
	}
	c.marks = executed
	prof := c.prof
	prof.TotalPackets += weight
	if out.WouldDrop {
		prof.Drops += weight
	}
	if out.ToCPU {
		prof.ToCPU += weight
	}
	entries := c.entries[:0]
	clear(c.seen)
	for _, info := range executed {
		base := info.Table + "." + info.Action
		entry := base
		if info.Miss || c.p.isMissDefault(base, info.Table, info.Action) {
			entry = base + missTag
		} else {
			prof.Hits[info.Table] += weight
		}
		if !c.seen[info.Table] {
			c.seen[info.Table] = true
			prof.Applied[info.Table] += weight
		}
		prof.ActionCounts[base] += weight
		entries = append(entries, entry)
	}
	c.entries = entries
	if len(entries) > 0 {
		prof.Sets[c.keys.key(entries)] += weight
	}
	return nil
}

// isDefaultOnReadsTable classifies an execution as a (probable) miss: the
// action is the effective default — a runtime table_set_default override,
// or the declared default — of a table that has a reads block. A rule
// installing the default-named action is misclassified as a miss; the
// standard profiling approximation, irrelevant to the example programs.
func (p *Profiler) isDefaultOnReadsTable(table, action string) bool {
	t := p.Ins.AST.Table(table)
	if t == nil || len(t.Reads) == 0 {
		return false
	}
	if p.cfg != nil {
		if d := p.cfg.DefaultFor(table); d != nil {
			return d.Action == action
		}
	}
	return t.DefaultAction == action
}

// Run profiles a program on a trace in one call.
func Run(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*Profile, error) {
	return RunContext(context.Background(), ast, cfg, trace)
}

// RunContext is Run with tracing: instrumentation and the replay loop
// each get a span under ctx's current span.
func RunContext(ctx context.Context, ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace) (*Profile, error) {
	p, err := NewProfilerContext(ctx, ast, cfg)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, trace)
}
