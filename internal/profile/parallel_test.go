package profile

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/workloads"
)

// TestShardedReplayMatchesSequential is the merge-determinism property:
// for every bundled workload, shard count, and trace seed, the sharded
// replay's merged profile is Profile.Equal to the sequential replay.
// Stateful workloads exercise the sequential fallback through the same
// entry point.
func TestShardedReplayMatchesSequential(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 7} {
			trace, err := w.Trace(seed)
			if err != nil {
				t.Fatalf("%s: trace: %v", name, err)
			}
			p, err := NewProfiler(p4.MustParse(w.Source), w.Config())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := p.Run(trace)
			if err != nil {
				t.Fatalf("%s: sequential: %v", name, err)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				got, err := p.RunSharded(trace, shards)
				if err != nil {
					t.Fatalf("%s seed=%d shards=%d: %v", name, seed, shards, err)
				}
				if diff := want.Diff(got); diff != "" {
					t.Errorf("%s seed=%d shards=%d: sharded profile diverged: %s", name, seed, shards, diff)
				}
				if want.ToCPU != got.ToCPU || want.Drops != got.Drops {
					t.Errorf("%s seed=%d shards=%d: drops/to-cpu diverged: %d/%d vs %d/%d",
						name, seed, shards, want.Drops, want.ToCPU, got.Drops, got.ToCPU)
				}
				if !reflect.DeepEqual(want.Applied, got.Applied) {
					t.Errorf("%s seed=%d shards=%d: applied counts diverged", name, seed, shards)
				}
				if !reflect.DeepEqual(want.ActionCounts, got.ActionCounts) {
					t.Errorf("%s seed=%d shards=%d: action counts diverged", name, seed, shards)
				}
			}
		}
	}
}

// TestStatefulTablesPerWorkload pins the static fallback detection: the
// sketch/Bloom-filter workloads are stateful (their registers are read and
// written on the packet path), the rest shard freely.
func TestStatefulTablesPerWorkload(t *testing.T) {
	want := map[string][]string{
		"ex1":         {"Sketch_1", "Sketch_2"},
		"failure":     {"retrans_cms_1", "retrans_cms_2", "retrans_detect"},
		"l2l3_acl":    nil,
		"maglev":      {"lb_backend", "lb_sig"},
		"natgre":      nil,
		"quickstart":  nil,
		"sourceguard": {"sg_bf1", "sg_bf2"},
		"stress":      nil,
		"syncookie":   {"sc_check"},
	}
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProfiler(p4.MustParse(w.Source), w.Config())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		expect, known := want[name]
		if !known {
			t.Errorf("workload %s not covered by this test; add its expectation", name)
			continue
		}
		if got := p.StatefulTables(); !reflect.DeepEqual(got, expect) {
			t.Errorf("%s: StatefulTables() = %v, want %v", name, got, expect)
		}
	}
}

// TestShardedReplaySpans checks which replay path actually ran: a
// stateless workload under >1 shards emits the sharded span, a stateful
// one emits the fallback span (naming its tables) and replays
// sequentially.
func TestShardedReplaySpans(t *testing.T) {
	replaySpans := func(name string, shards int) map[string]int {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := w.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		col := obs.NewCollector(0)
		ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
		if _, err := RunParallelContext(ctx, p4.MustParse(w.Source), w.Config(), trace, shards); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts := map[string]int{}
		for _, s := range col.Spans() {
			counts[s.Name]++
		}
		return counts
	}
	if got := replaySpans("natgre", 4); got["sim.replay-sharded"] != 1 || got["sim.replay"] != 0 {
		t.Errorf("natgre at 4 shards: spans %v, want one sim.replay-sharded and no sim.replay", got)
	}
	if got := replaySpans("ex1", 4); got["sim.replay-fallback"] != 1 || got["sim.replay"] != 1 {
		t.Errorf("ex1 at 4 shards: spans %v, want sim.replay-fallback plus a sequential sim.replay", got)
	}
}

func TestMergeProfiles(t *testing.T) {
	a := &Profile{
		TotalPackets: 3,
		Hits:         map[string]int{"t1": 2},
		Applied:      map[string]int{"t1": 3},
		ActionCounts: map[string]int{"t1.a": 2, "t1.miss": 1},
		Sets:         map[string]int{"t1.a": 2, "t1.miss!miss": 1},
		Drops:        1,
	}
	b := &Profile{
		TotalPackets: 2,
		Hits:         map[string]int{"t1": 1, "t2": 1},
		Applied:      map[string]int{"t1": 2, "t2": 1},
		ActionCounts: map[string]int{"t1.a": 1, "t2.b": 1},
		Sets:         map[string]int{"t1.a": 1, "t1.a|t2.b": 1},
		ToCPU:        1,
	}
	got := MergeProfiles(a, nil, b)
	want := &Profile{
		TotalPackets: 5,
		Hits:         map[string]int{"t1": 3, "t2": 1},
		Applied:      map[string]int{"t1": 5, "t2": 1},
		ActionCounts: map[string]int{"t1.a": 3, "t1.miss": 1, "t2.b": 1},
		Sets:         map[string]int{"t1.a": 3, "t1.miss!miss": 1, "t1.a|t2.b": 1},
		Drops:        1,
		ToCPU:        1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeProfiles = %+v, want %+v", got, want)
	}
	empty := MergeProfiles()
	if empty.TotalPackets != 0 || len(empty.Sets) != 0 {
		t.Errorf("MergeProfiles() = %+v, want empty", empty)
	}
}

func TestKeyInternerMatchesSetKey(t *testing.T) {
	var ki keyInterner
	cases := [][]string{
		{"t1.a"},
		{"t2.b", "t1.a"},
		{"t2.b", "t1.a"}, // repeat hits the memo
		{"t3.c!miss", "t1.a", "t2.b"},
		{},
	}
	for _, entries := range cases {
		if got, want := ki.key(entries), SetKey(entries); got != want {
			t.Errorf("key(%v) = %q, want %q", entries, got, want)
		}
	}
}

// TestKeyInternerSteadyStateAllocs proves the point of the interner: once
// a set has been seen, keying it again allocates nothing, where SetKey
// allocates on every call.
func TestKeyInternerSteadyStateAllocs(t *testing.T) {
	entries := []string{"acl_udp.drop", "ipv4_fwd.set_egr", "acl_dhcp.nop!miss"}
	var ki keyInterner
	ki.key(entries) // warm the memo
	if allocs := testing.AllocsPerRun(100, func() { ki.key(entries) }); allocs != 0 {
		t.Errorf("interned key: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { SetKey(entries) }); allocs == 0 {
		t.Errorf("SetKey unexpectedly allocation-free; the interner may be unnecessary")
	}
}

// TestShardedReplayScalesWithCores asserts the wall-clock point of the
// engine: on a machine with at least 4 CPUs, 4-shard replay of a
// register-free workload is at least 1.5x the sequential throughput (the
// work is embarrassingly parallel, so 4 real cores comfortably clear a
// 1.5x floor even under scheduler noise). On fewer cores the shards
// time-slice and no speedup is possible, so the test skips — merge
// *correctness* is covered unconditionally above; this guards the
// *performance* claim where it can hold.
func TestShardedReplayScalesWithCores(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short mode")
	}
	if cpus := runtime.GOMAXPROCS(0); cpus < 4 {
		t.Skipf("needs >=4 CPUs for a parallel speedup, have %d", cpus)
	}
	w, err := workloads.Get("natgre")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := w.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfiler(p4.MustParse(w.Source), w.Config())
	if err != nil {
		t.Fatal(err)
	}
	replay := func(shards int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ { // best-of-3 damps scheduler noise
			start := time.Now()
			if _, err := p.RunSharded(trace, shards); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	seq, par := replay(1), replay(4)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, 4 shards %v, speedup %.2fx", seq, par, speedup)
	if speedup < 1.5 {
		t.Errorf("4-shard replay speedup %.2fx, want >= 1.5x", speedup)
	}
}

func BenchmarkSetKey(b *testing.B) {
	entries := []string{"acl_udp.drop", "ipv4_fwd.set_egr", "acl_dhcp.nop!miss"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SetKey(entries)
	}
}

func BenchmarkKeyInterner(b *testing.B) {
	entries := []string{"acl_udp.drop", "ipv4_fwd.set_egr", "acl_dhcp.nop!miss"}
	var ki keyInterner
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ki.key(entries)
	}
}
