// Package profile implements P2GO's Phase 1: it instruments a program so
// every packet carries a profiling header recording the actions applied to
// it, replays a traffic trace through the behavioral simulator, and builds
// the profile — per-table hit rates and the sets of non-exclusive actions.
package profile

import (
	"fmt"
	"sort"

	"p2go/internal/p4"
)

// TrailerName is the header instance the instrumentation appends to every
// outgoing packet.
const TrailerName = "p2go_prof"

// trailerType is its header type.
const trailerType = "p2go_prof_t"

// missActionPrefix names the synthesized default actions that make table
// misses observable.
const missActionPrefix = "p2go_miss_"

// FieldInfo describes one profiling-header field.
type FieldInfo struct {
	Field  string // field name inside the profiling header
	Table  string
	Action string
	// Miss marks the synthesized miss-marker default actions.
	Miss bool
}

// Instrumented is an instrumented program plus the marker mapping.
type Instrumented struct {
	AST    *p4.Program
	Fields []FieldInfo
	// byTableAction maps (table, action) to the marker field name.
	byTableAction map[[2]string]string
}

// TrailerBytes returns the byte length of the profiling header.
func (ins *Instrumented) TrailerBytes() int {
	ht := ins.AST.HeaderType(trailerType)
	return (ht.Bits() + 7) / 8
}

// Field returns the marker field for (table, action), or "".
func (ins *Instrumented) Field(table, action string) string {
	return ins.byTableAction[[2]string{table, action}]
}

// Instrument clones the program and rewrites it so each executed action
// sets a dedicated 8-bit field of a profiling header appended to the
// packet:
//
//   - actions shared between tables are specialized (cloned per table) so a
//     marker identifies both the action and the table;
//   - tables with a reads block but no default action get a synthesized
//     marker-only default, making misses observable;
//   - every action body gains one modify_field on its own marker field.
//
// Each marker is a distinct field written by a single action, so the
// instrumentation adds no dependencies and cannot increase the program's
// required stages (§3.1).
func Instrument(src *p4.Program) (*Instrumented, error) {
	ast := p4.Clone(src)
	p4.EnsureBuiltins(ast)
	if ast.Instance(TrailerName) != nil || ast.HeaderType(trailerType) != nil {
		return nil, fmt.Errorf("profile: program already declares %s", TrailerName)
	}

	// Specialize actions used by more than one table.
	owner := map[string]string{} // action -> first table using it
	for _, t := range ast.Tables {
		names := append([]string(nil), t.ActionNames...)
		for i, an := range names {
			first, used := owner[an]
			if !used {
				owner[an] = t.Name
				continue
			}
			if first == t.Name {
				continue // same table referencing the action twice
			}
			// Clone the action under a table-specific name.
			spec := an + "__" + t.Name
			if ast.Action(spec) == nil {
				orig := ast.Action(an)
				cp := &p4.ActionDecl{Name: spec}
				cp.Params = append(cp.Params, orig.Params...)
				for _, call := range orig.Body {
					c := &p4.PrimitiveCall{Name: call.Name}
					c.Args = append(c.Args, call.Args...)
					cp.Body = append(cp.Body, c)
				}
				ast.Actions = append(ast.Actions, cp)
				ast.Decls = append(ast.Decls, cp)
			}
			t.ActionNames[i] = spec
			if t.DefaultAction == an {
				t.DefaultAction = spec
			}
			owner[spec] = t.Name
		}
	}

	ins := &Instrumented{AST: ast, byTableAction: map[[2]string]string{}}
	ht := &p4.HeaderType{Name: trailerType}
	fieldIdx := 0
	addMarker := func(table, action string, miss bool) string {
		name := fmt.Sprintf("m%d", fieldIdx)
		fieldIdx++
		ht.Fields = append(ht.Fields, &p4.FieldDecl{Name: name, Width: 8})
		ins.Fields = append(ins.Fields, FieldInfo{Field: name, Table: table, Action: action, Miss: miss})
		ins.byTableAction[[2]string{table, action}] = name
		return name
	}

	// One marker per (table, action); synthesized miss markers for tables
	// that would otherwise execute nothing on a miss.
	for _, t := range ast.Tables {
		for _, an := range t.ActionNames {
			addMarker(t.Name, an, false)
		}
		if len(t.Reads) > 0 && t.DefaultAction == "" {
			missName := missActionPrefix + t.Name
			field := addMarker(t.Name, missName, true)
			act := &p4.ActionDecl{
				Name: missName,
				Body: []*p4.PrimitiveCall{{
					Name: p4.PrimModifyField,
					Args: []p4.Expr{p4.FieldRef{Instance: TrailerName, Field: field}, p4.IntLit{Value: 1}},
				}},
			}
			ast.Actions = append(ast.Actions, act)
			ast.Decls = append(ast.Decls, act)
			t.ActionNames = append(t.ActionNames, missName)
			t.DefaultAction = missName
		}
	}

	// Append the marker write to each instrumented action body.
	for _, info := range ins.Fields {
		if info.Miss {
			continue // body already writes the marker
		}
		act := ast.Action(info.Action)
		if act == nil {
			return nil, fmt.Errorf("profile: action %q vanished during instrumentation", info.Action)
		}
		act.Body = append(act.Body, &p4.PrimitiveCall{
			Name: p4.PrimModifyField,
			Args: []p4.Expr{p4.FieldRef{Instance: TrailerName, Field: info.Field}, p4.IntLit{Value: 1}},
		})
	}

	if len(ht.Fields) == 0 {
		return nil, fmt.Errorf("profile: program has no table actions to instrument")
	}
	inst := &p4.Instance{TypeName: trailerType, Name: TrailerName}
	ast.HeaderTypes = append(ast.HeaderTypes, ht)
	ast.Instances = append(ast.Instances, inst)
	ast.Decls = append(ast.Decls, ht, inst)

	if err := p4.Check(ast); err != nil {
		return nil, fmt.Errorf("profile: instrumented program fails checking: %w", err)
	}
	return ins, nil
}

// ParseTrailer extracts the marker values from an outgoing packet and
// returns the executed (table, action) pairs, in marker order.
func (ins *Instrumented) ParseTrailer(data []byte) ([]FieldInfo, error) {
	return ins.AppendExecuted(nil, data)
}

// AppendExecuted is ParseTrailer appending into dst, for callers that
// reuse a scratch slice across packets (the profiler's replay loop).
func (ins *Instrumented) AppendExecuted(dst []FieldInfo, data []byte) ([]FieldInfo, error) {
	n := ins.TrailerBytes()
	if len(data) < n {
		return nil, fmt.Errorf("profile: packet shorter (%d bytes) than trailer (%d)", len(data), n)
	}
	trailer := data[len(data)-n:]
	for i, info := range ins.Fields {
		if trailer[i] != 0 {
			dst = append(dst, info)
		}
	}
	return dst, nil
}

// sortedFieldNames is a test helper listing marker fields in order.
func (ins *Instrumented) sortedFieldNames() []string {
	var out []string
	for _, f := range ins.Fields {
		out = append(out, f.Field)
	}
	sort.Strings(out)
	return out
}
