// Parallel profiling engine: the trace is sharded across workers, each
// replaying its contiguous slice against an independent Switch into a
// per-worker Profile, and the shards are merged deterministically — every
// profile quantity is a commutative sum (hit counts, applied counts,
// action counts, execution-set counts, drop/redirect totals), so the
// merged profile is identical to a sequential replay regardless of worker
// scheduling. Programs with cross-packet state (registers that are both
// read and written, e.g. Count-Min sketches and Bloom filters) are
// detected statically from the IR and fall back to sequential replay:
// their per-packet behavior depends on replay order, which sharding would
// change.
package profile

import (
	"context"
	"runtime"
	"sort"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/trafficgen"
)

// DefaultShards is the replay parallelism used when the caller passes a
// non-positive shard count: one worker per available CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// keyInterner memoizes SetKey: execution sets recur for almost every
// packet (a trace exercises few distinct paths), so the sort+join runs
// once per distinct set instead of once per packet. The lookup key is the
// entries joined in execution order, built in a reusable buffer — a map
// probe with string(buf) does not allocate — and the value is the
// canonical sorted key. Not safe for concurrent use; each collector owns
// one.
type keyInterner struct {
	m   map[string]string
	buf []byte
}

// key returns SetKey(entries), memoized.
func (ki *keyInterner) key(entries []string) string {
	ki.buf = ki.buf[:0]
	for i, e := range entries {
		if i > 0 {
			ki.buf = append(ki.buf, '|')
		}
		ki.buf = append(ki.buf, e...)
	}
	if k, ok := ki.m[string(ki.buf)]; ok {
		return k
	}
	if ki.m == nil {
		ki.m = map[string]string{}
	}
	canon := SetKey(entries)
	ki.m[string(ki.buf)] = canon
	return canon
}

// MergeProfiles folds per-shard profiles into one. Every field is a
// commutative sum, so the result does not depend on shard order — but the
// shards are passed in trace order anyway, keeping the operation's
// determinism obvious.
func MergeProfiles(parts ...*Profile) *Profile {
	out := &Profile{
		Hits:         map[string]int{},
		Applied:      map[string]int{},
		ActionCounts: map[string]int{},
		Sets:         map[string]int{},
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.TotalPackets += p.TotalPackets
		out.Drops += p.Drops
		out.ToCPU += p.ToCPU
		for k, v := range p.Hits {
			out.Hits[k] += v
		}
		for k, v := range p.Applied {
			out.Applied[k] += v
		}
		for k, v := range p.ActionCounts {
			out.ActionCounts[k] += v
		}
		for k, v := range p.Sets {
			out.Sets[k] += v
		}
	}
	return out
}

// StatefulTables reports the tables whose replay behavior depends on
// cross-packet state, detected statically from the IR: a table is
// stateful when it owns a register that is both read and written by its
// actions (the IR already guarantees a register is local to one table).
// A write-only register never feeds back into packet processing, and a
// read-only register holds its reset value of zero for the whole replay,
// so neither blocks sharding; counters only count and are not observable
// by the program. The returned names are sorted.
func StatefulTables(prog *ir.Program) []string {
	var out []string
	for _, t := range prog.Ordered {
		reads := map[string]bool{}
		writes := map[string]bool{}
		for _, a := range t.Actions {
			for _, r := range a.RegReads {
				reads[r] = true
			}
			for _, r := range a.RegWrites {
				writes[r] = true
			}
		}
		for r := range reads {
			if writes[r] {
				out = append(out, t.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// StatefulTables reports the instrumented program's stateful tables — the
// ones that force sharded replay to fall back to sequential.
func (p *Profiler) StatefulTables() []string { return StatefulTables(p.prog) }

// RunSharded replays the trace across shards workers and merges the
// per-worker profiles. See RunShardedContext.
func (p *Profiler) RunSharded(trace *trafficgen.Trace, shards int) (*Profile, error) {
	return p.RunShardedContext(context.Background(), trace, shards)
}

// RunShardedContext shards the trace across up to shards workers (<=0
// means one per CPU), each replaying its contiguous slice against an
// independent Switch built from the shared plan, and deterministically
// merges the per-worker profiles — a result Profile.Equal to the
// sequential replay. Programs with stateful tables (see StatefulTables)
// fall back to one worker with the fallback reason recorded on a span.
// It is RunWith with the default engine and dedup policy.
func (p *Profiler) RunShardedContext(ctx context.Context, trace *trafficgen.Trace, shards int) (*Profile, error) {
	return p.RunWith(ctx, trace, RunOptions{Shards: shards})
}

// RunParallel profiles a program on a trace with sharded replay in one
// call; shards <= 0 means one worker per CPU.
func RunParallel(ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace, shards int) (*Profile, error) {
	return RunParallelContext(context.Background(), ast, cfg, trace, shards)
}

// RunParallelContext is RunParallel with tracing and cancellation. With
// shards == 1 (or a stateful program) it is exactly RunContext.
func RunParallelContext(ctx context.Context, ast *p4.Program, cfg *rt.Config, trace *trafficgen.Trace, shards int) (*Profile, error) {
	p, err := NewProfilerContext(ctx, ast, cfg)
	if err != nil {
		return nil, err
	}
	return p.RunShardedContext(ctx, trace, shards)
}
