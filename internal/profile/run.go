// Replay entry point and flow deduplication. RunWith is the single
// convergence point for every profiling replay: it picks the execution
// engine (the compiled plan, or the interpreter on request or fallback),
// decides whether flow-level deduplication applies, shards the trace when
// asked, and reports all of it through span attributes and the profile's
// EngineReport — a silent fallback to a slow path is visible instead of
// just slow.
//
// Flow deduplication collapses packets identical in (ingress port,
// payload) into weighted representatives: the pipeline is a deterministic
// function of those two inputs for stateless programs, so replay cost
// drops to O(unique flows) while every profile counter is scaled by the
// representative's multiplicity. The result is guaranteed Profile.Equal
// to the packet-by-packet replay; programs with stateful tables skip
// dedup exactly the way they skip sharding.
package profile

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"p2go/internal/ir"
	"p2go/internal/obs"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/sim"
	"p2go/internal/trafficgen"
)

// RunOptions tunes RunWith.
type RunOptions struct {
	// Shards is the replay worker count; <= 0 means one per CPU. Stateful
	// programs always run on one worker.
	Shards int
	// Interpret forces the tree-walking interpreter — the reference engine
	// the differential tests and bench rows compare against.
	Interpret bool
	// NoDedup disables flow-level trace deduplication.
	NoDedup bool
}

// EngineReport records how a replay actually executed, attached to the
// resulting Profile (and surfaced in report JSON and span attributes).
// It is ignored by Equal/Diff: two replays that produce the same counts
// are the same profile however they were computed.
type EngineReport struct {
	// Engine is "compiled" or "interpreter".
	Engine string `json:"engine"`
	// FallbackReason says why the interpreter ran when it did ("forced",
	// or the lowering error).
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Dedup reports whether flow deduplication was applied; DedupReason
	// says why not when it wasn't ("disabled", "stateful-tables").
	Dedup       bool   `json:"dedup"`
	DedupReason string `json:"dedup_reason,omitempty"`
	// UniquePackets is the number of representatives actually replayed
	// (equal to the profile's TotalPackets without dedup).
	UniquePackets int `json:"unique_packets,omitempty"`
	// Shards is the worker count used.
	Shards int `json:"shards,omitempty"`
}

// String renders the one-line human form of the block, e.g.
// "compiled, flow dedup 512 unique, 4 shards" or
// "interpreter (lowering: ...), no dedup (stateful-tables)".
func (e *EngineReport) String() string {
	var b strings.Builder
	b.WriteString(e.Engine)
	if e.FallbackReason != "" {
		fmt.Fprintf(&b, " (%s)", e.FallbackReason)
	}
	if e.Dedup {
		fmt.Fprintf(&b, ", flow dedup %d unique", e.UniquePackets)
	} else {
		b.WriteString(", no dedup")
		if e.DedupReason != "" {
			fmt.Fprintf(&b, " (%s)", e.DedupReason)
		}
	}
	if e.Shards > 1 {
		fmt.Fprintf(&b, ", %d shards", e.Shards)
	}
	return b.String()
}

// Prepared is the immutable, reusable part of a profiler: the
// instrumented program, its IR, and the lowered execution plan. One
// Prepared serves any number of replays and any number of concurrent
// Profilers, so repeated optimizer phases (and the daemon's analysis
// cache) pay instrumentation and lowering once per (program, config).
type Prepared struct {
	Ins    *Instrumented
	source *p4.Program
	cfg    *rt.Config
	prog   *ir.Program
	opts   sim.Options
	plan   *sim.Plan
	// interp is the same pipeline with lowering disabled, shared by
	// forced-interpreter replays.
	interp      *sim.Plan
	stateful    []string
	missDefault map[string]bool
}

// Prepare is PrepareContext without tracing.
func Prepare(ast *p4.Program, cfg *rt.Config) (*Prepared, error) {
	return PrepareContext(context.Background(), ast, cfg)
}

// PrepareContext instruments the program, builds its IR, and lowers the
// execution plan under a "profile.instrument" span.
func PrepareContext(ctx context.Context, ast *p4.Program, cfg *rt.Config) (*Prepared, error) {
	_, sp := obs.Start(ctx, "profile.instrument")
	defer sp.End()
	ins, err := Instrument(ast)
	if err != nil {
		return nil, err
	}
	prog, err := ir.Build(ins.AST)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	opts := sim.Options{Trailer: TrailerName, NeutralizeDrops: true}
	plan, err := sim.NewPlan(prog, cfg, opts)
	if err != nil {
		return nil, err
	}
	iopts := opts
	iopts.Interpret = true
	interp, err := sim.NewPlan(prog, cfg, iopts)
	if err != nil {
		return nil, err
	}
	md := map[string]bool{}
	for _, t := range ins.AST.Tables {
		if len(t.Reads) == 0 {
			continue
		}
		action := t.DefaultAction
		if cfg != nil {
			if d := cfg.DefaultFor(t.Name); d != nil {
				action = d.Action
			}
		}
		if action != "" {
			md[t.Name+"."+action] = true
		}
	}
	sp.SetAttr(obs.Int("tables", len(ins.AST.Tables)))
	return &Prepared{
		Ins:         ins,
		source:      ast,
		cfg:         cfg,
		prog:        prog,
		opts:        opts,
		plan:        plan,
		interp:      interp,
		stateful:    StatefulTables(prog),
		missDefault: md,
	}, nil
}

// Tables returns the instrumented program's table count (the
// "profile.instrument" span attribute, re-emitted on plan-cache hits).
func (pr *Prepared) Tables() int { return len(pr.Ins.AST.Tables) }

// Engine reports the execution engine Profilers built from this Prepared
// use, and the fallback reason when it is the interpreter.
func (pr *Prepared) Engine() (engine, reason string) { return pr.plan.Engine() }

// Profiler instantiates a Profiler over the shared plan with a fresh
// Switch (fresh register/counter state). Each call is independent:
// concurrent callers each take their own.
func (pr *Prepared) Profiler() *Profiler {
	return &Profiler{
		Ins:    pr.Ins,
		Switch: sim.NewFromPlan(pr.plan),
		source: pr.source,
		cfg:    pr.cfg,
		prog:   pr.prog,
		opts:   pr.opts,
		prep:   pr,
	}
}

// statefulTables returns the cached stateful-table list when prepared.
func (p *Profiler) statefulTables() []string {
	if p.prep != nil {
		return p.prep.stateful
	}
	return p.StatefulTables()
}

// interpPlan returns the interpreter-forced plan for this profiler.
func (p *Profiler) interpPlan() (*sim.Plan, error) {
	if p.prep != nil {
		return p.prep.interp, nil
	}
	iopts := p.opts
	iopts.Interpret = true
	return sim.NewPlan(p.prog, p.cfg, iopts)
}

// isMissDefault classifies a "table.action" execution entry as a
// (probable) miss — see Profiler.isDefaultOnReadsTable.
func (p *Profiler) isMissDefault(entry, table, action string) bool {
	if p.prep != nil {
		return p.prep.missDefault[entry]
	}
	return p.isDefaultOnReadsTable(table, action)
}

// RunWith replays the trace and builds the profile. All replay paths —
// sequential, sharded, deduplicated, interpreter-forced — converge here;
// RunContext and RunShardedContext are wrappers. The resulting profile
// carries an EngineReport describing how the replay executed, and is
// Profile.Equal across every option combination (asserted by the
// differential harness on all bundled workloads).
func (p *Profiler) RunWith(ctx context.Context, trace *trafficgen.Trace, opts RunOptions) (*Profile, error) {
	n := len(trace.Packets)
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	dedup := !opts.NoDedup
	dedupReason := ""
	if opts.NoDedup {
		dedupReason = "disabled"
	}
	// Stateful programs (registers both read and written: sketches, Bloom
	// filters) depend on replay order and multiplicity, so they get
	// neither sharding nor dedup. The fallback is recorded on a span so
	// the slow path is visible.
	if stateful := p.statefulTables(); len(stateful) > 0 && (shards > 1 || dedup) {
		_, fsp := obs.Start(ctx, "sim.replay-fallback",
			obs.String("reason", "stateful-tables"),
			obs.String("tables", strings.Join(stateful, ",")))
		fsp.End()
		shards = 1
		if dedup {
			dedup, dedupReason = false, "stateful-tables"
		}
	}
	engine, fallback := p.Switch.Engine()
	if opts.Interpret {
		engine, fallback = "interpreter", "forced"
	}
	rep := &EngineReport{
		Engine:         engine,
		FallbackReason: fallback,
		Dedup:          dedup,
		DedupReason:    dedupReason,
		Shards:         shards,
	}
	attrs := []obs.Attr{obs.String("engine", engine), obs.Bool("dedup", dedup)}

	if shards <= 1 {
		sw := p.Switch
		if opts.Interpret {
			ipl, err := p.interpPlan()
			if err != nil {
				return nil, err
			}
			sw = sim.NewFromPlan(ipl)
		} else {
			sw.Reset()
		}
		col := newCollector(p, sw)
		packets := trace.Packets
		var weights, firstIdx []int
		if dedup {
			packets, weights, firstIdx = dedupPackets(trace.Packets, 0, n)
			attrs = append(attrs, obs.Int("unique_packets", len(packets)))
		}
		rep.UniquePackets = len(packets)
		err := sim.ReplayBatch(ctx, n, len(packets), func(lo, hi int) error {
			return col.observeBatch(packets, weights, firstIdx, lo, hi)
		}, attrs...)
		if err != nil {
			return nil, err
		}
		col.prof.Engine = rep
		return col.prof, nil
	}

	pl := p.Switch.Plan()
	if opts.Interpret {
		ipl, err := p.interpPlan()
		if err != nil {
			return nil, err
		}
		pl = ipl
	}
	spanAttrs := append([]obs.Attr{obs.Int("packets", n), obs.Int("shards", shards)}, attrs...)
	ctx, sp := obs.Start(ctx, "sim.replay-sharded", spanAttrs...)
	defer sp.End()
	start := time.Now()

	parts := make([]*Profile, shards)
	uniq := make([]int, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo := w * n / shards
		hi := (w + 1) * n / shards
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w], uniq[w], errs[w] = p.replayShard(ctx, pl, trace, lo, hi, dedup)
		}(w, lo, hi)
	}
	wg.Wait()
	// First error in shard (trace) order, so a bad packet reports the
	// same failure whatever the worker scheduling was.
	for _, err := range errs {
		if err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
			return nil, err
		}
	}
	merged := MergeProfiles(parts...)
	for _, u := range uniq {
		rep.UniquePackets += u
	}
	if dedup {
		sp.SetAttr(obs.Int("unique_packets", rep.UniquePackets))
	}
	sp.SetAttr(obs.Float("packets_per_sec", sim.Throughput(merged.TotalPackets, time.Since(start))))
	merged.Engine = rep
	return merged, nil
}

// replayShard replays trace packets [lo, hi) on a fresh Switch built
// from the shared plan, deduplicating within the shard when enabled.
// Returns the shard profile and the number of packets actually replayed.
func (p *Profiler) replayShard(ctx context.Context, pl *sim.Plan, trace *trafficgen.Trace, lo, hi int, dedup bool) (*Profile, int, error) {
	col := newCollector(p, sim.NewFromPlan(pl))
	packets := trace.Packets
	var weights, firstIdx []int
	if dedup {
		packets, weights, firstIdx = dedupPackets(trace.Packets, lo, hi)
		lo, hi = 0, len(packets)
	}
	// Check cancellation between batches: a canceled profile should stop
	// burning CPU on a large shard.
	for b := lo; b < hi; b += sim.ReplayBatchSize {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		e := b + sim.ReplayBatchSize
		if e > hi {
			e = hi
		}
		if err := col.observeBatch(packets, weights, firstIdx, b, e); err != nil {
			return nil, 0, err
		}
	}
	return col.prof, hi - lo, nil
}

// dedupPackets collapses packets[lo:hi) that are identical in (port,
// payload) into representatives in first-occurrence order, returning the
// multiplicity of each and the trace index of its first occurrence (for
// deterministic error reports).
func dedupPackets(packets []trafficgen.Packet, lo, hi int) ([]trafficgen.Packet, []int, []int) {
	idx := make(map[string]int, (hi-lo)/4+1)
	var buf []byte
	var reps []trafficgen.Packet
	var weights, firstIdx []int
	for i := lo; i < hi; i++ {
		pkt := &packets[i]
		buf = append(buf[:0],
			byte(pkt.Port>>56), byte(pkt.Port>>48), byte(pkt.Port>>40), byte(pkt.Port>>32),
			byte(pkt.Port>>24), byte(pkt.Port>>16), byte(pkt.Port>>8), byte(pkt.Port))
		buf = append(buf, pkt.Data...)
		// The string(buf) map probe does not allocate; the key is only
		// materialized for first occurrences.
		if j, ok := idx[string(buf)]; ok {
			weights[j]++
			continue
		}
		idx[string(buf)] = len(reps)
		reps = append(reps, *pkt)
		weights = append(weights, 1)
		firstIdx = append(firstIdx, i)
	}
	return reps, weights, firstIdx
}
