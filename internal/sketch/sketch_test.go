package sketch

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"p2go/internal/hashes"
)

func key(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func TestCountMinExactWhenSparse(t *testing.T) {
	cms := NewCountMin32(2, 4096)
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			cms.Update(key(uint64(i)), 1)
		}
	}
	for i := 0; i < 10; i++ {
		if got := cms.Estimate(key(uint64(i))); got != uint64(i+1) {
			t.Errorf("estimate(%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := cms.Estimate(key(999)); got != 0 {
		t.Errorf("estimate(unseen) = %d, want 0", got)
	}
}

// TestCountMinNeverUndercounts is the CMS core invariant.
func TestCountMinNeverUndercounts(t *testing.T) {
	f := func(updates []uint16) bool {
		cms := NewCountMin32(2, 64) // small: force collisions
		truth := map[uint16]uint64{}
		for _, u := range updates {
			cms.Update(key(uint64(u)), 1)
			truth[u]++
		}
		for k, want := range truth {
			if cms.Estimate(key(uint64(k))) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountMinUpdateReturnsEstimate(t *testing.T) {
	cms := NewCountMin32(2, 1024)
	for i := 1; i <= 5; i++ {
		if got := cms.Update(key(7), 1); got != uint64(i) {
			t.Errorf("update %d returned %d", i, got)
		}
	}
}

func TestCountMinShrinkOvercounts(t *testing.T) {
	// The §3.3 phenomenon: shrinking a row increases collisions, so
	// estimates can only grow for the same update stream.
	stream := make([]uint64, 2000)
	rng := rand.New(rand.NewSource(42))
	for i := range stream {
		stream[i] = uint64(rng.Intn(500))
	}
	big := NewCountMin32(2, 4096)
	small := NewCountMin32(2, 97)
	for _, v := range stream {
		big.Update(key(v), 1)
		small.Update(key(v), 1)
	}
	grew := false
	for v := uint64(0); v < 500; v++ {
		b, s := big.Estimate(key(v)), small.Estimate(key(v))
		if s < b {
			t.Fatalf("small sketch undercounts key %d: %d < %d", v, s, b)
		}
		if s > b {
			grew = true
		}
	}
	if !grew {
		t.Error("shrinking 4096 -> 97 cells should inflate at least one estimate")
	}
}

func TestCountMinDistinctAlgorithmsNoSalt(t *testing.T) {
	// The P4 examples build the CMS from rows with different algorithms;
	// a single row means no salting and direct hash agreement.
	row := NewRow(hashes.CRC16, 16, 64000, 32)
	cms := NewCountMin(row)
	k := key(12345)
	cms.Update(k, 1)
	idx := int(hashes.Compute(hashes.CRC16, k, 16) % 64000)
	if row.Cells[idx] != 1 {
		t.Error("single-row CMS must use the raw hash (data-plane agreement)")
	}
}

func TestCountMinWidthMasking(t *testing.T) {
	cms := NewCountMin(NewRow(hashes.CRC32, 32, 16, 8)) // 8-bit counters
	for i := 0; i < 300; i++ {
		cms.Update(key(1), 1)
	}
	if got := cms.Estimate(key(1)); got != 300%256 {
		t.Errorf("8-bit counter wrapped to %d, want %d", got, 300%256)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(members []uint32) bool {
		bf := NewBloom(
			NewRow(hashes.CRC16, 16, 512, 8),
			NewRow(hashes.CRC32, 32, 512, 8),
		)
		for _, m := range members {
			bf.Add(key(uint64(m)))
		}
		for _, m := range members {
			if !bf.Contains(key(uint64(m))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBloomAbsentMostlyRejected(t *testing.T) {
	bf := NewBloom(
		NewRow(hashes.CRC16, 16, 4096, 8),
		NewRow(hashes.CRC32, 32, 4096, 8),
	)
	for i := 0; i < 50; i++ {
		bf.Add(key(uint64(i)))
	}
	fp := 0
	for i := 1000; i < 2000; i++ {
		if bf.Contains(key(uint64(i))) {
			fp++
		}
	}
	if fp > 5 {
		t.Errorf("false positives = %d/1000, want near zero at this load", fp)
	}
}

func TestBloomAddAndCheck(t *testing.T) {
	bf := NewBloom(NewRow(hashes.CRC32, 32, 4096, 8))
	if bf.AddAndCheck(key(1)) {
		t.Error("first add reported present")
	}
	if !bf.AddAndCheck(key(1)) {
		t.Error("second add reported absent")
	}
}

func TestBloomResetAndFillRatio(t *testing.T) {
	bf := NewBloom(NewRow(hashes.CRC32, 32, 100, 8))
	if bf.FillRatio() != 0 {
		t.Error("fresh filter fill ratio != 0")
	}
	for i := 0; i < 200; i++ {
		bf.Add(key(uint64(i)))
	}
	if bf.FillRatio() < 0.5 {
		t.Errorf("fill ratio = %f after 200 adds into 100 cells", bf.FillRatio())
	}
	bf.Reset()
	if bf.Contains(key(1)) {
		t.Error("Reset did not clear membership")
	}
}

func TestCountMinReset(t *testing.T) {
	cms := NewCountMin32(2, 64)
	cms.Update(key(5), 10)
	cms.Reset()
	if cms.Estimate(key(5)) != 0 {
		t.Error("Reset did not clear counts")
	}
}

func TestString(t *testing.T) {
	if NewCountMin32(2, 64).String() != "cms(2 rows x 64 cells)" {
		t.Errorf("String = %s", NewCountMin32(2, 64).String())
	}
}

func TestBloom32Salted(t *testing.T) {
	bf := NewBloom32(2, 4096)
	bf.Add(key(1))
	if !bf.Contains(key(1)) {
		t.Error("member missing")
	}
	// With salting, the two rows set different cells for the same key.
	i0 := bf.Rows[0].Index(saltKey(key(1), 0))
	i1 := bf.Rows[1].Index(saltKey(key(1), 1))
	if i0 == i1 {
		t.Skip("salted indexes coincide by chance")
	}
	if bf.Rows[0].Cells[i0] != 1 || bf.Rows[1].Cells[i1] != 1 {
		t.Error("salted rows did not set their cells")
	}
}
