// Package sketch provides software implementations of the probabilistic
// data structures the example programs build from register arrays: a
// Count-Min Sketch and a Bloom filter. They use the same hash algorithms
// as the data plane (internal/hashes), so a controller running them over
// the same keys observes the same cells — the property the offload
// experiments rely on, and the oracle the simulator tests compare against.
package sketch

import (
	"fmt"

	"p2go/internal/hashes"
)

// Row is one hash-indexed register row.
type Row struct {
	Algorithm   hashes.Algorithm
	OutputWidth int
	Cells       []uint64
	// WidthBits masks stored values like the data-plane register width.
	WidthBits int
}

// NewRow builds a row.
func NewRow(alg hashes.Algorithm, outputWidth, cells, widthBits int) *Row {
	return &Row{Algorithm: alg, OutputWidth: outputWidth, Cells: make([]uint64, cells), WidthBits: widthBits}
}

// Index returns the cell index for a serialized key.
func (r *Row) Index(key []byte) int {
	return int(hashes.Compute(r.Algorithm, key, r.OutputWidth) % uint64(len(r.Cells)))
}

// mask truncates v to the row's value width.
func (r *Row) mask(v uint64) uint64 {
	if r.WidthBits >= 64 {
		return v
	}
	return v & (1<<uint(r.WidthBits) - 1)
}

// CountMin is a Count-Min Sketch: point updates increment one cell per
// row; point queries return the minimum across rows, an upper bound on the
// true count.
type CountMin struct {
	Rows []*Row
	// salted prefixes each row's key with the row number; used when rows
	// share a hash algorithm. Data-plane twins use distinct algorithms
	// per row and MUST stay unsalted so cells match the registers.
	salted bool
}

// NewCountMin builds a sketch from explicitly-constructed rows (typically
// with distinct algorithms, like the P4 programs). Keys are not salted, so
// a row indexes exactly like its data-plane register.
func NewCountMin(rows ...*Row) *CountMin {
	return &CountMin{Rows: rows}
}

// NewCountMin32 builds a conventional CMS: depth rows of width cells, all
// CRC32-based with per-row salt folded into the key, 32-bit counters.
func NewCountMin32(depth, cells int) *CountMin {
	cms := &CountMin{salted: true}
	for i := 0; i < depth; i++ {
		cms.Rows = append(cms.Rows, NewRow(hashes.CRC32, 32, cells, 32))
	}
	return cms
}

// Update adds delta occurrences of key and returns the new estimate.
func (c *CountMin) Update(key []byte, delta uint64) uint64 {
	est := ^uint64(0)
	for i, row := range c.Rows {
		idx := row.Index(c.key(key, i))
		row.Cells[idx] = row.mask(row.Cells[idx] + delta)
		if row.Cells[idx] < est {
			est = row.Cells[idx]
		}
	}
	return est
}

// Estimate returns the count estimate for key (never an undercount).
func (c *CountMin) Estimate(key []byte) uint64 {
	est := ^uint64(0)
	for i, row := range c.Rows {
		idx := row.Index(c.key(key, i))
		if row.Cells[idx] < est {
			est = row.Cells[idx]
		}
	}
	if est == ^uint64(0) {
		return 0
	}
	return est
}

// Reset zeroes all rows.
func (c *CountMin) Reset() {
	for _, row := range c.Rows {
		for i := range row.Cells {
			row.Cells[i] = 0
		}
	}
}

// key applies the per-row salt when the sketch was built salted.
func (c *CountMin) key(key []byte, row int) []byte {
	if !c.salted {
		return key
	}
	return saltKey(key, row)
}

// saltKey prefixes the key with the row number, decorrelating rows that
// share a hash algorithm.
func saltKey(key []byte, row int) []byte {
	out := make([]byte, 0, len(key)+1)
	out = append(out, byte(row))
	return append(out, key...)
}

// Bloom is a Bloom filter over the same Row machinery (cells hold 0/1).
type Bloom struct {
	Rows []*Row
	// salted: see CountMin.
	salted bool
}

// NewBloom builds a filter from explicitly-constructed rows (typically
// distinct algorithms, like the P4 programs); keys are not salted.
func NewBloom(rows ...*Row) *Bloom {
	return &Bloom{Rows: rows}
}

// NewBloom32 builds a conventional salted filter: depth CRC32 rows.
func NewBloom32(depth, cells int) *Bloom {
	bf := &Bloom{salted: true}
	for i := 0; i < depth; i++ {
		bf.Rows = append(bf.Rows, NewRow(hashes.CRC32, 32, cells, 8))
	}
	return bf
}

// key applies the per-row salt when the filter was built salted.
func (b *Bloom) key(key []byte, row int) []byte {
	if !b.salted {
		return key
	}
	return saltKey(key, row)
}

// Add inserts the key.
func (b *Bloom) Add(key []byte) {
	for i, row := range b.Rows {
		row.Cells[row.Index(b.key(key, i))] = 1
	}
}

// Contains reports (probable) membership: false means definitely absent.
func (b *Bloom) Contains(key []byte) bool {
	for i, row := range b.Rows {
		if row.Cells[row.Index(b.key(key, i))] == 0 {
			return false
		}
	}
	return true
}

// AddAndCheck inserts the key and reports whether it was (probably)
// present before — the check-and-set idiom the failure-detection data
// plane uses to flag retransmissions.
func (b *Bloom) AddAndCheck(key []byte) bool {
	present := true
	for i, row := range b.Rows {
		idx := row.Index(b.key(key, i))
		if row.Cells[idx] == 0 {
			present = false
		}
		row.Cells[idx] = 1
	}
	return present
}

// Reset clears the filter.
func (b *Bloom) Reset() {
	for _, row := range b.Rows {
		for i := range row.Cells {
			row.Cells[i] = 0
		}
	}
}

// FillRatio returns the fraction of set cells in the densest row — a load
// indicator for resize decisions.
func (b *Bloom) FillRatio() float64 {
	worst := 0.0
	for _, row := range b.Rows {
		set := 0
		for _, c := range row.Cells {
			if c != 0 {
				set++
			}
		}
		if r := float64(set) / float64(len(row.Cells)); r > worst {
			worst = r
		}
	}
	return worst
}

// String summarizes the structure.
func (c *CountMin) String() string {
	if len(c.Rows) == 0 {
		return "cms(empty)"
	}
	return fmt.Sprintf("cms(%d rows x %d cells)", len(c.Rows), len(c.Rows[0].Cells))
}
