package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
	"p2go/internal/workloads"
)

// enginePair builds a compiled and an interpreter Switch over the same
// program and rules, failing the test if the program did not lower (every
// bundled workload must).
func enginePair(t *testing.T, source string, cfg *rt.Config) (compiled, interp *Switch) {
	t.Helper()
	ast := p4.MustParse(source)
	if err := p4.Check(ast); err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	compiled, err = New(prog, cfg, Options{})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	if engine, reason := compiled.Engine(); engine != "compiled" {
		t.Fatalf("program did not lower: engine=%s reason=%q", engine, reason)
	}
	interp, err = New(prog, cfg, Options{Interpret: true})
	if err != nil {
		t.Fatalf("sim.New (interpret): %v", err)
	}
	if engine, reason := interp.Engine(); engine != "interpreter" || reason != "forced" {
		t.Fatalf("Interpret switch reports engine=%s reason=%q", engine, reason)
	}
	return compiled, interp
}

// diffProcess runs one input through both engines and fails on any
// divergence — output (including Data and Exec) or error string.
func diffProcess(t *testing.T, compiled, interp *Switch, in Input, label string) {
	t.Helper()
	co, cerr := compiled.Process(in)
	io, ierr := interp.Process(in)
	if (cerr == nil) != (ierr == nil) {
		t.Fatalf("%s: compiled err=%v, interpreter err=%v", label, cerr, ierr)
	}
	if cerr != nil {
		if cerr.Error() != ierr.Error() {
			t.Fatalf("%s: error strings diverge:\ncompiled:    %v\ninterpreter: %v", label, cerr, ierr)
		}
		return
	}
	if !reflect.DeepEqual(co, io) {
		t.Fatalf("%s: outputs diverge:\ncompiled:    %+v\ninterpreter: %+v", label, co, io)
	}
}

// TestCompiledMatchesInterpreterOnWorkloads is the primary differential
// harness: every bundled workload's calibrated trace, packet by packet,
// must produce bit-identical Output (port, data, drop flags, execution
// trace) from the compiled engine and the tree-walking interpreter.
// Register state evolves in lockstep, so stateful programs (sketches,
// Bloom filters) are covered too, not just stateless forwarding.
func TestCompiledMatchesInterpreterOnWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			trace, err := w.Trace(1)
			if err != nil {
				t.Fatal(err)
			}
			compiled, interp := enginePair(t, w.Source, w.Config())
			for i, pkt := range trace.Packets {
				diffProcess(t, compiled, interp, Input{Port: pkt.Port, Data: pkt.Data},
					name+" packet "+itoa(i))
			}
		})
	}
}

// TestCompiledMatchesInterpreterOnRandomPackets feeds both engines inputs
// no calibrated trace contains: seeded random bytes of random lengths
// (most of which fail or truncate parsing) and trace packets truncated at
// every interesting boundary. Divergence in the error path is as much a
// bug as divergence in the happy path.
func TestCompiledMatchesInterpreterOnRandomPackets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			compiled, interp := enginePair(t, w.Source, w.Config())
			for i := 0; i < 200; i++ {
				data := make([]byte, rng.Intn(96))
				rng.Read(data)
				in := Input{Port: uint64(rng.Intn(512)), Data: data}
				diffProcess(t, compiled, interp, in, name+" random "+itoa(i))
			}
			trace, err := w.Trace(3)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50 && i < len(trace.Packets); i++ {
				pkt := trace.Packets[i]
				cut := rng.Intn(len(pkt.Data) + 1)
				in := Input{Port: pkt.Port, Data: pkt.Data[:cut]}
				diffProcess(t, compiled, interp, in, name+" truncated "+itoa(i))
			}
		})
	}
}

// TestReadWriteBitsFastMatchesReference cross-checks the compiled
// engine's windowed bit accessors against the interpreter's per-bit
// reference loops over random buffers, offsets, and widths. Reads are
// in-bounds (both implementations require it — the parser's truncation
// check runs first); writes additionally cover spans past the end of the
// buffer, where only the in-bounds prefix may be stored.
func TestReadWriteBitsFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, 1+rng.Intn(24))
		rng.Read(buf)
		width := 1 + rng.Intn(64)
		if room := 8*len(buf) - width; room >= 0 {
			off := rng.Intn(room + 1)
			if got, want := readBitsFast(buf, off, width), readBits(buf, off, width); got != want {
				t.Fatalf("readBitsFast(len=%d, off=%d, width=%d) = %#x, reference %#x",
					len(buf), off, width, got, want)
			}
		}
		off := rng.Intn(8*len(buf) + 16)
		v := rng.Uint64()
		fast := append([]byte(nil), buf...)
		ref := append([]byte(nil), buf...)
		writeBitsFast(fast, off, width, v)
		writeBits(ref, off, width, v)
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("writeBitsFast(len=%d, off=%d, width=%d, v=%#x):\nfast %x\nref  %x",
				len(buf), off, width, v, fast, ref)
		}
	}
}

// TestProcessBatchSkipExecAndReuseData pins the batch-mode contracts:
// SkipExec produces outputs identical to Process except Exec is nil, and
// ReuseData produces identical Data contents that stay valid until the
// next batch on the same Switch.
func TestProcessBatchSkipExecAndReuseData(t *testing.T) {
	w, err := workloads.Get("ex1")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := w.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	ins := make([]Input, n)
	for i := 0; i < n; i++ {
		ins[i] = Input{Port: trace.Packets[i].Port, Data: trace.Packets[i].Data}
	}

	// Reference outputs from a fresh Switch via Process (ex1 is stateful,
	// so each engine run needs its own register state).
	ref, _ := enginePair(t, w.Source, w.Config())
	want := make([]Output, n)
	for i, in := range ins {
		out, err := ref.Process(in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	batch, _ := enginePair(t, w.Source, w.Config())
	outs := make([]Output, n)
	if _, err := batch.ProcessBatch(ins, outs, BatchOpts{SkipExec: true, ReuseData: true}); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].Exec != nil {
			t.Fatalf("packet %d: SkipExec left Exec=%v", i, outs[i].Exec)
		}
		got, exp := outs[i], want[i]
		exp.Exec = nil
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("packet %d: batch output %+v, want %+v", i, got, exp)
		}
	}

	// A second batch on the same Switch may overwrite the previous
	// batch's Data (the documented arena contract) — but the new outputs
	// must again match a sequential reference continued from the same
	// register state.
	for i, in := range ins {
		out, err := ref.Process(in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
		want[i].Exec = nil
	}
	if _, err := batch.ProcessBatch(ins, outs, BatchOpts{SkipExec: true, ReuseData: true}); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if !reflect.DeepEqual(outs[i], want[i]) {
			t.Fatalf("second batch packet %d: %+v, want %+v", i, outs[i], want[i])
		}
	}
}

// TestInstallRuleKeepsEnginesEquivalent installs a rule at runtime on
// both engines and re-checks differential equality: the compiled Switch
// must lower the new rule (staying on the compiled engine) and behave
// exactly like the interpreter with the same rule installed.
func TestInstallRuleKeepsEnginesEquivalent(t *testing.T) {
	w, err := workloads.Get("natgre")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := w.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	compiled, interp := enginePair(t, w.Source, w.Config())
	rule := w.Config().Rules[0]
	rule.Priority += 100
	if err := compiled.InstallRule(rule); err != nil {
		t.Fatal(err)
	}
	if err := interp.InstallRule(rule); err != nil {
		t.Fatal(err)
	}
	if engine, reason := compiled.Engine(); engine != "compiled" {
		t.Fatalf("InstallRule knocked out the compiled engine: %s (%s)", engine, reason)
	}
	for i := 0; i < 500 && i < len(trace.Packets); i++ {
		pkt := trace.Packets[i]
		diffProcess(t, compiled, interp, Input{Port: pkt.Port, Data: pkt.Data},
			"post-install packet "+itoa(i))
	}
}

// TestEngineFallbackSurfacesReason: a rule that fails lowering (here
// simulated via the planDisabled escape hatch InstallRule uses) must
// switch the engine report to the interpreter with the reason attached,
// and Process must keep working through the interpreter.
func TestEngineFallbackSurfacesReason(t *testing.T) {
	w, err := workloads.Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	compiled, interp := enginePair(t, w.Source, w.Config())

	// The lowering error InstallRule would hit on a malformed rule.
	cc := compiled.plan.c.lower
	decl := compiled.tables[w.Config().Rules[0].Table].decl
	_, lerr := cc.lowerRule(decl, &compiled.plan.c.tables[cc.tableOf[decl.Name]], rt.Rule{
		Table: decl.Name, Action: w.Config().Rules[0].Action,
	})
	if lerr == nil {
		t.Fatal("lowerRule accepted a rule with no matches for a keyed table")
	}

	compiled.planDisabled = "rule lowering: " + lerr.Error()
	if engine, reason := compiled.Engine(); engine != "interpreter" || reason == "" {
		t.Fatalf("fallback not reported: engine=%s reason=%q", engine, reason)
	}
	trace, err := w.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && i < len(trace.Packets); i++ {
		pkt := trace.Packets[i]
		diffProcess(t, compiled, interp, Input{Port: pkt.Port, Data: pkt.Data},
			"fallback packet "+itoa(i))
	}
}

// itoa avoids importing strconv into half the failure messages.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
