package sim

import (
	"testing"

	"p2go/internal/hashes"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/rt"
)

// natWithChecksum is a NAT-style rewrite with a P4_14 calculated_field
// keeping the IPv4 header checksum correct on emission.
const natWithChecksum = `
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header_type ipv4_t {
    fields {
        version : 4; ihl : 4; diffserv : 8; totalLen : 16;
        identification : 16; flags : 3; fragOffset : 13;
        ttl : 8; protocol : 8; hdrChecksum : 16;
        srcAddr : 32; dstAddr : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;

field_list ipv4_checksum_list {
    ipv4.version;
    ipv4.ihl;
    ipv4.diffserv;
    ipv4.totalLen;
    ipv4.identification;
    ipv4.flags;
    ipv4.fragOffset;
    ipv4.ttl;
    ipv4.protocol;
    ipv4.srcAddr;
    ipv4.dstAddr;
}
field_list_calculation ipv4_checksum {
    input { ipv4_checksum_list; }
    algorithm : csum16;
    output_width : 16;
}
calculated_field ipv4.hdrChecksum {
    verify ipv4_checksum;
    update ipv4_checksum;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 { extract(ipv4); return ingress; }

action translate(src, dst, port) {
    modify_field(ipv4.srcAddr, src);
    modify_field(ipv4.dstAddr, dst);
    subtract_from_field(ipv4.ttl, 1);
    modify_field(standard_metadata.egress_spec, port);
}
table nat {
    reads { ipv4.dstAddr : exact; }
    actions { translate; }
    size : 16;
}
control ingress {
    if (valid(ipv4)) {
        apply(nat);
    }
}
`

// TestCalculatedFieldChecksum: after the NAT rewrite, the emitted packet's
// IPv4 header checksum verifies against the wire bytes.
func TestCalculatedFieldChecksum(t *testing.T) {
	ast := p4.MustParse(natWithChecksum)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rt.Parse("table_add nat translate 198.51.100.10 => 10.3.0.10 10.3.1.10 4")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(192, 0, 2, 7), Dst: packet.IP(198, 51, 100, 10), TTL: 33},
		&packet.TCP{SrcPort: 1, DstPort: 2},
	)
	out, err := sw.Process(Input{Port: 1, Data: in})
	if err != nil {
		t.Fatal(err)
	}
	v, err := packet.Decode(out.Data)
	if err != nil {
		t.Fatal(err)
	}
	if v.IPv4.Src != packet.IP(10, 3, 0, 10) || v.IPv4.Dst != packet.IP(10, 3, 1, 10) {
		t.Fatalf("NAT did not rewrite: %+v", v.IPv4)
	}
	if v.IPv4.TTL != 32 {
		t.Errorf("ttl = %d, want 32", v.IPv4.TTL)
	}
	// RFC 1071: summing the full header including a correct checksum
	// yields zero.
	ipHdr := out.Data[14 : 14+20]
	if got := packet.Checksum(ipHdr); got != 0 {
		t.Errorf("rewritten header checksum does not verify: residue %#x", got)
	}
	// A non-NATted packet keeps a valid checksum too (the update clause
	// recomputes it regardless).
	miss := packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoTCP, Src: packet.IP(192, 0, 2, 7), Dst: packet.IP(203, 0, 113, 1), TTL: 9},
		&packet.TCP{SrcPort: 1, DstPort: 2},
	)
	out2, err := sw.Process(Input{Port: 1, Data: miss})
	if err != nil {
		t.Fatal(err)
	}
	if got := packet.Checksum(out2.Data[14 : 14+20]); got != 0 {
		t.Errorf("untouched header checksum does not verify: residue %#x", got)
	}
}

// TestPackBits: sub-byte fields pack exactly as on the wire.
func TestPackBits(t *testing.T) {
	// version=4, ihl=5 -> one byte 0x45.
	got := hashes.PackBits([]uint64{4, 5, 0xAB}, []int{4, 4, 8})
	if len(got) != 2 || got[0] != 0x45 || got[1] != 0xAB {
		t.Fatalf("PackBits = %#v, want [0x45 0xAB]", got)
	}
	// flags=0b101 + 13-bit fragOffset 0x0123 -> 1010_0001 0010_0011.
	got = hashes.PackBits([]uint64{5, 0x0123}, []int{3, 13})
	if len(got) != 2 || got[0] != 0xA1 || got[1] != 0x23 {
		t.Fatalf("PackBits = %#v, want [0xA1 0x23]", got)
	}
	// Trailing partial byte is zero-padded low.
	got = hashes.PackBits([]uint64{0x3}, []int{2})
	if len(got) != 1 || got[0] != 0xC0 {
		t.Fatalf("PackBits = %#v, want [0xC0]", got)
	}
	// Byte-aligned packing equals SerializeValues.
	vals, widths := []uint64{0x1234, 0x56}, []int{16, 8}
	a := hashes.PackBits(vals, widths)
	b := hashes.SerializeValues(vals, widths)
	if len(a) != len(b) {
		t.Fatal("byte-aligned PackBits length differs from SerializeValues")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("byte-aligned PackBits differs from SerializeValues")
		}
	}
}

// TestCalculatedFieldParsePrint: the declaration round-trips.
func TestCalculatedFieldParsePrint(t *testing.T) {
	ast := p4.MustParse(natWithChecksum)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	if len(ast.CalcFields) != 1 || ast.CalcFields[0].Update != "ipv4_checksum" || ast.CalcFields[0].Verify != "ipv4_checksum" {
		t.Fatalf("calc fields = %+v", ast.CalcFields)
	}
	printed := p4.Print(ast)
	re, err := p4.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if len(re.CalcFields) != 1 {
		t.Fatal("calculated_field lost in round trip")
	}
	// Bad references fail checking.
	bad := p4.MustParse(`
header_type h_t { fields { f : 8; } }
header h_t h;
calculated_field h.f { update ghost; }
control ingress { }
`)
	if err := p4.Check(bad); err == nil {
		t.Error("unknown calculation should fail check")
	}
}
