package sim

import (
	"fmt"

	"p2go/internal/hashes"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
)

// runBlock executes a control-flow block.
func (s *Switch) runBlock(st *state, b *p4.BlockStmt) error {
	if b == nil {
		return nil
	}
	for _, stmt := range b.Stmts {
		switch v := stmt.(type) {
		case *p4.ApplyStmt:
			hit, err := s.applyTable(st, v.Table)
			if err != nil {
				return err
			}
			if hit {
				if err := s.runBlock(st, v.Hit); err != nil {
					return err
				}
			} else {
				if err := s.runBlock(st, v.Miss); err != nil {
					return err
				}
			}
		case *p4.IfStmt:
			cond, err := s.evalBool(st, v.Cond)
			if err != nil {
				return err
			}
			if cond {
				if err := s.runBlock(st, v.Then); err != nil {
					return err
				}
			} else if v.Else != nil {
				if err := s.runBlock(st, v.Else); err != nil {
					return err
				}
			}
		case *p4.BlockStmt:
			if err := s.runBlock(st, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyTable looks up the table and executes the selected action. The
// returned hit flag drives hit/miss arms and is recorded in the execution
// trace. A table without a reads block "hits" whenever it is applied (its
// default action is its behavior); this matches how the paper reports hit
// rates for the always-on sketch tables.
func (s *Switch) applyTable(st *state, name string) (bool, error) {
	ts := s.tables[name]
	if ts == nil {
		return false, fmt.Errorf("sim: unknown table %q", name)
	}
	decl := ts.decl
	if len(decl.Reads) == 0 {
		action, argValues, argExprs := ts.effectiveDefault()
		if action == "" {
			st.exec = append(st.exec, Executed{Table: name, Action: "", Hit: true})
			return true, nil
		}
		if err := s.execAction(st, action, argExprs, argValues); err != nil {
			return false, err
		}
		st.exec = append(st.exec, Executed{Table: name, Action: action, Hit: true})
		return true, nil
	}

	// Build the lookup key.
	key := make([]uint64, len(decl.Reads))
	widths := make([]int, len(decl.Reads))
	for i, r := range decl.Reads {
		if r.Kind == p4.MatchValid {
			if st.valid[r.Field.Instance] {
				key[i] = 1
			}
			widths[i] = 1
			continue
		}
		key[i] = st.fields[ir.Key(r.Field)]
		widths[i] = s.widths[ir.Key(r.Field)]
	}

	best := -1
	bestPrefix := -1
	bestPriority := 0
	for idx, rule := range ts.rules {
		matched := true
		prefix := 0
		for i, m := range rule.Matches {
			if !m.Matches(key[i], widths[i]) {
				matched = false
				break
			}
			if m.Kind == p4.MatchLPM {
				prefix += m.PrefixLen
			}
		}
		if !matched {
			continue
		}
		better := false
		switch {
		case best == -1:
			better = true
		case rule.Priority != bestPriority:
			better = rule.Priority > bestPriority
		case prefix != bestPrefix:
			better = prefix > bestPrefix
		}
		if better {
			best = idx
			bestPrefix = prefix
			bestPriority = rule.Priority
		}
	}
	if best >= 0 {
		rule := ts.rules[best]
		if err := s.execAction(st, rule.Action, nil, rule.Args); err != nil {
			return false, err
		}
		st.exec = append(st.exec, Executed{Table: name, Action: rule.Action, Hit: true})
		return true, nil
	}
	// Miss: run the (possibly runtime-overridden) default action.
	action, argValues, argExprs := ts.effectiveDefault()
	if action != "" {
		if err := s.execAction(st, action, argExprs, argValues); err != nil {
			return false, err
		}
	}
	st.exec = append(st.exec, Executed{Table: name, Action: action, Hit: false})
	return false, nil
}

// execAction runs a compound action. Exactly one of argExprs (expressions
// from a default_action declaration) or argValues (values from an installed
// rule) provides the parameter bindings.
func (s *Switch) execAction(st *state, name string, argExprs []p4.Expr, argValues []uint64) error {
	decl := s.prog.AST.Action(name)
	if decl == nil {
		return fmt.Errorf("sim: unknown action %q", name)
	}
	bindings := map[string]uint64{}
	switch {
	case argValues != nil:
		if len(argValues) != len(decl.Params) {
			return fmt.Errorf("sim: action %s expects %d args, got %d", name, len(decl.Params), len(argValues))
		}
		for i, p := range decl.Params {
			bindings[p] = argValues[i]
		}
	case len(argExprs) > 0:
		if len(argExprs) != len(decl.Params) {
			return fmt.Errorf("sim: action %s expects %d args, got %d", name, len(decl.Params), len(argExprs))
		}
		for i, p := range decl.Params {
			v, err := s.evalExpr(st, argExprs[i], nil)
			if err != nil {
				return err
			}
			bindings[p] = v
		}
	default:
		if len(decl.Params) != 0 {
			return fmt.Errorf("sim: action %s requires %d args", name, len(decl.Params))
		}
	}
	for _, call := range decl.Body {
		if err := s.execPrimitive(st, call, bindings); err != nil {
			return fmt.Errorf("sim: action %s: %w", name, err)
		}
	}
	return nil
}

func (s *Switch) execPrimitive(st *state, call *p4.PrimitiveCall, bind map[string]uint64) error {
	arg := func(i int) (uint64, error) { return s.evalExpr(st, call.Args[i], bind) }
	dst := func(i int) (ir.FieldKey, error) {
		ref, ok := call.Args[i].(p4.FieldRef)
		if !ok || ref.Field == "" {
			return "", fmt.Errorf("%s: argument %d is not a field", call.Name, i)
		}
		return ir.Key(ref), nil
	}
	switch call.Name {
	case p4.PrimModifyField:
		k, err := dst(0)
		if err != nil {
			return err
		}
		v, err := arg(1)
		if err != nil {
			return err
		}
		s.setField(st, k, v)
	case p4.PrimAddToField, p4.PrimSubFromField:
		k, err := dst(0)
		if err != nil {
			return err
		}
		v, err := arg(1)
		if err != nil {
			return err
		}
		cur := st.fields[k]
		if call.Name == p4.PrimAddToField {
			s.setField(st, k, cur+v)
		} else {
			s.setField(st, k, cur-v)
		}
	case p4.PrimBitAnd, p4.PrimBitOr, p4.PrimBitXor, p4.PrimMin, p4.PrimMax:
		k, err := dst(0)
		if err != nil {
			return err
		}
		a, err := arg(1)
		if err != nil {
			return err
		}
		b, err := arg(2)
		if err != nil {
			return err
		}
		var v uint64
		switch call.Name {
		case p4.PrimBitAnd:
			v = a & b
		case p4.PrimBitOr:
			v = a | b
		case p4.PrimBitXor:
			v = a ^ b
		case p4.PrimMin:
			v = a
			if b < a {
				v = b
			}
		case p4.PrimMax:
			v = a
			if b > a {
				v = b
			}
		}
		s.setField(st, k, v)
	case p4.PrimDrop:
		st.wouldDrop = true
		if !s.opts.NeutralizeDrops {
			s.setField(st, ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldEgressSpec), DropPort)
		}
	case p4.PrimNoOp:
	case p4.PrimRegisterRead:
		k, err := dst(0)
		if err != nil {
			return err
		}
		regName := call.Args[1].(p4.FieldRef).Instance
		reg, ok := s.registers[regName]
		if !ok {
			return fmt.Errorf("register_read: unknown register %q", regName)
		}
		idx, err := arg(2)
		if err != nil {
			return err
		}
		if idx >= uint64(len(reg)) {
			return fmt.Errorf("register_read: index %d out of range for %s[%d]", idx, regName, len(reg))
		}
		s.setField(st, k, reg[idx])
	case p4.PrimRegisterWrite:
		regName := call.Args[0].(p4.FieldRef).Instance
		reg, ok := s.registers[regName]
		if !ok {
			return fmt.Errorf("register_write: unknown register %q", regName)
		}
		idx, err := arg(1)
		if err != nil {
			return err
		}
		if idx >= uint64(len(reg)) {
			return fmt.Errorf("register_write: index %d out of range for %s[%d]", idx, regName, len(reg))
		}
		v, err := arg(2)
		if err != nil {
			return err
		}
		r := s.prog.AST.Register(regName)
		if r.Width < 64 {
			v &= 1<<uint(r.Width) - 1
		}
		reg[idx] = v
	case p4.PrimCount:
		ctrName := call.Args[0].(p4.FieldRef).Instance
		ctr, ok := s.counters[ctrName]
		if !ok {
			return fmt.Errorf("count: unknown counter %q", ctrName)
		}
		idx, err := arg(1)
		if err != nil {
			return err
		}
		if idx >= uint64(len(ctr)) {
			return fmt.Errorf("count: index %d out of range for %s[%d]", idx, ctrName, len(ctr))
		}
		ctr[idx].Packets++
		ctr[idx].Bytes += st.fields[ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldPacketLength)]
	case p4.PrimHashOffset:
		k, err := dst(0)
		if err != nil {
			return err
		}
		base, err := arg(1)
		if err != nil {
			return err
		}
		calcName := call.Args[2].(p4.FieldRef).Instance
		size, err := arg(3)
		if err != nil {
			return err
		}
		if size == 0 {
			return fmt.Errorf("%s: zero size", call.Name)
		}
		h, err := s.computeHash(st, calcName)
		if err != nil {
			return err
		}
		s.setField(st, k, base+h%size)
	default:
		return fmt.Errorf("unknown primitive %q", call.Name)
	}
	return nil
}

// computeHash evaluates a field_list_calculation over current field values.
func (s *Switch) computeHash(st *state, calcName string) (uint64, error) {
	calc := s.prog.AST.Calculation(calcName)
	if calc == nil {
		return 0, fmt.Errorf("unknown calculation %q", calcName)
	}
	alg, err := hashes.FromName(calc.Algorithm)
	if err != nil {
		return 0, err
	}
	fl := s.prog.AST.FieldList(calc.Input)
	values := make([]uint64, len(fl.Fields))
	widths := make([]int, len(fl.Fields))
	for i, f := range fl.Fields {
		values[i] = st.fields[ir.Key(f)]
		widths[i] = s.widths[ir.Key(f)]
	}
	data := hashes.PackBits(values, widths)
	return hashes.Compute(alg, data, calc.OutputWidth), nil
}

// evalExpr computes the value of an arithmetic expression.
func (s *Switch) evalExpr(st *state, e p4.Expr, bind map[string]uint64) (uint64, error) {
	switch v := e.(type) {
	case p4.IntLit:
		return v.Value, nil
	case p4.SymRef:
		// Un-instantiated tunable reference: evaluate at the default it
		// carries. Instantiated programs never contain SymRefs.
		return v.Value, nil
	case p4.FieldRef:
		if v.Field == "" {
			if bind != nil {
				if val, ok := bind[v.Instance]; ok {
					return val, nil
				}
			}
			return 0, fmt.Errorf("bare reference %q is not a value", v.Instance)
		}
		return st.fields[ir.Key(v)], nil
	case p4.ParamRef:
		if bind == nil {
			return 0, fmt.Errorf("parameter %q outside action context", v.Name)
		}
		val, ok := bind[v.Name]
		if !ok {
			return 0, fmt.Errorf("unbound parameter %q", v.Name)
		}
		return val, nil
	}
	return 0, fmt.Errorf("unknown expression %T", e)
}

// evalBool evaluates an if condition.
func (s *Switch) evalBool(st *state, e p4.BoolExpr) (bool, error) {
	switch v := e.(type) {
	case *p4.ValidExpr:
		return st.valid[v.Instance], nil
	case *p4.CompareExpr:
		l, err := s.evalExpr(st, v.Left, nil)
		if err != nil {
			return false, err
		}
		r, err := s.evalExpr(st, v.Right, nil)
		if err != nil {
			return false, err
		}
		switch v.Op {
		case "==":
			return l == r, nil
		case "!=":
			return l != r, nil
		case "<":
			return l < r, nil
		case "<=":
			return l <= r, nil
		case ">":
			return l > r, nil
		case ">=":
			return l >= r, nil
		}
		return false, fmt.Errorf("sim: unknown comparison %q", v.Op)
	case *p4.BinaryBoolExpr:
		l, err := s.evalBool(st, v.Left)
		if err != nil {
			return false, err
		}
		if v.Op == "and" && !l {
			return false, nil
		}
		if v.Op == "or" && l {
			return true, nil
		}
		return s.evalBool(st, v.Right)
	case *p4.NotExpr:
		x, err := s.evalBool(st, v.X)
		if err != nil {
			return false, err
		}
		return !x, nil
	}
	return false, fmt.Errorf("sim: unknown boolean expression %T", e)
}

// setField stores a value, masked to the field's declared width. Non-CPU
// writes to egress_spec are remembered as the pipeline's forwarding
// decision (Output.ForwardPort).
func (s *Switch) setField(st *state, k ir.FieldKey, v uint64) {
	if w, ok := s.widths[k]; ok && w < 64 {
		v &= 1<<uint(w) - 1
	}
	st.fields[k] = v
	if k == egressSpecKey && v != CPUPort {
		st.forwardPort = v
	}
}

// egressSpecKey is the intrinsic egress field key.
var egressSpecKey = ir.FieldKey(p4.StandardMetadataName + "." + p4.FieldEgressSpec)

// InstallRule adds a rule at runtime (used by tests and the what-if flows).
func (s *Switch) InstallRule(r rt.Rule) error {
	probe := &rt.Config{Rules: []rt.Rule{r}}
	if err := rt.Validate(probe, s.prog); err != nil {
		return err
	}
	ts := s.tables[r.Table]
	// Copy on write: the backing array is shared with the plan and with
	// sibling Switches built from it.
	ts.rules = append(append([]rt.Rule(nil), ts.rules...), r)
	s.cfg.Add(r)
	if s.useCompiled() {
		cc := s.plan.c.lower
		ti := cc.tableOf[r.Table]
		cr, err := cc.lowerRule(ts.decl, &s.plan.c.tables[ti], r)
		if err != nil {
			// The interpreter may still run this rule (surfacing its own
			// packet-time diagnostics), so fall back instead of failing the
			// install; Engine reports the reason.
			s.planDisabled = "rule lowering: " + err.Error()
			return nil
		}
		s.crules[ti] = append(append([]cRule(nil), s.crules[ti]...), cr)
	}
	return nil
}
