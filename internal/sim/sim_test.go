package sim

import (
	"testing"

	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/programs"
	"p2go/internal/rt"
)

func newEx1Switch(t *testing.T, opts Options) *Switch {
	t.Helper()
	ast := p4.MustParse(programs.Ex1)
	if err := p4.Check(ast); err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	sw, err := New(prog, programs.Ex1Config(), opts)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return sw
}

func udpPacket(src, dst uint32, srcPort, dstPort uint16) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: srcPort, DstPort: dstPort},
		packet.Raw("payload"),
	)
}

func dnsPacket(src, dst uint32) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS},
		&packet.DNS{ID: 1, QDCount: 1},
	)
}

func dhcpPacket(src, dst uint32) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: dst},
		&packet.UDP{SrcPort: 68, DstPort: packet.PortDHCPServer},
		&packet.DHCP{Op: 1, HType: 1, HLen: 6, XID: 42},
	)
}

func tcpPacket(src, dst uint32, seq uint32) []byte {
	return packet.Serialize(
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoTCP, Src: src, Dst: dst},
		&packet.TCP{SrcPort: 1234, DstPort: 80, Seq: seq, Flags: packet.TCPAck},
	)
}

func TestForwardPlainTCP(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	out, err := sw.Process(Input{Port: programs.TrustedPort,
		Data: tcpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 0, 0, 99), 1)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Error("plain TCP packet should be forwarded")
	}
	if out.Port != 3 {
		t.Errorf("egress port = %d, want 3 (the /8 route)", out.Port)
	}
	if len(out.Exec) != 1 || out.Exec[0].Table != "IPv4" || !out.Exec[0].Hit {
		t.Errorf("exec = %v, want a single IPv4 hit", out.Exec)
	}
}

func TestLPMLongestPrefixWins(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	out, err := sw.Process(Input{Port: 1,
		Data: tcpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 1, 2, 3), 1)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Port != 4 {
		t.Errorf("egress port = %d, want 4 (the /16 route beats the /8)", out.Port)
	}
}

func TestBlockedUDPDropped(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	out, err := sw.Process(Input{Port: 1,
		Data: udpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 0, 0, 99), 999, 6666)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped || !out.WouldDrop {
		t.Errorf("blocked UDP should drop: %+v", out)
	}
	var hits []string
	for _, e := range out.Exec {
		if e.Hit {
			hits = append(hits, e.Table+"."+e.Action)
		}
	}
	want := []string{"IPv4.set_nhop", "ACL_UDP.acl_udp_drop"}
	if len(hits) != 2 || hits[0] != want[0] || hits[1] != want[1] {
		t.Errorf("hits = %v, want %v", hits, want)
	}
}

func TestDHCPSnooping(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	// Untrusted ingress port: dropped.
	out, err := sw.Process(Input{Port: programs.UntrustedPort,
		Data: dhcpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 0, 0, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped {
		t.Error("rogue DHCP should be dropped")
	}
	// Trusted port: ACL_DHCP is applied (DHCP is valid) but misses.
	out2, err := sw.Process(Input{Port: programs.TrustedPort,
		Data: dhcpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 0, 0, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Dropped {
		t.Error("trusted DHCP should pass")
	}
	foundMiss := false
	for _, e := range out2.Exec {
		if e.Table == "ACL_DHCP" && !e.Hit {
			foundMiss = true
		}
	}
	if !foundMiss {
		t.Errorf("exec = %v, want an ACL_DHCP miss", out2.Exec)
	}
}

func TestDNSSketchThreshold(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	src := packet.IP(10, 9, 1, 1)
	dst := packet.IP(10, 0, 0, 53)
	var firstDrop int
	for i := 1; i <= programs.Ex1DNSThreshold+5; i++ {
		out, err := sw.Process(Input{Port: 1, Data: dnsPacket(src, dst)})
		if err != nil {
			t.Fatal(err)
		}
		if out.Dropped && firstDrop == 0 {
			firstDrop = i
		}
	}
	if firstDrop != programs.Ex1DNSThreshold {
		t.Errorf("first DNS drop at query %d, want %d", firstDrop, programs.Ex1DNSThreshold)
	}
	// The CMS row cell holds the query count.
	idx := src & 0xFFFF % 64000 // identity hash over srcAddr, 16-bit output
	reg := sw.Register("cms_r1")
	if got := reg[idx]; got != uint64(programs.Ex1DNSThreshold+5) {
		t.Errorf("cms_r1[%d] = %d, want %d", idx, got, programs.Ex1DNSThreshold+5)
	}
	// Reset clears state.
	sw.Reset()
	if got := sw.Register("cms_r1")[idx]; got != 0 {
		t.Errorf("after Reset, cms_r1[%d] = %d, want 0", idx, got)
	}
}

func TestDNSDifferentFlowsCountSeparately(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	dst := packet.IP(10, 0, 0, 53)
	for i := 0; i < 50; i++ {
		if _, err := sw.Process(Input{Port: 1, Data: dnsPacket(packet.IP(10, 9, 1, 1), dst)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sw.Process(Input{Port: 1, Data: dnsPacket(packet.IP(10, 9, 77, 77), dst)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Error("a fresh DNS flow must not be dropped")
	}
}

func TestNeutralizedDropsStillEgress(t *testing.T) {
	sw := newEx1Switch(t, Options{NeutralizeDrops: true})
	out, err := sw.Process(Input{Port: 1,
		Data: udpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 0, 0, 99), 999, 6666)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Error("neutralized drop must not drop")
	}
	if !out.WouldDrop {
		t.Error("WouldDrop must still record the drop")
	}
	if out.Port != 3 {
		t.Errorf("egress = %d, want the forwarding decision 3", out.Port)
	}
}

func TestHeaderWriteback(t *testing.T) {
	src := `
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header_type ipv4_t {
    fields {
        version : 4; ihl : 4; diffserv : 8; totalLen : 16;
        identification : 16; flags : 3; fragOffset : 13;
        ttl : 8; protocol : 8; hdrChecksum : 16;
        srcAddr : 32; dstAddr : 32;
    }
}
header ethernet_t ethernet;
header ipv4_t ipv4;
parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 { extract(ipv4); return ingress; }
action dec_ttl() {
    subtract_from_field(ipv4.ttl, 1);
    modify_field(standard_metadata.egress_spec, 2);
}
table ttl_tbl { actions { dec_ttl; } default_action : dec_ttl; }
control ingress {
    if (valid(ipv4)) { apply(ttl_tbl); }
}
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := tcpPacket(packet.IP(1, 2, 3, 4), packet.IP(5, 6, 7, 8), 1)
	out, err := sw.Process(Input{Port: 1, Data: in})
	if err != nil {
		t.Fatal(err)
	}
	vIn, _ := packet.Decode(in)
	vOut, err := packet.Decode(out.Data)
	if err != nil {
		t.Fatal(err)
	}
	if vOut.IPv4.TTL != vIn.IPv4.TTL-1 {
		t.Errorf("ttl out = %d, want %d", vOut.IPv4.TTL, vIn.IPv4.TTL-1)
	}
	if vOut.IPv4.Src != vIn.IPv4.Src || vOut.IPv4.Dst != vIn.IPv4.Dst {
		t.Error("unrelated fields changed during writeback")
	}
	if len(out.Data) != len(in) {
		t.Errorf("length changed: %d -> %d", len(in), len(out.Data))
	}
}

func TestTrailerAppended(t *testing.T) {
	src := `
header_type mark_t { fields { a : 8; b : 8; } }
header mark_t mark;
action set_marks() {
    modify_field(mark.a, 7);
    modify_field(mark.b, 9);
}
table m { actions { set_marks; } default_action : set_marks; }
control ingress { apply(m); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, nil, Options{Trailer: "mark"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Process(Input{Port: 1, Data: []byte{0xAA, 0xBB}})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0xAA, 0xBB, 7, 9}
	if len(out.Data) != len(want) {
		t.Fatalf("data = %v, want %v", out.Data, want)
	}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("data = %v, want %v", out.Data, want)
		}
	}
}

func TestTernaryPriority(t *testing.T) {
	src := `
header_type m_t { fields { x : 8; } }
header m_t h;
parser start { extract(h); return ingress; }
action set_port(p) { modify_field(standard_metadata.egress_spec, p); }
table t {
    reads { h.x : ternary; }
    actions { set_port; }
    size : 8;
}
control ingress { apply(t); }
`
	ast := p4.MustParse(src)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rt.Parse(`
table_add t set_port 0&&&0 => 1 priority 1
table_add t set_port 5&&&255 => 2 priority 10
`)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Process(Input{Port: 1, Data: []byte{5}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Port != 2 {
		t.Errorf("x=5: port = %d, want 2 (higher priority)", out.Port)
	}
	out2, err := sw.Process(Input{Port: 1, Data: []byte{6}})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Port != 1 {
		t.Errorf("x=6: port = %d, want 1 (wildcard)", out2.Port)
	}
}

func TestParserTruncatedPacket(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	// 14-byte Ethernet claiming IPv4, but no IPv4 header behind it.
	data := packet.Serialize(&packet.Ethernet{EtherType: packet.EtherTypeIPv4})
	out, err := sw.Process(Input{Port: 1, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	// No IPv4 header -> no tables applied (all guarded by valid(ipv4)).
	if len(out.Exec) != 0 {
		t.Errorf("exec = %v, want none for truncated packet", out.Exec)
	}
}

func TestNonIPv4Ignored(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	data := packet.Serialize(&packet.Ethernet{EtherType: packet.EtherTypeARP}, packet.Raw("arp?"))
	out, err := sw.Process(Input{Port: 1, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Exec) != 0 {
		t.Errorf("exec = %v, want none for non-IPv4", out.Exec)
	}
}

func TestInstallRuleAtRuntime(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	pkt := udpPacket(packet.IP(10, 9, 0, 1), packet.IP(10, 0, 0, 99), 999, 7777)
	out, _ := sw.Process(Input{Port: 1, Data: pkt})
	if out.Dropped {
		t.Fatal("port 7777 not blocked yet")
	}
	if err := sw.InstallRule(rt.Rule{
		Table:   "ACL_UDP",
		Action:  "acl_udp_drop",
		Matches: []rt.FieldMatch{{Kind: p4.MatchExact, Value: 7777}},
	}); err != nil {
		t.Fatal(err)
	}
	out2, _ := sw.Process(Input{Port: 1, Data: pkt})
	if !out2.Dropped {
		t.Error("port 7777 should be blocked after InstallRule")
	}
}

func TestInstallRuleValidation(t *testing.T) {
	sw := newEx1Switch(t, Options{})
	err := sw.InstallRule(rt.Rule{Table: "nope", Action: "x"})
	if err == nil {
		t.Error("expected error for unknown table")
	}
	err = sw.InstallRule(rt.Rule{
		Table:   "ACL_UDP",
		Action:  "set_nhop", // not declared on this table
		Matches: []rt.FieldMatch{{Kind: p4.MatchExact, Value: 1}},
	})
	if err == nil {
		t.Error("expected error for foreign action")
	}
}
