package sim

import (
	"encoding/binary"
	"fmt"

	"p2go/internal/hashes"
	"p2go/internal/p4"
)

// This file is the compiled engine's runtime: the flat dispatch loop over
// a Plan's bytecode. It mirrors the tree-walking interpreter in eval.go
// operation for operation — same masking, same rule selection, same
// error strings — and the differential tests assert Output equality
// between the two on every workload.

// cstate is the per-Switch mutable execution state of the compiled
// engine: dense arrays indexed by the plan's slot/instance ids, plus the
// scratch buffers that keep the hot path allocation-free.
type cstate struct {
	fields []uint64
	valid  []bool
	extent []int32
	key    []uint64

	hashVals []uint64
	hashBuf  []byte

	exec        []Executed
	skipExec    bool
	wouldDrop   bool
	forwardPort uint64
	hit         bool

	// arena backs Output.Data for ProcessBatch with ReuseData: one
	// growing buffer per batch instead of one allocation per packet.
	arena []byte
}

func (st *cstate) init(c *compiled) {
	st.fields = make([]uint64, c.nSlots)
	st.valid = make([]bool, c.nInsts)
	st.extent = make([]int32, c.nInsts)
	st.key = make([]uint64, c.maxKeys)
}

func (st *cstate) reset(skipExec bool) {
	clear(st.fields)
	clear(st.valid)
	st.exec = nil
	st.skipExec = skipExec
	st.wouldDrop = false
	st.forwardPort = 0
	st.hit = false
}

// useCompiled reports whether this Switch runs the compiled engine.
func (s *Switch) useCompiled() bool {
	return s.plan != nil && s.plan.c != nil && s.planDisabled == ""
}

// Engine reports the execution engine of this Switch — "compiled" or
// "interpreter" — and, for the interpreter, the fallback reason.
func (s *Switch) Engine() (engine, reason string) {
	if s.plan == nil {
		return "interpreter", "no plan"
	}
	if s.planDisabled != "" {
		return "interpreter", s.planDisabled
	}
	return s.plan.Engine()
}

// Plan returns the execution plan this Switch was built from. Plans are
// immutable and safely shared: sharded replay builds one worker Switch
// per goroutine from the same plan.
func (s *Switch) Plan() *Plan { return s.plan }

// BatchOpts tunes ProcessBatch.
type BatchOpts struct {
	// SkipExec leaves Output.Exec nil, avoiding the one per-packet
	// allocation the execution trace costs. The profiler reads executions
	// from the instrumentation trailer, not Output.Exec.
	SkipExec bool
	// ReuseData serializes outgoing packets into a per-Switch arena:
	// Output.Data slices remain valid only until the next ProcessBatch
	// call on this Switch.
	ReuseData bool
}

// ProcessBatch runs each input through the pipeline, filling outs[i] for
// every processed packet; outs must be at least as long as ins. On error
// it returns the index of the failing packet. Like Process it is not
// safe for concurrent use on one Switch.
func (s *Switch) ProcessBatch(ins []Input, outs []Output, opts BatchOpts) (int, error) {
	if !s.useCompiled() {
		for i := range ins {
			out, err := s.Process(ins[i])
			if err != nil {
				return i, err
			}
			outs[i] = out
		}
		return len(ins), nil
	}
	if opts.ReuseData {
		s.cst.arena = s.cst.arena[:0]
	}
	for i := range ins {
		out, err := s.processCompiled(ins[i], opts.SkipExec, opts.ReuseData)
		if err != nil {
			return i, err
		}
		outs[i] = out
	}
	return len(ins), nil
}

// processCompiled is the compiled Process: parser, ingress, optional
// egress, serialization — all over dense state, no AST in sight.
func (s *Switch) processCompiled(in Input, skipExec, reuseData bool) (Output, error) {
	c := s.plan.c
	st := &s.cst
	st.reset(skipExec)
	// Intrinsic inputs are stored raw (unmasked), as the interpreter does.
	st.fields[c.slotIngressPort] = in.Port
	st.fields[c.slotPacketLen] = uint64(len(in.Data))

	if c.hasParser {
		if err := s.runParserC(in.Data); err != nil {
			return Output{}, err
		}
	}
	if err := s.runCode(c.ingress); err != nil {
		return Output{}, err
	}
	if c.hasEgr {
		spec := st.fields[c.slotEgressSpec]
		skip := spec == CPUPort || (spec == DropPort && !c.neutralizeDrops)
		if !skip {
			s.cstore(c.slotEgressPort, spec)
			if err := s.runCode(c.egress); err != nil {
				return Output{}, err
			}
		}
	}

	out := Output{Exec: st.exec, WouldDrop: st.wouldDrop, ForwardPort: st.forwardPort}
	out.Port = st.fields[c.slotEgressSpec]
	if out.Port == DropPort && !c.neutralizeDrops {
		out.Dropped = true
	}
	if out.Port == CPUPort {
		out.ToCPU = true
	}
	if reuseData {
		start := len(st.arena)
		st.arena = s.serializeC(in.Data, st.arena)
		out.Data = st.arena[start:len(st.arena):len(st.arena)]
	} else {
		out.Data = s.serializeC(in.Data, nil)
	}
	return out, nil
}

// cstore stores a field value masked to its declared width, tracking the
// forwarding decision exactly like the interpreter's setField.
func (s *Switch) cstore(slot int32, v uint64) {
	c := s.plan.c
	v &= c.mask[slot]
	s.cst.fields[slot] = v
	if slot == c.slotEgressSpec && v != CPUPort {
		s.cst.forwardPort = v
	}
}

// runCode executes one lowered control block.
func (s *Switch) runCode(code []cInstr) error {
	st := &s.cst
	for pc := 0; pc < len(code); {
		in := &code[pc]
		switch in.op {
		case ciApply:
			if err := s.applyCompiled(in.tbl); err != nil {
				return err
			}
			pc++
		case ciBrMiss:
			if st.hit {
				pc++
			} else {
				pc = int(in.tgt)
			}
		case ciBrFalse:
			if s.evalBoolC(in.cond) {
				pc++
			} else {
				pc = int(in.tgt)
			}
		default: // ciJump
			pc = int(in.tgt)
		}
	}
	return nil
}

// evalBoolC evaluates a lowered condition with the interpreter's
// short-circuit semantics.
func (s *Switch) evalBoolC(e *cBool) bool {
	st := &s.cst
	switch e.kind {
	case bValid:
		return st.valid[e.inst]
	case bCmp:
		l, r := e.l.eval(st), e.r.eval(st)
		switch e.op {
		case cmpEq:
			return l == r
		case cmpNe:
			return l != r
		case cmpLt:
			return l < r
		case cmpLe:
			return l <= r
		case cmpGt:
			return l > r
		default:
			return l >= r
		}
	case bAnd:
		return s.evalBoolC(e.a) && s.evalBoolC(e.b)
	case bOr:
		return s.evalBoolC(e.a) || s.evalBoolC(e.b)
	default: // bNot
		return !s.evalBoolC(e.a)
	}
}

// applyCompiled is the lowered applyTable: key assembly from pre-resolved
// slots, a linear scan over pre-lowered rules with the interpreter's
// priority/prefix tie-break, and the precomputed Executed records.
func (s *Switch) applyCompiled(ti int32) error {
	c := s.plan.c
	t := &c.tables[ti]
	st := &s.cst
	if t.keys == nil {
		// A read-less table "hits" whenever applied; its default action is
		// its behavior.
		if t.hasDef {
			if err := s.execBody(&t.def); err != nil {
				return err
			}
		}
		if !st.skipExec {
			st.exec = append(st.exec, t.defExec)
		}
		st.hit = true
		return nil
	}
	key := st.key[:len(t.keys)]
	for i := range t.keys {
		k := &t.keys[i]
		if k.valid {
			var v uint64
			if st.valid[k.inst] {
				v = 1
			}
			key[i] = v
		} else {
			key[i] = st.fields[k.slot]
		}
	}
	rules := s.crules[ti]
	best := -1
	bestPrefix := -1
	bestPriority := 0
	for idx := range rules {
		r := &rules[idx]
		if !r.match(key) {
			continue
		}
		better := false
		switch {
		case best == -1:
			better = true
		case r.priority != bestPriority:
			better = r.priority > bestPriority
		case r.prefix != bestPrefix:
			better = r.prefix > bestPrefix
		}
		if better {
			best, bestPrefix, bestPriority = idx, r.prefix, r.priority
		}
	}
	if best >= 0 {
		r := &rules[best]
		if err := s.execBody(&r.body); err != nil {
			return err
		}
		if !st.skipExec {
			st.exec = append(st.exec, r.exec)
		}
		st.hit = true
		return nil
	}
	if t.hasDef {
		if err := s.execBody(&t.def); err != nil {
			return err
		}
	}
	if !st.skipExec {
		st.exec = append(st.exec, t.missExec)
	}
	st.hit = false
	return nil
}

// match tests the rule against an assembled key.
func (r *cRule) match(key []uint64) bool {
	for i := range r.matches {
		m := &r.matches[i]
		v := key[i]
		switch m.kind {
		case mExact:
			if v != m.value {
				return false
			}
		case mAny:
		case mLPM:
			if v>>m.shift != m.value {
				return false
			}
		case mTernary:
			if v&m.mask != m.value {
				return false
			}
		default: // mRange
			if v < m.value || v > m.hi {
				return false
			}
		}
	}
	return true
}

// execBody runs one lowered action body. Error strings reproduce the
// interpreter's exactly ("sim: action X: register_read: ...").
func (s *Switch) execBody(b *cBody) error {
	c := s.plan.c
	st := &s.cst
	for i := range b.ops {
		op := &b.ops[i]
		switch op.kind {
		case oSet:
			s.cstore(op.dst, op.a.eval(st))
		case oAdd:
			s.cstore(op.dst, st.fields[op.dst]+op.a.eval(st))
		case oSub:
			s.cstore(op.dst, st.fields[op.dst]-op.a.eval(st))
		case oAnd:
			s.cstore(op.dst, op.a.eval(st)&op.b.eval(st))
		case oOr:
			s.cstore(op.dst, op.a.eval(st)|op.b.eval(st))
		case oXor:
			s.cstore(op.dst, op.a.eval(st)^op.b.eval(st))
		case oMin:
			a, bv := op.a.eval(st), op.b.eval(st)
			if bv < a {
				a = bv
			}
			s.cstore(op.dst, a)
		case oMax:
			a, bv := op.a.eval(st), op.b.eval(st)
			if bv > a {
				a = bv
			}
			s.cstore(op.dst, a)
		case oDrop:
			st.wouldDrop = true
			if !c.neutralizeDrops {
				s.cstore(c.slotEgressSpec, DropPort)
			}
		case oBind:
			st.fields[op.dst] = op.a.eval(st)
		case oRegRead:
			reg := s.regArr[op.res]
			idx := op.a.eval(st)
			if idx >= uint64(len(reg)) {
				return fmt.Errorf("sim: action %s: register_read: index %d out of range for %s[%d]",
					b.actionName, idx, c.regs[op.res].name, len(reg))
			}
			s.cstore(op.dst, reg[idx])
		case oRegWrite:
			reg := s.regArr[op.res]
			idx := op.a.eval(st)
			if idx >= uint64(len(reg)) {
				return fmt.Errorf("sim: action %s: register_write: index %d out of range for %s[%d]",
					b.actionName, idx, c.regs[op.res].name, len(reg))
			}
			reg[idx] = op.b.eval(st) & op.mask
		case oCount:
			ctr := s.ctrArr[op.res]
			idx := op.a.eval(st)
			if idx >= uint64(len(ctr)) {
				return fmt.Errorf("sim: action %s: count: index %d out of range for %s[%d]",
					b.actionName, idx, c.ctrs[op.res].name, len(ctr))
			}
			ctr[idx].Packets++
			ctr[idx].Bytes += st.fields[c.slotPacketLen]
		default: // oHash
			size := op.b.eval(st)
			if size == 0 {
				return fmt.Errorf("sim: action %s: %s: zero size", b.actionName, p4.PrimHashOffset)
			}
			h := s.computeHashC(op.res)
			s.cstore(op.dst, op.a.eval(st)+h%size)
		}
	}
	return nil
}

// computeHashC packs the calculation's field values into the reusable
// hash buffer and computes the digest — PackBits + Compute without the
// per-call allocations.
func (s *Switch) computeHashC(hi int32) uint64 {
	c := s.plan.c
	st := &s.cst
	h := &c.hashes[hi]
	vals := st.hashVals[:0]
	for _, f := range h.fields {
		vals = append(vals, st.fields[f.slot])
	}
	st.hashVals = vals
	buf := hashes.AppendPackBits(st.hashBuf[:0], vals, h.widths)
	st.hashBuf = buf
	return hashes.Compute(h.alg, buf, h.outWidth)
}

// runParserC executes the lowered parser graph. Truncated packets end
// parsing early with headers parsed so far left valid, exactly like the
// interpreter.
func (s *Switch) runParserC(data []byte) error {
	c := s.plan.c
	st := &s.cst
	stateIdx := c.start
	bitPos := 0
	totalBits := len(data) * 8
	for steps := 0; ; steps++ {
		if steps > maxParserStates {
			return fmt.Errorf("sim: parser exceeded %d states (cycle?)", maxParserStates)
		}
		ps := &c.parser[stateIdx]
		truncated := false
		for i := range ps.ops {
			op := &ps.ops[i]
			if op.extract {
				if bitPos+op.bits > totalBits {
					truncated = true
					break
				}
				st.extent[op.inst] = int32(bitPos)
				for _, f := range op.fields {
					st.fields[f.slot] = readBitsFast(data, bitPos, f.width)
					bitPos += f.width
				}
				st.valid[op.inst] = true
			} else {
				s.cstore(op.dst, op.val.eval(st))
			}
		}
		if truncated {
			return nil
		}
		next := ps.next
		if ps.isSelect {
			var key uint64
			for _, f := range ps.selOn {
				key = key<<uint(f.width) | st.fields[f.slot]
			}
			next = ps.selDefault
			for i := range ps.selCases {
				sc := &ps.selCases[i]
				if sc.hasMask {
					if key&sc.mask == sc.value&sc.mask {
						next = sc.next
						break
					}
				} else if key == sc.value {
					next = sc.next
					break
				}
			}
			if next == nextStop {
				// No default and no match: parsing stops, pipeline runs.
				return nil
			}
		}
		if next == nextIngress {
			return nil
		}
		stateIdx = next
	}
}

// serializeC is the compiled serialize: calculated-field updates, header
// write-back into a copy of the packet appended to dst, and the trailer.
// Passing dst nil yields a fresh allocation per packet (Process); the
// batch path passes the arena.
func (s *Switch) serializeC(original, dst []byte) []byte {
	c := s.plan.c
	st := &s.cst
	for i := range c.calcs {
		cf := &c.calcs[i]
		if !st.valid[cf.inst] {
			continue
		}
		s.cstore(cf.dst, s.computeHashC(cf.hash))
	}
	base := len(dst)
	dst = append(dst, original...)
	data := dst[base:]
	for i := range c.emits {
		e := &c.emits[i]
		if !st.valid[e.inst] {
			continue
		}
		bit := int(st.extent[e.inst])
		for _, f := range e.fields {
			writeBitsFast(data, bit, f.width, st.fields[f.slot])
			bit += f.width
		}
	}
	if c.trailer != nil {
		tbase := len(dst) - base
		dst = append(dst, c.trailerZero...)
		data = dst[base:]
		bit := tbase * 8
		for _, f := range c.trailer.fields {
			writeBitsFast(data, bit, f.width, st.fields[f.slot])
			bit += f.width
		}
	}
	return dst
}

// readBitsFast is readBits with word-sized loads: an 8-byte window when
// the packet has the room, a spanned-byte accumulate near the packet
// tail, and the per-bit reference loop for >8-byte spans.
func readBitsFast(data []byte, bitOffset, width int) uint64 {
	byteIdx := bitOffset >> 3
	bitInByte := bitOffset & 7
	if bitInByte+width <= 64 {
		if byteIdx+8 <= len(data) {
			acc := binary.BigEndian.Uint64(data[byteIdx:])
			return acc << uint(bitInByte) >> uint(64-width)
		}
		span := (bitInByte + width + 7) >> 3
		if byteIdx+span <= len(data) {
			var acc uint64
			for _, b := range data[byteIdx : byteIdx+span] {
				acc = acc<<8 | uint64(b)
			}
			acc >>= uint(span*8 - bitInByte - width)
			if width < 64 {
				acc &= 1<<uint(width) - 1
			}
			return acc
		}
	}
	return readBits(data, bitOffset, width)
}

// writeBitsFast is writeBits as a word-sized read-modify-write over the
// spanned bytes, falling back to the per-bit reference loop for spans
// wider than 8 bytes or writes past the buffer.
func writeBitsFast(data []byte, bitOffset, width int, v uint64) {
	byteIdx := bitOffset >> 3
	bitInByte := bitOffset & 7
	if bitInByte+width <= 64 {
		span := (bitInByte + width + 7) >> 3
		if byteIdx+span <= len(data) {
			var acc uint64
			for _, b := range data[byteIdx : byteIdx+span] {
				acc = acc<<8 | uint64(b)
			}
			shift := uint(span*8 - bitInByte - width)
			mask := ^uint64(0) >> uint(64-width) << shift
			acc = acc&^mask | v<<shift&mask
			for i := span - 1; i >= 0; i-- {
				data[byteIdx+i] = byte(acc)
				acc >>= 8
			}
			return
		}
	}
	writeBits(data, bitOffset, width, v)
}
