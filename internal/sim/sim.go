// Package sim is a behavioral simulator for the P4 subset: it parses
// packets with the program's parser, matches installed rules
// (exact/lpm/ternary/range/valid), executes primitive actions including
// register arrays and hash computations, and emits the possibly modified
// packet. It stands in for the Tofino behavioral simulator P2GO profiles
// against; drops follow RMT semantics (a drop marks the packet but the
// rest of the pipeline still executes).
package sim

import (
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/rt"
)

// Port values with special meaning, mirroring internal/programs.
const (
	// DropPort is the egress_spec value drop() installs.
	DropPort = 511
	// CPUPort redirects a packet to the controller.
	CPUPort = 255
)

// Options tunes a Switch.
type Options struct {
	// Trailer names a header instance that is appended to every outgoing
	// packet (the profiler's instrumentation header). Empty means none.
	Trailer string
	// NeutralizeDrops rewrites drop semantics so marked packets still
	// egress; the profiler uses this so the collector sees every packet.
	// The drop is still recorded in Output.WouldDrop.
	NeutralizeDrops bool
	// Interpret forces the tree-walking interpreter even when the program
	// lowers cleanly — the reference engine for differential tests and the
	// bench harness's before/after rows.
	Interpret bool
}

// Switch is an instantiated data plane: a compiled program plus installed
// rules and register state.
type Switch struct {
	prog *ir.Program
	cfg  *rt.Config
	opts Options

	widths    map[ir.FieldKey]int
	registers map[string][]uint64
	counters  map[string][]CounterCell
	tables    map[string]*tableState

	// plan is the shared immutable execution plan; when it compiled
	// (plan.c != nil) Process runs the flat bytecode engine in exec.go
	// instead of the tree-walking interpreter.
	plan *Plan
	// planDisabled names why this Switch abandoned the compiled engine
	// after construction (a runtime-installed rule that would not lower).
	planDisabled string
	// regArr/ctrArr alias the registers/counters maps by the plan's dense
	// ids; crules holds per-Switch rule lists (shared with the plan until
	// InstallRule copies on write).
	regArr [][]uint64
	ctrArr [][]CounterCell
	crules [][]cRule
	// cst is the compiled engine's per-packet state, reused across calls.
	cst cstate

	// scratch is the per-packet evaluation state, reused across Process
	// calls so the hot replay path does not rebuild three maps per
	// packet. Process was already not safe for concurrent use on one
	// Switch (register and counter state); replay parallelism runs one
	// Switch per worker instead.
	scratch state
}

// CounterCell is one counter entry.
type CounterCell struct {
	Packets uint64
	Bytes   uint64
}

// tableState holds the installed rules of one table, pre-indexed.
type tableState struct {
	decl  *p4.TableDecl
	rules []rt.Rule
	// defaultOverride is the runtime table_set_default entry, if any.
	defaultOverride *rt.DefaultEntry
}

// effectiveDefault returns the action and argument source to run on a
// miss: the runtime override when present, otherwise the declared default
// (with its expression arguments).
func (ts *tableState) effectiveDefault() (action string, argValues []uint64, argExprs []p4.Expr) {
	if ts.defaultOverride != nil {
		return ts.defaultOverride.Action, ts.defaultOverride.Args, nil
	}
	return ts.decl.DefaultAction, nil, ts.decl.DefaultArgs
}

// New builds a Switch. The configuration is validated against the program.
// Equivalent to NewPlan followed by NewFromPlan; callers replaying the
// same (program, config, options) on several Switches — sharded replay,
// repeated optimizer phases — should build the Plan once and share it.
func New(prog *ir.Program, cfg *rt.Config, opts Options) (*Switch, error) {
	pl, err := NewPlan(prog, cfg, opts)
	if err != nil {
		return nil, err
	}
	return NewFromPlan(pl), nil
}

// NewFromPlan instantiates a Switch over a shared execution plan. Only
// mutable state (registers, counters, scratch) is allocated; the lowered
// program, rule sets, and widths are shared with the plan.
func NewFromPlan(pl *Plan) *Switch {
	s := &Switch{
		prog:      pl.prog,
		cfg:       pl.cfg,
		opts:      pl.opts,
		plan:      pl,
		widths:    pl.widths,
		registers: map[string][]uint64{},
		counters:  map[string][]CounterCell{},
		tables:    map[string]*tableState{},
	}
	prog := pl.prog
	for _, r := range prog.AST.Registers {
		s.registers[r.Name] = make([]uint64, r.InstanceCount)
	}
	for _, c := range prog.AST.Counters {
		s.counters[c.Name] = make([]CounterCell, c.InstanceCount)
	}
	for _, t := range prog.AST.Tables {
		s.tables[t.Name] = &tableState{
			decl:            t,
			rules:           pl.tableRules[t.Name],
			defaultOverride: pl.defaults[t.Name],
		}
	}
	if c := pl.c; c != nil {
		s.regArr = make([][]uint64, len(c.regs))
		for i, r := range c.regs {
			s.regArr[i] = s.registers[r.name]
		}
		s.ctrArr = make([][]CounterCell, len(c.ctrs))
		for i, ct := range c.ctrs {
			s.ctrArr[i] = s.counters[ct.name]
		}
		s.crules = make([][]cRule, len(c.tables))
		for i := range c.tables {
			s.crules[i] = c.tables[i].rules
		}
		s.cst.init(c)
	}
	return s
}

// Reset clears all register and counter state.
func (s *Switch) Reset() {
	for name := range s.registers {
		for i := range s.registers[name] {
			s.registers[name][i] = 0
		}
	}
	for name := range s.counters {
		for i := range s.counters[name] {
			s.counters[name][i] = CounterCell{}
		}
	}
}

// Register returns a copy of a register array's contents (for tests and
// the controller's equivalence checks).
func (s *Switch) Register(name string) []uint64 {
	r, ok := s.registers[name]
	if !ok {
		return nil
	}
	return append([]uint64(nil), r...)
}

// Counter returns a copy of a counter array's contents.
func (s *Switch) Counter(name string) []CounterCell {
	c, ok := s.counters[name]
	if !ok {
		return nil
	}
	return append([]CounterCell(nil), c...)
}

// Input is one packet entering the pipeline.
type Input struct {
	Port uint64
	Data []byte
}

// Executed records one table application.
type Executed struct {
	Table  string
	Action string
	Hit    bool
}

// Output is the result of processing one packet.
type Output struct {
	// Port is the final egress_spec.
	Port uint64
	// Data is the serialized outgoing packet (with field modifications
	// written back and the trailer appended, when configured).
	Data []byte
	// Dropped is true when the packet was dropped (egress_spec ==
	// DropPort and drops are not neutralized).
	Dropped bool
	// WouldDrop is true when a drop primitive executed, even if drops
	// are neutralized.
	WouldDrop bool
	// ToCPU is true when the packet was redirected to the controller.
	ToCPU bool
	// ForwardPort is the last egress_spec value written that was not the
	// CPU port: the forwarding decision the pipeline made before (or
	// independent of) a controller redirect. Real switches preserve it
	// across copy-to-CPU; the composed deployment (optimized data plane
	// + controller) uses it to forward packets the controller passes.
	ForwardPort uint64
	// Exec lists the tables applied, in order, with the chosen action.
	Exec []Executed
}

// state is the per-packet evaluation state.
type state struct {
	fields    map[ir.FieldKey]uint64
	valid     map[string]bool
	extents   map[string]headerExtent
	exec      []Executed
	wouldDrop bool
	// forwardPort tracks the last non-CPU egress_spec write.
	forwardPort uint64
}

// headerExtent records where an extracted header lives in the packet.
type headerExtent struct {
	bitOffset int
}

// Process runs one packet through parser and ingress control. It is not
// safe for concurrent use on one Switch (register, counter, and scratch
// state); run one Switch per goroutine instead.
func (s *Switch) Process(in Input) (Output, error) {
	if s.useCompiled() {
		return s.processCompiled(in, false, false)
	}
	return s.processInterp(in)
}

// processInterp is the tree-walking reference engine.
func (s *Switch) processInterp(in Input) (Output, error) {
	st := &s.scratch
	if st.fields == nil {
		st.fields = make(map[ir.FieldKey]uint64, 32)
		st.valid = make(map[string]bool, 8)
		st.extents = make(map[string]headerExtent, 8)
	} else {
		clear(st.fields)
		clear(st.valid)
		clear(st.extents)
	}
	// Exec escapes into Output, so it alone is allocated per packet.
	st.exec = nil
	st.wouldDrop = false
	st.forwardPort = 0
	st.fields[ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldIngressPort)] = in.Port
	st.fields[ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldPacketLength)] = uint64(len(in.Data))

	if len(s.prog.AST.ParserStates) > 0 {
		if err := s.runParser(st, in.Data); err != nil {
			return Output{}, err
		}
	}
	if err := s.runBlock(st, s.prog.Ingress.Body); err != nil {
		return Output{}, err
	}
	// Egress pipeline: runs after ingress for packets that survive it
	// (dropped and controller-bound packets skip egress, as on real
	// hardware). egress_port carries the queued forwarding decision.
	if s.prog.Egress != nil {
		spec := st.fields[ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldEgressSpec)]
		skip := spec == CPUPort || (spec == DropPort && !s.opts.NeutralizeDrops)
		if !skip {
			s.setField(st, ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldEgressPort), spec)
			if err := s.runBlock(st, s.prog.Egress.Body); err != nil {
				return Output{}, err
			}
		}
	}

	out := Output{Exec: st.exec, WouldDrop: st.wouldDrop, ForwardPort: st.forwardPort}
	out.Port = st.fields[ir.FieldKey(p4.StandardMetadataName+"."+p4.FieldEgressSpec)]
	if out.Port == DropPort && !s.opts.NeutralizeDrops {
		out.Dropped = true
	}
	if out.Port == CPUPort {
		out.ToCPU = true
	}
	out.Data = s.serialize(st, in.Data)
	return out, nil
}

// serialize applies calculated-field updates (e.g. the IPv4 header
// checksum), writes modified header fields back into a copy of the packet,
// and appends the trailer header, if configured.
func (s *Switch) serialize(st *state, original []byte) []byte {
	s.applyCalculatedFields(st)
	data := append([]byte(nil), original...)
	for _, inst := range s.prog.AST.Instances {
		if inst.Metadata || !st.valid[inst.Name] {
			continue
		}
		ext, ok := st.extents[inst.Name]
		if !ok {
			continue
		}
		ht := s.prog.AST.HeaderType(inst.TypeName)
		bit := ext.bitOffset
		for _, f := range ht.Fields {
			v := st.fields[ir.FieldKey(inst.Name+"."+f.Name)]
			writeBits(data, bit, f.Width, v)
			bit += f.Width
		}
	}
	if s.opts.Trailer != "" {
		inst := s.prog.AST.Instance(s.opts.Trailer)
		ht := s.prog.AST.HeaderType(inst.TypeName)
		trailer := make([]byte, (ht.Bits()+7)/8)
		bit := 0
		for _, f := range ht.Fields {
			v := st.fields[ir.FieldKey(inst.Name+"."+f.Name)]
			writeBits(trailer, bit, f.Width, v)
			bit += f.Width
		}
		data = append(data, trailer...)
	}
	return data
}

// applyCalculatedFields recomputes every calculated field whose header
// instance is valid — the deparser-side "update" clause of P4_14
// calculated_field declarations.
func (s *Switch) applyCalculatedFields(st *state) {
	for _, cf := range s.prog.AST.CalcFields {
		if cf.Update == "" || !st.valid[cf.Field.Instance] {
			continue
		}
		v, err := s.computeHash(st, cf.Update)
		if err != nil {
			continue // checked at build time; defensive only
		}
		s.setField(st, ir.Key(cf.Field), v)
	}
}
