package sim

import (
	"testing"

	"p2go/internal/hashes"
	"p2go/internal/ir"
	"p2go/internal/p4"
	"p2go/internal/packet"
	"p2go/internal/programs"
	"p2go/internal/sketch"
)

// TestCMSDataPlaneMatchesSoftwareOracle replays DNS traffic through the
// Ex. 1 firewall and checks that the register-based Count-Min Sketch in the
// data plane holds exactly the same cells as the software CMS from
// internal/sketch fed the same keys — the agreement the offloaded
// controller relies on.
func TestCMSDataPlaneMatchesSoftwareOracle(t *testing.T) {
	ast := p4.MustParse(programs.Ex1)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, programs.Ex1Config(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Software twins of the two sketch rows: identity-over-src (row 1)
	// and crc16-over-flow (row 2), matching the program's calculations.
	row1 := sketch.NewRow(hashes.Identity, 16, programs.Ex1SketchCells, 32)
	row2 := sketch.NewRow(hashes.CRC16, 16, programs.Ex1SketchCells, 32)

	flows := []struct {
		src, dst uint32
		n        int
	}{
		{packet.IP(10, 9, 1, 1), packet.IP(10, 0, 0, 53), 40},
		{packet.IP(10, 9, 2, 2), packet.IP(10, 0, 0, 53), 17},
		{packet.IP(10, 9, 3, 3), packet.IP(10, 0, 1, 9), 5},
	}
	for _, f := range flows {
		data := packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoUDP, Src: f.src, Dst: f.dst},
			&packet.UDP{SrcPort: 5353, DstPort: packet.PortDNS},
			&packet.DNS{ID: 1, QDCount: 1},
		)
		for i := 0; i < f.n; i++ {
			if _, err := sw.Process(Input{Port: 1, Data: data}); err != nil {
				t.Fatal(err)
			}
			// Software updates: row 1 keys on srcAddr, row 2 on the pair.
			srcKey := hashes.SerializeValues([]uint64{uint64(f.src)}, []int{32})
			flowKey := hashes.SerializeValues([]uint64{uint64(f.src), uint64(f.dst)}, []int{32, 32})
			row1.Cells[row1.Index(srcKey)]++
			row2.Cells[row2.Index(flowKey)]++
		}
	}

	r1 := sw.Register("cms_r1")
	r2 := sw.Register("cms_r2")
	for i := range r1 {
		if r1[i] != row1.Cells[i] {
			t.Fatalf("cms_r1[%d] = %d, software row = %d", i, r1[i], row1.Cells[i])
		}
	}
	for i := range r2 {
		if r2[i] != row2.Cells[i] {
			t.Fatalf("cms_r2[%d] = %d, software row = %d", i, r2[i], row2.Cells[i])
		}
	}
}

// TestBFDataPlaneMatchesSoftwareOracle does the same for the Sourceguard
// Bloom filter rows after DHCP learning.
func TestBFDataPlaneMatchesSoftwareOracle(t *testing.T) {
	ast := p4.MustParse(programs.Sourceguard)
	if err := p4.Check(ast); err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(prog, programs.SourceguardConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	row1 := sketch.NewRow(hashes.CRC16, 16, programs.SourceguardBFCells, 8)
	row2 := sketch.NewRow(hashes.CRC32, 32, programs.SourceguardBFCells, 8)
	bf := sketch.NewBloom(row1, row2)

	clients := []uint32{packet.IP(10, 4, 0, 1), packet.IP(10, 4, 0, 2), packet.IP(10, 4, 0, 3)}
	for _, src := range clients {
		dhcp := packet.Serialize(
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoUDP, Src: src, Dst: packet.IP(10, 255, 255, 255)},
			&packet.UDP{SrcPort: packet.PortDHCPClient, DstPort: packet.PortDHCPServer},
			&packet.DHCP{Op: 1, HType: 1, HLen: 6, XID: 1},
		)
		if _, err := sw.Process(Input{Port: 1, Data: dhcp}); err != nil {
			t.Fatal(err)
		}
		bf.Add(hashes.SerializeValues([]uint64{uint64(src)}, []int{32}))
	}
	r1 := sw.Register("bf_r1")
	r2 := sw.Register("bf_r2")
	for i := range r1 {
		if (r1[i] != 0) != (row1.Cells[i] != 0) {
			t.Fatalf("bf_r1[%d] = %d, software = %d", i, r1[i], row1.Cells[i])
		}
	}
	for i := range r2 {
		if (r2[i] != 0) != (row2.Cells[i] != 0) {
			t.Fatalf("bf_r2[%d] = %d, software = %d", i, r2[i], row2.Cells[i])
		}
	}
	// The software filter agrees on membership for learned and unlearned
	// sources.
	if !bf.Contains(hashes.SerializeValues([]uint64{uint64(clients[0])}, []int{32})) {
		t.Error("software BF lost a learned client")
	}
}
