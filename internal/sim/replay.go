package sim

import (
	"context"
	"time"

	"p2go/internal/obs"
)

// Replay executes a packet-replay loop under a "sim.replay" span that
// records the packet count and the observed throughput (packets/sec).
// step processes packet i — typically a Switch.Process call plus whatever
// the caller accumulates — and a step error aborts the replay. The
// profiler and the equivalence harnesses run their trace loops through
// this so every replay shows up in traces with its rate.
func Replay(ctx context.Context, packets int, step func(i int) error) error {
	_, sp := obs.Start(ctx, "sim.replay", obs.Int("packets", packets))
	defer sp.End()
	start := time.Now()
	for i := 0; i < packets; i++ {
		if err := step(i); err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
			return err
		}
	}
	if el := time.Since(start).Seconds(); el > 0 && packets > 0 {
		sp.SetAttr(obs.Float("packets_per_sec", float64(packets)/el))
	}
	return nil
}
