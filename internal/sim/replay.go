package sim

import (
	"context"
	"time"

	"p2go/internal/obs"
)

// Replay executes a packet-replay loop under a "sim.replay" span that
// records the packet count and the observed throughput (packets/sec).
// step processes packet i — typically a Switch.Process call plus whatever
// the caller accumulates — and a step error aborts the replay. The
// profiler and the equivalence harnesses run their trace loops through
// this so every replay shows up in traces with its rate.
func Replay(ctx context.Context, packets int, step func(i int) error) error {
	_, sp := obs.Start(ctx, "sim.replay", obs.Int("packets", packets))
	defer sp.End()
	start := time.Now()
	for i := 0; i < packets; i++ {
		if err := step(i); err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
			return err
		}
	}
	if packets > 0 {
		sp.SetAttr(obs.Float("packets_per_sec", Throughput(packets, time.Since(start))))
	}
	return nil
}

// ReplayBatchSize is the index-range granularity of ReplayBatch: large
// enough to amortize the per-call closure and accounting, small enough to
// keep cancellation checks responsive.
const ReplayBatchSize = 512

// ReplayBatch is Replay with a batched step: step is invoked with
// half-open index ranges [lo, hi) covering [0, n), so the per-packet
// closure dispatch and span accounting of Replay amortize across
// ReplayBatchSize packets. total is the packet count recorded on the span
// and used for the throughput attribute — under flow deduplication the
// caller replays n unique representatives that stand for total packets,
// and the reported rate is the effective one. attrs are appended to the
// "sim.replay" span after the packet count.
func ReplayBatch(ctx context.Context, total, n int, step func(lo, hi int) error, attrs ...obs.Attr) error {
	all := make([]obs.Attr, 0, len(attrs)+1)
	all = append(all, obs.Int("packets", total))
	all = append(all, attrs...)
	_, sp := obs.Start(ctx, "sim.replay", all...)
	defer sp.End()
	start := time.Now()
	for lo := 0; lo < n; lo += ReplayBatchSize {
		hi := lo + ReplayBatchSize
		if hi > n {
			hi = n
		}
		if err := step(lo, hi); err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
			return err
		}
	}
	if total > 0 {
		sp.SetAttr(obs.Float("packets_per_sec", Throughput(total, time.Since(start))))
	}
	return nil
}

// Throughput converts a packet count and elapsed time into packets/sec.
// Elapsed is clamped to a minimum of one nanosecond so a replay fast
// enough (or a clock coarse enough) to measure zero elapsed time still
// reports a rate instead of silently dropping the attribute.
func Throughput(packets int, elapsed time.Duration) float64 {
	if elapsed < time.Nanosecond {
		elapsed = time.Nanosecond
	}
	return float64(packets) / elapsed.Seconds()
}
